"""Unit tests for the workload catalog and mix builders
(repro.workloads)."""

import pytest

from repro.errors import ConfigError
from repro.gpu import GPUConfig, PerformanceModel
from repro.workloads import (
    AI_MODELS,
    COMPUTE_BOUND_ABBRS,
    MEMORY_BOUND_ABBRS,
    TABLE2,
    all_pairs,
    build_ai_application,
    build_application,
    build_mix,
    catalog,
    eight_program_mixes,
    four_program_mixes,
    heterogeneous_pairs,
    homogeneous_pairs,
    hotset_trace,
    spec_for,
    streaming_trace,
    strided_trace,
    synthetic_kernel,
)


class TestTable2Catalog:
    def test_fifteen_benchmarks(self):
        assert len(TABLE2) == 15
        assert len(catalog()) == 15

    def test_class_split_matches_paper(self):
        # 10 memory-bound x 5 compute-bound gives the paper's 50
        # heterogeneous and 55 homogeneous pairs.
        assert len(MEMORY_BOUND_ABBRS) == 10
        assert len(COMPUTE_BOUND_ABBRS) == 5

    def test_published_columns(self):
        pvc = spec_for("PVC")
        assert pvc.mpki == 4.79
        assert pvc.num_kernels == 1
        assert pvc.footprint_mb == 3810
        dxtc = spec_for("DXTC")
        assert dxtc.mpki == 0.0004
        assert dxtc.num_kernels == 2
        assert dxtc.footprint_mb == 20

    def test_apki_consistent_with_mpki(self):
        for spec in TABLE2:
            implied_mpki = spec.apki_llc * (1 - spec.llc_hit_rate)
            assert implied_mpki == pytest.approx(spec.mpki, rel=1e-9)

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ConfigError):
            spec_for("NOPE")

    def test_classification_matches_performance_model(self):
        """Every catalog entry lands on the right side of the Equation 1/2
        boundary at the even partition (40 SMs / 16 channels)."""
        model = PerformanceModel(GPUConfig())
        for spec in TABLE2:
            app = build_application(spec.abbr, with_hit_curve=False)
            t = model.throughput(app.kernels[0], 40, 16)
            if spec.memory_bound:
                assert t.demand_supply_ratio > 1.0, spec.abbr
            else:
                assert t.demand_supply_ratio < 1.0, spec.abbr


class TestBuildApplication:
    def test_kernel_count_matches_table(self):
        for spec in TABLE2:
            app = build_application(spec.abbr)
            assert len(app.kernels) == spec.num_kernels

    def test_footprint_matches_table(self):
        app = build_application("SRAD")
        assert app.footprint_bytes == 1048 * 1024 * 1024

    def test_kernel_names_are_distinct(self):
        app = build_application("BH")  # 14 kernels
        names = [k.name for k in app.kernels]
        assert len(set(names)) == 14

    def test_deterministic_construction(self):
        a = build_application("EULER3D")
        b = build_application("EULER3D")
        assert [k.apki_llc for k in a.kernels] == [k.apki_llc for k in b.kernels]

    def test_hit_curve_attached_by_default(self):
        app = build_application("PVC")
        assert app.kernels[0].hit_curve is not None
        assert build_application("PVC", with_hit_curve=False).kernels[0].hit_curve is None


class TestMixes:
    def test_pair_counts_match_paper(self):
        assert len(heterogeneous_pairs()) == 50
        assert len(homogeneous_pairs()) == 55
        assert len(all_pairs()) == 105

    def test_heterogeneous_pairs_cross_classes(self):
        for m, c in heterogeneous_pairs():
            assert m in MEMORY_BOUND_ABBRS
            assert c in COMPUTE_BOUND_ABBRS

    def test_build_mix(self):
        mix = build_mix(["PVC", "DXTC"])
        assert mix.name == "PVC_DXTC"
        assert mix.heterogeneous
        assert [a.app_id for a in mix.applications] == [0, 1]

    def test_homogeneous_mix_flagged(self):
        assert not build_mix(["PVC", "LBM"]).heterogeneous

    def test_four_program_mixes(self):
        mixes = four_program_mixes(count=10)
        assert len(mixes) == 10
        for mix in mixes:
            assert mix.num_programs == 4
            classes = [spec_for(a).memory_bound for a in mix.abbrs]
            assert sum(classes) == 2  # two memory-bound, two compute-bound

    def test_eight_program_mixes_composition(self):
        mixes = eight_program_mixes(count=20)
        assert len(mixes) == 20
        for mix in mixes:
            classes = [spec_for(a).memory_bound for a in mix.abbrs]
            assert sum(classes) == 4

    def test_mix_sampling_deterministic(self):
        a = [m.name for m in eight_program_mixes(count=5, seed=7)]
        b = [m.name for m in eight_program_mixes(count=5, seed=7)]
        assert a == b

    def test_empty_mix_rejected(self):
        with pytest.raises(ConfigError):
            build_mix([])


class TestAIModels:
    def test_five_models(self):
        assert set(AI_MODELS) == {"AlexNet", "ResNet", "SqueezeNet", "GRU", "LSTM"}

    def test_alexnet_layers(self):
        app = build_ai_application("AlexNet")
        assert len(app.kernels) == 10
        assert any("fc" in k.name for k in app.kernels)

    def test_recurrent_models_are_memory_heavy(self):
        model = PerformanceModel(GPUConfig())
        lstm = build_ai_application("LSTM")
        t = model.throughput(lstm.kernels[0], 40, 16)
        assert t.demand_supply_ratio > 1.0

    def test_unknown_model_rejected(self):
        with pytest.raises(ConfigError):
            build_ai_application("GPT5")


class TestSyntheticGenerators:
    def test_streaming_trace(self):
        trace = streaming_trace(4)
        assert trace == [0, 128, 256, 384]

    def test_strided_trace_wraps(self):
        trace = strided_trace(4, stride_bytes=256, wrap_bytes=512)
        assert trace == [0, 256, 0, 256]

    def test_hotset_trace_respects_regions(self):
        trace = hotset_trace(1000, hot_bytes=1024, cold_bytes=4096,
                             hot_fraction=0.9, seed=3)
        hot = sum(1 for a in trace if a < 1024)
        assert 0.8 < hot / len(trace) <= 1.0

    def test_hotset_deterministic(self):
        assert hotset_trace(100, 1024, 4096, seed=5) == hotset_trace(
            100, 1024, 4096, seed=5
        )

    def test_synthetic_kernel_dial(self):
        model = PerformanceModel(GPUConfig())
        compute = synthetic_kernel(intensity=0.0)
        memory = synthetic_kernel(intensity=1.0)
        tc = model.throughput(compute, 40, 16)
        tm = model.throughput(memory, 40, 16)
        assert tc.demand_supply_ratio < 1.0 < tm.demand_supply_ratio

    def test_synthetic_kernel_bounds(self):
        with pytest.raises(ConfigError):
            synthetic_kernel(intensity=1.5)

    def test_trace_validation(self):
        with pytest.raises(ConfigError):
            streaming_trace(-1)
        with pytest.raises(ConfigError):
            strided_trace(10, 0, 100)
        with pytest.raises(ConfigError):
            hotset_trace(10, 0, 100)
