"""Tests for the warp timing model (repro.gpu.warp)."""

import pytest

from repro.errors import ConfigError
from repro.gpu import GPUConfig, Kernel
from repro.gpu.warp import WarpTimingModel
from repro.workloads import TABLE2, build_application


@pytest.fixture
def model():
    return WarpTimingModel(GPUConfig())


def kernel(apki=0.0, hit=0.5, ipc=64.0):
    return Kernel("k", ipc_per_sm=ipc, apki_llc=apki, llc_hit_rate=hit,
                  footprint_bytes=0)


class TestWarpTiming:
    def test_pure_compute_kernel_saturates_with_two_warps(self, model):
        t = model.timing(kernel(apki=0.0))
        assert t.stall_cycles_per_instr == 0.0
        assert t.warp_duty == 1.0
        assert not t.latency_bound

    def test_memory_heavy_kernel_is_latency_bound(self, model):
        # 20 APKI at 25% hits: enormous stall time per instruction.
        t = model.timing(kernel(apki=60.0, hit=0.25))
        assert t.stall_cycles_per_instr > t.issue_cycles_per_instr
        assert t.latency_bound

    def test_duty_decreases_with_apki(self, model):
        duties = [model.timing(kernel(apki=a)).warp_duty
                  for a in (0.0, 2.0, 8.0, 20.0)]
        assert duties == sorted(duties, reverse=True)

    def test_hit_rate_shortens_stalls(self, model):
        slow = model.timing(kernel(apki=8.0, hit=0.0))
        fast = model.timing(kernel(apki=8.0, hit=0.95))
        assert fast.stall_cycles_per_instr < slow.stall_cycles_per_instr


class TestIPCDerivation:
    def test_peak_ipc_is_64(self, model):
        assert model.ipc_per_sm(kernel(apki=0.0)) == pytest.approx(64.0)

    def test_ipc_grows_with_resident_warps(self, model):
        k = kernel(apki=10.0, hit=0.3)
        ipcs = [model.ipc_per_sm(k, warps) for warps in (4, 16, 64)]
        assert ipcs == sorted(ipcs)

    def test_ipc_bounded_by_peak(self, model):
        for apki in (0.0, 1.0, 10.0):
            assert model.ipc_per_sm(kernel(apki=apki)) <= 64.0 + 1e-9

    def test_catalog_values_achievable(self, model):
        """Every Table 2 calibration is consistent with warp-level
        first principles at full occupancy."""
        for spec in TABLE2:
            k = build_application(spec.abbr, with_hit_curve=False).kernels[0]
            assert model.validates_catalog_value(k), spec.abbr

    def test_validation(self, model):
        with pytest.raises(ConfigError):
            WarpTimingModel(GPUConfig(), l1_miss_rate=0.0)
        with pytest.raises(ConfigError):
            WarpTimingModel(GPUConfig(), mlp_per_warp=0)
        with pytest.raises(ConfigError):
            model.timing(kernel(), resident_warps=0)
