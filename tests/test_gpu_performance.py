"""Unit tests for kernels, applications and the two-roofline performance
model (repro.gpu.kernel / repro.gpu.performance).

The scaling-shape tests here are the unit-level counterparts of the
Figure 2/3 reproduction benches.
"""

import pytest

from repro.errors import ConfigError
from repro.gpu import Application, GPUConfig, Kernel, PerformanceModel


def compute_kernel(**overrides):
    """A DXTC-like kernel: almost no DRAM traffic.

    ``ipc_per_sm`` counts thread-level instructions (2 schedulers x 32
    lanes = 64 peak), matching how Table 2 MPKI values are normalized.
    """
    params = dict(
        name="compute",
        ipc_per_sm=64.0,
        apki_llc=1.0,
        llc_hit_rate=0.999,
        footprint_bytes=20 * 1024 * 1024,
    )
    params.update(overrides)
    return Kernel(**params)


def memory_kernel(**overrides):
    """A PVC-like kernel: streams through DRAM (MPKI 4.79 at 25% hits)."""
    params = dict(
        name="memory",
        ipc_per_sm=64.0,
        apki_llc=6.4,
        llc_hit_rate=0.25,
        footprint_bytes=3810 * 1024 * 1024,
    )
    params.update(overrides)
    return Kernel(**params)


@pytest.fixture
def model():
    return PerformanceModel(GPUConfig())


class TestKernel:
    def test_mpki_relation(self):
        k = Kernel("k", ipc_per_sm=2.0, apki_llc=10.0, llc_hit_rate=0.6,
                   footprint_bytes=0)
        assert k.mpki_llc == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            Kernel("k", ipc_per_sm=0, apki_llc=1, llc_hit_rate=0.5, footprint_bytes=0)
        with pytest.raises(ConfigError):
            Kernel("k", ipc_per_sm=1, apki_llc=-1, llc_hit_rate=0.5, footprint_bytes=0)
        with pytest.raises(ConfigError):
            Kernel("k", ipc_per_sm=1, apki_llc=1, llc_hit_rate=1.5, footprint_bytes=0)


class TestApplication:
    def make_app(self):
        kernels = [
            compute_kernel(name="k0", instructions=1000),
            compute_kernel(name="k1", instructions=2000),
        ]
        return Application(0, "app", kernels)

    def test_advance_within_kernel(self):
        app = self.make_app()
        assert app.advance(500) == 0
        assert app.progress.kernel_index == 0
        assert app.progress.instructions_done == 500

    def test_advance_crosses_kernel_boundary(self):
        app = self.make_app()
        assert app.advance(1500) == 1
        assert app.progress.kernel_index == 1
        assert app.progress.instructions_done == 500

    def test_relaunch_wraps_around(self):
        app = self.make_app()
        boundaries = app.advance(3500)  # full launch (3000) + 500
        assert boundaries == 2
        assert app.progress.launches == 1
        assert app.progress.kernel_index == 0
        assert app.first_run_instructions == 3000

    def test_reset(self):
        app = self.make_app()
        app.advance(3500)
        app.reset()
        assert app.progress.total_instructions == 0
        assert app.first_run_instructions is None

    def test_clone_has_fresh_state(self):
        app = self.make_app()
        app.advance(100)
        twin = app.clone(app_id=7)
        assert twin.app_id == 7
        assert twin.progress.total_instructions == 0

    def test_footprint_is_max_over_kernels(self):
        app = Application(0, "a", [
            compute_kernel(name="small", footprint_bytes=10),
            compute_kernel(name="big", footprint_bytes=100),
        ])
        assert app.footprint_bytes == 100

    def test_empty_kernel_list_rejected(self):
        with pytest.raises(ConfigError):
            Application(0, "empty", [])


class TestComputeBoundScaling:
    """Figure 2 shapes: compute-bound kernels scale with SMs, flat in MCs."""

    def test_linear_in_sms_at_16_channels(self, model):
        k = compute_kernel()
        ipcs = [model.throughput(k, s, 16).ipc for s in (20, 40, 60, 80)]
        assert ipcs[1] == pytest.approx(2 * ipcs[0])
        assert ipcs[3] == pytest.approx(4 * ipcs[0])

    def test_flat_in_channels_above_knee(self, model):
        k = compute_kernel()
        at16 = model.throughput(k, 40, 16).ipc
        at32 = model.throughput(k, 40, 32).ipc
        assert at32 == pytest.approx(at16)

    def test_drops_at_very_few_channels(self, model):
        # Even a compute-bound kernel collapses when the supply knee is
        # crossed (Figure 2a's left edge).
        k = compute_kernel(apki_llc=30.0)
        at16 = model.throughput(k, 40, 16).ipc
        at1 = model.throughput(k, 40, 1).ipc
        assert at1 < at16

    def test_classified_compute_bound(self, model):
        t = model.throughput(compute_kernel(), 40, 16)
        assert not t.memory_bound
        assert t.demand_supply_ratio < 1.0


class TestMemoryBoundScaling:
    """Figure 3 shapes: memory-bound kernels scale with MCs, flat in SMs."""

    def test_linear_in_channels_with_enough_sms(self, model):
        k = memory_kernel()
        ipcs = [model.throughput(k, 40, m).ipc for m in (4, 8, 16)]
        assert ipcs[1] == pytest.approx(2 * ipcs[0], rel=0.05)
        assert ipcs[2] == pytest.approx(4 * ipcs[0], rel=0.05)

    def test_flat_in_sms_above_saturation(self, model):
        k = memory_kernel()
        at40 = model.throughput(k, 40, 16).ipc
        at80 = model.throughput(k, 80, 16).ipc
        assert at80 == pytest.approx(at40)

    def test_declines_when_sms_cannot_saturate(self, model):
        # Figure 3b: performance decreases once too few SMs remain.
        k = memory_kernel()
        at40 = model.throughput(k, 40, 16).ipc
        at8 = model.throughput(k, 8, 16).ipc
        assert at8 < at40

    def test_classified_memory_bound(self, model):
        t = model.throughput(memory_kernel(), 40, 16)
        assert t.memory_bound
        assert t.demand_supply_ratio > 1.0

    def test_saturation_knee_in_channels(self, model):
        # With only 20 SMs the channel scaling turns sub-linear well
        # before 32 channels (Figure 3a "increases slowly"): the last 8
        # channels buy much less than proportional.
        k = memory_kernel()
        at8 = model.throughput(k, 20, 8).ipc
        at16 = model.throughput(k, 20, 16).ipc
        at24 = model.throughput(k, 20, 24).ipc
        at32 = model.throughput(k, 20, 32).ipc
        early_slope = (at16 - at8) / 8
        late_slope = (at32 - at24) / 8
        assert late_slope < 0.75 * early_slope


class TestModelEdges:
    def test_zero_sms_zero_ipc(self, model):
        assert model.throughput(memory_kernel(), 0, 16).ipc == 0.0

    def test_zero_channels_zero_ipc_for_memory_user(self, model):
        assert model.throughput(memory_kernel(), 40, 0).ipc == 0.0

    def test_negative_slice_rejected(self, model):
        with pytest.raises(ConfigError):
            model.throughput(memory_kernel(), -1, 16)

    def test_normalized_progress_full_gpu_is_one(self, model):
        assert model.normalized_progress(compute_kernel(), 80, 32) == pytest.approx(1.0)

    def test_normalized_progress_half_gpu_compute_bound(self, model):
        np = model.normalized_progress(compute_kernel(), 40, 16)
        assert np == pytest.approx(0.5)

    def test_dram_traffic_reflects_misses(self, model):
        t = model.throughput(memory_kernel(), 40, 16)
        expected = t.ipc * (6.4 / 1000) * 128 * (1 - t.llc_hit_rate)
        assert t.dram_bytes_per_cycle == pytest.approx(expected)
