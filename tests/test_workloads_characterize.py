"""Tests for trace-based kernel characterization
(repro.workloads.characterize)."""

import pytest

from repro.errors import ConfigError
from repro.gpu import GPUConfig, PerformanceModel
from repro.workloads import hotset_trace, streaming_trace
from repro.workloads.characterize import TraceCharacterizer


@pytest.fixture
def characterizer():
    return TraceCharacterizer(GPUConfig())


class TestMeasure:
    def test_streaming_trace_never_hits(self, characterizer):
        profile = characterizer.measure(streaming_trace(5000),
                                        instructions=1_000_000)
        assert profile.llc_hit_rate == 0.0
        assert profile.apki_llc == pytest.approx(5.0)
        assert profile.footprint_bytes == 5000 * 128

    def test_hot_set_hits(self, characterizer):
        trace = hotset_trace(20_000, hot_bytes=256 * 1024,
                             cold_bytes=64 * 1024 * 1024, hot_fraction=0.95)
        profile = characterizer.measure(trace, instructions=4_000_000)
        assert profile.llc_hit_rate > 0.5

    def test_footprint_counts_unique_lines(self, characterizer):
        trace = [0, 0, 128, 128, 256]
        profile = characterizer.measure(trace, instructions=1000)
        assert profile.footprint_bytes == 3 * 128

    def test_invalid_instructions(self, characterizer):
        with pytest.raises(ConfigError):
            characterizer.measure([0], instructions=0)


class TestCapacityCurve:
    def test_curve_monotone(self, characterizer):
        trace = hotset_trace(30_000, hot_bytes=2 * 1024 * 1024,
                             cold_bytes=32 * 1024 * 1024, hot_fraction=0.9)
        curve = characterizer.capacity_curve(trace)
        rates = [curve.hit_rate(c) for c in (5e5, 1e6, 3e6, 6e6)]
        assert rates == sorted(rates)

    def test_empty_trace_rejected(self, characterizer):
        with pytest.raises(ConfigError):
            characterizer.capacity_curve([])


class TestKernelFromTrace:
    def test_streaming_trace_yields_memory_bound_kernel(self, characterizer):
        kernel = characterizer.kernel_from_trace(
            "stream", streaming_trace(8000), instructions=1_000_000
        )
        t = PerformanceModel(GPUConfig()).throughput(kernel, 40, 16)
        assert t.demand_supply_ratio > 1.0

    def test_sparse_trace_yields_compute_bound_kernel(self, characterizer):
        # Few accesses per kilo-instruction on a tiny hot set.
        trace = [(i % 64) * 128 for i in range(500)]
        kernel = characterizer.kernel_from_trace(
            "compute", trace, instructions=5_000_000
        )
        t = PerformanceModel(GPUConfig()).throughput(kernel, 40, 16)
        assert t.demand_supply_ratio < 1.0

    def test_characterized_kernel_runs_end_to_end(self, characterizer):
        """A trace-derived kernel plugs straight into the system sim."""
        from repro import Application, MultitaskSystem, build_application
        from repro.policies import BPPolicy, UGPUPolicy

        kernel = characterizer.kernel_from_trace(
            "stream", streaming_trace(8000), instructions=6_000_000_000
        )
        custom = Application(0, "custom", [kernel])
        partner = build_application("DXTC", app_id=1)
        bp = MultitaskSystem(
            [custom, partner], policy=BPPolicy()).run(10_000_000)
        ugpu = MultitaskSystem(
            [custom.clone(0), partner.clone(1)], policy=UGPUPolicy()
        ).run(10_000_000)
        assert ugpu.stp >= bp.stp

    def test_ipc_derived_from_warp_model(self, characterizer):
        kernel = characterizer.kernel_from_trace(
            "k", streaming_trace(1000), instructions=1_000_000
        )
        assert 1.0 <= kernel.ipc_per_sm <= 64.0
