"""Tests for the command-level HBM power model (repro.hbm.power)."""

import pytest

from repro.errors import ConfigError
from repro.hbm import HBMConfig, HBMSystem
from repro.hbm.power import HBMPowerModel
from repro.hbm.trace import TraceReplayer, sequential_trace
from repro.pagemove import InterleavedPageMapping, PageMoveAddressMapping
from repro import MigrationEngine
from repro.vm import GPUDriver


@pytest.fixture
def model():
    return HBMPowerModel(HBMConfig())


class TestAccounting:
    def test_idle_run_is_background_only(self, model):
        e = model.energy({}, mem_cycles=440_000_000)  # one second
        assert e.dynamic == 0.0
        # 32 channels x 110 mW x 1 s = 3.52 J.
        assert e.background == pytest.approx(3.52)

    def test_read_energy_per_bit(self, model):
        e = model.energy({"reads": 1000}, mem_cycles=0)
        assert e.read == pytest.approx(1000 * 1024 * 4.0e-12)

    def test_activation_energy(self, model):
        e = model.energy({"activates": 500}, mem_cycles=0)
        assert e.activation == pytest.approx(500 * 2.0e-9)

    def test_migration_counted_once_per_copy(self, model):
        # The stack records 2 'migrations' per copy (src + dst views).
        one_copy = model.energy({"migrations": 2}, mem_cycles=0)
        assert one_copy.migration == pytest.approx(
            1024 * (2.5 + 4.0) * 1e-12
        )

    def test_fractions_sum_to_one(self, model):
        e = model.energy({"reads": 10, "writes": 5, "activates": 3,
                          "migrations": 4}, mem_cycles=1000)
        total = sum(e.fraction(p) for p in
                    ("activation", "read", "write", "migration", "background"))
        assert total == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            HBMPowerModel(HBMConfig(), activate_nj=-1)
        with pytest.raises(ConfigError):
            HBMPowerModel().energy({}, mem_cycles=-1)


class TestPageMoveEnergyClaim:
    def test_migration_cheaper_than_read_write_per_byte(self, model):
        """PageMove's intra-stack copy skips the PHY round trip, so a
        migrated byte costs less than a read-out/write-back byte."""
        assert model.migration_vs_readwrite_ratio() < 1.0

    def test_costing_a_real_command_level_run(self, model):
        """End to end: replay a trace + a page migration, then cost the
        run from the recorded statistics."""
        mapping = PageMoveAddressMapping()
        replayer = TraceReplayer()
        replayer.replay(sequential_trace(128))
        engine = MigrationEngine(
            GPUDriver(pages_per_channel=16,
                      mapping=InterleavedPageMapping(mapping)),
            mapping=mapping,
        )
        done = engine.execute_page_on_hardware(replayer.system, src_rpn=0,
                                               dst_channel=1, now=10_000)
        stats = replayer.system.stats()
        energy = model.energy(stats, mem_cycles=done)
        assert stats["migrations_completed"] == 32
        assert energy.read > 0
        assert energy.migration > 0
        assert energy.total > energy.dynamic  # background accrued
