"""Unit tests for the TLB model (repro.vm.tlb)."""

import pytest

from repro.errors import ConfigError
from repro.vm import TLB


class TestGeometry:
    def test_l1_factory_matches_table1(self):
        tlb = TLB.l1()
        assert tlb.entries == 64
        assert tlb.sets == 1          # fully associative
        assert tlb.ways == 64

    def test_l2_factory_matches_table1(self):
        tlb = TLB.l2()
        assert tlb.entries == 512
        assert tlb.ways == 16

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ConfigError):
            TLB(entries=0)
        with pytest.raises(ConfigError):
            TLB(entries=10, sets=3)
        with pytest.raises(ConfigError):
            TLB(entries=16, sets=2, ways=4)


class TestHitMiss:
    def test_miss_then_hit(self):
        tlb = TLB.l1()
        assert tlb.lookup(0, 5) is None
        tlb.fill(0, 5, rpn=50, channel=2)
        entry = tlb.lookup(0, 5)
        assert entry.rpn == 50
        assert entry.channel == 2
        assert tlb.stats.hits == 1
        assert tlb.stats.misses == 1
        assert tlb.stats.hit_rate == 0.5

    def test_apps_do_not_alias(self):
        tlb = TLB.l1()
        tlb.fill(0, 5, rpn=50, channel=0)
        assert tlb.lookup(1, 5) is None

    def test_peek_does_not_disturb_stats(self):
        tlb = TLB.l1()
        tlb.fill(0, 5, rpn=50, channel=0)
        assert tlb.peek(0, 5) is not None
        assert tlb.stats.accesses == 0


class TestLRUReplacement:
    def test_lru_victim_selected(self):
        tlb = TLB(entries=4, sets=1)
        for vpn in range(4):
            tlb.fill(0, vpn, rpn=vpn, channel=0)
        tlb.lookup(0, 0)  # make vpn 0 most recent
        victim = tlb.fill(0, 99, rpn=99, channel=0)
        assert victim.vpn == 1  # vpn 1 is now least recent
        assert tlb.lookup(0, 0) is not None
        assert tlb.lookup(0, 1) is None

    def test_refill_of_present_key_does_not_evict(self):
        tlb = TLB(entries=2, sets=1)
        tlb.fill(0, 1, rpn=1, channel=0)
        tlb.fill(0, 2, rpn=2, channel=0)
        victim = tlb.fill(0, 1, rpn=10, channel=1)
        assert victim is None
        assert tlb.lookup(0, 1).rpn == 10
        assert tlb.occupancy() == 2

    def test_eviction_counted(self):
        tlb = TLB(entries=1, sets=1)
        tlb.fill(0, 1, rpn=1, channel=0)
        tlb.fill(0, 2, rpn=2, channel=0)
        assert tlb.stats.evictions == 1


class TestInvalidation:
    def test_invalidate_single(self):
        tlb = TLB.l2()
        tlb.fill(0, 5, rpn=50, channel=0)
        assert tlb.invalidate(0, 5)
        assert not tlb.invalidate(0, 5)
        assert tlb.lookup(0, 5) is None

    def test_flush_all(self):
        tlb = TLB.l1()
        for vpn in range(10):
            tlb.fill(0, vpn, rpn=vpn, channel=0)
        assert tlb.flush() == 10
        assert tlb.occupancy() == 0
        assert tlb.stats.flushes == 1

    def test_flush_single_app(self):
        tlb = TLB.l2()
        tlb.fill(0, 1, rpn=1, channel=0)
        tlb.fill(1, 2, rpn=2, channel=0)
        assert tlb.flush(app_id=0) == 1
        assert tlb.peek(1, 2) is not None

    def test_entries_in_channels(self):
        tlb = TLB.l2()
        tlb.fill(0, 1, rpn=1, channel=4)
        tlb.fill(0, 2, rpn=2, channel=5)
        tlb.fill(0, 3, rpn=3, channel=6)
        tlb.fill(1, 4, rpn=4, channel=4)
        found = tlb.entries_in_channels(0, {4, 5})
        assert sorted(e.vpn for e in found) == [1, 2]
