"""Cross-module integration: profiler -> partitioner -> migration engine
-> MMU, wired over the real driver/page-table/TLB state at small scale.

The epoch-level system simulations cost migrations analytically; these
tests verify the *stateful* path agrees: a partitioning decision can be
executed move-for-move on the virtual memory substrate, with every
coherence invariant holding afterwards.
"""

import pytest

from repro.core import (
    DemandAwarePartitioner,
    EpochProfiler,
    PartitionState,
)
from repro.core.profiler import AppProfile
from repro.errors import MigrationError
from repro.gpu import GPUConfig, PerformanceModel
from repro.pagemove import (
    InterleavedPageMapping,
    MigrationEngine,
    PageMoveAddressMapping,
)
from repro.vm import FaultKind, GPUDriver
from repro.vm.mmu import MMU
from repro.workloads import build_application

CONFIG = GPUConfig()


def profile_from_kernel(app_id, kernel):
    profiler = EpochProfiler(CONFIG)
    return AppProfile(
        app_id=app_id,
        ipc_max_per_sm=kernel.ipc_per_sm,
        apki_llc=kernel.apki_llc,
        llc_hit_rate=kernel.llc_hit_rate,
        bw_demand_per_sm=profiler.bw_demand_per_sm(
            kernel.ipc_per_sm, kernel.apki_llc
        ),
        bw_supply_per_mc=profiler.bw_supply_per_mc(kernel.llc_hit_rate),
        footprint_bytes=kernel.footprint_bytes,
    )


@pytest.fixture
def stack():
    """Driver with two registered apps on the even channel split, plus a
    migration engine and MMU over the same state."""
    mapping = PageMoveAddressMapping()
    driver = GPUDriver(pages_per_channel=128,
                       mapping=InterleavedPageMapping(mapping))
    driver.register_app(0, channels=[0, 1, 2, 3])
    driver.register_app(1, channels=[4, 5, 6, 7])
    # One set of TLBs and one channel-status register serve both the bulk
    # migration path (engine) and the demand path (MMU) — exactly the
    # hardware arrangement of Figure 9.
    mmu = MMU(driver, num_sms=4)
    engine = MigrationEngine(
        driver,
        mapping=mapping,
        l2_tlb=mmu.l2_tlb,
        l1_tlbs=mmu.l1_tlbs,
        registry=mmu.registry,
    )
    return driver, engine, mmu


def touch(mmu, app_id, vpns):
    for vpn in vpns:
        mmu.translate(vpn % 4, app_id, vpn)


class TestDecisionToExecution:
    def test_partition_decision_executes_on_real_state(self, stack):
        driver, engine, mmu = stack
        # Both apps populate their halves.
        touch(mmu, 0, range(40))        # PVC-like, memory-bound
        touch(mmu, 1, range(40))        # DXTC-like, compute-bound

        pvc = build_application("PVC").kernels[0]
        dxtc = build_application("DXTC").kernels[0]
        profiles = {0: profile_from_kernel(0, pvc),
                    1: profile_from_kernel(1, dxtc)}
        state = PartitionState.even([0, 1])
        decision = DemandAwarePartitioner(state, gpu_config=CONFIG).compute(profiles)

        # The memory-bound app gained channels; translate the decision's
        # channel counts into concrete channel-group sets: app 1 (donor)
        # keeps its lowest-numbered groups, app 0 takes the rest.
        mc0 = decision.allocations[0].channels // 4  # groups of 4 channels
        assert mc0 > 4
        app1_groups = list(range(4, 4 + (8 - mc0)))
        app0_groups = [0, 1, 2, 3] + [g for g in range(4, 8) if g not in app1_groups]

        report1 = engine.execute(engine.plan_channel_reallocation(1, app1_groups))
        report0 = engine.execute(engine.plan_channel_reallocation(0, app0_groups))

        # The donor vacated its lost groups...
        assert report1.pages_moved > 0
        lost = set(range(4, 8)) - set(app1_groups)
        for group in lost:
            assert driver.resident_pages(1, group) == 0
        # ...and every page is accounted for.
        assert driver.resident_pages(0) == 40
        assert driver.resident_pages(1) == 40

    def test_translations_coherent_after_bulk_migration(self, stack):
        driver, engine, mmu = stack
        touch(mmu, 1, range(24))
        engine.execute(engine.plan_channel_reallocation(1, [4, 5]))
        # The engine invalidated its own L2 entries; the MMU's L1s must be
        # flushed by the reallocation protocol before reuse.
        mmu.begin_reallocation(1, [4, 5])
        touch(mmu, 1, range(24))
        mmu.assert_coherent(1)
        counts = driver.page_tables[1].channel_page_counts()
        assert set(counts) <= {4, 5}

    def test_capacity_validated_before_any_move(self, stack):
        driver, engine, mmu = stack
        # Fill channels 0-3 nearly to the brim for app 0.
        for vpn in range(500):
            driver.handle_fault(FaultKind.DEMAND, 0, vpn)
        # Shrinking to one channel cannot fit 500 pages in 128 frames.
        plan = engine.plan_channel_reallocation(0, [0])
        before = driver.page_tables[0].channel_page_counts()
        with pytest.raises(MigrationError):
            engine.execute(plan)
        # Nothing moved: the rejection happened before execution.
        assert driver.page_tables[0].channel_page_counts() == before

    def test_engine_and_mmu_share_registry(self, stack):
        driver, engine, mmu = stack
        touch(mmu, 0, range(8))
        plan = engine.plan_channel_reallocation(0, [0, 1])
        engine.execute(plan, include_lazy=False)
        # Any page the bulk path missed migrates via the MMU fault path
        # using the same channel-status register.
        touch(mmu, 0, range(8))
        mmu.assert_coherent(0)
