"""Unit tests for migration planning/execution (repro.pagemove.engine)
and the cost model (repro.pagemove.cost)."""

import pytest

from repro.errors import ConfigError, MigrationError
from repro.hbm import HBMConfig, HBMSystem
from repro.pagemove import (
    InterleavedPageMapping,
    MigrationCostModel,
    MigrationEngine,
    MigrationMode,
    PageMoveAddressMapping,
)
from repro.vm import FaultKind, GPUDriver, TLB


@pytest.fixture
def mapping():
    return PageMoveAddressMapping()


@pytest.fixture
def driver(mapping):
    return GPUDriver(pages_per_channel=64, mapping=InterleavedPageMapping(mapping))


@pytest.fixture
def engine(driver, mapping):
    return MigrationEngine(
        driver,
        mapping=mapping,
        l1_tlbs=[TLB.l1(), TLB.l1()],
    )


def populate(driver, app_id, channels, pages_per_channel):
    driver.register_app(app_id, channels)
    vpn = 0
    for channel in channels:
        for _ in range(pages_per_channel):
            driver.handle_fault(FaultKind.DEMAND, app_id, vpn, target_channel=channel)
            vpn += 1


class TestCostModel:
    def test_ppmm_page_cost_is_80_gpu_cycles(self, mapping):
        model = MigrationCostModel(mapping=mapping)
        assert model.page_cycles(MigrationMode.PPMM) == pytest.approx(80.0)

    def test_mode_ordering(self, mapping):
        """PPMM < SOFTWARE < TRADITIONAL per-page cost."""
        model = MigrationCostModel(mapping=mapping)
        ppmm = model.page_cycles(MigrationMode.PPMM)
        soft = model.page_cycles(MigrationMode.SOFTWARE)
        trad = model.page_cycles(MigrationMode.TRADITIONAL)
        assert ppmm < soft < trad

    def test_commands_per_page(self, mapping):
        model = MigrationCostModel(mapping=mapping)
        assert model.commands_per_page(MigrationMode.PPMM) == 32
        assert model.commands_per_page(MigrationMode.SOFTWARE) == 64  # RD+WR

    def test_charge_scales_linearly(self, mapping):
        model = MigrationCostModel(mapping=mapping)
        c1 = model.charge(10, MigrationMode.PPMM)
        c2 = model.charge(20, MigrationMode.PPMM)
        marginal = c2.window_cycles - c1.window_cycles
        assert marginal == pytest.approx(10 * model.page_cycles(MigrationMode.PPMM))
        assert c2.bytes_moved == 20 * 4096

    def test_zero_pages_free(self, mapping):
        model = MigrationCostModel(mapping=mapping)
        charge = model.charge(0, MigrationMode.TRADITIONAL)
        assert charge.window_cycles == 0
        assert charge.commands == 0

    def test_negative_pages_rejected(self, mapping):
        with pytest.raises(ConfigError):
            MigrationCostModel(mapping=mapping).charge(-1, MigrationMode.PPMM)

    def test_penalties_by_mode(self, mapping):
        model = MigrationCostModel(mapping=mapping)
        assert model.charge(1, MigrationMode.PPMM).channel_bw_penalty < 0.5
        assert model.charge(1, MigrationMode.SOFTWARE).channel_bw_penalty == 1.0
        assert model.charge(1, MigrationMode.SOFTWARE).global_penalty == 0.0
        assert model.charge(1, MigrationMode.TRADITIONAL).global_penalty > 0.0


class TestPlanning:
    def test_eager_plan_vacates_lost_channels(self, engine, driver):
        populate(driver, 0, [0, 1, 2, 3], pages_per_channel=4)
        plan = engine.plan_channel_reallocation(0, new_channels=[0, 1])
        assert plan.lost_channels == frozenset({2, 3})
        assert len(plan.eager) == 8  # 4 pages in each lost channel
        assert all(m.dst_channel in {0, 1} for m in plan.eager)
        assert plan.lazy == []

    def test_lazy_plan_fills_gained_channels(self, engine, driver):
        populate(driver, 0, [0, 1], pages_per_channel=8)
        plan = engine.plan_channel_reallocation(0, new_channels=[0, 1, 2, 3])
        assert plan.gained_channels == frozenset({2, 3})
        assert plan.eager == []
        # 16 pages over 4 channels -> target 4 per channel -> 8 move.
        assert len(plan.lazy) == 8
        assert all(m.dst_channel in {2, 3} for m in plan.lazy)

    def test_rebalance_cap_bounds_lazy_batch(self, engine, driver):
        populate(driver, 0, [0, 1], pages_per_channel=8)
        plan = engine.plan_channel_reallocation(0, [0, 1, 2, 3], rebalance_cap=3)
        assert len(plan.lazy) == 3

    def test_empty_channel_set_rejected(self, engine, driver):
        populate(driver, 0, [0], pages_per_channel=1)
        with pytest.raises(MigrationError):
            engine.plan_channel_reallocation(0, [])


class TestExecution:
    def test_execute_moves_pages_and_updates_state(self, engine, driver):
        populate(driver, 0, [0, 1, 2, 3], pages_per_channel=4)
        plan = engine.plan_channel_reallocation(0, new_channels=[0, 1])
        report = engine.execute(plan)
        assert report.pages_moved == 8
        table = driver.page_tables[0]
        assert table.channel_page_counts() == {0: 8, 1: 8}
        assert driver.assigned_channels(0) == {0, 1}
        # Lost channels' frames all returned to the free lists.
        assert driver.free_pages(2) == 64
        assert driver.free_pages(3) == 64

    def test_execute_flushes_l1_tlbs(self, engine, driver):
        populate(driver, 0, [0, 1], pages_per_channel=2)
        for tlb in engine.l1_tlbs:
            tlb.fill(0, 1, rpn=1, channel=0)
        plan = engine.plan_channel_reallocation(0, [0])
        report = engine.execute(plan)
        assert report.l1_entries_flushed == 2
        assert all(tlb.occupancy() == 0 for tlb in engine.l1_tlbs)

    def test_execute_invalidates_l2_entries(self, engine, driver):
        populate(driver, 0, [0, 1], pages_per_channel=2)
        # Pages 2,3 live in channel 1 (vpns 2 and 3 by construction).
        entry = driver.page_tables[0].lookup(2)
        engine.l2_tlb.fill(0, 2, rpn=entry.rpn, channel=entry.channel)
        plan = engine.plan_channel_reallocation(0, [0])
        report = engine.execute(plan)
        assert report.l2_entries_invalidated == 1
        assert engine.l2_tlb.peek(0, 2) is None

    def test_registry_programmed_for_loser(self, engine, driver):
        populate(driver, 0, [0, 1, 2, 3], pages_per_channel=20)
        plan = engine.plan_channel_reallocation(0, [0, 1])
        # Monkeypatch is_balanced to keep the register live for inspection.
        engine.execute(plan, include_lazy=False)
        # After a big eager move the counts may balance; just assert the
        # report captured the direction via the plan.
        assert plan.lost_channels == frozenset({2, 3})

    def test_stale_plan_rejected(self, engine, driver):
        populate(driver, 0, [0, 1], pages_per_channel=2)
        plan = engine.plan_channel_reallocation(0, [0])
        engine.execute(plan)
        with pytest.raises(MigrationError):
            engine.execute(plan)  # pages already moved

    def test_window_cycles_only_counts_eager(self, engine, driver):
        populate(driver, 0, [0, 1], pages_per_channel=8)
        plan = engine.plan_channel_reallocation(0, [0, 1, 2, 3])
        report = engine.execute(plan)
        assert report.window_cycles == 0.0  # nothing eager
        assert report.lazy_charge.window_cycles > 0


class TestHardwareValidation:
    def test_page_migration_on_command_level_model(self, mapping):
        """One page = 32 MIGRATIONs; 4 bank groups in parallel."""
        system = HBMSystem()
        engine = MigrationEngine(
            GPUDriver(pages_per_channel=16, mapping=InterleavedPageMapping(mapping)),
            mapping=mapping,
        )
        done = engine.execute_page_on_hardware(system, src_rpn=0, dst_channel=1, now=0)
        stats = system.stats()
        assert stats["migrations_completed"] == 32
        # Ideal serialized data time: 2 x tMIG = 100 memory clocks; with
        # activations and command-bus skew the total stays well under the
        # 32 x tMIG = 1600 clocks a serial design would need.
        assert done < 8 * system.config.timing.tMIG

    def test_same_channel_hardware_migration_rejected(self, mapping):
        system = HBMSystem()
        engine = MigrationEngine(
            GPUDriver(pages_per_channel=16, mapping=InterleavedPageMapping(mapping)),
            mapping=mapping,
        )
        with pytest.raises(MigrationError):
            engine.execute_page_on_hardware(system, src_rpn=1, dst_channel=1)


class TestReallocationCoherence:
    """Regression tests for the migration-coherence fixes: the balance-
    clear tolerance, lazy need against pre-resident pages, and the
    register's single direction bit on mixed lose+gain plans."""

    def test_register_stays_live_while_unbalanced(self, engine, driver):
        # 2 pages each in channels 0 and 1; losing channel 1 round-robins
        # them over kept [0, 2], ending {0: 3, 2: 1} -- a spread of 2.
        driver.register_app(0, [0, 1, 2])
        for vpn in range(2):
            driver.handle_fault(FaultKind.DEMAND, 0, vpn, target_channel=0)
        for vpn in range(2, 4):
            driver.handle_fault(FaultKind.DEMAND, 0, vpn, target_channel=1)
        plan = engine.plan_channel_reallocation(0, new_channels=[0, 2])
        engine.execute(plan)
        assert driver.page_tables[0].channel_page_counts() == {0: 3, 2: 1}
        # Spread 2 > tolerance 1: rebalancing is still in flight, so the
        # channel-status register must keep routing faults.  (A tolerance
        # of len(new_channels) == 2 would have cleared it here.)
        assert engine.registry.is_tracking(0)
        assert not driver.is_balanced(0)

    def test_lazy_need_accounts_for_preresident_pages(self, engine, driver):
        # Channel 2 already holds 4 pages from an earlier ownership; a
        # back-to-back reallocation that re-grants it must only top it up
        # to the balance target, never ship the full target into it.
        driver.register_app(0, [0, 1, 2])
        vpn = 0
        for channel, pages in ((0, 10), (1, 10), (2, 4)):
            for _ in range(pages):
                driver.handle_fault(FaultKind.DEMAND, 0, vpn, target_channel=channel)
                vpn += 1
        driver.reassign_channels(0, [0, 1])  # channel 2 taken away, pages stay
        plan = engine.plan_channel_reallocation(0, new_channels=[0, 1, 2, 3])
        # 24 resident pages over 4 channels: target 6.  Channel 2 needs
        # 2 (6 - 4 pre-resident), channel 3 needs 6.
        moves_to = {}
        for move in plan.lazy:
            moves_to[move.dst_channel] = moves_to.get(move.dst_channel, 0) + 1
        assert moves_to == {2: 2, 3: 6}
        engine.execute(plan)
        assert driver.page_tables[0].channel_page_counts() == {
            0: 6, 1: 6, 2: 6, 3: 6,
        }
        assert driver.is_balanced(0)
        assert not engine.registry.is_tracking(0)

    def test_mixed_plan_programs_lost_direction(self, engine, driver):
        from repro.vm import ReallocationDirection

        # {0, 1} -> {1, 2} both loses channel 0 and gains channel 2.  The
        # register's status bit encodes one direction; LOST must win so
        # translations landing in the vacated channel 0 fault immediately.
        driver.register_app(0, [0, 1])
        for vpn in range(4):
            driver.handle_fault(FaultKind.DEMAND, 0, vpn, target_channel=0)
        plan = engine.plan_channel_reallocation(0, new_channels=[1, 2])
        assert plan.lost_channels == frozenset({0})
        assert plan.gained_channels == frozenset({2})
        engine.execute(plan)
        # All 4 pages were vacated eagerly into the sole kept channel, so
        # the app is unbalanced ({1: 4, 2: 0}) and the register is live.
        assert engine.registry.direction(0) is ReallocationDirection.LOST
        # LOST marks the *kept* set: anything outside it needs migration.
        assert engine.registry.needs_migration(0, 0)
        assert not engine.registry.needs_migration(0, 1)
        assert not engine.registry.needs_migration(0, 2)
