"""Unit tests for GPU slices and partition state (repro.core.slices)."""

import pytest

from repro.core import GPUSlice, PartitionState, ResourceAllocation
from repro.errors import AllocationError


class TestResourceAllocation:
    def test_move(self):
        alloc = ResourceAllocation(40, 16)
        moved = alloc.move(d_sms=4, d_channels=-4)
        assert (moved.sms, moved.channels) == (44, 12)
        assert (alloc.sms, alloc.channels) == (40, 16)  # immutable

    def test_negative_rejected(self):
        with pytest.raises(AllocationError):
            ResourceAllocation(-1, 16)
        with pytest.raises(AllocationError):
            ResourceAllocation(40, 16).move(d_channels=-17)


class TestGPUSlice:
    def test_balanced_detection(self):
        assert GPUSlice(0, ResourceAllocation(40, 16)).balanced
        assert GPUSlice(0, ResourceAllocation(80, 32)).balanced
        assert not GPUSlice(0, ResourceAllocation(60, 8)).balanced


class TestPartitionState:
    def test_even_partition_two_apps(self):
        state = PartitionState.even([0, 1])
        assert state.allocation(0) == ResourceAllocation(40, 16)
        assert state.allocation(1) == ResourceAllocation(40, 16)
        assert state.free_sms == 0
        assert state.free_channels == 0

    def test_even_partition_four_apps(self):
        state = PartitionState.even([0, 1, 2, 3])
        assert state.allocation(2) == ResourceAllocation(20, 8)

    def test_even_partition_rounds_channels_to_group(self):
        # Three apps: 32/3 = 10 -> rounded down to 8 (multiple of 4).
        state = PartitionState.even([0, 1, 2])
        assert state.allocation(0).channels == 8
        assert state.free_channels == 8

    def test_too_many_apps_rejected(self):
        with pytest.raises(AllocationError):
            PartitionState.even(list(range(16)))

    def test_budget_enforced(self):
        state = PartitionState.even([0, 1])
        with pytest.raises(AllocationError):
            state.assign(0, ResourceAllocation(44, 16))  # 44+40 > 80

    def test_channel_group_alignment_enforced(self):
        state = PartitionState()
        with pytest.raises(AllocationError):
            state.assign(0, ResourceAllocation(40, 14))

    def test_minimums_enforced(self):
        state = PartitionState()
        with pytest.raises(AllocationError):
            state.assign(0, ResourceAllocation(2, 8))
        with pytest.raises(AllocationError):
            state.assign(0, ResourceAllocation(8, 0))

    def test_assign_all_atomic(self):
        state = PartitionState.even([0, 1])
        new = {
            0: ResourceAllocation(60, 24),
            1: ResourceAllocation(20, 8),
        }
        state.assign_all(new)
        assert state.allocations() == new

    def test_assign_all_rejects_over_budget(self):
        state = PartitionState()
        with pytest.raises(AllocationError):
            state.assign_all({
                0: ResourceAllocation(60, 24),
                1: ResourceAllocation(40, 8),
            })

    def test_unknown_app_lookup(self):
        with pytest.raises(AllocationError):
            PartitionState().allocation(7)

    def test_slices_view(self):
        state = PartitionState.even([0, 1])
        slices = state.slices()
        assert slices[0].balanced and slices[1].balanced

    def test_reassign_same_app_replaces(self):
        state = PartitionState.even([0, 1])
        # Shrink one slice first, then grow the other into the freed space.
        state.assign(1, ResourceAllocation(36, 12))
        state.assign(0, ResourceAllocation(44, 20))
        assert state.used_sms == 80
        assert state.used_channels == 32

    def test_transiently_over_budget_single_assign_rejected(self):
        # Growing a slice before its donor shrank must fail: assign() is
        # budget-checked against the *current* partition.
        state = PartitionState.even([0, 1])
        with pytest.raises(AllocationError):
            state.assign(0, ResourceAllocation(44, 20))
        # The atomic path handles the same exchange fine.
        state.assign_all({
            0: ResourceAllocation(44, 20),
            1: ResourceAllocation(36, 12),
        })

    def test_invalid_geometry(self):
        with pytest.raises(AllocationError):
            PartitionState(total_channels=30, channel_group=4)
        with pytest.raises(AllocationError):
            PartitionState(min_channels=6, channel_group=4)
