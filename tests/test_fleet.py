"""Tests for the fleet-scale cluster simulator (repro.cluster.fleet),
its shard physics (repro.cluster.shard), the placement-policy zoo
(repro.cluster.placement), and the arrivals empty-catalog regression."""

import pytest

from repro.cluster import (
    FleetShardJob,
    FleetShardResult,
    FleetSimulator,
    NodeShardState,
    NodeView,
    PlacementPolicy,
    TenantState,
    choose_node,
)
from repro.cluster.shard import apportion, slice_node
from repro.errors import ConfigError, SimulationError
from repro.exec import ResultCache, SweepExecutor
from repro.gpu import GPUConfig, PerformanceModel
from repro.telemetry import MetricsRegistry
from repro.telemetry.names import FLEET_JOBS_TOTAL, FLEET_ROUNDS_TOTAL
from repro.workloads import build_application, poisson_arrivals

#: Small kernels so arriving jobs genuinely depart within test horizons.
IPK = 50_000_000
HORIZON = 30_000_000
ROUND = 2_500_000


def schedule(mean=150_000, horizon=HORIZON, seed=0, **kwargs):
    return poisson_arrivals(mean, horizon, seed=seed,
                            instructions_per_kernel=IPK, **kwargs)


def simulator(nodes=12, placement=PlacementPolicy.LEAST_FRAGMENTED,
              sched=None, **kwargs):
    kwargs.setdefault("round_cycles", ROUND)
    kwargs.setdefault("horizon_cycles", HORIZON)
    kwargs.setdefault("instructions_per_kernel", IPK)
    return FleetSimulator(
        nodes, sched if sched is not None else schedule(), placement,
        **kwargs)


class TestArrivalCatalog:
    def test_empty_catalog_rejected(self):
        """Regression: ``catalog=[]`` used to fall through the falsy
        check and silently widen to the full Table 2 pool."""
        with pytest.raises(ConfigError, match="catalog cannot be empty"):
            poisson_arrivals(1_000_000, 10_000_000, catalog=[])

    def test_none_catalog_uses_full_pool(self):
        names = {e.app.name for e in schedule(mean=100_000)}
        assert len(names) > 5

    def test_explicit_catalog_respected(self):
        names = {e.app.name for e in schedule(catalog=["PVC", "DXTC"])}
        assert names <= {"PVC", "DXTC"}


class TestPlacementZoo:
    def view(self, node_id, free, classes=(), capacity=4):
        return NodeView(node_id=node_id, capacity=capacity, free_slots=free,
                        tenant_classes=tuple(classes))

    def test_parse(self):
        assert PlacementPolicy.parse("frag_aware") is PlacementPolicy.FRAG_AWARE
        assert (PlacementPolicy.parse(PlacementPolicy.CONSOLIDATE)
                is PlacementPolicy.CONSOLIDATE)
        with pytest.raises(ConfigError, match="unknown placement"):
            PlacementPolicy.parse("round_robin")

    def test_full_cluster_returns_none(self):
        views = [self.view(0, 0, [True] * 4), self.view(1, 0, [False] * 4)]
        for policy in PlacementPolicy:
            assert choose_node(policy, views, True) is None

    def test_first_fit_takes_lowest_id(self):
        views = [self.view(2, 4), self.view(0, 1, [True] * 3),
                 self.view(1, 4)]
        assert choose_node(PlacementPolicy.FIRST_FIT, views, True).node_id == 0

    def test_frag_aware_best_fit_avoids_empty_nodes(self):
        """Ting et al.: pack into the fullest open node; opening a fresh
        node is the last resort."""
        views = [self.view(0, 4), self.view(1, 3, [True]),
                 self.view(2, 1, [True] * 3)]
        assert choose_node(PlacementPolicy.FRAG_AWARE, views, False).node_id == 2
        # Only an empty node left -> it is still used.
        assert choose_node(
            PlacementPolicy.FRAG_AWARE, [self.view(5, 4)], False).node_id == 5

    def test_consolidate_prefers_complementary_active_node(self):
        views = [self.view(0, 4), self.view(1, 2, [False, False]),
                 self.view(2, 2, [True, True])]
        # A memory-bound job consolidates onto the compute-bound node.
        assert choose_node(
            PlacementPolicy.CONSOLIDATE, views, True).node_id == 1
        assert choose_node(
            PlacementPolicy.CONSOLIDATE, views, False).node_id == 2

    def test_demand_aware_seeks_opposite_class(self):
        views = [self.view(0, 2, [True, True]), self.view(1, 2, [False, False])]
        assert choose_node(
            PlacementPolicy.DEMAND_AWARE, views, True).node_id == 1


class TestSlicing:
    def test_apportion_conserves_and_floors(self):
        shares = apportion(32, [4.0, 1.0, 1.0], 4)
        assert sum(shares) == 32
        assert min(shares) >= 4
        assert shares[0] > shares[1]

    def test_apportion_infeasible_total(self):
        with pytest.raises(ConfigError, match="cannot apportion"):
            apportion(7, [1.0, 1.0], 4)

    def test_single_tenant_gets_whole_gpu(self):
        config = GPUConfig()
        model = PerformanceModel(config)
        kernels = [build_application("PVC").kernels[0]]
        assert slice_node(model, config, kernels, "ugpu") == [
            (config.num_sms, config.num_channels)
        ]

    def test_mig_slices_are_rigid_and_waste_remainder(self):
        config = GPUConfig()
        model = PerformanceModel(config)
        kernels = [build_application(a).kernels[0]
                   for a in ("PVC", "DXTC", "LBM")]
        slices = slice_node(model, config, kernels, "mig")
        assert slices == [(config.num_sms // 3, config.num_channels // 3)] * 3
        assert sum(s for s, _ in slices) < config.num_sms  # dark silicon

    def test_ugpu_slices_conserve_and_follow_demand(self):
        config = GPUConfig()
        model = PerformanceModel(config)
        pvc = build_application("PVC").kernels[0]      # memory-bound
        dxtc = build_application("DXTC").kernels[0]    # compute-bound
        slices = slice_node(model, config, [pvc, dxtc], "ugpu")
        assert sum(s for s, _ in slices) == config.num_sms
        assert sum(c for _, c in slices) == config.num_channels
        (pvc_sms, pvc_ch), (dxtc_sms, dxtc_ch) = slices
        assert pvc_ch > dxtc_ch      # bandwidth goes to the demander
        assert dxtc_sms > pvc_sms    # compute goes the other way


class TestShardJob:
    def node_state(self, node_id=0, *abbrs, **kwargs):
        tenants = tuple(
            TenantState(job_id=100 + i, abbr=a, instructions_per_kernel=IPK,
                        **kwargs)
            for i, a in enumerate(abbrs)
        )
        return NodeShardState(node_id=node_id, tenants=tenants)

    def test_key_excludes_label(self):
        state = self.node_state(0, "PVC", "DXTC")
        a = FleetShardJob(nodes=(state,), round_cycles=ROUND, label="round3")
        b = FleetShardJob(nodes=(state,), round_cycles=ROUND, label="round9")
        assert a.key() == b.key()
        assert a.key() != FleetShardJob(
            nodes=(state,), round_cycles=ROUND, slicing="mig").key()

    def test_run_is_pure(self):
        job = FleetShardJob(nodes=(self.node_state(0, "PVC", "DXTC"),),
                            round_cycles=ROUND)
        assert job.run() == job.run()

    def test_outcome_independent_of_shard_grouping(self):
        """The byte-identity invariant: a node's physics cannot depend on
        which shard it landed in."""
        a = self.node_state(0, "PVC", "DXTC")
        b = self.node_state(1, "LBM", "CP", "MRI-Q")
        together = FleetShardJob(nodes=(a, b), round_cycles=ROUND).run()
        alone = [FleetShardJob(nodes=(n,), round_cycles=ROUND).run()
                 for n in (a, b)]
        assert together.nodes == (alone[0].nodes[0], alone[1].nodes[0])

    def test_budget_departure_mid_round(self):
        state = NodeShardState(node_id=0, tenants=(
            TenantState(job_id=7, abbr="PVC", instructions_per_kernel=IPK,
                        remaining_budget=1000),
        ))
        outcome = FleetShardJob(
            nodes=(state,), round_cycles=ROUND).run().nodes[0].tenants[0]
        assert outcome.departed
        assert outcome.retired == 1000
        assert outcome.remaining_budget == 0
        assert 0 < outcome.active_cycles < ROUND

    def test_cache_types_are_segregated(self, tmp_path):
        job = FleetShardJob(nodes=(self.node_state(0, "PVC"),),
                            round_cycles=ROUND)
        result = job.run()
        fleet_cache = ResultCache(tmp_path / "fleet",
                                  result_types=(FleetShardResult,))
        fleet_cache.put(job.key(), result)
        assert fleet_cache.get(job.key()) == result
        sweep_cache = ResultCache(tmp_path / "sweeps")
        with pytest.raises(ConfigError, match="cache stores"):
            sweep_cache.put(job.key(), result)
        with pytest.raises(ConfigError, match="result_types"):
            ResultCache(tmp_path / "bad", result_types=())


class TestFleetSimulator:
    def test_deterministic(self):
        a = simulator().run()
        b = simulator().run()
        assert a.summary() == b.summary()
        assert a.runs == b.runs

    def test_serial_vs_sharded_byte_identical(self, tmp_path):
        """The tentpole invariant: sharding node execution over worker
        processes (with a persistent pool and a typed cache) must not
        change a single result."""
        serial = simulator(placement=PlacementPolicy.CONSOLIDATE).run()
        cache = ResultCache(tmp_path / "fleet",
                            result_types=(FleetShardResult,))
        with SweepExecutor(jobs=2, cache=cache) as executor:
            sharded = simulator(placement=PlacementPolicy.CONSOLIDATE,
                                executor=executor).run()
            cached = simulator(placement=PlacementPolicy.CONSOLIDATE,
                               executor=executor).run()
        for result in (sharded, cached):
            assert result.runs == serial.runs
            assert result.summary() == serial.summary()
            assert result.energy == serial.energy
            assert result.migrated_bytes == serial.migrated_bytes
        assert cache.hits > 0  # second run replayed from the cache

    def test_single_use(self):
        sim = simulator(nodes=2)
        sim.run()
        with pytest.raises(SimulationError, match="single-use"):
            sim.run()

    def test_conservation(self):
        """Every arrival is admitted or still waiting; every departure
        was admitted; one IntervalRun per admission."""
        result = simulator(nodes=2).run()   # saturated: queue backs up
        assert result.arrivals == result.admissions + result.waiting_at_horizon
        assert result.departures <= result.admissions
        assert len(result.runs) == result.admissions
        assert result.waiting_at_horizon > 0
        departed = [r for r in result.runs if r.depart_cycle is not None]
        assert len(departed) == result.departures
        assert all(r.instructions > 0 for r in departed)

    def test_ugpu_slicing_beats_mig_on_antt(self):
        """The paper's claim at fleet scale: unbalanced slices turn MIG's
        dark remainder into throughput, so jobs turn around faster."""
        ugpu = simulator(slicing="ugpu").run()
        mig = simulator(slicing="mig").run()
        assert ugpu.antt < mig.antt

    def test_consolidate_reports_energy_and_migrates(self):
        result = simulator(placement=PlacementPolicy.CONSOLIDATE).run()
        assert result.energy is not None
        assert result.energy.total > 0
        assert result.migrations > 0
        assert result.migrated_bytes > 0
        plain = simulator(placement=PlacementPolicy.FIRST_FIT).run()
        assert plain.energy is None
        assert plain.migrations == 0

    def test_metrics_reconcile_with_result(self):
        registry = MetricsRegistry()
        result = simulator(metrics=registry).run()
        assert registry.value(
            FLEET_JOBS_TOTAL, event="arrived") == result.arrivals
        assert registry.value(
            FLEET_JOBS_TOTAL, event="admitted") == result.admissions
        assert registry.value(
            FLEET_JOBS_TOTAL, event="departed") == result.departures
        assert registry.value(FLEET_ROUNDS_TOTAL) == result.rounds

    def test_schedule_ipk_mismatch_rejected(self):
        bad = poisson_arrivals(150_000, HORIZON, seed=0,
                               instructions_per_kernel=2 * IPK)
        with pytest.raises(ConfigError, match="instructions_per_kernel"):
            simulator(sched=bad).run()

    def test_invalid_configuration(self):
        with pytest.raises(ConfigError, match="num_nodes"):
            simulator(nodes=0)
        with pytest.raises(ConfigError, match="slicing"):
            simulator(slicing="smx")
        with pytest.raises(ConfigError, match="floors"):
            simulator(tenants_per_node=30)
        with pytest.raises(ConfigError, match="migration_penalty"):
            simulator(migration_penalty=1.5)

    def test_drained_fleet_stops_early(self):
        """A sparse stream that drains before the horizon must not spin
        through empty rounds forever."""
        sparse = poisson_arrivals(5_000_000, 20_000_000, seed=1,
                                  instructions_per_kernel=IPK)
        result = simulator(sched=sparse, horizon_cycles=10**12,
                           nodes=4).run()
        assert result.departures == result.arrivals
        assert result.rounds < 10**12 // ROUND
        assert result.waiting_at_horizon == 0
