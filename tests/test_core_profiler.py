"""Unit tests for the epoch profiler and Equations 1-2
(repro.core.profiler)."""

import pytest

from repro.core import EpochProfiler
from repro.errors import ConfigError
from repro.gpu import GPUConfig, Kernel, PerformanceModel


@pytest.fixture
def config():
    return GPUConfig()


@pytest.fixture
def profiler(config):
    return EpochProfiler(config)


def kernel(apki=6.4, hit=0.25, ipc=64.0):
    return Kernel("k", ipc_per_sm=ipc, apki_llc=apki, llc_hit_rate=hit,
                  footprint_bytes=1 << 30)


class TestEquations:
    def test_equation1_demand_per_sm(self, profiler):
        # BW_SM = IPC_max * APKI/1000 * line: 64 * 6.4/1000 * 128.
        demand = profiler.bw_demand_per_sm(ipc_max_per_sm=64.0, apki_llc=6.4)
        assert demand == pytest.approx(64 * 6.4 / 1000 * 128)

    def test_equation2_supply_hit_and_miss_parts(self, profiler, config):
        llc_ch = (config.llc_slices_per_channel
                  * config.llc_slice_bandwidth_bytes_per_cycle())
        mem_ch = config.channel_bandwidth_bytes_per_cycle()
        # Low hit rate: miss stream capped by DRAM bandwidth.
        supply = profiler.bw_supply_per_mc(llc_hit_rate=0.25)
        assert supply == pytest.approx(0.25 * llc_ch + mem_ch)
        # High hit rate: miss stream below DRAM bandwidth.
        supply = profiler.bw_supply_per_mc(llc_hit_rate=0.9)
        assert supply == pytest.approx(0.9 * llc_ch + 0.1 * llc_ch)

    def test_supply_monotone_in_hit_rate(self, profiler):
        supplies = [profiler.bw_supply_per_mc(h) for h in (0.0, 0.3, 0.7, 1.0)]
        assert supplies == sorted(supplies)


class TestProfileLifecycle:
    def test_track_required(self, profiler):
        with pytest.raises(ConfigError):
            profiler.profile(0)
        with pytest.raises(ConfigError):
            profiler.bank(0)

    def test_invalid_ipc_max(self, profiler):
        with pytest.raises(ConfigError):
            profiler.track(0, ipc_max_per_sm=0)

    def test_observe_and_profile_roundtrip(self, profiler, config):
        """Counters fed from a throughput record recover APKI and hit rate."""
        profiler.track(0, ipc_max_per_sm=64.0, footprint_bytes=123)
        model = PerformanceModel(config)
        k = kernel()
        t = model.throughput(k, 40, 16)
        profiler.observe_epoch(0, t, effective_cycles=5_000_000)
        profile = profiler.profile(0)
        assert profile.apki_llc == pytest.approx(k.apki_llc, rel=0.02)
        assert profile.llc_hit_rate == pytest.approx(t.llc_hit_rate, abs=0.02)
        assert profile.footprint_bytes == 123

    def test_profile_resets_counters(self, profiler, config):
        profiler.track(0, ipc_max_per_sm=64.0)
        t = PerformanceModel(config).throughput(kernel(), 40, 16)
        profiler.observe_epoch(0, t, effective_cycles=1_000_000)
        profiler.profile(0)
        empty = profiler.profile(0)
        assert empty.apki_llc == 0.0

    def test_negative_cycles_rejected(self, profiler, config):
        profiler.track(0, ipc_max_per_sm=64.0)
        t = PerformanceModel(config).throughput(kernel(), 40, 16)
        with pytest.raises(ConfigError):
            profiler.observe_epoch(0, t, effective_cycles=-1)


class TestAppProfile:
    def test_demand_supply_ratio(self, profiler, config):
        profiler.track(0, ipc_max_per_sm=64.0)
        t = PerformanceModel(config).throughput(kernel(), 40, 16)
        profiler.observe_epoch(0, t, effective_cycles=5_000_000)
        profile = profiler.profile(0)
        # A PVC-like kernel at the even partition is memory-bound.
        assert profile.demand_supply_ratio(40, 16) > 1.0
        # With many channels and few SMs it flips.
        assert profile.demand_supply_ratio(8, 32) < 1.0

    def test_zero_supply_ratio(self, profiler):
        profiler.track(0, ipc_max_per_sm=64.0)
        profile = profiler.profile(0)
        assert profile.demand_supply_ratio(40, 16) == 0.0
