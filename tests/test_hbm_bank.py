"""Unit tests for the DRAM bank FSM (repro.hbm.bank)."""

import pytest

from repro.errors import ProtocolError
from repro.hbm import HBMTiming
from repro.hbm.bank import Bank, BankState


@pytest.fixture
def timing():
    return HBMTiming()


@pytest.fixture
def bank(timing):
    return Bank(timing, rows=16384)


class TestActivate:
    def test_opens_row(self, bank):
        bank.do_activate(0, 7)
        assert bank.state is BankState.ACTIVE
        assert bank.open_row == 7
        assert bank.is_row_open(7)
        assert not bank.is_row_open(8)

    def test_double_activate_is_protocol_error(self, bank):
        bank.do_activate(0, 1)
        with pytest.raises(ProtocolError):
            bank.do_activate(100, 2)

    def test_row_out_of_range(self, bank):
        with pytest.raises(ProtocolError):
            bank.do_activate(0, 16384)

    def test_activate_before_trc_rejected(self, bank, timing):
        bank.do_activate(0, 1)
        bank.do_precharge(timing.tRAS)  # earliest legal precharge
        # next activate must wait for max(tRC, tRAS+tRP)
        earliest = bank.earliest_activate()
        assert earliest == max(timing.tRC, timing.tRAS + timing.tRP)
        with pytest.raises(ProtocolError):
            bank.do_activate(earliest - 1, 2)
        bank.do_activate(earliest, 2)

    def test_activation_counter(self, bank):
        bank.do_activate(0, 1)
        assert bank.activations == 1


class TestColumnCommands:
    def test_read_before_trcd_rejected(self, bank, timing):
        bank.do_activate(0, 1)
        with pytest.raises(ProtocolError):
            bank.do_read(timing.tRCD - 1, 0)

    def test_read_latency_is_cl_plus_burst(self, bank, timing):
        bank.do_activate(0, 1)
        done = bank.do_read(timing.tRCD, 3)
        assert done == timing.tRCD + timing.tCL + timing.tBL

    def test_write_latency_is_wl_plus_burst(self, bank, timing):
        bank.do_activate(0, 1)
        done = bank.do_write(timing.tRCD, 3)
        assert done == timing.tRCD + timing.tWL + timing.tBL

    def test_read_without_open_row_rejected(self, bank):
        with pytest.raises(ProtocolError):
            bank.do_read(100, 0)

    def test_negative_column_rejected(self, bank, timing):
        bank.do_activate(0, 1)
        with pytest.raises(ProtocolError):
            bank.do_read(timing.tRCD, -1)

    def test_tccd_spacing_enforced_via_note(self, bank, timing):
        bank.do_activate(0, 1)
        t0 = timing.tRCD
        bank.do_read(t0, 0)
        bank.note_column_issued(t0, timing.tCCDl)
        with pytest.raises(ProtocolError):
            bank.do_read(t0 + timing.tCCDl - 1, 1)
        bank.do_read(t0 + timing.tCCDl, 1)


class TestPrecharge:
    def test_precharge_before_tras_rejected(self, bank, timing):
        bank.do_activate(0, 1)
        with pytest.raises(ProtocolError):
            bank.do_precharge(timing.tRAS - 1)

    def test_precharge_closes_row(self, bank, timing):
        bank.do_activate(0, 1)
        bank.do_precharge(timing.tRAS)
        assert bank.state is BankState.IDLE
        assert bank.open_row is None

    def test_read_to_precharge_respects_trtp(self, bank, timing):
        bank.do_activate(0, 1)
        read_at = timing.tRAS  # late read pushes precharge past tRAS
        bank.do_read(read_at, 0)
        assert bank.earliest_precharge() >= read_at + timing.tRTP


class TestMigrationColumnCopy:
    def test_migration_read_needs_open_row(self, bank):
        with pytest.raises(ProtocolError):
            bank.do_migration_read(50, 0)

    def test_migration_latency_is_tmig(self, bank, timing):
        bank.do_activate(0, 1)
        done = bank.do_migration_read(timing.tRCD, 0)
        assert done == timing.tRCD + timing.tMIG

    def test_migration_write_latency_is_tmig(self, bank, timing):
        bank.do_activate(0, 5)
        done = bank.do_migration_write(timing.tRCD, 2)
        assert done == timing.tRCD + timing.tMIG


class TestTimingValidation:
    def test_default_timing_is_valid(self, timing):
        timing.validate()

    def test_rejects_nonpositive_parameter(self):
        with pytest.raises(Exception):
            HBMTiming(tRC=0).validate()

    def test_rejects_tras_trp_exceeding_trc(self):
        with pytest.raises(Exception):
            HBMTiming(tRAS=40, tRP=14, tRC=47).validate()

    def test_rejects_short_gt_long_constraints(self):
        with pytest.raises(Exception):
            HBMTiming(tRRDs=7, tRRDl=6).validate()
        with pytest.raises(Exception):
            HBMTiming(tCCDs=3, tCCDl=2).validate()
        with pytest.raises(Exception):
            HBMTiming(tWTRs=9, tWTRl=8).validate()
