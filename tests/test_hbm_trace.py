"""Tests for trace-driven HBM replay (repro.hbm.trace)."""

import pytest

from repro.errors import ConfigError
from repro.hbm import HBMSystem
from repro.hbm.trace import (
    ReplayResult,
    TraceReplayer,
    channel_confined_trace,
    same_bank_trace,
    sequential_trace,
)
from repro.pagemove import PageMoveAddressMapping


@pytest.fixture
def replayer():
    return TraceReplayer()


class TestDecode:
    def test_decode_routes_to_correct_channel(self, replayer):
        # Address with channel bits [14:12] = 5 lands in local channel 5.
        channel, request = replayer.decode_request(5 << 12)
        stack, local = replayer.system.split_channel_id(channel)
        assert local == 5
        assert stack == 0

    def test_decode_write_flag(self, replayer):
        from repro.hbm import RequestKind
        _, request = replayer.decode_request(0, write=True)
        assert request.kind is RequestKind.WRITE


class TestReplay:
    def test_sequential_trace_spreads_over_channels(self, replayer):
        # 4 KB of sequential lines hit every stack and bank group but only
        # one channel index -> exactly 4 global channels busy.
        result = replayer.replay(sequential_trace(32))
        assert result.requests == 32
        assert len(result.per_channel_cycles) == 4

    def test_sequential_bandwidth_beats_same_bank(self, replayer):
        seq = replayer.replay(sequential_trace(256))
        bank_bound = TraceReplayer().replay(
            same_bank_trace(256, replayer.mapping)
        )
        freq = replayer.system.config.freq_mhz
        assert seq.bandwidth_gbps(freq) > 3 * bank_bound.bandwidth_gbps(freq)
        assert bank_bound.row_hit_rate == 0.0

    def test_channel_confined_trace_uses_one_channel_index(self):
        replayer = TraceReplayer()
        trace = channel_confined_trace(128, replayer.mapping, channel=2)
        result = replayer.replay(trace)
        locals_used = {
            replayer.system.split_channel_id(c)[1]
            for c in result.per_channel_cycles
        }
        assert locals_used == {2}

    def test_more_channels_more_bandwidth(self):
        """A slice's achievable bandwidth scales with its channel set —
        the command-level basis of Equation 2's per-channel supply."""
        mapping = PageMoveAddressMapping()
        narrow = TraceReplayer()
        one = narrow.replay(channel_confined_trace(512, mapping, channel=0))
        wide = TraceReplayer()
        two_trace = (channel_confined_trace(256, mapping, channel=0)
                     + channel_confined_trace(256, mapping, channel=1))
        two = wide.replay(two_trace)
        freq = narrow.system.config.freq_mhz
        # Half the per-channel load finishes in well under the time, so
        # the two-channel spread delivers clearly more bandwidth (the
        # short per-channel bursts keep it below a full 2x).
        assert two.bandwidth_gbps(freq) > 1.4 * one.bandwidth_gbps(freq)

    def test_channel_peak_bandwidth_order(self):
        """Streaming one channel approaches (and never exceeds) the
        configured per-channel-peak's order of magnitude."""
        replayer = TraceReplayer()
        mapping = replayer.mapping
        result = replayer.replay(channel_confined_trace(2048, mapping, 0))
        freq = replayer.system.config.freq_mhz
        achieved = result.bandwidth_gbps(freq) / 4  # 4 stacks share the work
        bus_peak = (replayer.system.config.column_bytes
                    / replayer.system.config.timing.tBL * freq * 1e6 / 1e9)
        assert achieved <= bus_peak * 1.01

    def test_replay_result_empty(self):
        result = TraceReplayer().replay([])
        assert result.mem_cycles == 0
        assert result.bandwidth_gbps(440.0) == 0.0

    def test_mean_latency_positive(self, replayer):
        result = replayer.replay(sequential_trace(64))
        assert result.mean_latency > 0

    def test_invalid_batch(self, replayer):
        with pytest.raises(ConfigError):
            replayer.replay([0], batch=0)

    def test_trace_generators_validate(self):
        mapping = PageMoveAddressMapping()
        with pytest.raises(ConfigError):
            sequential_trace(-1)
        with pytest.raises(ConfigError):
            same_bank_trace(-1, mapping)
        with pytest.raises(ConfigError):
            channel_confined_trace(-1, mapping, 0)
