"""Unit tests for STP/ANTT and the energy model (repro.metrics)."""

import pytest

from repro.errors import ConfigError
from repro.gpu import GPUConfig
from repro.metrics import AppRun, EnergyModel, antt, normalized_progress, stp, summarize


def run(ipc, alone, name="a", app_id=0):
    return AppRun(app_id=app_id, name=name, ipc=ipc, ipc_alone=alone)


class TestAppRun:
    def test_normalized_progress_and_slowdown(self):
        r = run(50, 100)
        assert r.normalized_progress == 0.5
        assert r.slowdown == 2.0

    def test_stalled_app_has_infinite_slowdown(self):
        assert run(0, 100).slowdown == float("inf")

    def test_validation(self):
        with pytest.raises(ConfigError):
            run(-1, 100)
        with pytest.raises(ConfigError):
            run(1, 0)


class TestSTPANTT:
    def test_equation3_stp(self):
        runs = [run(50, 100), run(25, 100, "b", 1)]
        assert stp(runs) == pytest.approx(0.75)

    def test_equation4_antt(self):
        runs = [run(50, 100), run(25, 100, "b", 1)]
        assert antt(runs) == pytest.approx((2 + 4) / 2)

    def test_perfect_system(self):
        runs = [run(100, 100), run(100, 100, "b", 1)]
        assert stp(runs) == 2.0
        assert antt(runs) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            stp([])
        with pytest.raises(ConfigError):
            antt([])

    def test_summarize(self):
        runs = [run(50, 100), run(75, 100, "b", 1)]
        summary = summarize(runs)
        assert summary["stp"] == pytest.approx(1.25)
        assert summary["min_np"] == pytest.approx(0.5)

    def test_normalized_progress_function(self):
        assert normalized_progress(30, 60) == 0.5
        with pytest.raises(ConfigError):
            normalized_progress(1, 0)
        with pytest.raises(ConfigError):
            normalized_progress(-1, 1)


class TestEnergyModel:
    def test_static_energy_scales_with_time(self):
        model = EnergyModel()
        e1 = model.energy(cycles=1e6, instructions=0, dram_bytes=0)
        e2 = model.energy(cycles=2e6, instructions=0, dram_bytes=0)
        assert e2.core_static == pytest.approx(2 * e1.core_static)
        assert e2.mem_static == pytest.approx(2 * e1.mem_static)

    def test_dynamic_energy_scales_with_work(self):
        model = EnergyModel()
        e = model.energy(cycles=1e6, instructions=1e9, dram_bytes=1e9)
        assert e.core_dynamic == pytest.approx(1e9 * 9.0 * 1e-12)
        assert e.mem_dynamic == pytest.approx(1e9 * 14.0 * 1e-12)

    def test_migration_energy_charged_both_sides(self):
        model = EnergyModel()
        e = model.energy(cycles=1e6, instructions=0, dram_bytes=0,
                         migrated_bytes=1e6)
        assert e.migration == pytest.approx(1e6 * (2 * 14 + 9) * 1e-12)

    def test_figure12b_split_shape(self):
        """Core dominates; HBM is a limited share (88.3/11.6 in the paper,
        up to ~30% for memory-heavy mixes)."""
        model = EnergyModel()
        # A BP-like run: 25M cycles, ~10G instructions, ~10 GB of DRAM.
        e = model.energy(cycles=25e6, instructions=10e9, dram_bytes=10e9)
        assert 0.05 < e.memory_fraction < 0.35
        assert e.core > e.memory

    def test_totals_add_up(self):
        e = EnergyModel().energy(1e6, 1e9, 1e9, 1e6)
        assert e.total == pytest.approx(e.core + e.memory)

    def test_validation(self):
        with pytest.raises(ConfigError):
            EnergyModel(core_static_watts=-1)
        with pytest.raises(ConfigError):
            EnergyModel().energy(-1, 0, 0)


class TestFairness:
    def make_runs(self, *nps):
        return [run(np_value * 100, 100, name=f"a{i}", app_id=i)
                for i, np_value in enumerate(nps)]

    def test_fairness_index_perfect(self):
        from repro.metrics import fairness_index
        assert fairness_index(self.make_runs(0.5, 0.5)) == 1.0

    def test_fairness_index_skew(self):
        from repro.metrics import fairness_index
        assert fairness_index(self.make_runs(0.25, 0.75)) == pytest.approx(1 / 3)

    def test_harmonic_mean_is_reciprocal_antt(self):
        from repro.metrics import harmonic_mean_np
        runs = self.make_runs(0.5, 0.25)
        assert harmonic_mean_np(runs) == pytest.approx(1 / antt(runs))

    def test_jains_index_bounds(self):
        from repro.metrics import jains_index
        assert jains_index(self.make_runs(0.5, 0.5, 0.5)) == pytest.approx(1.0)
        skewed = jains_index(self.make_runs(0.9, 0.01, 0.01))
        assert 1 / 3 <= skewed < 0.5

    def test_empty_rejected(self):
        from repro.metrics import fairness_index, harmonic_mean_np, jains_index
        for fn in (fairness_index, harmonic_mean_np, jains_index):
            with pytest.raises(ConfigError):
                fn([])

    def test_ugpu_fairer_than_bp_bs(self):
        """UGPU's demand matching raises the fairness floor the big/small
        static splits destroy."""
        from repro import BPBigSmallSystem, UGPUSystem, build_mix
        from repro.metrics import fairness_index
        bs = BPBigSmallSystem(build_mix(["PVC", "DXTC"]).applications).run()
        ugpu = UGPUSystem(build_mix(["PVC", "DXTC"]).applications).run()
        assert fairness_index(ugpu.runs) > fairness_index(bs.runs)
