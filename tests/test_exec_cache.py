"""Tests for the content-addressed on-disk result cache."""

import pickle

import pytest

from repro.errors import ConfigError
from repro.exec import ResultCache, SweepJob, execute_job

JOB = SweepJob.build("bp", ("PVC", "DXTC"), 2_000_000)


@pytest.fixture
def result():
    return execute_job(JOB)


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "sweeps")


class TestRoundTrip:
    def test_put_then_get_returns_equal_result(self, cache, result):
        cache.put(JOB.key(), result)
        loaded = cache.get(JOB.key())
        assert loaded == result
        assert loaded.stp == result.stp
        assert loaded.antt == result.antt
        assert [r.name for r in loaded.runs] == [r.name for r in result.runs]
        assert cache.hits == 1 and cache.misses == 0 and cache.stores == 1

    def test_missing_key_counts_a_miss(self, cache):
        assert cache.get("0" * 64) is None
        assert cache.misses == 1

    def test_len_and_clear(self, cache, result):
        cache.put(JOB.key(), result)
        cache.put("f" * 64, result)
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_only_system_results_accepted(self, cache):
        with pytest.raises(ConfigError):
            cache.put(JOB.key(), {"not": "a result"})


class TestCorruption:
    def test_truncated_entry_falls_back_to_miss_and_heals(self, cache, result):
        cache.put(JOB.key(), result)
        path = cache.path_for(JOB.key())
        path.write_bytes(path.read_bytes()[:17])
        assert cache.get(JOB.key()) is None
        assert cache.misses == 1
        assert not path.exists()  # poisoned entry removed
        cache.put(JOB.key(), result)  # recompute-and-store heals the slot
        assert cache.get(JOB.key()) == result

    def test_garbage_bytes_entry_is_a_miss(self, cache):
        cache.path_for(JOB.key()).write_bytes(b"not a pickle at all")
        assert cache.get(JOB.key()) is None
        assert cache.misses == 1

    def test_foreign_payload_is_a_miss(self, cache):
        with open(cache.path_for(JOB.key()), "wb") as handle:
            pickle.dump({"version": "0.0.0", "result": 42}, handle)
        assert cache.get(JOB.key()) is None

    def test_wrong_version_payload_is_a_miss(self, cache, result):
        with open(cache.path_for(JOB.key()), "wb") as handle:
            pickle.dump(
                {"version": "0.0.1", "key": JOB.key(), "result": result}, handle
            )
        assert cache.get(JOB.key()) is None
        assert cache.misses == 1


class TestEviction:
    def test_bound_is_enforced_oldest_first(self, tmp_path, result):
        cache = ResultCache(tmp_path, max_entries=2)
        import os
        for index, key in enumerate(("a" * 64, "b" * 64, "c" * 64)):
            cache.put(key, result)
            # Stamp strictly increasing mtimes; some filesystems round.
            os.utime(cache.path_for(key), (index, index))
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.get("a" * 64) is None  # oldest was evicted
        assert cache.get("c" * 64) is not None

    def test_bad_bound_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            ResultCache(tmp_path, max_entries=0)


class TestInFlightTempFiles:
    """``Path.glob("*.pkl")`` matches dotfiles, so a ``.tmp-*.pkl`` file
    another process is mid-way through writing must not be counted as an
    entry, cleared, or evicted out from under its ``os.replace``."""

    def _fake_tmp(self, cache):
        tmp = cache.directory / ".tmp-inflight.pkl"
        tmp.write_bytes(b"partial write")
        return tmp

    def test_len_ignores_tmp_files(self, cache, result):
        cache.put(JOB.key(), result)
        self._fake_tmp(cache)
        assert len(cache) == 1

    def test_clear_leaves_tmp_files(self, cache, result):
        cache.put(JOB.key(), result)
        tmp = self._fake_tmp(cache)
        assert cache.clear() == 1
        assert tmp.exists()
        assert len(cache) == 0

    def test_enforce_bound_never_evicts_tmp_files(self, tmp_path, result):
        import os

        cache = ResultCache(tmp_path, max_entries=1)
        tmp = cache.directory / ".tmp-inflight.pkl"
        tmp.write_bytes(b"partial write")
        os.utime(tmp, (0, 0))  # oldest file in the directory
        cache.put("a" * 64, result)
        os.utime(cache.path_for("a" * 64), (1, 1))
        cache.put("b" * 64, result)
        # The bound evicted the oldest *finished* entry, not the tmp file.
        assert tmp.exists()
        assert cache.evictions == 1
        assert cache.get("a" * 64) is None
        assert cache.get("b" * 64) is not None
