"""Run-bundle inspector (repro.inspect): capture via --report-dir,
loader round-trips, analyzers, the run-vs-run differ, and renderers.

The load-bearing properties:

* a bundle captured by one CLI invocation loads back into a RunModel
  carrying the same correlation IDs the live sinks stamped;
* diffing two identical-seed, identical-config runs reports *zero*
  deterministic divergence (results, counters, meta counts) even
  though their timings differ;
* the critical-path analyzer names the same dominant self-time phase
  the profiler's own flat table puts first.
"""

import json
import shutil

import pytest

from repro.cli import main
from repro.errors import ConfigError
from repro.inspect import (
    BUNDLE_SCHEMA,
    RunReporter,
    analyze,
    diff_bundles,
    load_bundle,
    read_manifest,
    render_diff_html,
    render_diff_text,
    render_html,
    render_text,
)
from repro.inspect.model import RunModel
from repro.profiling import PhaseProfiler

FLEET_ARGS = [
    "fleet", "--nodes", "4", "--cycles", "10000000",
    "--mean-interarrival", "500000",
    "--instructions-per-kernel", "50000000",
    "--placement", "first_fit", "--no-cache",
]


@pytest.fixture(scope="module")
def bundle_pair(tmp_path_factory):
    """Two bundles from byte-identical fleet invocations."""
    base = tmp_path_factory.mktemp("bundles")
    paths = (base / "a", base / "b")
    for path in paths:
        assert main(FLEET_ARGS + ["--report-dir", str(path)]) == 0
    return paths


def _minimal_manifest(**overrides):
    manifest = {
        "schema": BUNDLE_SCHEMA,
        "command": "fleet",
        "run_id": "cafe",
        "kernel_backend": "scalar",
        "provenance": {},
        "dropped_events": 0,
        "artifacts": {},
        "counts": {},
    }
    manifest.update(overrides)
    return manifest


class TestRunBundleCapture:
    def test_manifest_schema_and_artifacts(self, bundle_pair):
        manifest = read_manifest(bundle_pair[0])
        assert manifest["schema"] == BUNDLE_SCHEMA
        assert manifest["command"] == "fleet"
        for name in ("trace", "chrome_trace", "metrics", "obslog",
                     "profile", "exec_stats", "results"):
            assert name in manifest["artifacts"]
        assert manifest["counts"]["trace_events"] > 0
        assert manifest["dropped_events"] == 0

    def test_loader_round_trips_every_artifact(self, bundle_pair):
        model = load_bundle(bundle_pair[0])
        assert model.command == "fleet"
        assert model.run_id
        assert model.events
        counts = model.manifest["counts"]
        assert len(model.events) == counts["trace_events"]
        assert len(model.obslog) == counts["obslog_records"]
        assert model.obslog_truncations == []
        assert model.metrics is not None and model.metrics["metrics"]
        assert model.exec_stats is not None
        assert model.exec_stats.jobs_total > 0
        assert "first_fit" in model.results["placements"]
        # Correlation IDs survive the disk round-trip.
        assert model.shard_ids()
        assert model.workers()
        # One placement policy -> one simulator run_id on every stamped
        # event (the simulator hashes its own run shape; the manifest's
        # run_id identifies the CLI invocation).
        run_ids = {e.args.get("run_id") for e in model.events
                   if "run_id" in e.args}
        assert len(run_ids) == 1

    def test_gzip_bundle_loads_transparently(self, tmp_path):
        bundle = tmp_path / "gz"
        assert main(FLEET_ARGS + ["--report-dir", str(bundle),
                                  "--report-gzip"]) == 0
        manifest = read_manifest(bundle)
        assert manifest["artifacts"]["trace"].endswith(".gz")
        assert manifest["artifacts"]["obslog"].endswith(".gz")
        model = load_bundle(bundle)
        assert len(model.events) == manifest["counts"]["trace_events"]
        assert len(model.obslog) == manifest["counts"]["obslog_records"]

    def test_non_bundle_directory_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="not a run bundle"):
            load_bundle(tmp_path)

    def test_wrong_schema_rejected(self, tmp_path):
        (tmp_path / "manifest.json").write_text(
            json.dumps({"schema": "repro.bundle/999", "artifacts": {}})
        )
        with pytest.raises(ConfigError, match="schema"):
            read_manifest(tmp_path)

    def test_double_finish_rejected(self, tmp_path):
        reporter = RunReporter(tmp_path / "r", command="test",
                               run_id="cafe")
        reporter.finish()
        with pytest.raises(ConfigError, match="already finalized"):
            reporter.finish()


class TestAnalyzers:
    def test_fleet_bundle_findings(self, bundle_pair):
        model = load_bundle(bundle_pair[0])
        findings = analyze(model)
        categories = {f.category for f in findings}
        assert "critical_path" in categories
        assert "cache" in categories
        assert "wait_queue" in categories
        for finding in findings:
            assert finding.severity in ("info", "warning")

    def test_critical_path_matches_profiler_dominant_phase(self):
        # Scripted clock: epoch spans 10s cumulative, of which advance
        # takes 7s and policy 1s -> dominant self-time phase is
        # epoch.advance (7s), ahead of epoch's 2s self.
        times = iter([0.0, 1.0, 8.0, 8.0, 9.0, 10.0])
        profiler = PhaseProfiler(clock=lambda: next(times))
        profiler.begin("epoch")
        profiler.begin("epoch.advance")
        profiler.end("epoch.advance")
        profiler.begin("epoch.policy")
        profiler.end("epoch.policy")
        profiler.end("epoch")
        model = RunModel(path="synthetic", manifest=_minimal_manifest(),
                         profile=profiler)
        finding = next(f for f in analyze(model)
                       if f.category == "critical_path")
        dominant = profiler.flat()[0]
        assert dominant.name == "epoch.advance"
        assert finding.data["dominant_phase"] == dominant.name
        assert f"dominant self-time phase '{dominant.name}'" in \
            finding.detail
        assert finding.data["chain"] == ["epoch", "epoch/epoch.advance"]

    def test_dropped_events_surface_as_evidence_warning(self):
        model = RunModel(path="synthetic",
                         manifest=_minimal_manifest(dropped_events=7))
        findings = analyze(model)
        warning = findings[0]
        assert warning.severity == "warning"
        assert "evidence incomplete" in warning.title
        assert warning.data["dropped_events"] == 7

    def test_obslog_truncation_surfaces_as_evidence_warning(self):
        model = RunModel(path="synthetic", manifest=_minimal_manifest())
        model.obslog_truncations.append("obslog.jsonl:9: malformed")
        findings = analyze(model)
        assert any(
            f.severity == "warning" and "truncated" in f.title
            for f in findings
        )

    def test_straggler_detection_from_obslog(self):
        model = RunModel(path="synthetic", manifest=_minimal_manifest())
        for _ in range(8):
            model.obslog.append(
                {"event": "exec.job", "worker_pid": 1, "seconds": 10.0})
        for pid in (2, 3, 4):
            model.obslog.append(
                {"event": "exec.job", "worker_pid": pid, "seconds": 1.0})
        finding = next(f for f in analyze(model)
                       if f.category == "stragglers")
        assert finding.severity == "warning"
        assert finding.data["worst_worker"] == "pid=1"

    def test_profile_bundle_agrees_with_repro_profile(
            self, tmp_path, capsys):
        """Acceptance: `repro inspect` names the same dominant phase as
        the `repro profile` hot-phase table on the pinned closed_ugpu
        scenario."""
        bundle = tmp_path / "bundle"
        assert main(["profile", "--scenario", "closed_ugpu",
                     "--output", str(tmp_path / "prof"),
                     "--report-dir", str(bundle)]) == 0
        table = capsys.readouterr().out
        # First data row of the table is the dominant self-time phase.
        header_at = next(
            i for i, line in enumerate(table.splitlines())
            if line.startswith("phase"))
        top_phase = table.splitlines()[header_at + 1].split()[0]
        model = load_bundle(bundle)
        finding = next(f for f in analyze(model)
                       if f.category == "critical_path")
        assert finding.data["dominant_phase"] == top_phase


class TestDiffer:
    def test_self_diff_reports_zero_divergence(self, bundle_pair):
        diff = diff_bundles(*bundle_pair)
        assert diff.zero_divergence
        assert diff.result_divergence == []
        assert diff.metric_divergence == []
        assert diff.meta_divergence == []
        text = render_diff_text(diff)
        assert "result divergence: none" in text
        assert "metric divergence: none" in text
        assert "meta-count divergence: none" in text
        assert "IDENTICAL" in text

    def test_timing_deltas_are_timing_named(self, bundle_pair):
        diff = diff_bundles(*bundle_pair)
        for delta in diff.timing_deltas:
            assert ("seconds" in delta.name or "wall" in delta.name
                    or delta.name.startswith("repro_health_"))

    def test_result_divergence_detected(self, bundle_pair, tmp_path):
        mutated = tmp_path / "mutated"
        shutil.copytree(bundle_pair[0], mutated)
        results_path = mutated / "results.json"
        results = json.loads(results_path.read_text())
        results["placements"]["first_fit"]["stp"] += 1.0
        results_path.write_text(json.dumps(results))
        diff = diff_bundles(bundle_pair[0], mutated)
        assert not diff.zero_divergence
        paths = [p for p, _, _ in diff.result_divergence]
        assert paths == ["placements.first_fit.stp"]
        assert "DIVERGED" in render_diff_text(diff)

    def test_meta_count_divergence_detected(self, bundle_pair, tmp_path):
        mutated = tmp_path / "mutated"
        shutil.copytree(bundle_pair[0], mutated)
        manifest_path = mutated / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["counts"]["trace_events"] += 1
        manifest_path.write_text(json.dumps(manifest))
        diff = diff_bundles(bundle_pair[0], mutated)
        assert not diff.zero_divergence
        assert diff.meta_divergence[0][0] == "trace_events"

    def test_span_attribution_present_and_ranked(self, bundle_pair):
        diff = diff_bundles(*bundle_pair)
        # Wall times always differ between two real runs, so the span
        # attribution must name where, ranked by |delta| descending.
        assert diff.span_deltas
        deltas = [abs(s.delta) for s in diff.span_deltas]
        assert deltas == sorted(deltas, reverse=True)

    def test_backend_difference_noted(self, bundle_pair, tmp_path):
        mutated = tmp_path / "mutated"
        shutil.copytree(bundle_pair[0], mutated)
        manifest_path = mutated / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["kernel_backend"] = "scalar"
        manifest_path.write_text(json.dumps(manifest))
        diff = diff_bundles(bundle_pair[0], mutated)
        assert any("kernel backends differ" in note for note in diff.notes)
        assert diff.zero_divergence  # backend is a note, not drift


class TestRenderers:
    def test_text_report_is_deterministic(self, bundle_pair):
        model = load_bundle(bundle_pair[0])
        findings = analyze(model)
        assert render_text(model, findings) == render_text(model, findings)
        text = render_text(model, findings)
        assert "critical path" in text
        assert "findings" in text

    def test_html_reports_are_self_contained(self, bundle_pair):
        model = load_bundle(bundle_pair[0])
        html = render_html(model, analyze(model))
        assert html.startswith("<!DOCTYPE html>")
        assert "<script" not in html
        assert "http://" not in html and "https://" not in html
        diff_html = render_diff_html(diff_bundles(*bundle_pair))
        assert diff_html.startswith("<!DOCTYPE html>")
        assert "<script" not in diff_html

    def test_html_escapes_untrusted_text(self):
        model = RunModel(
            path="<b>x</b>",
            manifest=_minimal_manifest(command="<script>alert(1)</script>"),
        )
        html = render_html(model, analyze(model))
        assert "<script>alert(1)</script>" not in html


class TestCli:
    def test_inspect_command(self, bundle_pair, tmp_path, capsys):
        html = tmp_path / "report.html"
        assert main(["inspect", str(bundle_pair[0]),
                     "--html", str(html)]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert html.read_text().startswith("<!DOCTYPE html>")

    def test_diff_command_expect_identical(self, bundle_pair, tmp_path,
                                           capsys):
        html = tmp_path / "diff.html"
        assert main(["diff", str(bundle_pair[0]), str(bundle_pair[1]),
                     "--expect-identical", "--html", str(html)]) == 0
        assert "IDENTICAL" in capsys.readouterr().out
        assert html.exists()

    def test_diff_expect_identical_fails_on_divergence(
            self, bundle_pair, tmp_path, capsys):
        mutated = tmp_path / "mutated"
        shutil.copytree(bundle_pair[0], mutated)
        results_path = mutated / "results.json"
        results = json.loads(results_path.read_text())
        results["placements"]["first_fit"]["admissions"] += 1
        results_path.write_text(json.dumps(results))
        assert main(["diff", str(bundle_pair[0]), str(mutated),
                     "--expect-identical"]) == 1
        assert "DIVERGED" in capsys.readouterr().out

    def test_inspect_missing_bundle_raises_config_error(self, tmp_path):
        with pytest.raises(ConfigError):
            main(["inspect", str(tmp_path)])
