"""Unit tests for the whole-memory-system facade (repro.hbm.system)."""

import pytest

from repro.errors import ConfigError, ProtocolError
from repro.hbm import HBMConfig, HBMSystem, HBMTiming


@pytest.fixture
def system():
    return HBMSystem()


class TestStructure:
    def test_paper_configuration(self, system):
        assert len(system.stacks) == 4
        assert system.num_channels == 32
        assert len(system.controllers) == 32

    def test_channel_bandwidth_matches_table1(self, system):
        # 900 GB/s over 32 channels.
        assert system.config.channel_bandwidth_gbps == pytest.approx(900 / 32)
        assert system.peak_bandwidth_gbps(32) == pytest.approx(900)
        assert system.peak_bandwidth_gbps(16) == pytest.approx(450)

    def test_peak_bandwidth_bounds(self, system):
        with pytest.raises(ProtocolError):
            system.peak_bandwidth_gbps(33)
        with pytest.raises(ProtocolError):
            system.peak_bandwidth_gbps(-1)


class TestChannelIds:
    def test_split_roundtrip(self, system):
        for gid in range(32):
            stack, local = system.split_channel_id(gid)
            assert system.global_channel_id(stack, local) == gid

    def test_split_out_of_range(self, system):
        with pytest.raises(ProtocolError):
            system.split_channel_id(32)

    def test_global_id_bounds(self, system):
        with pytest.raises(ProtocolError):
            system.global_channel_id(4, 0)
        with pytest.raises(ProtocolError):
            system.global_channel_id(0, 8)

    def test_channel_lookup_is_consistent(self, system):
        ch = system.channel(13)  # stack 1, local channel 5
        assert ch is system.stacks[1].channels[5]
        assert system.controller(13).channel is ch


class TestConfigValidation:
    def test_default_config_valid(self):
        HBMConfig().validate()

    def test_non_power_of_two_channels_rejected(self):
        with pytest.raises(ConfigError):
            HBMConfig(channels_per_stack=6).validate()

    def test_zero_stacks_rejected(self):
        with pytest.raises(ConfigError):
            HBMConfig(num_stacks=0).validate()

    def test_row_not_multiple_of_column_rejected(self):
        with pytest.raises(ConfigError):
            HBMConfig(row_size_bytes=2000, column_bytes=128).validate()

    def test_clock_domain_conversion(self):
        cfg = HBMConfig()
        assert cfg.to_gpu_cycles(50) == pytest.approx(40)
        assert cfg.to_mem_cycles(40) == pytest.approx(50)
        assert cfg.migration_gpu_cycles_per_command() == pytest.approx(40)

    def test_columns_per_row(self):
        assert HBMConfig().columns_per_row == 16

    def test_banks_per_channel(self):
        assert HBMConfig().banks_per_channel == 16
