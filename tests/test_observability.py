"""Cross-process fleet observability: worker capture, merged streams,
structured logging, and the health monitor.

The tentpole invariant under test: a sharded fleet run (``jobs=2``,
real pool processes) produces the *same* merged observability as the
serial run — byte-identical metrics exposition, the same node-physics
spans on the same timeline — with every absorbed event carrying the
correlation IDs (``run_id`` / ``shard_id`` / ``pid`` / ``worker``)
that let one Chrome trace show orchestrator and workers on aligned
tracks.
"""

import pickle

import pytest

from repro import __version__
from repro.cluster import FleetHealthMonitor, FleetSimulator, PlacementPolicy
from repro.cluster.health import (
    KIND_CACHE_COLLAPSE,
    KIND_STRAGGLER,
    KIND_WAIT_STALL,
)
from repro.errors import ConfigError, TelemetryError
from repro.exec import (
    CACHE_SCHEMA,
    ResultCache,
    SweepExecutor,
    SweepJob,
    execute_job_enveloped,
    merge_envelopes,
)
from repro.obslog import (
    REQUIRED_FIELDS,
    ObsLogger,
    read_obslog,
    validate_obslog_file,
)
from repro.profiling import PhaseProfiler
from repro.telemetry import (
    MetricsRegistry,
    NullRegistry,
    merge_registry,
    snapshot_registry,
    to_prometheus,
)
from repro.trace import KIND_SPAN, TraceEvent, TraceRecorder, chrome_trace
from repro.workloads import poisson_arrivals

CYCLES = 10_000_000
SMALL_JOB = SweepJob.build("bp", ("PVC", "DXTC"), 2_000_000)


def run_fleet(jobs: int, *, capture=None, health=None, log=None):
    """One tiny fleet run; returns (result, registry, recorder)."""
    registry = MetricsRegistry()
    recorder = TraceRecorder()
    schedule = poisson_arrivals(
        mean_interarrival_cycles=500_000,
        horizon_cycles=CYCLES,
        seed=0,
        instructions_per_kernel=50_000_000,
    )
    with SweepExecutor(jobs=jobs) as executor:
        simulator = FleetSimulator(
            4,
            schedule,
            PlacementPolicy.LEAST_FRAGMENTED,
            horizon_cycles=CYCLES,
            instructions_per_kernel=50_000_000,
            executor=executor,
            metrics=registry,
            tracer=recorder,
            capture=capture,
            health=health,
            log=log,
        )
        result = simulator.run()
    return result, registry, recorder


# ----------------------------------------------------------------------
# Tentpole: serial and sharded runs merge to identical aggregates
# ----------------------------------------------------------------------
class TestWorkerCaptureRoundTrip:
    @pytest.fixture(scope="class")
    def serial(self):
        return run_fleet(1)

    @pytest.fixture(scope="class")
    def sharded(self):
        return run_fleet(2)

    def test_results_byte_identical(self, serial, sharded):
        assert serial[0].summary() == sharded[0].summary()

    def test_merged_metrics_byte_identical(self, serial, sharded):
        # The full exposition — fleet gauges plus merged worker_*
        # counters — must agree byte-for-byte, because worker families
        # are counters folded in deterministic job order.
        assert to_prometheus(serial[1]) == to_prometheus(sharded[1])
        text = to_prometheus(serial[1])
        assert "repro_worker_node_rounds_total" in text
        assert "repro_worker_instructions_total" in text

    def test_node_spans_identical_on_the_merged_timeline(
        self, serial, sharded
    ):
        def physics(recorder):
            return [
                (e.time, e.name, e.duration, e.args.get("node"),
                 e.args.get("job_id"))
                for e in recorder.events()
                if e.category == "node"
            ]

        spans = physics(serial[2])
        assert spans  # worker node-physics spans made it across
        assert spans == physics(sharded[2])

    def test_absorbed_events_carry_correlation_ids(self, sharded):
        result, _, recorder = sharded
        node_events = recorder.events("node")
        assert node_events
        for event in node_events:
            assert event.args["run_id"]
            assert event.args["shard_id"].startswith("r")
            assert event.args["pid"] > 0
            assert event.args["worker"]

    def test_worker_timestamps_reanchored_at_round_start(self, serial):
        _, _, recorder = serial
        # Round-relative worker cycles were shifted onto the fleet
        # timeline: later rounds' node spans start at later cycles.
        starts = sorted({e.time for e in recorder.events("node")})
        assert len(starts) > 1
        assert starts[-1] > starts[0] >= 0.0

    def test_capture_off_means_no_worker_events(self):
        _, registry, recorder = run_fleet(1, capture=False)
        assert recorder.events("node") == []
        assert "repro_worker" not in to_prometheus(registry)


# ----------------------------------------------------------------------
# Envelope pickling + cache schema compatibility (satellite b)
# ----------------------------------------------------------------------
class TestEnvelopeAndCache:
    def test_envelope_pickle_round_trip(self):
        envelope = execute_job_enveloped(SMALL_JOB, capture=True)
        clone = pickle.loads(pickle.dumps(envelope))
        assert clone.result == envelope.result
        assert clone.pid == envelope.pid
        assert clone.worker == envelope.worker
        assert clone.obs.events == envelope.obs.events
        assert clone.obs.metrics == envelope.obs.metrics
        assert clone.obs.profile == envelope.obs.profile
        assert "worker.job" in clone.obs.profile

    def test_cache_envelope_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        envelope = execute_job_enveloped(SMALL_JOB, capture=True)
        cache.put(SMALL_JOB.key(), envelope.result, obs=envelope.obs,
                  origin=(envelope.pid, envelope.worker))
        payload = cache.get_envelope(SMALL_JOB.key(), require_obs=True)
        assert payload["schema"] == CACHE_SCHEMA
        assert payload["result"] == envelope.result
        assert payload["obs"].events == envelope.obs.events
        assert payload["origin"] == (envelope.pid, envelope.worker)
        assert cache.hits == 1

    def test_pre_schema_entry_is_a_schema_eviction_not_an_error(
        self, tmp_path
    ):
        cache = ResultCache(tmp_path)
        result = SMALL_JOB.run()
        # A payload written before the envelope schema existed: valid
        # version, valid result, but no "schema" key.
        with open(cache.path_for(SMALL_JOB.key()), "wb") as handle:
            pickle.dump(
                {"version": __version__, "key": SMALL_JOB.key(),
                 "result": result},
                handle,
            )
        assert cache.get(SMALL_JOB.key()) is None
        assert cache.misses == 1
        assert cache.schema_evictions == 1
        assert not cache.path_for(SMALL_JOB.key()).exists()

    def test_require_obs_misses_without_discarding(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(SMALL_JOB.key(), SMALL_JOB.run())  # no capture
        assert cache.get_envelope(SMALL_JOB.key(), require_obs=True) is None
        assert cache.misses == 1
        # The entry is still valid for result-only callers.
        assert cache.get(SMALL_JOB.key()) is not None

    def test_executor_replays_capture_from_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = SweepExecutor(cache=cache, capture=True)
        first.run([SMALL_JOB])
        assert first.last_stats.jobs_run == 1
        fresh = first.last_envelopes[0]
        assert fresh is not None and not fresh.cached

        second = SweepExecutor(cache=cache, capture=True)
        second.run([SMALL_JOB])
        assert second.last_stats.cache_hits == 1
        replayed = second.last_envelopes[0]
        assert replayed.cached
        assert replayed.obs.events == fresh.obs.events
        assert (replayed.pid, replayed.worker) == (fresh.pid, fresh.worker)

    def test_merged_trace_count_equals_sum_of_parts(self):
        executor = SweepExecutor(capture=True)
        jobs = [SMALL_JOB, SweepJob.build("ugpu", ("PVC", "DXTC"), 2_000_000)]
        executor.run(jobs)
        recorder = TraceRecorder()
        absorbed = merge_envelopes(
            executor.last_envelopes, tracer=recorder, run_id="r" * 16
        )
        expected = sum(
            len(e.obs.events) for e in executor.last_envelopes if e is not None
        )
        assert absorbed == expected == len(recorder.events())
        shard_ids = {e.args["shard_id"] for e in recorder.events()}
        assert shard_ids == {"job0", "job1"}

    def test_schema_evictions_surface_in_exec_stats(self, tmp_path):
        cache = ResultCache(tmp_path)
        with open(cache.path_for(SMALL_JOB.key()), "wb") as handle:
            pickle.dump({"version": __version__, "result": None}, handle)
        executor = SweepExecutor(cache=cache)
        executor.run([SMALL_JOB])
        assert executor.last_stats.cache_schema_evictions == 1
        assert "schema evictions 1" in executor.last_stats.format()


# ----------------------------------------------------------------------
# Registry snapshot/merge (satellite a)
# ----------------------------------------------------------------------
class TestRegistryMerge:
    def test_counters_merge_to_exact_sums(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.counter("repro_t_total", "t").inc(2.0)
        worker.counter("repro_t_total", "t").inc(3.0)
        merge_registry(parent, snapshot_registry(worker))
        assert parent.get("repro_t_total").value == 5.0

    def test_labeled_counters_merge_per_child(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        fam = worker.counter("repro_t_total", "t", labels=("k",))
        fam.labels(k="a").inc(1)
        fam.labels(k="b").inc(2)
        merge_registry(parent, snapshot_registry(worker))
        merge_registry(parent, snapshot_registry(worker))
        merged = {
            labels: child.value
            for labels, child in parent.get("repro_t_total").samples()
        }
        assert merged[("a",)] == 2.0
        assert merged[("b",)] == 4.0

    def test_histograms_merge_bucketwise(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        buckets = (1.0, 10.0)
        parent.histogram("repro_h", "h", buckets=buckets).observe(0.5)
        worker.histogram("repro_h", "h", buckets=buckets).observe(5.0)
        merge_registry(parent, snapshot_registry(worker))
        hist = parent.get("repro_h").labels()
        assert hist.count == 2
        assert hist.sum == 5.5

    def test_conflicting_buckets_raise_named_telemetry_error(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.histogram("repro_h", "h", buckets=(1.0, 10.0))
        worker.histogram("repro_h", "h", buckets=(2.0, 20.0))
        with pytest.raises(TelemetryError, match="repro_h"):
            merge_registry(parent, snapshot_registry(worker))

    def test_conflicting_kind_raises(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.counter("repro_x", "x")
        worker.gauge("repro_x", "x")
        with pytest.raises(TelemetryError, match="repro_x"):
            merge_registry(parent, snapshot_registry(worker))

    def test_conflicting_labels_raise(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.counter("repro_x", "x", labels=("a",))
        worker.counter("repro_x", "x", labels=("b",))
        worker.get("repro_x").labels(b="1").inc()
        with pytest.raises(TelemetryError, match="repro_x"):
            merge_registry(parent, snapshot_registry(worker))

    def test_gauge_merge_is_last_write_wins(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.gauge("repro_g", "g").set(1.0)
        worker.gauge("repro_g", "g").set(9.0)
        merge_registry(parent, snapshot_registry(worker))
        assert parent.get("repro_g").value == 9.0

    def test_null_registry_merge_is_a_noop(self):
        worker = MetricsRegistry()
        worker.counter("repro_t_total", "t").inc()
        assert merge_registry(NullRegistry(), snapshot_registry(worker)) == 0
        assert merge_registry(None, snapshot_registry(worker)) == 0


# ----------------------------------------------------------------------
# TraceRecorder.absorb
# ----------------------------------------------------------------------
class TestRecorderAbsorb:
    def _worker_events(self):
        worker = TraceRecorder()
        worker.emit("node", "node0", time=10.0, duration=5.0, node=0)
        worker.emit("node", "PVC", time=0.0, duration=3.0, node=0, job_id=7)
        return worker.events()

    def test_absorb_shifts_stamps_and_resequences(self):
        recorder = TraceRecorder()
        recorder.emit("fleet", "arrive", time=1.0)
        count = recorder.absorb(
            self._worker_events(), time_shift=100.0,
            run_id="deadbeef", shard_id="r0.s0", pid=1234, worker="tok",
        )
        assert count == 2
        events = recorder.events()
        assert [e.seq for e in events] == [0, 1, 2]
        absorbed = events[1]
        assert absorbed.time == 110.0
        assert absorbed.duration == 5.0
        assert absorbed.args["run_id"] == "deadbeef"
        assert absorbed.args["pid"] == 1234
        # Worker-set args are preserved, not overridden.
        assert absorbed.args["node"] == 0

    def test_absorb_respects_category_filter(self):
        recorder = TraceRecorder(categories=["fleet"])
        assert recorder.absorb(self._worker_events()) == 0
        assert recorder.filtered == 2

    def test_absorb_skips_none_correlation_values(self):
        recorder = TraceRecorder()
        recorder.absorb(self._worker_events(), run_id=None, pid=9)
        assert "run_id" not in recorder.events()[0].args
        assert recorder.events()[0].args["pid"] == 9


# ----------------------------------------------------------------------
# Chrome-trace track stability (satellite c)
# ----------------------------------------------------------------------
class TestChromeTracks:
    def _span(self, seq, token, os_pid, node):
        return TraceEvent(
            seq=seq, time=float(seq), category="node", name=f"node{node}",
            kind=KIND_SPAN, duration=1.0,
            args={"worker": token, "pid": os_pid, "node": node},
        )

    def test_pid_reuse_does_not_interleave_tracks(self):
        # Two different worker lifetimes sharing one recycled OS pid
        # must still land on two distinct Chrome process tracks.
        events = [self._span(0, "tok-a", 42, 0), self._span(1, "tok-b", 42, 1)]
        doc = chrome_trace(events)
        spans = [r for r in doc["traceEvents"] if r.get("ph") == "X"]
        assert {r["pid"] for r in spans} == {1, 2}
        names = [
            r["args"]["name"] for r in doc["traceEvents"]
            if r.get("ph") == "M" and r["name"] == "process_name"
        ]
        assert names == [
            "orchestrator", "worker-1 (pid 42)", "worker-2 (pid 42)"
        ]

    def test_workerless_trace_keeps_the_single_process_layout(self):
        events = [
            TraceEvent(seq=0, time=0.0, category="epoch", name="epoch"),
        ]
        doc = chrome_trace(events)
        assert all(r["pid"] == 0 for r in doc["traceEvents"])
        assert not any(
            r.get("ph") == "M" and r["name"] == "process_name"
            for r in doc["traceEvents"]
        )

    def test_node_rows_labeled_per_node(self):
        events = [self._span(0, "tok", 1, 0), self._span(1, "tok", 1, 3)]
        labels = [
            r["args"]["name"] for r in chrome_trace(events)["traceEvents"]
            if r.get("ph") == "M" and r["name"] == "thread_name"
        ]
        assert labels == ["node 0", "node 3"]


# ----------------------------------------------------------------------
# Structured logging (obslog)
# ----------------------------------------------------------------------
class TestObsLogger:
    def test_round_trip_and_validation(self, tmp_path):
        path = tmp_path / "run.log.jsonl"
        log = ObsLogger(path, run_id="cafe" * 4, clock=lambda: 12.5)
        bound = log.bind(shard_id="r0.s1", node_id=3)
        log.info("fleet.run", nodes=4)
        bound.debug("fleet.round", job_id=9, wait=0)
        bound.warning("health.straggler", detail="slow")
        log.close()

        assert validate_obslog_file(path) == 3
        records = read_obslog(path)
        assert [r["event"] for r in records] == [
            "fleet.run", "fleet.round", "health.straggler"
        ]
        for record in records:
            for name in REQUIRED_FIELDS:
                assert name in record
            assert record["run_id"] == "cafe" * 4
            assert record["ts"] == 12.5
        assert records[1]["shard_id"] == "r0.s1"
        assert records[1]["node_id"] == 3
        assert records[1]["job_id"] == 9
        assert "shard_id" not in records[0]
        assert log.records_written == 3

    def test_none_fields_are_dropped(self, tmp_path):
        path = tmp_path / "run.log.jsonl"
        log = ObsLogger(path, run_id="r" * 16)
        log.info("x", job_id=None, wait=2)
        log.close()
        record = read_obslog(path)[0]
        assert "job_id" not in record and record["wait"] == 2

    def test_empty_run_id_rejected(self, tmp_path):
        with pytest.raises(TelemetryError):
            ObsLogger(tmp_path / "x.jsonl", run_id="")

    def test_malformed_line_raises_telemetry_error(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(TelemetryError, match="bad.jsonl:2"):
            read_obslog(path)

    def test_torn_final_line_tolerated_when_not_strict(self, tmp_path):
        # A killed run leaves a partial final record behind; non-strict
        # reads keep the intact prefix and report the truncation.
        path = tmp_path / "killed.jsonl"
        log = ObsLogger(path, run_id="r" * 16)
        log.info("fleet.run", nodes=4)
        log.info("fleet.round", round=0)
        log.close()
        with open(path, "a") as handle:
            handle.write('{"ts": 3.0, "level": "in')
        with pytest.raises(TelemetryError, match="killed.jsonl:3"):
            read_obslog(path)
        errors = []
        records = read_obslog(path, strict=False, errors=errors)
        assert [r["event"] for r in records] == ["fleet.run", "fleet.round"]
        assert len(errors) == 1 and "killed.jsonl:3" in errors[0]

    def test_gzip_obslog_round_trip(self, tmp_path):
        path = tmp_path / "run.log.jsonl.gz"
        log = ObsLogger(path, run_id="beef" * 4)
        log.info("fleet.run", nodes=2)
        log.close()
        assert path.read_bytes()[:2] == b"\x1f\x8b"
        assert validate_obslog_file(path) == 1
        assert read_obslog(path)[0]["event"] == "fleet.run"

    def test_validation_flags_missing_and_mistyped_fields(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ts": 1.0, "level": "info", "event": "x"}\n')
        with pytest.raises(TelemetryError, match="run_id"):
            validate_obslog_file(path)
        path.write_text(
            '{"ts": 1.0, "level": "info", "event": "x", '
            '"run_id": "r", "pid": "not-an-int"}\n'
        )
        with pytest.raises(TelemetryError, match="pid"):
            validate_obslog_file(path)

    def test_fleet_run_emits_correlated_records(self, tmp_path):
        path = tmp_path / "fleet.log.jsonl"
        log = ObsLogger(path, run_id="f" * 16)
        run_fleet(1, log=log)
        log.close()
        records = read_obslog(path)
        assert validate_obslog_file(path) == len(records) > 0
        events = {r["event"] for r in records}
        assert {"fleet.run", "fleet.round", "fleet.result"} <= events
        rounds = [r for r in records if r["event"] == "fleet.round"]
        # The simulator re-binds its own deterministic run_id.
        assert all(len(r["run_id"]) == 16 for r in rounds)
        assert len({r["run_id"] for r in rounds}) == 1


# ----------------------------------------------------------------------
# PhaseProfiler snapshot/absorb
# ----------------------------------------------------------------------
class TestProfilerMerge:
    def test_absorb_grafts_under_prefix(self):
        worker = PhaseProfiler()
        with worker.span("job"):
            with worker.span("node"):
                pass
        snapshot = worker.snapshot()
        assert set(snapshot) == {"job", "job/node"}

        parent = PhaseProfiler()
        with parent.span("fleet.execute"):
            pass
        parent.absorb(snapshot, prefix=("fleet.execute",))
        parent.absorb(snapshot, prefix=("fleet.execute",))
        merged = parent.snapshot()
        assert merged["fleet.execute/job"][0] == 2
        assert merged["fleet.execute/job/node"][0] == 2


# ----------------------------------------------------------------------
# Health monitor (synthetic round feeds)
# ----------------------------------------------------------------------
class TestHealthMonitor:
    def test_straggler_detection(self):
        monitor = FleetHealthMonitor()
        fired = monitor.observe_round(
            0, job_seconds=(0.1, 0.1, 0.1, 1.0)
        )
        assert [i.kind for i in fired] == [KIND_STRAGGLER]
        assert fired[0].value == pytest.approx(10.0)
        assert "10.0x" in fired[0].detail

    def test_straggler_needs_enough_samples_and_magnitude(self):
        monitor = FleetHealthMonitor()
        # Two samples: no median worth trusting.
        assert monitor.observe_round(0, job_seconds=(0.1, 1.0)) == []
        # Microsecond noise below straggler_min_seconds never alarms.
        assert monitor.observe_round(
            1, job_seconds=(1e-6, 1e-6, 1e-6, 1e-4)
        ) == []

    def test_wait_stall_fires_and_rearms(self):
        monitor = FleetHealthMonitor(stall_rounds=3)
        fired = []
        for round_index, depth in enumerate((1, 2, 3, 4, 5, 6, 7, 8)):
            fired.extend(
                monitor.observe_round(round_index, wait_depth=depth)
            )
        # Window of 4 depths fills at round 3 and re-arms after firing,
        # so the second alarm needs another full window.
        assert [i.kind for i in fired] == [KIND_WAIT_STALL] * 2
        assert [i.round_index for i in fired] == [3, 7]

    def test_draining_queue_never_stalls(self):
        monitor = FleetHealthMonitor(stall_rounds=3)
        for round_index, depth in enumerate((5, 4, 5, 4, 5, 4, 5)):
            assert monitor.observe_round(round_index, wait_depth=depth) == []

    def test_cache_collapse_needs_an_established_baseline(self):
        monitor = FleetHealthMonitor(cache_window=4)
        # Hit rate is zero from the start: never a collapse, there was
        # no baseline to fall from.
        for round_index in range(12):
            assert monitor.observe_round(
                round_index, cache_hits=0, cache_lookups=4
            ) == []

    def test_cache_collapse_detection(self):
        monitor = FleetHealthMonitor(cache_window=4)
        incidents = []
        for round_index in range(4):
            incidents += monitor.observe_round(
                round_index, cache_hits=4, cache_lookups=4
            )
        for round_index in range(4, 8):
            incidents += monitor.observe_round(
                round_index, cache_hits=0, cache_lookups=4
            )
        assert [i.kind for i in incidents] == [KIND_CACHE_COLLAPSE]
        assert incidents[0].round_index == 7

    def test_report_format_and_counts(self):
        monitor = FleetHealthMonitor()
        monitor.observe_round(0, job_seconds=(0.1, 0.1, 0.1, 1.0))
        report = monitor.report()
        assert not report.healthy
        assert report.counts() == {KIND_STRAGGLER: 1}
        assert "straggler x1" in report.format()
        healthy = FleetHealthMonitor().report()
        assert healthy.healthy and "no incidents" in healthy.format()

    def test_incidents_surface_in_all_three_streams(self, tmp_path):
        registry = MetricsRegistry()
        recorder = TraceRecorder()
        log = ObsLogger(tmp_path / "h.jsonl", run_id="h" * 16)
        monitor = FleetHealthMonitor(
            metrics=registry, tracer=recorder, log=log
        )
        monitor.run_id = "h" * 16
        monitor.observe_round(3, now=7.0, job_seconds=(0.1, 0.1, 0.1, 1.0))
        log.close()
        text = to_prometheus(registry)
        assert 'repro_health_incidents_total{kind="straggler"} 1' in text
        events = recorder.events("health")
        assert len(events) == 1
        assert events[0].name == KIND_STRAGGLER
        assert events[0].args["run_id"] == "h" * 16
        records = read_obslog(tmp_path / "h.jsonl")
        assert records[0]["event"] == "health.straggler"
        assert records[0]["level"] == "warning"

    def test_threshold_validation(self):
        with pytest.raises(ConfigError):
            FleetHealthMonitor(straggler_factor=1.0)
        with pytest.raises(ConfigError):
            FleetHealthMonitor(stall_rounds=1)
        with pytest.raises(ConfigError):
            FleetHealthMonitor(cache_floor=0.6, cache_baseline=0.5)

    def test_fleet_attaches_monitor_and_reports(self):
        monitor = FleetHealthMonitor()
        result, _, _ = run_fleet(1, health=monitor)
        assert result.health is not None
        assert result.health.rounds > 0
        assert monitor.run_id  # the simulator filled in its run_id
