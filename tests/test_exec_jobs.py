"""Tests for sweep-job specs, fingerprints, and the policy registry."""

import pickle

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import BPSystem, QoSTarget, UGPUSystem
from repro.errors import ConfigError
from repro.exec import (
    SweepJob,
    canonical_policy_name,
    execute_job,
    fingerprint,
    policy_name_of,
    register_policy,
    registered_policies,
    resolve_policy,
)
from repro.metrics import EnergyModel
from repro.pagemove import MigrationMode
from tests.strategies import DETERMINISM_SETTINGS


class TestRegistry:
    def test_all_policies_registered(self):
        assert registered_policies() == [
            "bp", "bp-bs", "bp-sb", "cd-search", "mps",
            "ugpu", "ugpu-offline", "ugpu-ori", "ugpu-soft",
        ]

    def test_lookup_is_case_insensitive_with_aliases(self):
        from repro.exec import registry

        assert resolve_policy("BP") is registry.bp
        assert resolve_policy("bp") is registry.bp
        assert resolve_policy("CD") is resolve_policy("cd-search")
        assert canonical_policy_name("CD") == "cd-search"
        assert canonical_policy_name("UGPU-offline") == "ugpu-offline"

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError, match="unknown policy"):
            resolve_policy("nonsense")

    def test_reverse_lookup(self):
        assert policy_name_of(BPSystem) == "bp"
        assert policy_name_of(UGPUSystem) == "ugpu"
        assert policy_name_of(lambda apps: None) is None

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigError, match="already registered"):
            register_policy("bp", BPSystem)


class TestJobKeyStability:
    def test_same_spec_same_key(self):
        a = SweepJob.build("bp", ("PVC", "DXTC"), 5_000_000)
        b = SweepJob.build("bp", ("PVC", "DXTC"), 5_000_000)
        assert a == b
        assert a.key() == b.key()

    def test_alias_and_case_share_a_key(self):
        assert (SweepJob.build("BP", ("PVC",)).key()
                == SweepJob.build("bp", ("PVC",)).key())
        assert (SweepJob.build("CD", ("PVC",)).key()
                == SweepJob.build("cd-search", ("PVC",)).key())

    def test_changed_horizon_changes_key(self):
        a = SweepJob.build("bp", ("PVC", "DXTC"), 5_000_000)
        b = SweepJob.build("bp", ("PVC", "DXTC"), 5_000_001)
        assert a.key() != b.key()

    def test_changed_mix_or_policy_changes_key(self):
        base = SweepJob.build("bp", ("PVC", "DXTC"))
        assert base.key() != SweepJob.build("bp", ("DXTC", "PVC")).key()
        assert base.key() != SweepJob.build("ugpu", ("PVC", "DXTC")).key()

    def test_changed_kwargs_changes_key(self):
        plain = SweepJob.build("ugpu", ("PVC", "DXTC"))
        qos = SweepJob.build("ugpu", ("PVC", "DXTC"),
                             kwargs={"qos": QoSTarget(app_id=1, target_np=0.75)})
        qos2 = SweepJob.build("ugpu", ("PVC", "DXTC"),
                              kwargs={"qos": QoSTarget(app_id=1, target_np=0.8)})
        assert len({plain.key(), qos.key(), qos2.key()}) == 3

    def test_kwarg_order_does_not_matter(self):
        a = SweepJob.build("bp", ("PVC",), kwargs={"epoch_cycles": 1_000_000,
                                                   "total_memory_bytes": 1 << 30})
        b = SweepJob.build("bp", ("PVC",), kwargs={"total_memory_bytes": 1 << 30,
                                                   "epoch_cycles": 1_000_000})
        assert a.key() == b.key()

    def test_key_survives_pickling(self):
        job = SweepJob.build("ugpu-soft", ("PVC", "DXTC"), 5_000_000,
                             kwargs={"epoch_cycles": 1_000_000})
        clone = pickle.loads(pickle.dumps(job))
        assert clone == job
        assert clone.key() == job.key()

    @DETERMINISM_SETTINGS
    @given(
        policy=st.sampled_from(["bp", "BP", "ugpu", "CD", "mps"]),
        mix=st.lists(st.sampled_from(["PVC", "DXTC", "LBM", "CP", "MRI-Q"]),
                     min_size=1, max_size=4),
        cycles=st.integers(min_value=1, max_value=50_000_000),
        epoch=st.integers(min_value=1_000, max_value=10_000_000),
    )
    def test_key_is_a_pure_function_of_the_spec(self, policy, mix, cycles, epoch):
        kwargs = {"epoch_cycles": epoch}
        a = SweepJob.build(policy, mix, cycles, kwargs)
        b = SweepJob.build(policy, list(mix), cycles, dict(kwargs))
        assert a.key() == b.key()
        assert len(a.key()) == 64
        assert " at 0x" not in a.spec()


class TestFingerprint:
    def test_primitives_and_collections(self):
        assert fingerprint(1) != fingerprint("1")
        assert fingerprint(1.0) == fingerprint(1.0)
        assert fingerprint([1, 2]) == fingerprint((1, 2))
        assert fingerprint({"b": 2, "a": 1}) == fingerprint({"a": 1, "b": 2})

    def test_enum_and_dataclass(self):
        assert "SOFTWARE" in fingerprint(MigrationMode.SOFTWARE)
        assert (fingerprint(QoSTarget(app_id=1, target_np=0.75))
                == fingerprint(QoSTarget(app_id=1, target_np=0.75)))

    def test_plain_config_object_uses_its_state(self):
        a = fingerprint(EnergyModel(core_static_watts=95.0))
        b = fingerprint(EnergyModel(core_static_watts=95.0))
        c = fingerprint(EnergyModel(core_static_watts=100.0))
        assert a == b != c
        assert " at 0x" not in a

    def test_address_bearing_repr_rejected(self):
        with pytest.raises(ConfigError, match="memory address"):
            fingerprint(object())


class TestJobValidation:
    def test_empty_mix_rejected(self):
        with pytest.raises(ConfigError):
            SweepJob.build("bp", ())

    def test_nonpositive_cycles_rejected(self):
        with pytest.raises(ConfigError):
            SweepJob.build("bp", ("PVC",), 0)

    def test_execute_job_runs_the_policy(self):
        result = execute_job(SweepJob.build("bp", ("PVC", "DXTC"), 2_000_000))
        assert result.policy == "BP"
        assert result.mix_name == "PVC_DXTC"
        assert result.stp > 0
