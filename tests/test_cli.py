"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import main


class TestCatalog:
    def test_prints_all_benchmarks(self, capsys):
        assert main(["catalog"]) == 0
        out = capsys.readouterr().out
        for abbr in ("PVC", "DXTC", "LAVAMD", "MRI-Q"):
            assert abbr in out
        assert out.count("memory") == 10
        assert out.count("compute") == 5


class TestRun:
    def test_run_single_policy(self, capsys):
        assert main(["run", "--mix", "PVC,DXTC", "--policy", "ugpu",
                     "--cycles", "10000000"]) == 0
        out = capsys.readouterr().out
        assert "ugpu" in out
        assert "PVC=" in out and "DXTC=" in out

    def test_run_multiple_policies(self, capsys):
        assert main(["run", "--mix", "PVC,DXTC", "--policy", "bp", "ugpu",
                     "--cycles", "10000000"]) == 0
        out = capsys.readouterr().out
        assert "bp" in out and "ugpu" in out

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--mix", "PVC,DXTC", "--policy", "nonsense"])

    def test_missing_mix_rejected(self):
        with pytest.raises(SystemExit):
            main(["run"])


class TestSweepAndQoS:
    def test_sweep_reports_gain(self, capsys):
        assert main(["sweep", "--policies", "bp", "ugpu",
                     "--cycles", "5000000"]) == 0
        out = capsys.readouterr().out
        assert "ugpu vs bp:" in out
        assert "STP mean" in out

    def test_qos_scenario(self, capsys):
        assert main(["qos", "--mix", "PVC,DXTC", "--target", "0.75",
                     "--cycles", "10000000"]) == 0
        out = capsys.readouterr().out
        assert "UGPU" in out and "MPS" in out
        assert "meets" in out or "VIOLATES" in out

    def test_qos_requires_two_benchmarks(self, capsys):
        assert main(["qos", "--mix", "PVC", "--cycles", "5000000"]) == 2


class TestExport:
    def test_fig2_csv_to_stdout(self, capsys):
        assert main(["export", "fig2"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("series,x,normalized_perf")
        assert "vs_channels" in out and "vs_sms" in out

    def test_fig4_csv_to_file(self, tmp_path, capsys):
        path = tmp_path / "fig4.csv"
        assert main(["export", "fig4", "--output", str(path)]) == 0
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "pvc_sms,pvc_channels,stp"
        assert len(lines) > 50

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["export", "fig99"])


class TestMetricsFlags:
    def test_arrivals_with_metrics_exports(self, tmp_path, capsys):
        prom = tmp_path / "out.prom"
        series = tmp_path / "series.csv"
        snapshot = tmp_path / "out.json"
        assert main(["arrivals", "--seed", "0", "--cycles", "8000000",
                     "--metrics-out", str(prom),
                     "--metrics-csv", str(series),
                     "--metrics-json", str(snapshot)]) == 0
        out = capsys.readouterr().out
        assert "metric samples" in out

        from repro.telemetry import (
            read_series,
            series_values,
            validate_prometheus_file,
        )
        assert validate_prometheus_file(prom) > 0
        rows = read_series(series)
        assert series_values(rows, "repro_epochs_total")
        assert snapshot.exists()

    def test_csv_series_matches_open_system_result(self, tmp_path, capsys):
        """Acceptance check: the sampled CSV's final queueing-delay and
        admission figures equal the returned OpenSystemResult's."""
        from repro.exec import resolve_policy
        from repro.telemetry import (
            CsvSampler,
            MetricsRegistry,
            read_series,
            series_values,
        )
        from repro.workloads import poisson_arrivals

        # Arrivals stop at 8M but the run continues to 25M, so every
        # admitted job executes: result.runs covers all admissions and
        # the CSV totals must agree exactly.
        schedule = poisson_arrivals(mean_interarrival_cycles=2_000_000,
                                    horizon_cycles=8_000_000, seed=0)
        registry = MetricsRegistry()
        sampler = CsvSampler(tmp_path / "series.csv").attach(registry)
        system = resolve_policy("ugpu")([], arrivals=schedule,
                                        metrics=registry)
        result = system.run(25_000_000)
        sampler.close()

        rows = read_series(tmp_path / "series.csv")
        admitted = series_values(rows, "repro_open_admissions_total")
        assert admitted[-1][1] == result.admissions
        delay_sum = series_values(
            rows, "repro_open_queueing_delay_cycles_sum")
        delay_count = series_values(
            rows, "repro_open_queueing_delay_cycles_count")
        assert delay_count[-1][1] == result.admissions
        expected = result.mean_queueing_delay * result.admissions
        assert delay_sum[-1][1] == pytest.approx(expected)

    def test_metrics_subcommand_bridges_a_trace(self, tmp_path, capsys):
        prefix = tmp_path / "tl"
        assert main(["trace", "--mix", "PVC,DXTC", "--cycles", "6000000",
                     "--output", str(prefix), "--format", "jsonl"]) == 0
        capsys.readouterr()
        prom = tmp_path / "bridge.prom"
        assert main(["metrics", str(prefix) + ".jsonl",
                     "--out", str(prom), "--validate"]) == 0
        out = capsys.readouterr().out
        assert "exposition format OK" in out

        from repro.telemetry import parse_prometheus
        samples = parse_prometheus(prom.read_text())["samples"]
        assert samples[("repro_epochs_total", ())] > 0

    def test_metrics_subcommand_to_stdout(self, tmp_path, capsys):
        prefix = tmp_path / "tl"
        assert main(["trace", "--mix", "PVC,DXTC", "--cycles", "6000000",
                     "--output", str(prefix), "--format", "jsonl"]) == 0
        capsys.readouterr()
        assert main(["metrics", str(prefix) + ".jsonl"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_epochs_total counter" in out
