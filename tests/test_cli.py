"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import main


class TestCatalog:
    def test_prints_all_benchmarks(self, capsys):
        assert main(["catalog"]) == 0
        out = capsys.readouterr().out
        for abbr in ("PVC", "DXTC", "LAVAMD", "MRI-Q"):
            assert abbr in out
        assert out.count("memory") == 10
        assert out.count("compute") == 5


class TestRun:
    def test_run_single_policy(self, capsys):
        assert main(["run", "--mix", "PVC,DXTC", "--policy", "ugpu",
                     "--cycles", "10000000"]) == 0
        out = capsys.readouterr().out
        assert "ugpu" in out
        assert "PVC=" in out and "DXTC=" in out

    def test_run_multiple_policies(self, capsys):
        assert main(["run", "--mix", "PVC,DXTC", "--policy", "bp", "ugpu",
                     "--cycles", "10000000"]) == 0
        out = capsys.readouterr().out
        assert "bp" in out and "ugpu" in out

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--mix", "PVC,DXTC", "--policy", "nonsense"])

    def test_missing_mix_rejected(self):
        with pytest.raises(SystemExit):
            main(["run"])


class TestSweepAndQoS:
    def test_sweep_reports_gain(self, capsys):
        assert main(["sweep", "--policies", "bp", "ugpu",
                     "--cycles", "5000000"]) == 0
        out = capsys.readouterr().out
        assert "ugpu vs bp:" in out
        assert "STP mean" in out

    def test_qos_scenario(self, capsys):
        assert main(["qos", "--mix", "PVC,DXTC", "--target", "0.75",
                     "--cycles", "10000000"]) == 0
        out = capsys.readouterr().out
        assert "UGPU" in out and "MPS" in out
        assert "meets" in out or "VIOLATES" in out

    def test_qos_requires_two_benchmarks(self, capsys):
        assert main(["qos", "--mix", "PVC", "--cycles", "5000000"]) == 2


class TestExport:
    def test_fig2_csv_to_stdout(self, capsys):
        assert main(["export", "fig2"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("series,x,normalized_perf")
        assert "vs_channels" in out and "vs_sms" in out

    def test_fig4_csv_to_file(self, tmp_path, capsys):
        path = tmp_path / "fig4.csv"
        assert main(["export", "fig4", "--output", str(path)]) == 0
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "pvc_sms,pvc_channels,stp"
        assert len(lines) > 50

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["export", "fig99"])
