"""Property-based tests (hypothesis) on core data structures and
invariants."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import DemandAwarePartitioner, PartitionState
from repro.core.profiler import AppProfile, EpochProfiler
from repro.gpu import GPUConfig, HitRateCurve, Kernel, PerformanceModel
from repro.gpu.llc import SetAssociativeCache
from repro.metrics import AppRun, antt, stp
from repro.pagemove import MigrationCostModel, MigrationMode, PageMoveAddressMapping
from repro.sim import EventQueue
from tests.strategies import SLOW_SETTINGS
from repro.vm import TLB, PageTable

CONFIG = GPUConfig()
MAPPING = PageMoveAddressMapping()
PROFILER = EpochProfiler(CONFIG)


# ---------------------------------------------------------------------------
# Simulation engine
# ---------------------------------------------------------------------------
@given(st.lists(st.integers(min_value=0, max_value=10_000), max_size=60))
def test_events_always_fire_in_nondecreasing_time(times):
    queue = EventQueue()
    fired = []
    for t in times:
        queue.schedule(t, lambda t=t: fired.append(t))
    queue.run_all()
    assert fired == sorted(fired)
    assert len(fired) == len(times)


@given(st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=40),
       st.integers(min_value=0, max_value=100))
def test_run_until_partitions_events_exactly(times, cut):
    queue = EventQueue()
    fired = []
    for t in times:
        queue.schedule(t, lambda t=t: fired.append(t))
    queue.run_until(cut)
    assert fired == sorted(t for t in times if t <= cut)
    assert queue.clock.now == max([cut] + fired)


# ---------------------------------------------------------------------------
# Address mapping (Figure 8)
# ---------------------------------------------------------------------------
@given(st.integers(min_value=0, max_value=MAPPING.total_bytes // 4096 - 1))
def test_every_page_confined_to_one_channel(rpn):
    channels = {loc.channel for loc in MAPPING.page_columns(rpn)}
    assert channels == {MAPPING.channel_of_page(rpn)}


@given(st.integers(min_value=0, max_value=MAPPING.total_bytes // 4096 - 1))
def test_page_striped_over_all_stacks_and_groups(rpn):
    columns = MAPPING.page_columns(rpn)
    assert {c.stack for c in columns} == set(range(4))
    assert {c.bank_group for c in columns} == set(range(4))
    assert len(columns) == 32


@given(st.integers(min_value=0, max_value=MAPPING.total_bytes - 1))
def test_decode_fields_within_geometry(address):
    loc = MAPPING.decode(address)
    cfg = MAPPING.config
    assert 0 <= loc.stack < cfg.num_stacks
    assert 0 <= loc.channel < cfg.channels_per_stack
    assert 0 <= loc.bank_group < cfg.bank_groups_per_channel
    assert 0 <= loc.bank < cfg.banks_per_group
    assert 0 <= loc.row < cfg.rows_per_bank
    assert 0 <= loc.column < cfg.columns_per_row


@given(st.integers(min_value=0, max_value=MAPPING.total_bytes // 4096 - 1),
       st.integers(min_value=0, max_value=7))
def test_retarget_changes_only_channel(rpn, channel):
    moved = MAPPING.retarget_page(rpn, channel)
    a, b = MAPPING.page_coordinates(rpn), MAPPING.page_coordinates(moved)
    assert b.channel == channel
    assert (a.bank, a.row, a.column_base) == (b.bank, b.row, b.column_base)
    # Retargeting back is the identity.
    assert MAPPING.retarget_page(moved, a.channel) == rpn


# ---------------------------------------------------------------------------
# Page table
# ---------------------------------------------------------------------------
@given(st.dictionaries(st.integers(min_value=0, max_value=(1 << 36) - 1),
                       st.tuples(st.integers(min_value=0, max_value=1 << 20),
                                 st.integers(min_value=0, max_value=7)),
                       max_size=50))
def test_page_table_map_lookup_roundtrip(mappings):
    table = PageTable(0)
    for vpn, (rpn, channel) in mappings.items():
        table.map(vpn, rpn, channel)
    assert len(table) == len(mappings)
    for vpn, (rpn, channel) in mappings.items():
        entry = table.lookup(vpn)
        assert entry.rpn == rpn and entry.channel == channel
    # Channel counts sum to the mapping count.
    assert sum(table.channel_page_counts().values()) == len(mappings)
    # Iteration yields every vpn exactly once, sorted.
    vpns = [vpn for vpn, _ in table.entries()]
    assert vpns == sorted(mappings)


@given(st.sets(st.integers(min_value=0, max_value=(1 << 36) - 1), max_size=30))
def test_page_table_unmap_restores_emptiness(vpns):
    table = PageTable(0)
    for vpn in vpns:
        table.map(vpn, vpn & 0xFFFF, channel=vpn % 8)
    for vpn in vpns:
        table.unmap(vpn)
    assert len(table) == 0
    assert all(table.lookup(vpn) is None for vpn in vpns)


# ---------------------------------------------------------------------------
# TLB
# ---------------------------------------------------------------------------
@given(st.lists(st.tuples(st.integers(min_value=0, max_value=3),
                          st.integers(min_value=0, max_value=500)),
                max_size=120))
def test_tlb_occupancy_never_exceeds_capacity(accesses):
    tlb = TLB(entries=16, sets=4, name="prop")
    for app_id, vpn in accesses:
        if tlb.lookup(app_id, vpn) is None:
            tlb.fill(app_id, vpn, rpn=vpn, channel=vpn % 8)
    assert tlb.occupancy() <= 16
    assert tlb.stats.accesses == len(accesses)


@given(st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=60))
def test_tlb_fill_then_lookup_hits(vpns):
    tlb = TLB.l1()  # 64 entries, fully associative: 31 keys always fit
    for vpn in vpns:
        tlb.fill(0, vpn, rpn=vpn + 1, channel=0)
    for vpn in set(vpns):
        entry = tlb.lookup(0, vpn)
        assert entry is not None and entry.rpn == vpn + 1


# ---------------------------------------------------------------------------
# Cache
# ---------------------------------------------------------------------------
@given(st.lists(st.integers(min_value=0, max_value=1 << 20), max_size=200))
def test_cache_stats_always_consistent(addresses):
    cache = SetAssociativeCache(size_bytes=16 * 1024, ways=4, line_bytes=128)
    cache.run_trace(addresses)
    assert cache.stats.accesses == len(addresses)
    assert cache.occupancy() <= 16 * 1024 // 128
    assert 0.0 <= cache.stats.hit_rate <= 1.0
    # An immediate re-walk of a short unique-line suffix can't miss more
    # than the capacity allows; weaker invariant: repeating the full trace
    # can only raise the hit count.
    before = cache.stats.hits
    cache.run_trace(addresses)
    assert cache.stats.hits >= before


@given(
    st.floats(min_value=1e3, max_value=1e8),
    st.floats(min_value=0.01, max_value=0.99),
    st.floats(min_value=1e3, max_value=1e9),
)
def test_hit_rate_curve_monotone_and_bounded(ref_cap, ref_hit, working_set):
    curve = HitRateCurve(ref_cap, ref_hit, working_set)
    capacities = [working_set * f for f in (0.01, 0.1, 0.5, 1.0, 2.0)]
    rates = [curve.hit_rate(c) for c in capacities]
    assert all(0.0 <= r <= 1.0 for r in rates)
    assert rates == sorted(rates)


# ---------------------------------------------------------------------------
# Performance model
# ---------------------------------------------------------------------------
KERNELS = st.builds(
    Kernel,
    name=st.just("prop"),
    ipc_per_sm=st.floats(min_value=1.0, max_value=64.0),
    apki_llc=st.floats(min_value=0.0, max_value=20.0),
    llc_hit_rate=st.floats(min_value=0.0, max_value=0.999),
    footprint_bytes=st.integers(min_value=0, max_value=1 << 32),
)


@given(KERNELS,
       st.integers(min_value=4, max_value=76),
       st.integers(min_value=4, max_value=28))
def test_throughput_monotone_in_resources(kernel, sms, channels):
    model = PerformanceModel(CONFIG)
    base = model.throughput(kernel, sms, channels).ipc
    assert model.throughput(kernel, sms + 4, channels).ipc >= base - 1e-9
    assert model.throughput(kernel, sms, channels + 4).ipc >= base - 1e-9


@given(KERNELS,
       st.integers(min_value=4, max_value=80),
       st.integers(min_value=4, max_value=32))
def test_throughput_never_exceeds_rooflines(kernel, sms, channels):
    t = PerformanceModel(CONFIG).throughput(kernel, sms, channels)
    assert t.ipc <= t.compute_roof + 1e-9
    assert t.ipc <= t.bandwidth_roof + 1e-9
    assert t.ipc <= t.mlp_roof + 1e-9
    assert t.dram_bytes_per_cycle >= 0


@given(KERNELS)
def test_normalized_progress_bounded_by_one(kernel):
    model = PerformanceModel(CONFIG)
    for sms, channels in ((8, 8), (40, 16), (80, 32)):
        np_value = model.normalized_progress(kernel, sms, channels)
        assert 0.0 <= np_value <= 1.0 + 1e-9


# ---------------------------------------------------------------------------
# Partitioner
# ---------------------------------------------------------------------------
def make_profile(app_id, ipc_max, apki, hit):
    return AppProfile(
        app_id=app_id,
        ipc_max_per_sm=ipc_max,
        apki_llc=apki,
        llc_hit_rate=hit,
        bw_demand_per_sm=PROFILER.bw_demand_per_sm(ipc_max, apki),
        bw_supply_per_mc=PROFILER.bw_supply_per_mc(hit),
    )


PROFILES = st.tuples(
    st.floats(min_value=8.0, max_value=64.0),
    st.floats(min_value=0.0, max_value=20.0),
    st.floats(min_value=0.0, max_value=0.999),
)


@SLOW_SETTINGS
@given(st.lists(PROFILES, min_size=2, max_size=4))
def test_partitioner_conserves_budget_and_minimums(raw_profiles):
    app_ids = list(range(len(raw_profiles)))
    state = PartitionState.even(app_ids)
    partitioner = DemandAwarePartitioner(state, gpu_config=CONFIG)
    profiles = {
        i: make_profile(i, *params) for i, params in enumerate(raw_profiles)
    }
    decision = partitioner.compute(profiles)
    total_sms = sum(a.sms for a in decision.allocations.values())
    total_mcs = sum(a.channels for a in decision.allocations.values())
    assert total_sms == state.used_sms
    assert total_mcs == state.used_channels
    for alloc in decision.allocations.values():
        assert alloc.sms >= state.min_sms
        assert alloc.channels >= state.min_channels
        assert alloc.channels % state.channel_group == 0
    assert decision.iterations <= partitioner.max_iterations


# ---------------------------------------------------------------------------
# Migration cost model
# ---------------------------------------------------------------------------
@given(st.integers(min_value=0, max_value=1_000_000),
       st.sampled_from(list(MigrationMode)))
def test_migration_charge_monotone_and_consistent(n_pages, mode):
    model = MigrationCostModel(mapping=MAPPING)
    charge = model.charge(n_pages, mode)
    bigger = model.charge(n_pages + 1, mode)
    assert bigger.window_cycles >= charge.window_cycles
    assert charge.bytes_moved == n_pages * 4096
    assert charge.commands == n_pages * model.commands_per_page(mode)
    assert 0.0 <= charge.channel_bw_penalty <= 1.0
    assert 0.0 <= charge.global_penalty < 1.0


@given(st.integers(min_value=1, max_value=100_000))
def test_ppmm_always_cheapest(n_pages):
    model = MigrationCostModel(mapping=MAPPING)
    ppmm = model.charge(n_pages, MigrationMode.PPMM).window_cycles
    soft = model.charge(n_pages, MigrationMode.SOFTWARE).window_cycles
    trad = model.charge(n_pages, MigrationMode.TRADITIONAL).window_cycles
    assert ppmm < soft < trad


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------
RUNS = st.lists(
    st.builds(
        AppRun,
        app_id=st.integers(min_value=0, max_value=7),
        name=st.just("app"),
        ipc=st.floats(min_value=0.1, max_value=1000.0),
        ipc_alone=st.floats(min_value=0.1, max_value=1000.0),
    ),
    min_size=1,
    max_size=8,
)


@given(RUNS)
def test_stp_and_antt_relations(runs):
    s = stp(runs)
    a = antt(runs)
    n = len(runs)
    assert s > 0
    assert a > 0
    # Cauchy-Schwarz style bound: STP/n and 1/ANTT are both means of
    # reciprocal quantities, so STP * ANTT >= n.
    assert s * a >= n - 1e-9


@given(RUNS)
def test_stp_bounded_when_no_speedup(runs):
    # If no app exceeds its solo IPC, STP <= n and ANTT >= 1.
    capped = [
        AppRun(r.app_id, r.name, min(r.ipc, r.ipc_alone), r.ipc_alone)
        for r in runs
    ]
    assert stp(capped) <= len(capped) + 1e-9
    assert antt(capped) >= 1.0 - 1e-9


# ---------------------------------------------------------------------------
# Mapping <-> driver adapter consistency
# ---------------------------------------------------------------------------
@given(st.integers(min_value=0, max_value=7),
       st.integers(min_value=1, max_value=40))
def test_frames_of_channel_agree_with_channel_of_frame(channel, count):
    from repro.pagemove import InterleavedPageMapping

    adapter = InterleavedPageMapping(MAPPING)
    frames = adapter.frames_of_channel(channel)
    for _ in range(count):
        rpn = next(frames)
        assert adapter.channel_of_frame(rpn) == channel
        assert MAPPING.channel_of_page(rpn) == channel


@given(st.integers(min_value=1, max_value=64))
def test_driver_free_lists_match_mapping(pages_per_channel):
    from repro.pagemove import InterleavedPageMapping
    from repro.vm import GPUDriver

    driver = GPUDriver(pages_per_channel=pages_per_channel,
                       mapping=InterleavedPageMapping(MAPPING))
    driver.register_app(0, channels=range(8))
    seen = set()
    for channel in range(8):
        assert driver.free_pages(channel) == pages_per_channel
        for _ in range(pages_per_channel):
            rpn = driver.allocate_page(0, channel=channel)
            assert driver.channel_of_frame(rpn) == channel
            assert rpn not in seen
            seen.add(rpn)
