"""Golden regression: the policy refactor preserves closed-system results.

``tests/golden/system_results.json`` was captured from the pre-refactor
subclass implementations (one entry per registered policy and mix, float
fields fingerprinted with ``float.hex`` so equality is bit-exact).  Every
registered policy, now composed as ``MultitaskSystem(apps, policy=...)``,
must reproduce those results byte-for-byte.

BP-BS / BP-SB are defined for exactly two applications, so the
four-program mix covers the other seven policies only — matching the
capture.

Every fixture is asserted under *both* kernel backends: the scalar
oracle and (when numpy is importable) the vectorized fast path, which
must reproduce the same bytes — that is the fast path's correctness
contract.
"""

import json
import os

import pytest

from repro.core.system import clear_solo_ipc_cache
from repro.exec.registry import resolve_policy
from repro.fastpath import numpy_available
from repro.workloads.mixes import build_mix

BACKENDS = ["scalar"] + (["numpy"] if numpy_available() else [])

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden",
                           "system_results.json")
MIXES = {
    "PVC_DXTC": ["PVC", "DXTC"],
    "SRAD_CP_LBM_FWT": ["SRAD", "CP", "LBM", "FWT"],
}


def _load_golden():
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)


GOLDEN = _load_golden()


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("key", sorted(GOLDEN))
def test_policy_reproduces_golden_result(key, backend):
    policy, mix_name = key.split(":")
    want = GOLDEN[key]
    apps = build_mix(MIXES[mix_name]).applications
    # The solo-IPC memo is process-wide; clear it so this backend, not a
    # previously parametrized one, computes the values being asserted.
    clear_solo_ipc_cache()
    result = resolve_policy(policy)(
        apps, kernel_backend=backend
    ).run(mix_name=mix_name)

    assert result.policy == want["policy"]
    assert result.mix_name == want["mix_name"]
    assert result.total_cycles == want["total_cycles"]
    assert result.repartitions == want["repartitions"]

    got_runs = [
        {"app_id": r.app_id, "name": r.name,
         "ipc": r.ipc.hex(), "ipc_alone": r.ipc_alone.hex()}
        for r in result.runs
    ]
    assert got_runs == want["runs"]

    assert len(result.epochs) == len(want["epochs"])
    for epoch, want_epoch in zip(result.epochs, want["epochs"]):
        assert epoch.index == want_epoch["index"]
        assert epoch.start_cycle == want_epoch["start"]
        assert epoch.end_cycle == want_epoch["end"]
        assert epoch.migration_cycles == want_epoch["migration_cycles"]
        assert epoch.repartitioned == want_epoch["repartitioned"]
        assert ({str(k): v for k, v in epoch.instructions.items()}
                == want_epoch["instructions"])
        assert ({str(k): list(v) for k, v in
                 epoch.detail["allocations"].items()}
                == {k: list(v) for k, v in want_epoch["allocations"].items()})
