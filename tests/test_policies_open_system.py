"""Tests for the policy composition layer and the open-system lifecycle.

Covers the PR's acceptance criteria beyond the golden regression:
closed-system equivalence with an empty arrival schedule, the
arrival -> admission -> departure event ordering, seeded-Poisson
determinism, interval STP/ANTT against hand-computed values, online
cluster placement, the memoized solo-IPC cache, the ``min_np`` error
contract, and the deprecation shims.
"""

import math

import pytest

from repro.cluster import ClusterScheduler, GPUNode
from repro.core.system import (
    MultitaskSystem,
    OpenSystemResult,
    SystemResult,
    clear_solo_ipc_cache,
)
from repro.errors import AllocationError, ConfigError, SimulationError
from repro.metrics.multiprogram import (
    AppRun,
    IntervalRun,
    antt,
    interval_antt,
    interval_stp,
    makespan,
    mean_queueing_delay,
    stp,
)
from repro.policies import (
    BPBigSmallPolicy,
    BPPolicy,
    BPSmallBigPolicy,
    CDSearchPolicy,
    MPSPolicy,
    PartitionPolicy,
    UGPUPolicy,
)
from repro.trace import TraceRecorder
from repro.workloads import build_application, build_mix
from repro.workloads.arrivals import (
    ArrivalEvent,
    ArrivalSchedule,
    poisson_arrivals,
)

HORIZON = 10_000_000
EPOCH = 1_000_000


def _apps():
    return build_mix(["PVC", "DXTC"]).applications


def _result_fingerprint(result: SystemResult):
    return (
        result.policy,
        result.repartitions,
        [(r.app_id, r.name, r.ipc.hex(), r.ipc_alone.hex()) for r in result.runs],
        [(e.index, e.migration_cycles, e.repartitioned,
          sorted(e.instructions.items())) for e in result.epochs],
    )


class TestClosedEquivalence:
    def test_empty_arrival_schedule_is_the_closed_system(self):
        baseline = MultitaskSystem(
            _apps(), epoch_cycles=EPOCH, policy=UGPUPolicy()
        ).run(HORIZON)
        with_empty = MultitaskSystem(
            _apps(), epoch_cycles=EPOCH, policy=UGPUPolicy(),
            arrivals=ArrivalSchedule(),
        ).run(HORIZON)
        assert isinstance(with_empty, SystemResult)
        assert _result_fingerprint(baseline) == _result_fingerprint(with_empty)

    def test_closed_system_still_rejects_empty_mix(self):
        with pytest.raises(ConfigError, match="at least one application"):
            MultitaskSystem([], policy=BPPolicy())

    def test_open_system_allows_empty_initial_mix(self):
        schedule = ArrivalSchedule.from_pairs(
            [(0, build_application("PVC", app_id=100))]
        )
        result = MultitaskSystem(
            [], epoch_cycles=EPOCH, policy=BPPolicy(), arrivals=schedule
        ).run(HORIZON)
        assert isinstance(result, OpenSystemResult)
        assert result.admissions == 1


class TestLifecycleOrdering:
    def _run_traced(self, policy=None):
        tracer = TraceRecorder()
        arrival = build_application("CP", app_id=100)
        schedule = ArrivalSchedule(
            [ArrivalEvent(1_500_000, arrival, budget_instructions=1)]
        )
        system = MultitaskSystem(
            _apps(), epoch_cycles=EPOCH, tracer=tracer,
            policy=policy or PartitionPolicy(), arrivals=schedule,
        )
        result = system.run(HORIZON)
        return system, result, tracer

    def test_arrival_then_admission_then_departure(self):
        system, result, tracer = self._run_traced()
        arrivals = tracer.events("arrival")
        admissions = tracer.events("admission")
        departures = tracer.events("departure")
        assert [e.args["app_id"] for e in arrivals] == [100]
        assert [e.args["app_id"] for e in admissions] == [100]
        assert [e.args["app_id"] for e in departures] == [100]
        # Arrival stamps the schedule cycle; admission the boundary that
        # granted the slice; departure a strictly later boundary.
        assert arrivals[0].time == 1_500_000
        assert admissions[0].time == 2_000_000
        assert admissions[0].args["queueing_delay"] == 500_000
        assert departures[0].time > admissions[0].time
        assert arrivals[0].seq < admissions[0].seq < departures[0].seq

    def test_counts_and_lifecycle_fields(self):
        system, result, tracer = self._run_traced()
        assert (result.arrivals, result.admissions, result.departures) == (1, 1, 1)
        run = next(r for r in result.runs if r.app_id == 100)
        assert run.arrival_cycle == 1_500_000
        assert run.admit_cycle == 2_000_000
        assert run.depart_cycle == 3_000_000
        assert run.queueing_delay == 500_000
        # The departed job's slot was released and its slice reclaimed.
        assert 100 not in system.apps
        assert 100 in system.departed
        assert 100 not in system.partition.allocations()

    def test_departure_frees_slot_for_same_boundary_arrival(self):
        tracer = TraceRecorder()
        first = build_application("CP", app_id=100)
        second = build_application("SRAD", app_id=101)
        schedule = ArrivalSchedule([
            ArrivalEvent(500_000, first, budget_instructions=1),
            ArrivalEvent(1_500_000, second, budget_instructions=1),
        ])
        system = MultitaskSystem(
            _apps(), epoch_cycles=EPOCH, tracer=tracer,
            policy=PartitionPolicy(), arrivals=schedule, max_slots=3,
        )
        system.run(HORIZON)
        # Slot math: 2 residents + CP fills max_slots=3.  CP departs at
        # the 2M boundary, freeing the slot SRAD (queued at the same
        # boundary) takes immediately.
        admissions = {e.args["app_id"]: e.time for e in tracer.events("admission")}
        departures = {e.args["app_id"]: e.time for e in tracer.events("departure")}
        assert admissions[100] == 1_000_000
        assert departures[100] == 2_000_000
        assert admissions[101] == 2_000_000

    @pytest.mark.parametrize("policy_factory", [
        PartitionPolicy, BPPolicy, MPSPolicy, CDSearchPolicy, UGPUPolicy,
    ])
    def test_membership_hooks_repartition_every_policy(self, policy_factory):
        system, result, tracer = self._run_traced(policy_factory())
        # Admission and departure each flow through the policy hooks and
        # count as repartitions of the shared slice state.
        assert result.repartitions >= 2
        for state in system.apps.values():
            assert state.allocation.sms > 0
            assert state.allocation.channels > 0

    def test_open_run_drains_early(self):
        schedule = ArrivalSchedule.from_pairs(
            [(0, build_application("CP", app_id=100))], budget_instructions=1
        )
        result = MultitaskSystem(
            [], epoch_cycles=EPOCH, policy=BPPolicy(), arrivals=schedule
        ).run(HORIZON)
        # Admitted at the first boundary, departed at the second; nothing
        # left to simulate afterwards.
        assert result.departures == 1
        assert len(result.epochs) == 2


class TestPoissonDeterminism:
    def test_same_seed_same_schedule(self):
        a = poisson_arrivals(2_000_000, HORIZON, seed=7)
        b = poisson_arrivals(2_000_000, HORIZON, seed=7)
        assert [(e.cycle, e.app.name, e.budget_instructions) for e in a] == \
               [(e.cycle, e.app.name, e.budget_instructions) for e in b]

    def test_different_seed_different_schedule(self):
        a = poisson_arrivals(2_000_000, HORIZON, seed=7)
        b = poisson_arrivals(2_000_000, HORIZON, seed=8)
        assert [(e.cycle, e.app.name) for e in a] != \
               [(e.cycle, e.app.name) for e in b]

    def test_same_seed_same_open_run(self):
        def one_run():
            return MultitaskSystem(
                [], epoch_cycles=EPOCH, policy=UGPUPolicy(),
                arrivals=poisson_arrivals(1_000_000, HORIZON, seed=3),
            ).run(HORIZON)

        a, b = one_run(), one_run()
        assert a.stp == b.stp
        assert a.antt == b.antt
        assert a.repartitions == b.repartitions
        assert [(r.app_id, r.admit_cycle, r.depart_cycle, r.instructions)
                for r in a.runs] == \
               [(r.app_id, r.admit_cycle, r.depart_cycle, r.instructions)
                for r in b.runs]

    def test_duplicate_app_ids_rejected(self):
        app = build_application("PVC", app_id=5)
        with pytest.raises(ConfigError, match="duplicate app_id"):
            ArrivalSchedule([ArrivalEvent(0, app), ArrivalEvent(10, app)])


class TestIntervalMetrics:
    def test_hand_computed_values(self):
        horizon = 100
        full = IntervalRun(app_id=0, name="full", instructions=50,
                           ipc_alone=1.0)
        windowed = IntervalRun(app_id=1, name="windowed", instructions=25,
                               ipc_alone=1.0, arrival_cycle=10,
                               admit_cycle=20, depart_cycle=70)
        runs = [full, windowed]
        # full: present 100/100, IPC 0.5, NP 0.5 -> contributes 0.5
        # windowed: present 50/100, IPC 0.5, NP 0.5 -> contributes 0.25
        assert interval_stp(runs, horizon) == pytest.approx(0.75)
        # Both slow down 2x; occupancy weighting keeps ANTT at 2.
        assert interval_antt(runs, horizon) == pytest.approx(2.0)
        assert mean_queueing_delay(runs) == pytest.approx(5.0)
        assert makespan(runs, horizon) == 100
        assert windowed.queueing_delay == 10

    def test_reduces_to_closed_forms_at_full_residency(self):
        horizon = 1000
        closed = [
            AppRun(app_id=0, name="a", ipc=0.8, ipc_alone=1.0),
            AppRun(app_id=1, name="b", ipc=0.25, ipc_alone=0.5),
        ]
        interval = [
            IntervalRun(app_id=r.app_id, name=r.name,
                        instructions=int(r.ipc * horizon), ipc_alone=r.ipc_alone)
            for r in closed
        ]
        assert interval_stp(interval, horizon) == pytest.approx(stp(closed))
        assert interval_antt(interval, horizon) == pytest.approx(antt(closed))

    def test_never_resident_app_rejected_by_antt(self):
        runs = [IntervalRun(app_id=0, name="x", instructions=0, ipc_alone=1.0,
                            admit_cycle=50)]
        with pytest.raises(ConfigError, match="ever resident"):
            interval_antt(runs, 50)


class TestOnlineCluster:
    def test_least_fragmented_best_fit_with_class_tiebreak(self):
        cluster = ClusterScheduler(num_nodes=3, tenants_per_node=2)
        jobs = [build_application(a, app_id=i)
                for i, a in enumerate(["PVC", "DXTC", "SRAD", "CP"])]
        # Best-fit: fill node 0 before opening node 1.
        assert cluster.admit(jobs[0]).node_id == 0
        assert cluster.admit(jobs[1]).node_id == 0
        assert cluster.admit(jobs[2]).node_id == 1
        assert cluster.admit(jobs[3]).node_id == 1
        assert cluster.resident_jobs == 4

    def test_depart_frees_slot_reused_by_next_arrival(self):
        cluster = ClusterScheduler(num_nodes=2, tenants_per_node=2)
        jobs = [build_application(a, app_id=i)
                for i, a in enumerate(["PVC", "DXTC", "SRAD"])]
        for job in jobs:
            cluster.admit(job)
        assert cluster.depart(0).node_id == 0
        late = build_application("CP", app_id=9)
        # Node 1 (1/2 full) is less fragmented than node 0 (1/2 full) only
        # by id tie-break; both have one slot, CP complements either.
        assert cluster.admit(late).node_id in (0, 1)
        assert cluster.resident_jobs == 3
        with pytest.raises(AllocationError, match="not resident"):
            cluster.depart(0)

    def test_full_cluster_rejects_arrival(self):
        cluster = ClusterScheduler(num_nodes=1, tenants_per_node=1)
        cluster.admit(build_application("PVC", app_id=0))
        with pytest.raises(AllocationError, match="full"):
            cluster.admit(build_application("DXTC", app_id=1))

    def test_poisson_trace_placement_is_deterministic(self):
        def placements():
            cluster = ClusterScheduler(num_nodes=4, tenants_per_node=2)
            placed = []
            for event in poisson_arrivals(2_000_000, HORIZON, seed=11):
                if cluster.resident_jobs == cluster.capacity:
                    break
                placed.append(
                    (event.app.name, cluster.admit(event.app).node_id)
                )
            return placed

        first, second = placements(), placements()
        assert first == second
        assert len(first) > 0

    def test_node_remove_unknown_app_rejected(self):
        node = GPUNode(0, max_tenants=2)
        with pytest.raises(AllocationError, match="not resident"):
            node.remove(42)


class TestSoloIpcMemoization:
    def test_cache_is_shared_across_systems(self):
        clear_solo_ipc_cache()
        system = MultitaskSystem(_apps(), epoch_cycles=EPOCH, policy=BPPolicy())
        calls = []
        original = system.perf.throughput

        def counting(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        system.perf.throughput = counting
        first = system.alone_ipcs(HORIZON)
        cold_calls = len(calls)
        assert cold_calls > 0
        second = system.alone_ipcs(HORIZON)
        assert second == first
        assert len(calls) == cold_calls  # warm: no model evaluations

        other = MultitaskSystem(_apps(), epoch_cycles=EPOCH, policy=UGPUPolicy())
        other.perf.throughput = counting
        warm = {k: v for k, v in other.alone_ipcs(HORIZON).items()}
        assert warm == first
        assert len(calls) == cold_calls  # reused across instances

    def test_cache_distinguishes_horizons(self):
        clear_solo_ipc_cache()
        system = MultitaskSystem(_apps(), epoch_cycles=EPOCH, policy=BPPolicy())
        short = system.alone_ipcs(EPOCH)
        long = system.alone_ipcs(HORIZON)
        assert set(short) == set(long)


class TestMinNpContract:
    def test_empty_runs_raise_simulation_error(self):
        result = SystemResult(policy="BP", mix_name="empty", runs=[],
                              epochs=[], total_cycles=HORIZON)
        with pytest.raises(SimulationError, match="no application runs"):
            result.min_np
        # stp/antt keep their ConfigError contract from the metrics layer.
        with pytest.raises(ConfigError):
            result.stp


class TestDeprecatedShims:
    def test_shims_warn_and_still_run(self):
        from repro.baselines import (
            BPBigSmallSystem,
            BPSmallBigSystem,
            BPSystem,
            CDSearchSystem,
            MPSSystem,
        )
        from repro.core.ugpu import UGPUSystem

        for cls in (BPSystem, BPBigSmallSystem, BPSmallBigSystem,
                    MPSSystem, CDSearchSystem, UGPUSystem):
            with pytest.warns(DeprecationWarning, match="deprecated"):
                system = cls(_apps(), epoch_cycles=EPOCH)
            assert isinstance(system, MultitaskSystem)
            result = system.run(2 * EPOCH)
            assert result.policy == cls.policy_name
            assert len(result.runs) == 2

    def test_shims_map_to_registry_names(self):
        from repro.baselines import BPSystem, MPSSystem
        from repro.core.ugpu import UGPUSystem
        from repro.exec import policy_name_of

        assert policy_name_of(BPSystem) == "bp"
        assert policy_name_of(MPSSystem) == "mps"
        assert policy_name_of(UGPUSystem) == "ugpu"

    def test_legacy_attribute_delegation(self):
        from repro.core.ugpu import UGPUSystem

        with pytest.warns(DeprecationWarning):
            system = UGPUSystem(_apps(), epoch_cycles=EPOCH, hysteresis=0.25)
        assert system.hysteresis == 0.25
        assert system.suppressed_repartitions == 0
        assert system.profiler is system.policy.profiler
        with pytest.raises(AttributeError):
            system.no_such_attribute


class TestPolicyValidation:
    def test_bp_variants_need_two_apps(self):
        three = build_mix(["PVC", "DXTC", "SRAD"]).applications
        for policy in (BPBigSmallPolicy(), BPSmallBigPolicy()):
            with pytest.raises(AllocationError, match="two applications"):
                MultitaskSystem(three, policy=policy)

    def test_max_slots_below_initial_mix_rejected(self):
        with pytest.raises(ConfigError, match="max_slots"):
            MultitaskSystem(_apps(), policy=BPPolicy(), max_slots=1,
                            arrivals=ArrivalSchedule.from_pairs(
                                [(0, build_application("CP", app_id=9))]))
