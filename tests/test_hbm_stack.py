"""Unit tests for HBM stack migration routing (repro.hbm.stack)."""

import pytest

from repro.errors import MigrationError
from repro.hbm import HBMConfig, HBMStack, activate, migration, read


@pytest.fixture
def config():
    return HBMConfig()


@pytest.fixture
def stack(config):
    return HBMStack(config, index=0, pagemove=True)


def mig_cmd(dest_channel=1, tsv=2, bank_group=0, bank=0, row=1, column=0):
    return migration(
        bank_group, bank, row, column,
        dest_channel=dest_channel, dest_bank_group=bank_group,
        dest_bank=bank, dest_row=row, dest_column=column, tsv_index=tsv,
    )


def open_rows_for_migration(stack, src=0, dst=1, bank_group=0, bank=0, row=1):
    """Activate the source and destination rows, return the ready cycle."""
    src_ch = stack.channel(src)
    dst_ch = stack.channel(dst)
    a = activate(bank_group, bank, row)
    ready1 = src_ch.issue(a, src_ch.earliest_issue(a, 0))
    ready2 = dst_ch.issue(a, dst_ch.earliest_issue(a, 0))
    return max(ready1, ready2)


class TestStackStructure:
    def test_has_eight_channels_and_tsvs(self, stack, config):
        assert len(stack.channels) == config.channels_per_stack == 8
        assert len(stack.tsvs) == 8
        assert all(t.bits == config.bus_bits for t in stack.tsvs)

    def test_pagemove_stack_has_wide_crossbars(self, stack):
        assert all(x.is_fully_connected for x in stack.crossbars)

    def test_stock_stack_has_narrow_crossbars(self, config):
        stock = HBMStack(config, pagemove=False)
        assert all(x.concurrent_capacity() == 1 for x in stock.crossbars)


class TestIdleTSVDetection:
    def test_all_tsvs_idle_initially(self, stack):
        assert stack.idle_tsv_bundles(now=1000) == list(range(8))

    def test_busy_channel_tsv_not_idle(self, stack):
        ch = stack.channel(3)
        a = activate(0, 0, 1)
        ready = ch.issue(a, ch.earliest_issue(a, 0))
        r = read(0, 0, 0)
        done = ch.issue(r, ch.earliest_issue(r, ready))
        idle = stack.idle_tsv_bundles(now=done + 10, window=100)
        assert 3 not in idle

    def test_find_idle_tsv_respects_exclusions(self, stack):
        assert stack.find_idle_tsv(now=1000, exclude=[0, 1]) == 2


class TestMigrationRouting:
    def test_migration_completes_in_tmig(self, stack, config):
        ready = open_rows_for_migration(stack)
        done = stack.issue_migration(0, mig_cmd(), now=ready)
        assert done == ready + config.timing.tMIG
        assert stack.migrations_completed == 1

    def test_migration_grants_tsv_to_source_die(self, stack):
        ready = open_rows_for_migration(stack)
        stack.issue_migration(0, mig_cmd(tsv=2), now=ready)
        assert stack.decoder.driver_of(2, now=ready + 1) == 0

    def test_same_channel_migration_rejected(self, stack):
        ready = open_rows_for_migration(stack)
        with pytest.raises(MigrationError):
            stack.issue_migration(0, mig_cmd(dest_channel=0), now=ready)

    def test_cross_stack_destination_rejected(self, stack):
        ready = open_rows_for_migration(stack)
        with pytest.raises(MigrationError):
            stack.issue_migration(0, mig_cmd(dest_channel=9), now=ready)

    def test_missing_tsv_index_rejected(self, stack):
        ready = open_rows_for_migration(stack)
        cmd = migration(0, 0, 1, 0, dest_channel=1, dest_bank_group=0,
                        dest_bank=0, dest_row=1, dest_column=0, tsv_index=None)
        with pytest.raises(MigrationError):
            stack.issue_migration(0, cmd, now=ready)

    def test_stock_stack_rejects_migration(self, config):
        stock = HBMStack(config, pagemove=False)
        ready = open_rows_for_migration(stock)
        with pytest.raises(MigrationError):
            stock.issue_migration(0, mig_cmd(), now=ready)

    def test_non_migration_command_rejected(self, stack):
        with pytest.raises(MigrationError):
            stack.issue_migration(0, read(0, 0, 0), now=0)

    def test_parallel_migrations_from_four_bank_groups(self, stack, config):
        """The 4x8 crossbar lets all 4 bank groups migrate concurrently."""
        src_ch = stack.channel(0)
        dst_ch = stack.channel(1)
        for bg in range(4):
            a = activate(bg, 0, 1)
            src_ch.issue(a, src_ch.earliest_issue(a, 0))
            dst_ch.issue(a, dst_ch.earliest_issue(a, 0))
        ready = max(
            src_ch.earliest_issue(read(3, 0, 0), 0),
            dst_ch.earliest_issue(read(3, 0, 0), 0),
        ) + config.timing.tRCD
        dones = []
        for bg in range(4):
            cmd = migration(bg, 0, 1, 0, dest_channel=1, dest_bank_group=bg,
                            dest_bank=0, dest_row=1, dest_column=0,
                            tsv_index=2 + bg)
            dones.append(stack.issue_migration(0, cmd, now=ready + bg * 2))
        # With serialization the span would be >= 4*tMIG; with PPMM the four
        # copies overlap, finishing within tMIG plus command-bus skew.
        span = max(dones) - ready
        assert span < 2 * config.timing.tMIG

    def test_stats_aggregation(self, stack):
        ready = open_rows_for_migration(stack)
        stack.issue_migration(0, mig_cmd(), now=ready)
        stats = stack.stats()
        assert stats["migrations_completed"] == 1
        assert stats["migrations"] == 2  # source + destination channel views
        assert stats["activates"] == 2
