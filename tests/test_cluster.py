"""Tests for the multi-GPU cluster extension (repro.cluster)."""

import pytest

from repro import MultitaskSystem, build_application
from repro.cluster import ClusterScheduler, GPUNode, PlacementPolicy
from repro.errors import AllocationError
from repro.policies import BPPolicy, UGPUPolicy
from repro.telemetry import MetricsRegistry
from repro.telemetry.names import CLUSTER_PLACEMENTS_TOTAL


def ugpu_system(apps):
    return MultitaskSystem(apps, policy=UGPUPolicy())


def bp_system(apps):
    return MultitaskSystem(apps, policy=BPPolicy())


def jobs(*abbrs):
    return [build_application(a, app_id=i) for i, a in enumerate(abbrs)]


class TestGPUNode:
    def test_tenant_cap(self):
        node = GPUNode(0, max_tenants=2)
        node.place(jobs("PVC")[0])
        node.place(build_application("DXTC", app_id=1))
        assert node.free_slots == 0
        with pytest.raises(AllocationError):
            node.place(build_application("CP", app_id=2))

    def test_duplicate_app_id_rejected(self):
        """Cluster-level ids key every results table; two tenants sharing
        one id would silently shadow each other."""
        node = GPUNode(0)
        node.place(build_application("PVC", app_id=3))
        with pytest.raises(AllocationError, match="already resident"):
            node.place(build_application("DXTC", app_id=3))

    def test_idle_node_result(self):
        result = GPUNode(0).run()
        assert result.result is None
        assert result.stp == 0.0
        assert result.tenant_ids == []
        with pytest.raises(AllocationError, match="idle"):
            result.run_for(0)

    def test_single_tenant_gets_whole_gpu(self):
        node = GPUNode(0)
        node.place(jobs("PVC")[0])
        result = node.run()
        assert result.stp == pytest.approx(1.0, abs=0.05)

    def test_two_tenants_run_under_policy(self):
        node = GPUNode(0)
        for job in jobs("PVC", "DXTC"):
            node.place(job)
        ugpu = node.run(ugpu_system)
        node2 = GPUNode(0)
        for job in jobs("PVC", "DXTC"):
            node2.place(job)
        bp = node2.run(bp_system)
        assert ugpu.stp > bp.stp
        assert ugpu.tenants == ["PVC", "DXTC"]

    def test_node_result_keeps_cluster_app_ids(self):
        """Regression: ``run()`` used to renumber tenants 0..n-1, so a
        node's per-app results could not be keyed back to the cluster
        jobs the scheduler admitted."""
        node = GPUNode(0)
        node.place(build_application("PVC", app_id=7))
        node.place(build_application("DXTC", app_id=42))
        result = node.run()
        assert result.tenant_ids == [7, 42]
        assert result.run_for(42).name == "DXTC"
        assert result.run_for(7).name == "PVC"
        with pytest.raises(AllocationError, match="did not run"):
            result.run_for(0)

    def test_invalid_cap(self):
        with pytest.raises(AllocationError):
            GPUNode(0, max_tenants=0)


class TestClusterScheduler:
    def test_capacity(self):
        cluster = ClusterScheduler(num_nodes=3, tenants_per_node=2)
        assert cluster.capacity == 6

    def test_over_capacity_rejected(self):
        cluster = ClusterScheduler(num_nodes=1, tenants_per_node=2)
        with pytest.raises(AllocationError):
            cluster.place(jobs("PVC", "DXTC", "CP"))

    def test_over_capacity_batch_counts_rejections(self):
        """Regression: a rejected batch used to raise without recording
        any ``rejected`` outcome, so the placements counter could not
        reconcile with the admission log."""
        registry = MetricsRegistry()
        cluster = ClusterScheduler(num_nodes=1, tenants_per_node=2,
                                   metrics=registry)
        with pytest.raises(AllocationError):
            cluster.place(jobs("PVC", "DXTC", "CP"))
        assert registry.value(
            CLUSTER_PLACEMENTS_TOTAL, outcome="rejected") == 3
        assert registry.value(
            CLUSTER_PLACEMENTS_TOTAL, outcome="placed") == 0

    def test_depart_records_outcome(self):
        """Regression: ``depart()`` used to update only the node gauges,
        leaving the placements counter asymmetric (admissions counted,
        departures invisible)."""
        registry = MetricsRegistry()
        cluster = ClusterScheduler(num_nodes=2, metrics=registry)
        cluster.admit(build_application("PVC", app_id=9))
        cluster.depart(9)
        assert registry.value(
            CLUSTER_PLACEMENTS_TOTAL, outcome="placed") == 1
        assert registry.value(
            CLUSTER_PLACEMENTS_TOTAL, outcome="departed") == 1
        assert cluster.resident_jobs == 0

    def test_depart_then_readmit_reuses_id(self):
        """An app id freed by departure must be admissible again — open
        systems recycle ids across the trace."""
        cluster = ClusterScheduler(num_nodes=1, tenants_per_node=2)
        cluster.admit(build_application("PVC", app_id=5))
        cluster.depart(5)
        node = cluster.admit(build_application("LBM", app_id=5))
        assert [t.name for t in node.tenants] == ["LBM"]
        with pytest.raises(AllocationError):
            cluster.depart(6)

    def test_first_fit_fills_breadth_first(self):
        cluster = ClusterScheduler(num_nodes=2, tenants_per_node=2)
        cluster.place(jobs("PVC", "LBM", "DXTC", "CP"),
                      policy=PlacementPolicy.FIRST_FIT)
        # Breadth-first: first two jobs spread over both nodes.
        assert [t.name for t in cluster.nodes[0].tenants] == ["PVC", "DXTC"]
        assert [t.name for t in cluster.nodes[1].tenants] == ["LBM", "CP"]

    def test_demand_aware_pairs_classes(self):
        cluster = ClusterScheduler(num_nodes=2, tenants_per_node=2)
        cluster.place(jobs("PVC", "LBM", "DXTC", "CP"),
                      policy=PlacementPolicy.DEMAND_AWARE)
        for node in cluster.nodes:
            classes = {cluster._is_memory_bound(t) for t in node.tenants}
            assert classes == {True, False}  # one of each

    def test_demand_aware_beats_class_blind_packing(self):
        """The cloud argument: pairing complementary tenants gives every
        node reallocation room, raising cluster throughput."""
        job_list = ["PVC", "DXTC", "LBM", "CP"]

        # Adversarial class-blind placement: same-class tenants together.
        blind = ClusterScheduler(num_nodes=2, tenants_per_node=2)
        blind.nodes[0].place(build_application("PVC", app_id=0))
        blind.nodes[0].place(build_application("LBM", app_id=1))
        blind.nodes[1].place(build_application("DXTC", app_id=2))
        blind.nodes[1].place(build_application("CP", app_id=3))
        blind_result = blind.run(ugpu_system)

        aware = ClusterScheduler(num_nodes=2, tenants_per_node=2)
        aware_result = aware.schedule_and_run(
            jobs(*job_list), placement=PlacementPolicy.DEMAND_AWARE
        )
        assert aware_result.cluster_stp > blind_result.cluster_stp

    def test_cluster_result_summary(self):
        cluster = ClusterScheduler(num_nodes=2, tenants_per_node=2)
        result = cluster.schedule_and_run(jobs("PVC", "DXTC"))
        assert result.busy_nodes >= 1
        summary = result.per_node_summary()
        assert len(summary) == 2
        assert any("PVC" in row[1] for row in summary)

    def test_invalid_cluster(self):
        with pytest.raises(AllocationError):
            ClusterScheduler(num_nodes=0)
