"""Integration tests for the system simulations: UGPU, BP variants, MPS
and CD-Search (repro.core.system / ugpu, repro.baselines)."""

import pytest

from repro import (
    BPBigSmallSystem,
    BPSmallBigSystem,
    BPSystem,
    CDSearchSystem,
    MPSSystem,
    MigrationMode,
    QoSTarget,
    UGPUSystem,
    build_mix,
)
from repro.errors import ConfigError
from repro.metrics import EnergyModel


def het_mix():
    return build_mix(["PVC", "DXTC"])


class TestBPSystem:
    def test_even_partition_and_no_repartitioning(self):
        result = BPSystem(het_mix().applications).run()
        assert result.policy == "BP"
        assert result.repartitions == 0
        assert all(e.migration_fraction == 0 for e in result.epochs)

    def test_bp_np_close_to_half(self):
        result = BPSystem(het_mix().applications).run()
        for run in result.runs:
            assert 0.4 <= run.normalized_progress <= 0.6

    def test_big_small_variants_are_mirror_images(self):
        bs = BPBigSmallSystem(het_mix().applications).run()
        sb = BPSmallBigSystem(het_mix().applications).run()
        # PVC gets the big partition in BS, the small one in SB.
        np_bs = {r.name: r.normalized_progress for r in bs.runs}
        np_sb = {r.name: r.normalized_progress for r in sb.runs}
        assert np_bs["PVC"] > np_sb["PVC"]
        assert np_bs["DXTC"] < np_sb["DXTC"]

    def test_unequal_partitions_do_not_beat_bp_much(self):
        """Figure 10's message: BP, BP-BS and BP-SB are all similar."""
        bp = BPSystem(het_mix().applications).run()
        bs = BPBigSmallSystem(het_mix().applications).run()
        sb = BPSmallBigSystem(het_mix().applications).run()
        for variant in (bs, sb):
            assert abs(variant.stp - bp.stp) < 0.35 * bp.stp

    def test_empty_mix_rejected(self):
        with pytest.raises(ConfigError):
            BPSystem([])


class TestUGPUSystem:
    def test_beats_bp_on_heterogeneous_mix(self):
        bp = BPSystem(het_mix().applications).run()
        ugpu = UGPUSystem(het_mix().applications).run()
        assert ugpu.stp > 1.15 * bp.stp
        assert ugpu.antt < bp.antt

    def test_gives_memory_bound_app_channels(self):
        system = UGPUSystem(het_mix().applications)
        system.run()
        assert system.apps[0].allocation.channels > 16   # PVC
        assert system.apps[1].allocation.sms > 40        # DXTC

    def test_offline_beats_online(self):
        online = UGPUSystem(het_mix().applications).run()
        offline = UGPUSystem(het_mix().applications, offline=True).run()
        assert offline.policy == "UGPU-offline"
        assert offline.stp >= online.stp
        assert offline.repartitions == 0

    def test_mode_ordering_matches_figure11(self):
        """BP > UGPU-Ori; UGPU-Soft between Ori and full UGPU."""
        bp = BPSystem(het_mix().applications).run()
        ugpu = UGPUSystem(het_mix().applications).run()
        soft = UGPUSystem(het_mix().applications,
                          mode=MigrationMode.SOFTWARE).run()
        ori = UGPUSystem(het_mix().applications,
                         mode=MigrationMode.TRADITIONAL).run()
        assert ori.stp < bp.stp
        assert ori.stp < soft.stp < ugpu.stp

    def test_homogeneous_mix_stays_balanced(self):
        system = UGPUSystem(build_mix(["PVC", "LAVAMD"]).applications)
        result = system.run()
        assert system.apps[0].allocation.channels == 16
        assert result.repartitions == 0

    def test_migration_fraction_bounded(self):
        result = UGPUSystem(het_mix().applications).run()
        assert all(f <= 0.25 for f in result.migration_fractions())

    def test_energy_accounting(self):
        result = UGPUSystem(
            het_mix().applications, energy_model=EnergyModel()
        ).run()
        assert result.energy is not None
        assert result.energy.total > 0
        assert 0.05 < result.energy.memory_fraction < 0.45

    def test_qos_target_met(self):
        # DXTC (app 1) is the high-priority app with a 0.75 NP floor.
        result = UGPUSystem(
            het_mix().applications, qos=QoSTarget(app_id=1, target_np=0.75)
        ).run()
        dxtc = next(r for r in result.runs if r.name == "DXTC")
        assert dxtc.normalized_progress >= 0.70  # small online slack

    def test_four_program_mix(self):
        mix = build_mix(["PVC", "LAVAMD", "DXTC", "CP"])
        bp = BPSystem(build_mix(["PVC", "LAVAMD", "DXTC", "CP"]).applications).run()
        ugpu = UGPUSystem(mix.applications).run()
        assert ugpu.stp > bp.stp

    def test_result_metadata(self):
        result = UGPUSystem(het_mix().applications).run(mix_name="PVC_DXTC")
        assert result.mix_name == "PVC_DXTC"
        assert result.total_cycles == 25_000_000
        assert len(result.epochs) == 5


class TestMPSSystem:
    def test_mps_shares_memory(self):
        result = MPSSystem(het_mix().applications).run()
        assert result.policy == "MPS"
        # The compute-bound app suffers from contention: NP below its
        # BP entitlement for SM share 40/80 is possible but bounded.
        assert 0 < result.stp < 2

    def test_mps_contention_hurts_coexecuting_compute_app(self):
        """Figure 16: without isolation the high-priority app can fall
        below the QoS floor that BP/UGPU guarantee."""
        mps = MPSSystem(
            het_mix().applications, sm_assignment={1: 60, 0: 20}
        ).run()
        bp = BPSystem(het_mix().applications, qos_big_first=False).run()
        dxtc_mps = next(r for r in mps.runs if r.name == "DXTC")
        # With 60 SMs DXTC would reach 0.75 NP alone; contention can eat
        # into it (or not, for mild co-runners) - it must never exceed it.
        assert dxtc_mps.normalized_progress <= 0.76

    def test_invalid_contention_overhead(self):
        with pytest.raises(Exception):
            MPSSystem(het_mix().applications, contention_overhead=1.5)


class TestCDSearchSystem:
    def test_moves_sms_but_not_channels(self):
        system = CDSearchSystem(het_mix().applications)
        result = system.run()
        assert system.apps[0].allocation.channels == 16
        assert system.apps[1].allocation.channels == 16
        assert system.apps[1].allocation.sms > 40

    def test_between_bp_and_ugpu(self):
        """Figure 13's ordering: BP < BP(CD-Search) < UGPU."""
        bp = BPSystem(het_mix().applications).run()
        cd = CDSearchSystem(het_mix().applications).run()
        ugpu = UGPUSystem(het_mix().applications).run()
        assert bp.stp < cd.stp < ugpu.stp


class TestEpochAllocationTraces:
    def test_allocation_snapshots_recorded(self):
        result = UGPUSystem(het_mix().applications).run()
        for epoch in result.epochs:
            allocations = epoch.detail["allocations"]
            assert set(allocations) == {0, 1}
            assert sum(sms for sms, _ in allocations.values()) == 80
            assert sum(mcs for _, mcs in allocations.values()) == 32

    def test_trace_shows_the_repartition(self):
        # Snapshots are taken after the epoch-boundary decision, so epoch
        # 0 already records the first unbalanced split (the epoch itself
        # executed on the even partition), and the run ends unbalanced.
        result = UGPUSystem(het_mix().applications).run()
        first = result.epochs[0].detail["allocations"]
        last = result.epochs[-1].detail["allocations"]
        assert result.epochs[0].repartitioned
        assert first[0][1] > 16          # PVC granted channels at epoch 0
        assert last[0][1] > 16           # and still holds them at the end

    def test_static_policy_trace_is_constant(self):
        result = BPSystem(het_mix().applications).run()
        traces = {tuple(sorted(e.detail["allocations"].items()))
                  for e in result.epochs}
        assert len(traces) == 1
