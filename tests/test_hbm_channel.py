"""Unit tests for channel-level timing (repro.hbm.channel)."""

import pytest

from repro.errors import ProtocolError
from repro.hbm import Channel, HBMConfig, activate, migration, precharge, read, write


@pytest.fixture
def config():
    return HBMConfig()


@pytest.fixture
def channel(config):
    return Channel(config, index=0)


def open_row(channel, bank_group, bank, row, now=0):
    """Helper: activate a row and return the cycle the row is usable."""
    cmd = activate(bank_group, bank, row)
    at = channel.earliest_issue(cmd, now)
    return channel.issue(cmd, at), at


class TestActivateSpacing:
    def test_trrd_long_within_bank_group(self, channel, config):
        t = config.timing
        _, at0 = open_row(channel, 0, 0, 1)
        cmd = activate(0, 1, 2)
        earliest = channel.earliest_issue(cmd, at0)
        assert earliest == at0 + t.tRRDl

    def test_trrd_short_across_bank_groups(self, channel, config):
        t = config.timing
        _, at0 = open_row(channel, 0, 0, 1)
        cmd = activate(1, 0, 2)
        earliest = channel.earliest_issue(cmd, at0)
        assert earliest == at0 + t.tRRDs

    def test_tfaw_limits_fifth_activate(self, channel, config):
        t = config.timing
        first_at = None
        now = 0
        # Four activates to different bank groups/banks.
        for i in range(4):
            cmd = activate(i % 4, i // 4, 1)
            at = channel.earliest_issue(cmd, now)
            channel.issue(cmd, at)
            if first_at is None:
                first_at = at
            now = at
        fifth = activate(0, 1, 1)
        earliest = channel.earliest_issue(fifth, now)
        assert earliest >= first_at + t.tFAW

    def test_early_activate_rejected(self, channel):
        open_row(channel, 0, 0, 1)
        with pytest.raises(ProtocolError):
            channel.issue(activate(0, 1, 1), 1)


class TestColumnSpacing:
    def test_tccd_long_same_group(self, channel, config):
        t = config.timing
        ready, at = open_row(channel, 0, 0, 1)
        r1 = read(0, 0, 0)
        at1 = channel.earliest_issue(r1, ready)
        channel.issue(r1, at1)
        r2 = read(0, 0, 1)
        earliest = channel.earliest_issue(r2, at1)
        assert earliest >= at1 + t.tCCDl

    def test_write_to_read_turnaround(self, channel, config):
        t = config.timing
        ready, _ = open_row(channel, 0, 0, 1)
        w = write(0, 0, 0)
        at_w = channel.earliest_issue(w, ready)
        data_end = channel.issue(w, at_w)
        r = read(0, 0, 1)
        earliest = channel.earliest_issue(r, at_w)
        assert earliest >= data_end + t.tWTRl

    def test_read_counts_tracked(self, channel):
        ready, _ = open_row(channel, 0, 0, 1)
        r = read(0, 0, 0)
        channel.issue(r, channel.earliest_issue(r, ready))
        assert channel.reads == 1
        assert channel.stats()["reads"] == 1


class TestDataBus:
    def test_consecutive_reads_serialize_on_data_bus(self, channel, config):
        """Bursts from different bank groups still share the external bus."""
        t = config.timing
        ready0, _ = open_row(channel, 0, 0, 1)
        ready1, _ = open_row(channel, 1, 0, 1, now=ready0)
        start = max(ready0, ready1)
        r0 = read(0, 0, 0)
        at0 = channel.earliest_issue(r0, start)
        done0 = channel.issue(r0, at0)
        r1 = read(1, 0, 0)
        at1 = channel.earliest_issue(r1, at0)
        done1 = channel.issue(r1, at1)
        assert done1 >= done0 + t.tBL  # bursts cannot overlap

    def test_migration_leaves_external_bus_free(self, channel, config):
        """MIGRATION moves data via idle TSVs, not the channel data bus."""
        ready, _ = open_row(channel, 0, 0, 1)
        busy_before = channel.data_bus_busy_until
        mig = migration(0, 0, 1, 0, dest_channel=1, dest_bank_group=0,
                        dest_bank=0, dest_row=1, dest_column=0, tsv_index=3)
        at = channel.earliest_issue(mig, ready)
        channel.issue(mig, at)
        assert channel.data_bus_busy_until == busy_before
        assert channel.migrations == 1

    def test_migration_occupies_bank_group_bus(self, channel, config):
        ready, _ = open_row(channel, 0, 0, 1)
        mig = migration(0, 0, 1, 0, dest_channel=1, dest_bank_group=0,
                        dest_bank=0, dest_row=1, dest_column=0, tsv_index=3)
        at = channel.earliest_issue(mig, ready)
        done = channel.issue(mig, at)
        assert channel.groups[0].bus_free_at() == done


class TestCommandBus:
    def test_migration_occupies_command_bus_two_cycles(self, channel, config):
        ready, _ = open_row(channel, 0, 0, 1)
        mig = migration(0, 0, 1, 0, dest_channel=1, dest_bank_group=0,
                        dest_bank=0, dest_row=1, dest_column=0, tsv_index=3)
        at = channel.earliest_issue(mig, ready)
        channel.issue(mig, at)
        assert channel.command_bus_busy_until == at + 2

    def test_read_occupies_command_bus_one_cycle(self, channel):
        ready, _ = open_row(channel, 0, 0, 1)
        r = read(0, 0, 0)
        at = channel.earliest_issue(r, ready)
        channel.issue(r, at)
        assert channel.command_bus_busy_until == at + 1


class TestIdleDetection:
    def test_untouched_channel_is_idle(self, channel):
        assert channel.is_idle_at(now=200, window=100)

    def test_channel_busy_after_read(self, channel):
        ready, _ = open_row(channel, 0, 0, 1)
        r = read(0, 0, 0)
        at = channel.earliest_issue(r, ready)
        done = channel.issue(r, at)
        assert not channel.is_idle_at(done + 50, window=100)
        assert channel.is_idle_at(done + 100, window=100)
