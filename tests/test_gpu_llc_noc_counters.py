"""Unit tests for LLC, NoC and counters (repro.gpu.llc/noc/counters)."""

import pytest

from repro.errors import ConfigError
from repro.gpu import CrossbarNoC, GPUConfig, HitRateCurve, SetAssociativeCache
from repro.gpu.counters import CounterBank, HardwareCounter


class TestSetAssociativeCache:
    def test_slice_geometry(self):
        cache = SetAssociativeCache(size_bytes=96 * 1024, ways=16, line_bytes=128)
        assert cache.num_sets == 48  # one Table 1 LLC slice

    def test_cold_miss_then_hit(self):
        cache = SetAssociativeCache()
        assert cache.access(0) is False
        assert cache.access(64) is True  # same 128 B line
        assert cache.stats.hit_rate == 0.5

    def test_lru_eviction(self):
        cache = SetAssociativeCache(size_bytes=2 * 128, ways=2, line_bytes=128)
        # Single set, two ways; three distinct lines mapping to set 0.
        stride = cache.num_sets * 128
        cache.access(0)
        cache.access(stride)
        cache.access(2 * stride)  # evicts line 0
        assert cache.access(0) is False
        assert cache.stats.evictions >= 1

    def test_working_set_within_capacity_hits(self):
        cache = SetAssociativeCache(size_bytes=96 * 1024, ways=16, line_bytes=128)
        lines = [i * 128 for i in range(256)]  # 32 KB < 96 KB
        cache.run_trace(lines)
        cache.stats = type(cache.stats)()  # reset
        cache.run_trace(lines)
        assert cache.stats.hit_rate == 1.0

    def test_streaming_never_hits(self):
        cache = SetAssociativeCache(size_bytes=96 * 1024, ways=16, line_bytes=128)
        stats = cache.run_trace(i * 128 for i in range(10_000))
        assert stats.hit_rate == 0.0

    def test_invalid_geometry(self):
        with pytest.raises(ConfigError):
            SetAssociativeCache(size_bytes=1000, ways=3, line_bytes=128)
        with pytest.raises(ConfigError):
            SetAssociativeCache(size_bytes=0)

    def test_negative_address_rejected(self):
        with pytest.raises(ConfigError):
            SetAssociativeCache().access(-1)


class TestHitRateCurve:
    def test_anchor_is_respected(self):
        curve = HitRateCurve(
            reference_capacity=3e6, reference_hit_rate=0.4, working_set=50e6
        )
        assert curve.hit_rate(3e6) == pytest.approx(0.4)

    def test_monotone_in_capacity(self):
        curve = HitRateCurve(3e6, 0.4, working_set=50e6)
        rates = [curve.hit_rate(c) for c in (1e6, 2e6, 4e6, 10e6, 60e6)]
        assert rates == sorted(rates)

    def test_flat_above_working_set(self):
        curve = HitRateCurve(3e6, 0.4, working_set=5e6, peak_hit_rate=0.5)
        assert curve.hit_rate(5e6) == curve.hit_rate(100e6) == 0.5

    def test_zero_capacity(self):
        curve = HitRateCurve(3e6, 0.4, working_set=50e6)
        assert curve.hit_rate(0) == 0.0

    def test_invalid_parameters(self):
        with pytest.raises(ConfigError):
            HitRateCurve(0, 0.4, 1e6)
        with pytest.raises(ConfigError):
            HitRateCurve(1e6, 1.4, 1e6)
        with pytest.raises(ConfigError):
            HitRateCurve(1e6, 0.6, 1e6, peak_hit_rate=0.5)


class TestCrossbarNoC:
    def test_allocation_scales_with_resources(self):
        noc = CrossbarNoC(GPUConfig())
        alloc = noc.allocation_for(num_sms=40, num_channels=16)
        assert alloc.sm_ports == 40
        assert alloc.mem_ports == 32  # two LLC slices per channel

    def test_reply_bandwidth(self):
        noc = CrossbarNoC(GPUConfig())
        alloc = noc.allocation_for(20, 8)
        # min(20 SM ports, 16 mem ports) * 32 B
        assert noc.reply_bandwidth_bytes_per_cycle(alloc) == 16 * 32

    def test_noc_never_bounds_dram_demand(self):
        """Table 1 NoC dwarfs DRAM bandwidth (paper treats it as ample)."""
        cfg = GPUConfig()
        noc = CrossbarNoC(cfg)
        alloc = noc.allocation_for(20, 8)
        dram_peak = 8 * cfg.channel_bandwidth_bytes_per_cycle()
        assert not noc.is_noc_bound(alloc, dram_peak)

    def test_bounds_checked(self):
        noc = CrossbarNoC(GPUConfig())
        with pytest.raises(ConfigError):
            noc.allocation_for(81, 8)
        with pytest.raises(ConfigError):
            noc.allocation_for(8, 33)


class TestHardwareCounter:
    def test_saturating_counter_pins_at_max(self):
        counter = HardwareCounter(width_bits=4, saturating=True)
        counter.increment(100)
        assert counter.value == 15

    def test_wrapping_counter_wraps(self):
        counter = HardwareCounter(width_bits=4, saturating=False)
        counter.increment(17)
        assert counter.value == 1

    def test_read_and_reset(self):
        counter = HardwareCounter()
        counter.increment(5)
        assert counter.read_and_reset() == 5
        assert counter.value == 0

    def test_negative_increment_rejected(self):
        with pytest.raises(ConfigError):
            HardwareCounter().increment(-1)


class TestCounterBank:
    def test_snapshot_scales_back_up(self):
        bank = CounterBank(scale=10)
        bank.count_instructions(5000)
        for _ in range(100):
            bank.count_llc_access(1, hit=True)
        snap = bank.snapshot()
        assert snap.instructions == 5000
        assert snap.llc_accesses == 100
        assert snap.llc_hits == 100
        assert snap.llc_hit_rate == 1.0
        assert snap.apki_llc == pytest.approx(20.0)

    def test_residue_carries_between_snapshots(self):
        bank = CounterBank(scale=10)
        bank.count_llc_access(5)
        assert bank.snapshot().llc_accesses == 0  # below one tick
        bank.count_llc_access(5)
        assert bank.snapshot().llc_accesses == 10

    def test_empty_snapshot(self):
        snap = CounterBank().snapshot()
        assert snap.llc_hit_rate == 0.0
        assert snap.apki_llc == 0.0

    def test_dram_bytes(self):
        bank = CounterBank(scale=1)
        bank.count_dram_bytes(4096)
        assert bank.snapshot().dram_bytes == 4096


class TestNoCQueueing:
    def test_latency_grows_with_load(self):
        noc = CrossbarNoC(GPUConfig())
        alloc = noc.allocation_for(40, 16)
        capacity = noc.reply_bandwidth_bytes_per_cycle(alloc)
        latencies = [
            noc.queueing_latency_cycles(alloc, capacity * load)
            for load in (0.1, 0.5, 0.9)
        ]
        assert latencies == sorted(latencies)

    def test_zero_load_is_hop_latency(self):
        noc = CrossbarNoC(GPUConfig())
        alloc = noc.allocation_for(40, 16)
        assert noc.queueing_latency_cycles(alloc, 0.0, hop_cycles=4.0) == 4.0

    def test_saturation_is_infinite(self):
        noc = CrossbarNoC(GPUConfig())
        alloc = noc.allocation_for(40, 16)
        capacity = noc.reply_bandwidth_bytes_per_cycle(alloc)
        assert noc.queueing_latency_cycles(alloc, capacity) == float("inf")

    def test_dram_bound_slices_see_negligible_noc_queueing(self):
        """The paper's implicit claim: at DRAM-saturating demand the NoC
        utilization is so low its queueing adds ~nothing."""
        cfg = GPUConfig()
        noc = CrossbarNoC(cfg)
        for sms, mcs in ((20, 8), (40, 16), (60, 24)):
            alloc = noc.allocation_for(sms, mcs)
            dram_peak = mcs * cfg.channel_bandwidth_bytes_per_cycle()
            latency = noc.queueing_latency_cycles(alloc, dram_peak)
            # ~31% utilization -> ~0.23 cycles of queueing over the hop.
            assert noc.utilization(alloc, dram_peak) < 0.35
            assert latency < 4.5

    def test_utilization_metric(self):
        noc = CrossbarNoC(GPUConfig())
        alloc = noc.allocation_for(40, 16)
        capacity = noc.reply_bandwidth_bytes_per_cycle(alloc)
        assert noc.utilization(alloc, capacity / 2) == pytest.approx(0.5)


class TestSlicedLLC:
    def test_default_geometry_is_table1(self):
        from repro.gpu.llc import SlicedLLC
        llc = SlicedLLC()
        assert llc.num_slices == 64
        assert llc.capacity_bytes == 6 * 1024 * 1024

    def test_allocation_shrinks_capacity(self):
        from repro.gpu.llc import SlicedLLC
        llc = SlicedLLC()
        llc.allocate(range(32))  # 16 channels' worth
        assert llc.capacity_bytes == 3 * 1024 * 1024

    def test_hit_rate_drops_with_fewer_slices(self):
        """Capacity travels with channels: a working set that fits the
        full LLC thrashes a quarter of it."""
        from repro.gpu.llc import SlicedLLC
        trace = [i * 128 for i in range(24_000)] * 2   # ~3 MB, touched twice

        full = SlicedLLC()
        full.run_trace(trace)
        quarter = SlicedLLC()
        quarter.allocate(range(16))
        quarter.run_trace(trace)
        assert full.stats().hit_rate > quarter.stats().hit_rate

    def test_accesses_confined_to_allocated_slices(self):
        from repro.gpu.llc import SlicedLLC
        llc = SlicedLLC(num_slices=8)
        llc.allocate([2, 5])
        for address in range(0, 64 * 128, 128):
            llc.access(address)
        for index, cache in enumerate(llc.slices):
            if index in (2, 5):
                assert cache.stats.accesses > 0
            else:
                assert cache.stats.accesses == 0

    def test_flush_slice_invalidates(self):
        from repro.gpu.llc import SlicedLLC
        llc = SlicedLLC(num_slices=2)
        llc.access(0)
        assert llc.access(0)            # hit
        llc.flush_slice(0)
        assert not llc.access(0)        # cold again

    def test_validation(self):
        from repro.gpu.llc import SlicedLLC
        with pytest.raises(ConfigError):
            SlicedLLC(num_slices=0)
        llc = SlicedLLC(num_slices=4)
        with pytest.raises(ConfigError):
            llc.allocate([])
        with pytest.raises(ConfigError):
            llc.allocate([9])
        with pytest.raises(ConfigError):
            llc.flush_slice(7)
