"""Unit tests for the discrete-event engine (repro.sim.engine)."""

import pytest

from repro.errors import SimulationError
from repro.sim import EventQueue, SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0

    def test_starts_at_given_time(self):
        assert SimClock(42).now == 42

    def test_rejects_negative_start(self):
        with pytest.raises(SimulationError):
            SimClock(-1)

    def test_advance_to(self):
        clock = SimClock()
        clock.advance_to(100)
        assert clock.now == 100

    def test_advance_to_same_time_is_noop(self):
        clock = SimClock(5)
        clock.advance_to(5)
        assert clock.now == 5

    def test_never_rewinds(self):
        clock = SimClock(10)
        with pytest.raises(SimulationError):
            clock.advance_to(9)

    def test_advance_by(self):
        clock = SimClock(3)
        clock.advance_by(7)
        assert clock.now == 10

    def test_advance_by_negative_rejected(self):
        with pytest.raises(SimulationError):
            SimClock().advance_by(-1)


class TestEventQueue:
    def test_events_fire_in_time_order(self):
        q = EventQueue()
        order = []
        q.schedule(30, lambda: order.append("c"))
        q.schedule(10, lambda: order.append("a"))
        q.schedule(20, lambda: order.append("b"))
        q.run_all()
        assert order == ["a", "b", "c"]

    def test_fifo_tie_breaking_at_same_timestamp(self):
        q = EventQueue()
        order = []
        for name in "abcde":
            q.schedule(5, lambda n=name: order.append(n))
        q.run_all()
        assert order == list("abcde")

    def test_clock_tracks_fired_events(self):
        q = EventQueue()
        q.schedule(15, lambda: None)
        q.step()
        assert q.clock.now == 15

    def test_cannot_schedule_in_the_past(self):
        q = EventQueue()
        q.clock.advance_to(50)
        with pytest.raises(SimulationError):
            q.schedule(49, lambda: None)

    def test_schedule_in_relative_delay(self):
        q = EventQueue()
        q.clock.advance_to(100)
        event = q.schedule_in(25, lambda: None)
        assert event.time == 125

    def test_schedule_in_rejects_negative_delay(self):
        q = EventQueue()
        with pytest.raises(SimulationError):
            q.schedule_in(-1, lambda: None)

    def test_run_until_only_fires_due_events(self):
        q = EventQueue()
        fired = []
        q.schedule(10, lambda: fired.append(10))
        q.schedule(20, lambda: fired.append(20))
        q.schedule(30, lambda: fired.append(30))
        count = q.run_until(20)
        assert count == 2
        assert fired == [10, 20]
        assert q.clock.now == 20

    def test_run_until_advances_clock_even_with_no_events(self):
        q = EventQueue()
        q.run_until(500)
        assert q.clock.now == 500

    def test_cancelled_events_do_not_fire(self):
        q = EventQueue()
        fired = []
        event = q.schedule(10, lambda: fired.append("x"))
        q.schedule(20, lambda: fired.append("y"))
        event.cancel()
        q.run_all()
        assert fired == ["y"]

    def test_len_excludes_cancelled(self):
        q = EventQueue()
        e1 = q.schedule(1, lambda: None)
        q.schedule(2, lambda: None)
        e1.cancel()
        assert len(q) == 1

    def test_actions_can_schedule_more_events(self):
        q = EventQueue()
        order = []

        def first():
            order.append("first")
            q.schedule_in(5, lambda: order.append("second"))

        q.schedule(10, first)
        q.run_all()
        assert order == ["first", "second"]
        assert q.clock.now == 15

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.schedule(7, lambda: None)
        assert q.peek_time() == 7

    def test_event_storm_guard(self):
        q = EventQueue()

        def reschedule():
            q.schedule_in(1, reschedule)

        q.schedule(0, reschedule)
        with pytest.raises(SimulationError):
            q.run_all(max_events=1000)

    def test_events_fired_counter(self):
        q = EventQueue()
        for t in range(5):
            q.schedule(t, lambda: None)
        q.run_all()
        assert q.events_fired == 5
