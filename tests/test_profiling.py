"""Tests for the phase profiler (repro.profiling.profiler): span
nesting, self/cumulative attribution, the flat table, Chrome-trace
export, and the zero-overhead ``profiler=None`` contract of every
instrumented layer."""

import json

import pytest

from repro.errors import SimulationError
from repro.profiling import PhaseProfiler


class FakeClock:
    """Returns scripted timestamps; each call consumes one."""

    def __init__(self, times):
        self._times = list(times)

    def __call__(self):
        return self._times.pop(0)


class TestSpanNesting:
    def test_self_and_cumulative_on_hand_built_tree(self):
        # a[0..11] containing b[1..3], b[4..5], c[6..10]:
        #   a.cum = 11, b.cum = 2 + 1 = 3, c.cum = 4, a.self = 11 - 7 = 4
        clock = FakeClock([0.0, 1.0, 3.0, 4.0, 5.0, 6.0, 10.0, 11.0])
        prof = PhaseProfiler(clock=clock)
        prof.begin("a")
        prof.begin("b")
        prof.end("b")
        prof.begin("b")
        prof.end("b")
        prof.begin("c")
        prof.end("c")
        prof.end("a")

        tree = prof.tree()
        assert tree[("a",)].cum_seconds == pytest.approx(11.0)
        assert tree[("a",)].self_seconds == pytest.approx(4.0)
        assert tree[("a", "b")].calls == 2
        assert tree[("a", "b")].cum_seconds == pytest.approx(3.0)
        assert tree[("a", "b")].self_seconds == pytest.approx(3.0)
        assert tree[("a", "c")].cum_seconds == pytest.approx(4.0)
        assert prof.total_seconds() == pytest.approx(11.0)

    def test_flat_aggregates_same_name_across_paths(self):
        # x under a and x under b fold into one flat row.
        clock = FakeClock([0.0, 1.0, 2.0, 3.0, 10.0, 11.0, 13.0, 14.0])
        prof = PhaseProfiler(clock=clock)
        with prof.span("a"):
            with prof.span("x"):
                pass
        with prof.span("b"):
            with prof.span("x"):
                pass
        flat = {s.name: s for s in prof.flat()}
        assert flat["x"].calls == 2
        assert flat["x"].cum_seconds == pytest.approx(3.0)

    def test_recursive_phase_not_double_counted_in_cum(self):
        # x[0..10] containing x[2..5]: flat cum counts only the outer 10.
        clock = FakeClock([0.0, 2.0, 5.0, 10.0])
        prof = PhaseProfiler(clock=clock)
        prof.begin("x")
        prof.begin("x")
        prof.end("x")
        prof.end("x")
        flat = {s.name: s for s in prof.flat()}
        assert flat["x"].calls == 2
        assert flat["x"].cum_seconds == pytest.approx(10.0)
        assert flat["x"].self_seconds == pytest.approx(10.0)

    def test_end_returns_duration(self):
        prof = PhaseProfiler(clock=FakeClock([1.0, 3.5]))
        prof.begin("p")
        assert prof.end("p") == pytest.approx(2.5)

    def test_mismatched_nesting_raises(self):
        prof = PhaseProfiler()
        prof.begin("outer")
        prof.begin("inner")
        with pytest.raises(SimulationError, match="mismatched"):
            prof.end("outer")

    def test_end_without_begin_raises(self):
        prof = PhaseProfiler()
        with pytest.raises(SimulationError, match="no open span"):
            prof.end("ghost")

    def test_report_with_open_span_raises(self):
        prof = PhaseProfiler()
        prof.begin("open")
        with pytest.raises(SimulationError, match="open spans"):
            prof.tree()

    def test_span_context_manager_closes_on_exception(self):
        prof = PhaseProfiler(clock=FakeClock([0.0, 1.0]))
        with pytest.raises(RuntimeError):
            with prof.span("risky"):
                raise RuntimeError("boom")
        assert prof.tree()[("risky",)].calls == 1


class TestEventRing:
    def test_capacity_bounds_events_but_not_stats(self):
        times = [float(t) for t in range(20)]
        prof = PhaseProfiler(clock=FakeClock(times), events_capacity=4)
        for _ in range(10):
            prof.begin("p")
            prof.end("p")
        assert prof.dropped == 6
        assert len(prof.trace_events()) == 4
        assert prof.tree()[("p",)].calls == 10

    def test_capacity_must_be_positive(self):
        with pytest.raises(SimulationError):
            PhaseProfiler(events_capacity=0)


class TestReports:
    def _profiled(self):
        clock = FakeClock([0.0, 1.0, 3.0, 4.0])
        prof = PhaseProfiler(clock=clock)
        with prof.span("outer"):
            with prof.span("inner"):
                pass
        return prof

    def test_format_table_lists_phases(self):
        table = self._profiled().format_table()
        assert "phase" in table and "self%" in table
        assert "outer" in table and "inner" in table

    def test_format_table_top_truncates(self):
        table = self._profiled().format_table(top=1)
        assert "1 more phases" in table

    def test_format_table_rejects_bad_sort(self):
        with pytest.raises(SimulationError):
            self._profiled().format_table(sort="alphabetical")

    def test_format_table_cum_sort_leads_with_outer(self):
        lines = self._profiled().format_table(sort="cum").splitlines()
        assert lines[1].startswith("outer")


class TestChromeExport:
    def test_trace_events_are_microseconds_from_origin(self):
        clock = FakeClock([100.0, 100.001, 100.002, 100.004])
        prof = PhaseProfiler(clock=clock)
        with prof.span("outer"):
            with prof.span("inner"):
                pass
        events = prof.trace_events()
        by_name = {e.name: e for e in events}
        assert by_name["inner"].time == pytest.approx(1_000.0, rel=1e-6)
        assert by_name["inner"].duration == pytest.approx(1_000.0, rel=1e-6)
        assert by_name["outer"].time == pytest.approx(0.0, abs=1e-6)
        assert by_name["outer"].args["path"] == "outer"
        assert by_name["inner"].args["depth"] == 1
        assert all(e.category == "phase" for e in events)

    def test_written_file_is_chrome_trace_json(self, tmp_path):
        prof = PhaseProfiler(clock=FakeClock([0.0, 0.5]))
        with prof.span("p"):
            pass
        path = tmp_path / "prof.chrome.json"
        count = prof.write_chrome_trace(path)
        assert count > 0
        doc = json.loads(path.read_text())
        spans = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert spans and spans[0]["name"] == "p"
        # 0.5 s span -> 500_000 us in Chrome-trace microseconds.
        assert spans[0]["dur"] == pytest.approx(500_000.0, rel=1e-6)


class TestZeroOverheadContract:
    """profiler=None must leave results and hot paths untouched."""

    def _run(self, profiler):
        from repro.core.system import MultitaskSystem, clear_solo_ipc_cache
        from repro.policies import UGPUPolicy
        from repro.workloads.mixes import build_mix

        clear_solo_ipc_cache()
        system = MultitaskSystem(
            build_mix(["PVC", "DXTC"]).applications,
            policy=UGPUPolicy(),
            epoch_cycles=100_000,
            profiler=profiler,
        )
        return system.run(3_000_000)

    def test_profiled_run_matches_unprofiled_run(self):
        plain = self._run(None)
        prof = PhaseProfiler()
        profiled = self._run(prof)
        assert profiled.stp == plain.stp
        assert profiled.antt == plain.antt
        assert profiled.repartitions == plain.repartitions
        assert len(profiled.epochs) == len(plain.epochs)
        # And the profiler actually saw the run.
        flat = {s.name for s in prof.flat()}
        assert {"epoch", "epoch.advance", "epoch.policy",
                "run.solo_ipc"} <= flat

    def test_profiler_attribute_defaults_to_none_everywhere(self):
        from repro.core.system import MultitaskSystem
        from repro.hbm.config import HBMConfig
        from repro.hbm.controller import MemoryController
        from repro.pagemove.engine import MigrationEngine
        from repro.policies import BPPolicy
        from repro.sim.engine import EventQueue
        from repro.vm.driver import GPUDriver
        from repro.workloads.mixes import build_mix

        system = MultitaskSystem(build_mix(["PVC", "DXTC"]).applications,
                                 policy=BPPolicy())
        assert system.phase_profiler is None
        assert EventQueue().profiler is None
        assert MemoryController(HBMConfig()).profiler is None
        driver = GPUDriver()
        assert driver.profiler is None
        assert MigrationEngine(driver).profiler is None

    def test_phase_profiler_does_not_shadow_policy_profiler(self):
        """system.profiler must still delegate to the policy's epoch
        counter profiler (the paper's Section 3.2 instrument)."""
        from repro.core.system import MultitaskSystem
        from repro.policies import UGPUPolicy
        from repro.workloads.mixes import build_mix

        prof = PhaseProfiler()
        system = MultitaskSystem(build_mix(["PVC", "DXTC"]).applications,
                                 policy=UGPUPolicy(), profiler=prof)
        assert system.phase_profiler is prof
        assert system.profiler is system.policy.profiler
        assert not isinstance(system.profiler, PhaseProfiler)

    def test_event_queue_attributes_span_per_fired_event(self):
        from repro.sim.engine import EventQueue

        prof = PhaseProfiler()
        queue = EventQueue(profiler=prof)
        queue.schedule(5, lambda: None, tag="tick")
        queue.schedule(7, lambda: None, tag="tock")
        queue.run_until(10)
        assert prof.tree()[("sim.event",)].calls == 2

    def test_driver_and_engine_spans_nest(self):
        from repro.pagemove.engine import MigrationEngine
        from repro.vm.driver import FaultKind, GPUDriver

        prof = PhaseProfiler()
        driver = GPUDriver(num_channel_groups=4, pages_per_channel=64,
                           profiler=prof)
        driver.register_app(0, channels=range(0, 2))
        engine = MigrationEngine(driver, profiler=prof)
        for vpn in range(8):
            driver.handle_fault(FaultKind.DEMAND, 0, vpn)
        plan = engine.plan_channel_reallocation(0, [1, 2])
        engine.execute(plan)
        flat = {s.name: s for s in prof.flat()}
        assert flat["vm.handle_fault"].calls >= 8
        assert flat["pagemove.plan"].calls == 1
        assert flat["pagemove.execute"].calls == 1
        # Faults serviced during execute() nest under it.
        tree = prof.tree()
        nested = [p for p in tree
                  if p[-1] == "vm.handle_fault" and len(p) > 1]
        assert nested and all(p[0] == "pagemove.execute" for p in nested)

    def test_hbm_controller_drain_span(self):
        from repro.hbm.config import HBMConfig
        from repro.hbm.controller import (
            MemoryController,
            MemoryRequest,
            RequestKind,
        )

        prof = PhaseProfiler()
        controller = MemoryController(HBMConfig(), profiler=prof)
        for i in range(4):
            controller.enqueue(MemoryRequest(
                kind=RequestKind.READ, bank_group=0, bank=0,
                row=i, column=0, arrival=controller.now,
            ))
        served = controller.drain()
        assert len(served) == 4
        assert prof.tree()[("hbm.service_requests",)].calls == 1
