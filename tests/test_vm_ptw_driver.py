"""Unit tests for the page-table walker, channel-status register and
GPU driver (repro.vm.ptw / channel_registry / driver)."""

import pytest

from repro.errors import AllocationError, ConfigError
from repro.vm import (
    ChannelStatusRegister,
    FaultKind,
    GPUDriver,
    PageTable,
    PageTableWalker,
    ReallocationDirection,
)
from repro.vm.driver import DRIVER_FAULT_CYCLES


class TestPageTableWalker:
    def test_walk_hit_latency_is_four_levels(self):
        table = PageTable(0)
        table.map(5, 50, channel=0)
        ptw = PageTableWalker(level_latency=120)
        result = ptw.walk(table, 5, now=0)
        assert not result.faulted
        assert result.latency == 4 * 120

    def test_walk_miss_is_fault(self):
        table = PageTable(0)
        ptw = PageTableWalker()
        result = ptw.walk(table, 7, now=0)
        assert result.faulted
        assert ptw.faults == 1

    def test_thread_limit_queues_walks(self):
        table = PageTable(0)
        table.map(1, 10, channel=0)
        ptw = PageTableWalker(max_threads=2, level_latency=10)
        r1 = ptw.walk(table, 1, now=0)
        r2 = ptw.walk(table, 1, now=0)
        r3 = ptw.walk(table, 1, now=0)  # must wait for a free thread
        assert r1.completed_at == 40
        assert r2.completed_at == 40
        assert r3.issued_at == 0
        assert r3.completed_at == 80  # started when a thread freed at 40

    def test_threads_retire(self):
        table = PageTable(0)
        table.map(1, 10, channel=0)
        ptw = PageTableWalker(max_threads=2, level_latency=10)
        ptw.walk(table, 1, now=0)
        assert ptw.in_flight == 1
        ptw.walk(table, 1, now=1000)
        assert ptw.in_flight == 1  # the first walk retired

    def test_invalid_config(self):
        with pytest.raises(ConfigError):
            PageTableWalker(max_threads=0)
        with pytest.raises(ConfigError):
            PageTableWalker(level_latency=0)

    def test_mean_latency(self):
        table = PageTable(0)
        table.map(1, 10, channel=0)
        ptw = PageTableWalker(level_latency=10)
        ptw.walk(table, 1, now=0)
        assert ptw.mean_latency == 40


class TestChannelStatusRegister:
    def test_lost_direction_marks_kept_channels(self):
        reg = ChannelStatusRegister()
        reg.set_lost(0, still_owned=[0, 1, 2, 3])
        assert reg.direction(0) is ReallocationDirection.LOST
        assert not reg.needs_migration(0, 2)   # still owned
        assert reg.needs_migration(0, 5)       # taken away

    def test_gained_direction_marks_new_channels(self):
        reg = ChannelStatusRegister()
        reg.set_gained(1, newly_granted=[6, 7])
        assert reg.direction(1) is ReallocationDirection.GAINED
        assert reg.needs_migration(1, 0)       # old channel -> spread out
        assert not reg.needs_migration(1, 6)   # already in a new channel

    def test_untracked_app_never_migrates(self):
        reg = ChannelStatusRegister()
        assert not reg.needs_migration(2, 0)
        assert reg.direction(2) is None

    def test_clear(self):
        reg = ChannelStatusRegister()
        reg.set_lost(0, [0])
        reg.clear(0)
        assert not reg.is_tracking(0)

    def test_capacity_limits(self):
        reg = ChannelStatusRegister()
        with pytest.raises(ConfigError):
            reg.set_lost(4, [0])        # only 2 app-id bits
        with pytest.raises(ConfigError):
            reg.set_lost(0, [8])        # only 8 channel bits

    def test_encoding(self):
        reg = ChannelStatusRegister()
        reg.set_gained(2, [0, 7])
        bits = reg.encoded_bits(2)
        assert bits == (2 << 9) | (1 << 8) | 0b10000001
        assert reg.encoded_bits(3) == 0


class TestGPUDriver:
    def make_driver(self):
        return GPUDriver(num_channel_groups=8, pages_per_channel=16)

    def test_register_app(self):
        driver = self.make_driver()
        table = driver.register_app(0, channels=[0, 1, 2, 3])
        assert driver.assigned_channels(0) == {0, 1, 2, 3}
        assert len(table) == 0

    def test_double_register_rejected(self):
        driver = self.make_driver()
        driver.register_app(0, [0])
        with pytest.raises(AllocationError):
            driver.register_app(0, [1])

    def test_empty_channel_set_rejected(self):
        driver = self.make_driver()
        with pytest.raises(AllocationError):
            driver.register_app(0, [])

    def test_allocation_prefers_least_loaded_channel(self):
        driver = self.make_driver()
        driver.register_app(0, [0, 1])
        first = driver.allocate_page(0)
        second = driver.allocate_page(0)
        assert {driver.channel_of_frame(first), driver.channel_of_frame(second)} == {0, 1}

    def test_allocation_outside_assignment_rejected(self):
        driver = self.make_driver()
        driver.register_app(0, [0])
        with pytest.raises(AllocationError):
            driver.allocate_page(0, channel=5)

    def test_exhaustion(self):
        driver = self.make_driver()
        driver.register_app(0, [0])
        for _ in range(16):
            driver.allocate_page(0)
        with pytest.raises(AllocationError):
            driver.allocate_page(0)

    def test_release_returns_frame(self):
        driver = self.make_driver()
        driver.register_app(0, [0])
        rpn = driver.allocate_page(0)
        assert driver.free_pages(0) == 15
        driver.release_page(0, rpn)
        assert driver.free_pages(0) == 16
        assert driver.resident_pages(0) == 0

    def test_release_without_residency_rejected(self):
        driver = self.make_driver()
        driver.register_app(0, [0])
        with pytest.raises(AllocationError):
            driver.release_page(0, 5)

    def test_demand_fault_maps_page(self):
        driver = self.make_driver()
        driver.register_app(0, [0, 1])
        fault = driver.handle_fault(FaultKind.DEMAND, 0, vpn=42)
        assert fault.software_cycles == DRIVER_FAULT_CYCLES
        entry = driver.page_tables[0].lookup(42)
        assert entry.rpn == fault.rpn
        assert entry.channel == fault.channel

    def test_lost_channel_fault_moves_page(self):
        driver = self.make_driver()
        driver.register_app(0, [0, 1])
        driver.handle_fault(FaultKind.DEMAND, 0, vpn=1, target_channel=1)
        driver.reassign_channels(0, [0])  # channel 1 taken away
        fault = driver.handle_fault(FaultKind.LOST_CHANNEL, 0, vpn=1)
        assert fault.source_channel == 1
        assert fault.channel == 0
        assert driver.page_tables[0].lookup(1).channel == 0
        # The old frame went back to channel 1's free list.
        assert driver.free_pages(1) == 16

    def test_lost_channel_fault_requires_mapping(self):
        driver = self.make_driver()
        driver.register_app(0, [0])
        with pytest.raises(AllocationError):
            driver.handle_fault(FaultKind.LOST_CHANNEL, 0, vpn=9)

    def test_rebalance_fault_targets_new_channel(self):
        driver = self.make_driver()
        driver.register_app(0, [0])
        driver.handle_fault(FaultKind.DEMAND, 0, vpn=1)
        driver.reassign_channels(0, [0, 1])
        fault = driver.handle_fault(FaultKind.REBALANCE, 0, vpn=1, target_channel=1)
        assert fault.source_channel == 0
        assert fault.channel == 1

    def test_is_balanced(self):
        driver = self.make_driver()
        driver.register_app(0, [0, 1])
        assert driver.is_balanced(0)
        for _ in range(4):
            driver.allocate_page(0, channel=0)
        assert not driver.is_balanced(0)

    def test_channel_of_frame_bounds(self):
        driver = self.make_driver()
        with pytest.raises(AllocationError):
            driver.channel_of_frame(16 * 8)


class TestNeedsMigrationSemantics:
    """``needs_migration`` is one membership test for both directions:
    the *meaning* of the marks differs (LOST marks the kept channels,
    GAINED marks the newly-granted ones), but in either case a channel
    outside the marked set is the one whose translations must trigger a
    migration fault."""

    def test_single_check_covers_both_directions(self):
        reg = ChannelStatusRegister()
        reg.set_lost(0, still_owned=[0, 1])
        reg.set_gained(1, newly_granted=[6, 7])
        for channel in range(8):
            assert reg.needs_migration(0, channel) == (channel not in {0, 1})
            assert reg.needs_migration(1, channel) == (channel not in {6, 7})

    def test_untracked_after_clear(self):
        reg = ChannelStatusRegister()
        reg.set_lost(0, still_owned=[3])
        reg.clear(0)
        assert not reg.needs_migration(0, 0)
        assert not reg.needs_migration(0, 3)
