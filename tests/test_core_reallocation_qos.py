"""Unit tests for SM reallocation (repro.core.reallocation) and QoS
estimation (repro.core.qos)."""

import pytest

from repro.core import ResourceAllocation, SMPolicy, SMReallocator
from repro.core.profiler import EpochProfiler
from repro.core.profiler import AppProfile
from repro.core.qos import QoSTarget, estimated_ipc, estimated_np, meets_target
from repro.errors import ConfigError, QoSError
from repro.gpu import GPUConfig


@pytest.fixture
def reallocator():
    return SMReallocator(GPUConfig())


class TestPolicyChoice:
    def test_drain_when_tb_fits_in_epoch(self, reallocator):
        assert reallocator.choose_policy(200_000, 5_000_000) is SMPolicy.DRAIN

    def test_switch_when_tb_exceeds_epoch(self, reallocator):
        assert reallocator.choose_policy(9_000_000, 5_000_000) is SMPolicy.SWITCH

    def test_invalid_durations(self, reallocator):
        with pytest.raises(ConfigError):
            reallocator.choose_policy(-1, 5_000_000)
        with pytest.raises(ConfigError):
            reallocator.choose_policy(100, 0)


class TestCosts:
    def test_drain_cost_is_half_a_block(self, reallocator):
        charge = reallocator.drain_cost(8, tb_duration_cycles=200_000)
        assert charge.cycles == 100_000
        assert charge.dram_bytes == 0
        assert charge.policy is SMPolicy.DRAIN

    def test_switch_cost_scales_with_sms_and_bandwidth(self, reallocator):
        fixed = reallocator.switch_fixed_cycles
        few = reallocator.switch_cost(4, channels_available=16)
        many = reallocator.switch_cost(8, channels_available=16)
        assert many.cycles - fixed == pytest.approx(2 * (few.cycles - fixed))
        wide = reallocator.switch_cost(4, channels_available=32)
        assert wide.cycles - fixed == pytest.approx((few.cycles - fixed) / 2)

    def test_switch_moves_context_twice(self, reallocator):
        charge = reallocator.switch_cost(1, channels_available=16)
        assert charge.dram_bytes == 2 * reallocator.context_bytes_per_sm

    def test_adaptive_cost_picks_policy(self, reallocator):
        drain = reallocator.cost(4, 100_000, 5_000_000, 16)
        assert drain.policy is SMPolicy.DRAIN
        switch = reallocator.cost(4, 10_000_000, 5_000_000, 16)
        assert switch.policy is SMPolicy.SWITCH

    def test_zero_sms_is_free(self, reallocator):
        charge = reallocator.cost(0, 100_000, 5_000_000, 16)
        assert charge.cycles == 0.0

    def test_validation(self, reallocator):
        with pytest.raises(ConfigError):
            reallocator.switch_cost(4, channels_available=0)
        with pytest.raises(ConfigError):
            reallocator.drain_cost(-1, 100)
        with pytest.raises(ConfigError):
            SMReallocator(GPUConfig(), context_bytes_per_sm=0)


def make_profile(apki, hit, ipc_max=64.0):
    config = GPUConfig()
    profiler = EpochProfiler(config)
    return AppProfile(
        app_id=0,
        ipc_max_per_sm=ipc_max,
        apki_llc=apki,
        llc_hit_rate=hit,
        bw_demand_per_sm=profiler.bw_demand_per_sm(ipc_max, apki),
        bw_supply_per_mc=profiler.bw_supply_per_mc(hit),
    )


class TestQoS:
    def test_target_validation(self):
        QoSTarget(0, 0.75)
        with pytest.raises(QoSError):
            QoSTarget(0, 0.0)
        with pytest.raises(QoSError):
            QoSTarget(0, 1.5)

    def test_full_gpu_np_is_one(self):
        config = GPUConfig()
        profile = make_profile(apki=1.2, hit=0.9997)
        np_value = estimated_np(
            profile, ResourceAllocation(80, 32), config
        )
        assert np_value == pytest.approx(1.0)

    def test_compute_bound_np_tracks_sm_share(self):
        config = GPUConfig()
        profile = make_profile(apki=1.2, hit=0.9997)
        assert estimated_np(profile, ResourceAllocation(60, 16), config) == (
            pytest.approx(0.75)
        )

    def test_memory_bound_np_tracks_channel_share(self):
        config = GPUConfig()
        profile = make_profile(apki=6.4, hit=0.25)
        np24 = estimated_np(profile, ResourceAllocation(40, 24), config)
        np16 = estimated_np(profile, ResourceAllocation(40, 16), config)
        assert np24 > np16

    def test_meets_target(self):
        config = GPUConfig()
        profile = make_profile(apki=1.2, hit=0.9997)
        target = QoSTarget(0, 0.75)
        assert meets_target(profile, ResourceAllocation(60, 16), config, target)
        assert not meets_target(profile, ResourceAllocation(40, 16), config, target)

    def test_zero_traffic_app_is_compute_only(self):
        config = GPUConfig()
        profile = make_profile(apki=0.0, hit=0.5)
        ipc = estimated_ipc(profile, ResourceAllocation(40, 16), config)
        assert ipc == pytest.approx(40 * 64.0)
