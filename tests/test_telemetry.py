"""Tests for the telemetry layer (repro.telemetry): registry semantics,
exposition round-trips, CSV series, the scrape server, provenance, and
the trace->metrics bridge against live instrumentation."""

import json
import math
import urllib.request

import pytest

from repro.errors import ConfigError
from repro.exec import resolve_policy
from repro.telemetry import (
    CYCLE_BUCKETS,
    MetricsRegistry,
    MetricsServer,
    NullRegistry,
    collect_provenance,
    fold_exec_stats,
    parse_prometheus,
    read_provenance,
    read_series,
    registry_from_trace,
    series_values,
    stamp,
    to_json,
    to_prometheus,
    validate_prometheus_file,
    write_prometheus,
)
from repro.telemetry.exposition import BUILD_INFO_METRIC
from repro.trace import TraceRecorder, summarize
from repro.trace.summary import TraceSummary
from repro.workloads import poisson_arrivals


class TestRegistry:
    def test_counter_and_gauge_basics(self):
        reg = MetricsRegistry()
        jobs = reg.counter("jobs_total", "jobs", labels=("policy",))
        jobs.labels(policy="ugpu").inc()
        jobs.labels(policy="ugpu").inc(2)
        depth = reg.gauge("depth")
        depth.set(4)
        depth.dec()
        assert reg.value("jobs_total", policy="ugpu") == 3.0
        assert reg.value("depth") == 3.0
        assert reg.value("never_touched") == 0.0

    def test_counter_cannot_decrease(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigError):
            reg.counter("c").inc(-1)

    def test_family_declaration_is_idempotent(self):
        reg = MetricsRegistry()
        first = reg.counter("c", "help", labels=("k",))
        assert reg.counter("c", "help", labels=("k",)) is first
        with pytest.raises(ConfigError):
            reg.gauge("c")  # kind mismatch
        with pytest.raises(ConfigError):
            reg.counter("c", labels=("other",))  # label mismatch

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigError):
            reg.counter("0starts_with_digit")
        with pytest.raises(ConfigError):
            reg.counter("ok", labels=("le",))  # reserved
        with pytest.raises(ConfigError):
            reg.counter("ok2", labels=("k", "k"))  # duplicate

    def test_cardinality_guard(self):
        reg = MetricsRegistry(max_label_sets=4)
        family = reg.counter("c", labels=("k",))
        for i in range(4):
            family.labels(k=str(i)).inc()
        with pytest.raises(ConfigError, match="cardinality"):
            family.labels(k="4").inc()
        # Existing children stay reachable after the guard trips.
        family.labels(k="0").inc()
        assert reg.value("c", k="0") == 2.0


class TestHistogram:
    def test_boundary_values_are_inclusive(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h", buckets=(1.0, 2.5, 10.0))
        hist.observe(1.0)        # le=1.0 is inclusive
        hist.observe(1.0000001)  # next bucket
        hist.observe(-5.0)       # below every bound: first bucket
        hist.observe(10.0)       # last finite bucket, inclusive
        hist.observe(11.0)       # implicit +Inf bucket
        cumulative = dict(hist._default_child().cumulative())
        assert cumulative[1.0] == 2
        assert cumulative[2.5] == 3
        assert cumulative[10.0] == 4
        assert cumulative[math.inf] == 5
        assert hist.count == 5
        assert hist.sum == pytest.approx(18.0000001)

    def test_infinite_observation_lands_in_inf_bucket(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h", buckets=(1.0,))
        hist.observe(math.inf)
        cumulative = hist._default_child().cumulative()
        assert cumulative == [(1.0, 0), (math.inf, 1)]

    def test_nan_observation_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigError):
            reg.histogram("h", buckets=(1.0,)).observe(float("nan"))

    def test_explicit_inf_bucket_is_trimmed(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h", buckets=(1.0, math.inf))
        assert hist.buckets == (1.0,)

    def test_bad_buckets_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigError):
            reg.histogram("h1", buckets=())
        with pytest.raises(ConfigError):
            reg.histogram("h2", buckets=(2.0, 1.0))
        with pytest.raises(ConfigError):
            reg.histogram("h3", buckets=(math.inf,))


class TestNullRegistry:
    def test_all_operations_are_noops(self):
        reg = NullRegistry()
        assert reg.enabled is False
        reg.counter("c", labels=("k",)).labels(k="v").inc()
        reg.gauge("g").set(5)
        reg.histogram("h").observe(1.0)
        reg.epoch_boundary(0, 0.0)
        assert reg.families() == []
        stamp(reg, None, policy="x")
        assert reg.provenance == {}

    def test_fold_exec_stats_tolerates_disabled_registries(self):
        from repro.exec.stats import ExecStats

        stats = ExecStats(jobs_total=3)
        fold_exec_stats(None, stats)
        fold_exec_stats(NullRegistry(), stats)
        live = MetricsRegistry()
        fold_exec_stats(live, stats)
        assert live.value("repro_exec_jobs_total") == 3.0


class TestPrometheusRoundTrip:
    def _registry(self):
        reg = MetricsRegistry()
        reg.provenance.update({"git_sha": "abc123", "seed": "0"})
        reg.counter("repro_jobs_total", "Jobs.", labels=("policy",)) \
            .labels(policy="ugpu").inc(7)
        reg.gauge("repro_depth", "Queue depth.").set(2.5)
        hist = reg.histogram("repro_delay", "Delay.", buckets=(1.0, 10.0))
        hist.observe(0.5)
        hist.observe(50.0)
        return reg

    def test_round_trip_preserves_samples(self):
        parsed = parse_prometheus(to_prometheus(self._registry()))
        samples = parsed["samples"]
        assert samples[("repro_jobs_total", (("policy", "ugpu"),))] == 7.0
        assert samples[("repro_depth", ())] == 2.5
        assert samples[("repro_delay_bucket", (("le", "1"),))] == 1.0
        assert samples[("repro_delay_bucket", (("le", "+Inf"),))] == 2.0
        assert samples[("repro_delay_sum", ())] == 50.5
        assert samples[("repro_delay_count", ())] == 2.0
        assert parsed["types"]["repro_jobs_total"] == "counter"
        assert parsed["types"]["repro_delay"] == "histogram"

    def test_provenance_becomes_build_info(self):
        parsed = parse_prometheus(to_prometheus(self._registry()))
        key = (BUILD_INFO_METRIC,
               (("git_sha", "abc123"), ("seed", "0")))
        assert parsed["samples"][key] == 1.0

    def test_file_write_and_validate(self, tmp_path):
        path = tmp_path / "out.prom"
        count = write_prometheus(self._registry(), path)
        assert validate_prometheus_file(path) == count

    def test_gzip_file_write_and_validate(self, tmp_path):
        path = tmp_path / "out.prom.gz"
        count = write_prometheus(self._registry(), path)
        assert path.read_bytes()[:2] == b"\x1f\x8b"
        assert validate_prometheus_file(path) == count

    def test_gzip_json_snapshot_round_trips(self, tmp_path):
        import gzip

        from repro.telemetry.exposition import write_json

        path = tmp_path / "metrics.json.gz"
        write_json(self._registry(), path)
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["provenance"]["git_sha"] == "abc123"

    def test_malformed_exposition_rejected(self):
        with pytest.raises(ConfigError):
            parse_prometheus("not a metric line at all {")
        with pytest.raises(ConfigError):
            parse_prometheus("# TYPE x sometype\nx 1\n")
        with pytest.raises(ConfigError):
            parse_prometheus("x 1\nx 2\n")  # duplicate sample

    def test_histogram_invariants_checked(self):
        broken = (
            "# TYPE h histogram\n"
            'h_bucket{le="1.0"} 5\n'
            'h_bucket{le="+Inf"} 3\n'  # not monotone
            "h_sum 1\n"
            "h_count 3\n"
        )
        with pytest.raises(ConfigError):
            parse_prometheus(broken)

    def test_json_snapshot(self):
        payload = to_json(self._registry())
        assert payload["provenance"]["git_sha"] == "abc123"
        by_name = {f["name"]: f for f in payload["metrics"]}
        assert by_name["repro_jobs_total"]["kind"] == "counter"
        assert by_name["repro_delay"]["kind"] == "histogram"


class TestCsvSeries:
    def test_sampler_round_trip(self, tmp_path):
        from repro.telemetry import CsvSampler

        reg = MetricsRegistry()
        stamp(reg, None, policy="test")
        counter = reg.counter("repro_c_total", labels=("k",))
        hist = reg.histogram("repro_h", buckets=(10.0,))
        sampler = CsvSampler(tmp_path / "series.csv").attach(reg)
        counter.labels(k="a").inc(2)
        hist.observe(4.0)
        reg.epoch_boundary(0, 1000.0)
        counter.labels(k="a").inc(3)
        reg.epoch_boundary(1, 2000.0)
        sampler.close()

        rows = read_series(tmp_path / "series.csv")
        assert series_values(rows, "repro_c_total", k="a") == [(0, 2.0),
                                                              (1, 5.0)]
        assert series_values(rows, "repro_h_sum") == [(0, 4.0), (1, 4.0)]
        assert series_values(rows, "repro_h_count") == [(0, 1.0), (1, 1.0)]
        provenance = read_provenance(tmp_path / "series.csv")
        assert provenance["policy"] == "test"
        assert "git_sha" in provenance and "config_hash" in provenance

    def test_gzip_sampler_round_trip(self, tmp_path):
        from repro.telemetry import CsvSampler

        reg = MetricsRegistry()
        stamp(reg, None, policy="test")
        counter = reg.counter("repro_c_total")
        sampler = CsvSampler(tmp_path / "series.csv.gz").attach(reg)
        counter.inc(4)
        reg.epoch_boundary(0, 1000.0)
        sampler.close()

        path = tmp_path / "series.csv.gz"
        assert path.read_bytes()[:2] == b"\x1f\x8b"
        rows = read_series(path)
        assert series_values(rows, "repro_c_total") == [(0, 4.0)]
        assert read_provenance(path)["policy"] == "test"


class TestMetricsServer:
    def test_scrape_endpoint_serves_exposition(self):
        reg = MetricsRegistry()
        reg.counter("repro_hits_total").inc(3)
        with MetricsServer(reg, port=0) as server:
            with urllib.request.urlopen(server.url, timeout=5) as response:
                assert response.status == 200
                assert "0.0.4" in response.headers["Content-Type"]
                body = response.read().decode("utf-8")
        parsed = parse_prometheus(body)
        assert parsed["samples"][("repro_hits_total", ())] == 3.0


class TestProvenance:
    def test_collect_has_required_keys(self):
        info = collect_provenance(None, policy="ugpu")
        for key in ("git_sha", "repro_version", "python_version",
                    "platform", "config_hash"):
            assert info[key], key
        assert info["policy"] == "ugpu"

    def test_config_hash_is_stable_and_sensitive(self):
        from repro.telemetry import config_hash

        assert config_hash({"a": 1}) == config_hash({"a": 1})
        assert config_hash({"a": 1}) != config_hash({"a": 2})

    def test_open_system_result_carries_provenance(self):
        schedule = poisson_arrivals(mean_interarrival_cycles=2_000_000,
                                    horizon_cycles=6_000_000, seed=1)
        system = resolve_policy("ugpu")([], arrivals=schedule)
        result = system.run(6_000_000)
        assert result.provenance["policy"].lower() == "ugpu"
        assert "git_sha" in result.provenance


class TestSummarySatellites:
    def test_dropped_events_surfaced(self):
        summary = summarize([], dropped_events=7)
        assert summary.dropped_events == 7
        assert "dropped 7" in summary.format()

    def test_raw_stall_fraction_unclamped(self):
        summary = TraceSummary(epochs=2, total_cycles=100.0,
                               migration_cycles=150.0)
        assert summary.migration_stall_fraction == 1.0
        assert summary.migration_stall_fraction_raw == pytest.approx(1.5)
        assert "RAW 1.500" in summary.format()

    def test_sane_fraction_does_not_warn(self):
        summary = TraceSummary(epochs=2, total_cycles=100.0,
                               migration_cycles=50.0)
        assert summary.migration_stall_fraction == pytest.approx(0.5)
        assert "RAW" not in summary.format()


#: Families whose live and bridged values must agree exactly on a run
#: that records both a trace and a registry.
_EQUIVALENT_FAMILIES = (
    "repro_epochs_total",
    "repro_epoch_cycles_total",
    "repro_instructions_total",
    "repro_migration_stall_cycles_total",
    "repro_reallocations_total",
    "repro_qos_interventions_total",
    "repro_migration_pages_total",
    "repro_migration_window_cycles_total",
    "repro_open_arrivals_total",
    "repro_open_admissions_total",
    "repro_open_departures_total",
    "repro_open_wait_queue_depth",
    "repro_open_resident_jobs",
    "repro_trace_dropped_events",
)


class TestBridgeEquivalence:
    def _golden_run(self):
        schedule = poisson_arrivals(mean_interarrival_cycles=1_500_000,
                                    horizon_cycles=10_000_000, seed=0)
        recorder = TraceRecorder()
        live = MetricsRegistry()
        system = resolve_policy("ugpu")(
            [], arrivals=schedule, tracer=recorder, metrics=live)
        system.run(10_000_000)
        bridged = registry_from_trace(recorder.events(),
                                      dropped_events=recorder.dropped)
        return live, bridged

    def test_counters_and_gauges_match(self):
        live, bridged = self._golden_run()
        assert live.value("repro_open_arrivals_total") > 0  # non-trivial run
        for name in _EQUIVALENT_FAMILIES:
            # The bridge declares every canonical family; a live run only
            # registers the ones its events touched (no QoS target -> no
            # interventions family).  Enumerate from whichever side has
            # it; value() defaults the other side to 0.0.
            family = live.get(name) or bridged.get(name)
            assert family is not None, name
            for label_values, _child in family.samples():
                labels = dict(zip(family.label_names, label_values))
                assert bridged.value(name, **labels) == pytest.approx(
                    live.value(name, **labels)
                ), (name, labels)

    def test_queueing_delay_histogram_matches(self):
        live, bridged = self._golden_run()
        name = "repro_open_queueing_delay_cycles"
        live_hist, bridged_hist = live.get(name), bridged.get(name)
        assert live_hist.count == bridged_hist.count > 0
        assert live_hist.sum == pytest.approx(bridged_hist.sum)
        assert (live_hist._default_child().cumulative()
                == bridged_hist._default_child().cumulative())

    def test_epoch_duration_histogram_matches(self):
        live, bridged = self._golden_run()
        name = "repro_epoch_duration_cycles"
        assert live.get(name).count == bridged.get(name).count > 0
        assert live.get(name).sum == pytest.approx(bridged.get(name).sum)


class TestDefaultBuckets:
    def test_cycle_buckets_cover_the_paper_horizon(self):
        assert CYCLE_BUCKETS[0] <= 100_000.0
        assert CYCLE_BUCKETS[-1] >= 25_000_000.0
        assert list(CYCLE_BUCKETS) == sorted(CYCLE_BUCKETS)


class TestObservabilitySatellites:
    def test_server_port_in_use_raises_actionable_error(self):
        from repro.errors import TelemetryError

        reg = MetricsRegistry()
        with MetricsServer(reg, port=0) as server:
            with pytest.raises(TelemetryError) as excinfo:
                MetricsServer(reg, port=server.port)
            message = str(excinfo.value)
            assert str(server.port) in message
            assert "already in use" in message
            assert "--metrics-port" in message

    def test_read_series_tolerates_torn_rows(self, tmp_path):
        path = tmp_path / "torn.csv"
        path.write_text(
            "# policy=test\n"
            "epoch,cycle,metric,labels,value\n"
            "0,1000,repro_x,,1.5\n"
            "\n"
            "1,2000,repro_x,,2.5\n"
            "2,3000,repro_x\n"
            "3,4000,repro_x,,not_a_float\n"
            "4,5000,repro_x,,4.5\n"
        )
        with pytest.raises(ValueError):
            read_series(path)
        rows = read_series(path, strict=False)
        assert [(r.epoch, r.value) for r in rows] == [
            (0, 1.5), (1, 2.5), (4, 4.5)
        ]

    def test_exec_stats_min_median_max_and_split(self):
        from repro.exec.stats import ExecStats

        stats = ExecStats(jobs_total=4, jobs_run=4, wall_seconds=1.0,
                          job_seconds=[0.3, 0.1, 0.2, 0.2])
        assert stats.min_seconds == pytest.approx(0.1)
        assert stats.median_seconds == pytest.approx(0.2)
        assert stats.max_seconds == pytest.approx(0.3)
        assert stats.job_seconds_total == pytest.approx(0.8)
        assert stats.orchestration_seconds == pytest.approx(0.2)
        footer = stats.format()
        assert "min 100.0ms" in footer
        assert "median 200.0ms" in footer
        assert "max 300.0ms" in footer
        assert "sim 0.80s + orchestration 0.20s" in footer

    def test_exec_stats_parallel_workers_clamp_orchestration(self):
        from repro.exec.stats import ExecStats

        stats = ExecStats(jobs_total=2, jobs_run=2, wall_seconds=0.5,
                          workers=4, job_seconds=[0.4, 0.4])
        assert stats.orchestration_seconds == 0.0

    def test_dashboard_once_renders_single_frame(self, tmp_path):
        import os
        import subprocess
        import sys

        path = tmp_path / "series.csv"
        path.write_text(
            "# policy=ugpu\n"
            "epoch,cycle,metric,labels,value\n"
            "0,1000,repro_open_wait_queue_depth,,2\n"
            "1,2000,repro_open_wait_queue_depth,,1\n"
            "1,2000,repro_open_wait\n"  # torn final row must not crash it
        )
        repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(repo_root, "src")
        proc = subprocess.run(
            [sys.executable,
             os.path.join(repo_root, "examples", "live_dashboard.py"),
             str(path), "--once", "--follow"],
            capture_output=True, text=True, env=env, timeout=60,
        )
        assert proc.returncode == 0, proc.stderr
        assert "2 epochs" in proc.stdout
        assert "wait queue" in proc.stdout
