"""Unit tests for the Figure 8 address mapping
(repro.pagemove.address_mapping)."""

import pytest

from repro.errors import AddressError, ConfigError
from repro.hbm import HBMConfig
from repro.pagemove import InterleavedPageMapping, PageMoveAddressMapping


@pytest.fixture
def mapping():
    return PageMoveAddressMapping()


class TestBitLayout:
    def test_stack_bits_are_7_to_8(self, mapping):
        assert mapping.decode(0).stack == 0
        assert mapping.decode(1 << 7).stack == 1
        assert mapping.decode(3 << 7).stack == 3

    def test_bank_group_bits_are_9_to_10(self, mapping):
        assert mapping.decode(1 << 9).bank_group == 1
        assert mapping.decode(3 << 9).bank_group == 3

    def test_channel_bits_are_12_to_14(self, mapping):
        assert mapping.decode(1 << 12).channel == 1
        assert mapping.decode(7 << 12).channel == 7

    def test_low_column_bit_is_11(self, mapping):
        assert mapping.decode(1 << 11).column == 1

    def test_byte_in_line_does_not_change_coordinates(self, mapping):
        a = mapping.decode(0)
        b = mapping.decode(127)
        assert a == b

    def test_total_capacity(self, mapping):
        # 32 channels x 4 groups x 4 banks x 16384 rows x 2 KB = 16 GiB.
        assert mapping.total_bytes == 16 * 1024**3

    def test_address_bounds(self, mapping):
        with pytest.raises(AddressError):
            mapping.decode(mapping.total_bytes)
        with pytest.raises(AddressError):
            mapping.decode(-1)


class TestPageProperties:
    def test_page_confined_to_one_channel(self, mapping):
        """Every byte of a 4 KB page maps to the same channel index."""
        for rpn in (0, 5, 1000, 77777):
            base = rpn << 12
            channels = {mapping.decode(base + off).channel for off in range(0, 4096, 128)}
            assert len(channels) == 1
            assert channels.pop() == mapping.channel_of_page(rpn)

    def test_page_striped_over_all_stacks_and_groups(self, mapping):
        base = 42 << 12
        stacks = set()
        groups = set()
        for off in range(0, 4096, 128):
            loc = mapping.decode(base + off)
            stacks.add(loc.stack)
            groups.add(loc.bank_group)
        assert stacks == {0, 1, 2, 3}
        assert groups == {0, 1, 2, 3}

    def test_paper_migration_command_count(self, mapping):
        assert mapping.migrations_per_page == 32
        assert mapping.slices_per_page == 16
        assert mapping.columns_per_slice == 2
        assert mapping.serialized_migrations_per_bank_group == 2

    def test_channel_of_page_is_low_bits(self, mapping):
        for rpn in range(64):
            assert mapping.channel_of_page(rpn) == rpn % 8

    def test_page_columns_consistent_with_decode(self, mapping):
        rpn = 12345
        columns = mapping.page_columns(rpn)
        assert len(columns) == 32
        decoded = set()
        for off in range(0, 4096, 128):
            loc = mapping.decode((rpn << 12) + off)
            decoded.add(loc)
        assert set(columns) == decoded

    def test_rpn_roundtrip(self, mapping):
        for rpn in (0, 7, 123, 99999):
            coords = mapping.page_coordinates(rpn)
            slot = coords.column_base >> mapping.low_column_bits
            assert mapping.rpn_for(coords.channel, coords.bank, coords.row, slot) == rpn

    def test_retarget_preserves_in_stack_shape(self, mapping):
        rpn = 12345
        moved = mapping.retarget_page(rpn, new_channel=2)
        a, b = mapping.page_coordinates(rpn), mapping.page_coordinates(moved)
        assert b.channel == 2
        assert (a.bank, a.row, a.column_base) == (b.bank, b.row, b.column_base)

    def test_frames_of_channel(self, mapping):
        frames = mapping.frames_of_channel(3)
        first = [next(frames) for _ in range(5)]
        assert first == [3, 11, 19, 27, 35]
        for rpn in first:
            assert mapping.channel_of_page(rpn) == 3

    def test_rpn_bounds(self, mapping):
        with pytest.raises(AddressError):
            mapping.channel_of_page(mapping.total_bytes // 4096)
        with pytest.raises(AddressError):
            mapping.rpn_for(channel=8, bank=0, row=0)


class TestPageSizes:
    """The idea works with different page sizes (paper Sections 4.3, 5)."""

    def test_16k_pages(self):
        m = PageMoveAddressMapping(page_size=16384)
        assert m.migrations_per_page == 128
        assert m.columns_per_slice == 8
        base = 3 << 14
        channels = {m.decode(base + off).channel for off in range(0, 16384, 128)}
        assert len(channels) == 1

    def test_32k_pages_fill_whole_rows(self):
        # 32 KB pages use all 16 columns of each bank's 2 KB row.
        m = PageMoveAddressMapping(page_size=32768)
        assert m.columns_per_slice == 16
        assert m.migrations_per_page == 256

    def test_64k_pages_exceed_row_capacity(self):
        # 64 KB pages would need 32 columns per slice but a 2 KB row only
        # holds 16, so the mapping rejects the geometry.
        with pytest.raises(ConfigError):
            PageMoveAddressMapping(page_size=65536)

    def test_too_small_page_rejected(self):
        with pytest.raises(ConfigError):
            PageMoveAddressMapping(page_size=1024)


class TestInterleavedAdapter:
    def test_driver_interface(self):
        adapter = InterleavedPageMapping(PageMoveAddressMapping())
        assert adapter.num_channel_groups == 8
        assert adapter.channel_of_frame(13) == 5
        frames = adapter.frames_of_channel(2)
        assert next(frames) == 2
