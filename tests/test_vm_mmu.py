"""Integration tests for the MMU translation path (repro.vm.mmu) —
the Figure 9 / Section 4.4 flows end to end."""

import pytest

from repro.errors import ConfigError, TranslationError
from repro.vm import GPUDriver
from repro.vm.mmu import MMU


@pytest.fixture
def driver():
    driver = GPUDriver(num_channel_groups=8, pages_per_channel=256)
    driver.register_app(0, channels=[0, 1, 2, 3])
    return driver


@pytest.fixture
def mmu(driver):
    return MMU(driver, num_sms=4)


class TestTranslationFlow:
    def test_first_touch_is_demand_fault(self, mmu):
        t = mmu.translate(sm_id=0, app_id=0, vpn=42)
        assert t.demand_fault and t.walked
        assert t.channel in {0, 1, 2, 3}
        assert t.latency > 1000  # driver software delay included

    def test_second_access_hits_l1(self, mmu):
        first = mmu.translate(0, 0, 42)
        second = mmu.translate(0, 0, 42)
        assert second.l1_hit
        assert second.latency == MMU.L1_HIT_CYCLES
        assert second.rpn == first.rpn

    def test_other_sm_hits_l2(self, mmu):
        mmu.translate(0, 0, 42)
        other = mmu.translate(1, 0, 42)
        assert other.l2_hit and not other.l1_hit
        assert other.latency == MMU.L1_HIT_CYCLES + MMU.L2_HIT_CYCLES

    def test_l2_fill_propagates_to_l1(self, mmu):
        mmu.translate(0, 0, 42)
        mmu.translate(1, 0, 42)         # L2 hit, fills SM 1's L1
        third = mmu.translate(1, 0, 42)
        assert third.l1_hit

    def test_walk_after_tlb_evictions(self, mmu):
        """Translations survive in the page table after TLB pressure."""
        first = mmu.translate(0, 0, 7)
        # Evict vpn 7 from both TLB levels with a large footprint sweep.
        for vpn in range(100, 100 + 600):
            mmu.translate(0, 0, vpn)
        again = mmu.translate(0, 0, 7)
        assert again.walked and not again.demand_fault
        assert again.rpn == first.rpn

    def test_stats_accounting(self, mmu):
        mmu.translate(0, 0, 1)
        mmu.translate(0, 0, 1)
        mmu.translate(1, 0, 1)
        assert mmu.stats.accesses == 3
        assert mmu.stats.l1_hits == 1
        assert mmu.stats.l2_hits == 1
        assert mmu.stats.demand_faults == 1

    def test_bad_sm_rejected(self, mmu):
        with pytest.raises(ConfigError):
            mmu.translate(99, 0, 1)


class TestReallocationFlows:
    def populate(self, mmu, vpns, app_id=0):
        return {vpn: mmu.translate(0, app_id, vpn) for vpn in vpns}

    def test_lost_channel_fault_migrates_page(self, mmu, driver):
        before = self.populate(mmu, range(8))
        lost = {vpn: t for vpn, t in before.items() if t.channel == 3}
        assert lost, "expected some pages in channel 3"
        mmu.begin_reallocation(0, new_channels=[0, 1, 2])
        vpn = next(iter(lost))
        t = mmu.translate(0, 0, vpn)
        assert t.migrated
        assert t.channel in {0, 1, 2}
        assert driver.page_tables[0].lookup(vpn).channel == t.channel

    def test_l1_flushed_on_reallocation(self, mmu):
        self.populate(mmu, range(4))
        assert any(tlb.occupancy() for tlb in mmu.l1_tlbs)
        mmu.begin_reallocation(0, new_channels=[0, 1])
        assert all(tlb.occupancy() == 0 for tlb in mmu.l1_tlbs)

    def test_no_stale_translation_survives_use(self, mmu, driver):
        """Coherence invariant: after reallocation, touching every page
        leaves no cached translation into an unowned channel."""
        self.populate(mmu, range(32))
        mmu.begin_reallocation(0, new_channels=[0, 1])
        for vpn in range(32):
            mmu.translate(vpn % 4, 0, vpn)
        mmu.assert_coherent(0)
        counts = driver.page_tables[0].channel_page_counts()
        assert set(counts) <= {0, 1}
        assert sum(counts.values()) == 32

    def test_gained_channel_rebalance(self, mmu, driver):
        self.populate(mmu, range(16))
        mmu.begin_reallocation(0, new_channels=[0, 1, 2, 3, 4, 5])
        migrated = 0
        for vpn in range(16):
            t = mmu.translate(0, 0, vpn)
            migrated += t.migrated
        assert migrated > 0
        counts = driver.page_tables[0].channel_page_counts()
        assert counts.get(4, 0) + counts.get(5, 0) > 0

    def test_register_clears_once_balanced(self, mmu, driver):
        self.populate(mmu, range(12))
        mmu.begin_reallocation(0, new_channels=[0, 1, 2, 3, 4, 5])
        for _ in range(3):
            for vpn in range(12):
                mmu.translate(0, 0, vpn)
            if not mmu.registry.is_tracking(0):
                break
        assert not mmu.registry.is_tracking(0)
        # Once cleared, accesses are plain hits again — no more migration.
        faults_before = mmu.stats.migration_faults
        for vpn in range(12):
            mmu.translate(0, 0, vpn)
        assert mmu.stats.migration_faults == faults_before

    def test_assert_coherent_catches_staleness(self, mmu, driver):
        """Failure injection: a hand-planted stale entry is detected."""
        self.populate(mmu, range(4))
        mmu.begin_reallocation(0, new_channels=[0, 1])
        # Simulate a buggy fill pointing into the lost channel 3.
        mmu.l2_tlb.fill(0, 999, rpn=3, channel=3)
        with pytest.raises(TranslationError):
            mmu.assert_coherent(0)

    def test_migration_fault_latency_includes_page_copy(self, mmu):
        self.populate(mmu, range(8))
        mmu.begin_reallocation(0, new_channels=[0, 1])
        t = next(
            mmu.translate(0, 0, vpn)
            for vpn in range(8)
            if mmu.translate(0, 0, vpn).migrated or True
        )
        # Any migrated translation pays driver (1000) + PPMM page (~80).
        migrated = [mmu.translate(0, 0, v) for v in range(8)]
        slow = [m for m in migrated if m.migrated]
        for m in slow:
            assert m.latency >= 1080


class TestMultiApp:
    def test_address_spaces_isolated(self, driver):
        driver.register_app(1, channels=[4, 5, 6, 7])
        mmu = MMU(driver, num_sms=2)
        a = mmu.translate(0, 0, 42)
        b = mmu.translate(0, 1, 42)
        assert a.rpn != b.rpn
        assert a.channel in {0, 1, 2, 3}
        assert b.channel in {4, 5, 6, 7}
