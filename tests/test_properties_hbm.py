"""Property-based fuzzing of the command-level HBM channel: random
command sequences never corrupt timing state — every issue either
succeeds at a legal cycle or raises ProtocolError, and time claims are
monotone per resource."""

from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.hbm import Channel, HBMConfig, activate, migration, precharge, read, write
from tests.strategies import SLOW_SETTINGS, STANDARD_SETTINGS

CONFIG = HBMConfig()

COMMANDS = st.lists(
    st.tuples(
        st.sampled_from(["ACT", "PRE", "RD", "WR", "MIG"]),
        st.integers(min_value=0, max_value=3),   # bank group
        st.integers(min_value=0, max_value=3),   # bank
        st.integers(min_value=0, max_value=31),  # row
        st.integers(min_value=0, max_value=15),  # column
    ),
    max_size=60,
)


def build(kind, bg, bank, row, col):
    if kind == "ACT":
        return activate(bg, bank, row)
    if kind == "PRE":
        return precharge(bg, bank)
    if kind == "RD":
        return read(bg, bank, col)
    if kind == "WR":
        return write(bg, bank, col)
    return migration(bg, bank, row, col, dest_channel=1, dest_bank_group=bg,
                     dest_bank=bank, dest_row=row, dest_column=col,
                     tsv_index=2)


@STANDARD_SETTINGS
@given(COMMANDS)
def test_random_sequences_at_legal_times_always_issue(ops):
    """Issuing every command at its own earliest_issue time never raises:
    the schedule oracle and the issue validator agree."""
    channel = Channel(CONFIG, 0)
    now = 0
    for op in ops:
        cmd = build(*op)
        at = channel.earliest_issue(cmd, now)
        try:
            done = channel.issue(cmd, at)
        except ProtocolError as error:
            # Only *protocol-state* errors are legal here (e.g. a column
            # command to a bank with no open row, or double-activate);
            # timing errors would mean earliest_issue lied.
            assert "earliest legal cycle" not in str(error), error
            continue
        assert done >= at
        now = at


@STANDARD_SETTINGS
@given(COMMANDS, st.integers(min_value=0, max_value=5))
def test_issuing_too_early_raises_not_corrupts(ops, hurry):
    """Issuing ``hurry`` cycles before the legal time either still is
    legal (hurry=0) or raises ProtocolError and leaves the channel usable."""
    channel = Channel(CONFIG, 0)
    now = 0
    for op in ops:
        cmd = build(*op)
        at = channel.earliest_issue(cmd, now)
        early = max(0, at - hurry)
        try:
            channel.issue(cmd, early)
            now = early
        except ProtocolError:
            # The channel must remain usable: the same command at its
            # legal time (recomputed) either issues or fails for
            # protocol-state reasons.
            retry_at = channel.earliest_issue(cmd, now)
            try:
                channel.issue(cmd, retry_at)
                now = retry_at
            except ProtocolError as error:
                assert "earliest legal cycle" not in str(error), error


@SLOW_SETTINGS
@given(st.lists(st.tuples(st.integers(min_value=0, max_value=3),
                          st.integers(min_value=0, max_value=15)),
                min_size=1, max_size=40))
def test_streaming_reads_complete_in_order_per_bank_group(accesses):
    """Reads issued in order to one open row complete monotonically."""
    channel = Channel(CONFIG, 0)
    now = 0
    opened = set()
    completions = []
    for bg, col in accesses:
        if bg not in opened:
            cmd = activate(bg, 0, 1)
            at = channel.earliest_issue(cmd, now)
            now = at
            channel.issue(cmd, at)
            opened.add(bg)
        cmd = read(bg, 0, col)
        at = channel.earliest_issue(cmd, now)
        done = channel.issue(cmd, at)
        completions.append(done)
        now = at
    assert completions == sorted(completions)
