"""Unit tests for the demand-aware partitioner (repro.core.partitioner)
and the hardware cost model (repro.core.hardware_cost)."""

import pytest

from repro.core import (
    AlgorithmCostModel,
    AppProfile,
    DemandAwarePartitioner,
    EpochProfiler,
    PartitionState,
    ResourceAllocation,
)
from repro.errors import AllocationError, ConfigError
from repro.gpu import GPUConfig


def make_profile(app_id, apki, hit, ipc_max=64.0, footprint=0,
                 config=GPUConfig()):
    profiler = EpochProfiler(config)
    return AppProfile(
        app_id=app_id,
        ipc_max_per_sm=ipc_max,
        apki_llc=apki,
        llc_hit_rate=hit,
        bw_demand_per_sm=profiler.bw_demand_per_sm(ipc_max, apki),
        bw_supply_per_mc=profiler.bw_supply_per_mc(hit),
        footprint_bytes=footprint,
    )


def memory_profile(app_id=0, **kw):
    """PVC-like: strongly memory-bound at the even partition."""
    return make_profile(app_id, apki=6.4, hit=0.25, **kw)


def compute_profile(app_id=1, **kw):
    """DXTC-like: strongly compute-bound."""
    return make_profile(app_id, apki=1.2, hit=0.9997, **kw)


@pytest.fixture
def state():
    return PartitionState.even([0, 1])


@pytest.fixture
def partitioner(state):
    return DemandAwarePartitioner(state, gpu_config=GPUConfig())


class TestClassification:
    def test_ratio_boundary(self, partitioner):
        mem = memory_profile()
        cb = compute_profile()
        even = ResourceAllocation(40, 16)
        assert partitioner.demand_ratio(mem, even) > 1.0
        assert partitioner.demand_ratio(cb, even) < 1.0

    def test_capacity_pressure_forces_memory_bound(self, state):
        partitioner = DemandAwarePartitioner(
            state, memory_capacity_bytes=16 << 30, gpu_config=GPUConfig()
        )
        # A compute-bound profile whose working set exceeds its share.
        hog = compute_profile(footprint=10 << 30)  # 10 GiB > 16 channels' 8 GiB
        assert partitioner.demand_ratio(hog, ResourceAllocation(40, 16)) > 1.0
        # With enough channels the pressure lifts.
        assert partitioner.demand_ratio(hog, ResourceAllocation(40, 24)) < 1.0


class TestRedistribution:
    def test_moves_sms_to_compute_bound_and_channels_to_memory_bound(self, partitioner):
        decision = partitioner.compute({0: memory_profile(0), 1: compute_profile(1)})
        mem, cb = decision.allocations[0], decision.allocations[1]
        assert mem.sms < 40 and cb.sms > 40
        assert mem.channels > 16 and cb.channels < 16
        assert decision.iterations > 0
        assert decision.changed_from({0: ResourceAllocation(40, 16),
                                      1: ResourceAllocation(40, 16)})

    def test_budget_conserved(self, partitioner):
        decision = partitioner.compute({0: memory_profile(0), 1: compute_profile(1)})
        total_sms = sum(a.sms for a in decision.allocations.values())
        total_mcs = sum(a.channels for a in decision.allocations.values())
        assert total_sms == 80
        assert total_mcs == 32

    def test_homogeneous_mix_does_not_move(self, partitioner):
        decision = partitioner.compute({0: memory_profile(0), 1: memory_profile(1)})
        assert decision.allocations[0] == ResourceAllocation(40, 16)
        assert decision.iterations == 0

    def test_compute_pair_does_not_move(self, partitioner):
        decision = partitioner.compute({0: compute_profile(0), 1: compute_profile(1)})
        assert decision.allocations[0] == ResourceAllocation(40, 16)

    def test_memory_donor_keeps_saturating_sms(self, partitioner):
        """The utilization guard: the memory-bound app keeps enough SMs to
        draw its supplied bandwidth."""
        decision = partitioner.compute({0: memory_profile(0), 1: compute_profile(1)})
        mem = decision.allocations[0]
        cfg = GPUConfig()
        draw = cfg.draw_bytes_per_cycle(mem.sms, mem.channels, 0.25)
        supply = memory_profile(0).supply(mem.channels)
        assert draw >= supply * 0.95

    def test_compute_donor_keeps_demand_satisfied(self, partitioner):
        decision = partitioner.compute({0: memory_profile(0), 1: compute_profile(1)})
        cb = decision.allocations[1]
        profile = compute_profile(1)
        assert profile.demand(cb.sms) <= profile.supply(cb.channels)

    def test_iteration_cap(self, state):
        partitioner = DemandAwarePartitioner(state, max_iterations=1,
                                             gpu_config=GPUConfig())
        decision = partitioner.compute({0: memory_profile(0), 1: compute_profile(1)})
        assert decision.iterations == 1

    def test_channel_moves_stay_group_aligned(self, partitioner):
        decision = partitioner.compute({0: memory_profile(0), 1: compute_profile(1)})
        for alloc in decision.allocations.values():
            assert alloc.channels % 4 == 0

    def test_four_apps(self):
        state = PartitionState.even([0, 1, 2, 3])
        partitioner = DemandAwarePartitioner(state, gpu_config=GPUConfig())
        profiles = {
            0: memory_profile(0),
            1: make_profile(1, apki=10.0, hit=0.2),   # even more memory-bound
            2: compute_profile(2),
            3: make_profile(3, apki=0.8, hit=0.99),
        }
        decision = partitioner.compute(profiles)
        assert sum(a.sms for a in decision.allocations.values()) == 80
        assert sum(a.channels for a in decision.allocations.values()) == 32
        # Memory-bound apps net-gained channels, compute-bound gained SMs.
        assert (decision.allocations[0].channels
                + decision.allocations[1].channels) > 16
        assert (decision.allocations[2].sms
                + decision.allocations[3].sms) > 40

    def test_missing_slice_rejected(self, partitioner):
        with pytest.raises(AllocationError):
            partitioner.compute({7: memory_profile(7)})

    def test_empty_profiles_rejected(self, partitioner):
        with pytest.raises(AllocationError):
            partitioner.compute({})

    def test_invalid_steps_rejected(self, state):
        with pytest.raises(ConfigError):
            DemandAwarePartitioner(state, sm_step=0)
        with pytest.raises(ConfigError):
            DemandAwarePartitioner(state, mc_step=6)
        with pytest.raises(ConfigError):
            DemandAwarePartitioner(state, max_iterations=0)


class TestAlgorithmCostModel:
    """The paper's Section 3.3 numbers, reproduced exactly."""

    def test_demand_calc_is_148_cycles_for_4_apps(self):
        assert AlgorithmCostModel().demand_calc_cycles(4) == 148

    def test_iteration_is_162_cycles_for_4_apps(self):
        assert AlgorithmCostModel().iteration_cycles(4) == 162

    def test_max_latency_is_3388_cycles(self):
        assert AlgorithmCostModel().max_latency_cycles(4) == 3388

    def test_total_caps_iterations_at_20(self):
        model = AlgorithmCostModel()
        assert model.total_cycles(50, 4) == model.max_latency_cycles(4)

    def test_hidden_by_5m_epoch(self):
        assert AlgorithmCostModel().hidden_by_epoch(5_000_000)
        assert not AlgorithmCostModel().hidden_by_epoch(3000)

    def test_scales_with_app_count(self):
        model = AlgorithmCostModel()
        assert model.demand_calc_cycles(8) == 2 * model.demand_calc_cycles(4)

    def test_validation(self):
        with pytest.raises(ConfigError):
            AlgorithmCostModel(divide_cycles=0)
        with pytest.raises(ConfigError):
            AlgorithmCostModel().total_cycles(-1)
        with pytest.raises(ConfigError):
            AlgorithmCostModel().demand_calc_cycles(0)
        with pytest.raises(ConfigError):
            AlgorithmCostModel().hidden_by_epoch(0)
