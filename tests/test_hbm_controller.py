"""Unit tests for the FR-FCFS memory controller (repro.hbm.controller)."""

import pytest

from repro.errors import ProtocolError
from repro.hbm import HBMConfig, MemoryController, MemoryRequest, RequestKind


@pytest.fixture
def config():
    return HBMConfig()


@pytest.fixture
def mc(config):
    return MemoryController(config)


def req(kind=RequestKind.READ, bg=0, bank=0, row=0, col=0, arrival=0):
    return MemoryRequest(kind=kind, bank_group=bg, bank=bank, row=row,
                         column=col, arrival=arrival)


class TestQueueing:
    def test_queue_capacity_enforced(self, mc, config):
        for i in range(config.queue_entries):
            mc.enqueue(req(col=i % 16))
        with pytest.raises(ProtocolError):
            mc.enqueue(req())

    def test_queue_free_slots(self, mc, config):
        mc.enqueue(req())
        assert mc.queue_free_slots == config.queue_entries - 1

    def test_service_empty_queue_rejected(self, mc):
        with pytest.raises(ProtocolError):
            mc.service_one()


class TestFRFCFS:
    def test_row_hit_served_before_older_miss(self, mc):
        # First request opens row 5.
        mc.enqueue(req(row=5, col=0, arrival=0))
        first = mc.service_one()
        assert first.row == 5
        # Now an older request to a different row vs a younger row hit.
        miss = req(row=9, col=0, arrival=1)
        hit = req(row=5, col=1, arrival=2)
        mc.enqueue(miss)
        mc.enqueue(hit)
        served = mc.service_one()
        assert served is hit  # FR: ready (row-hit) first

    def test_fcfs_among_misses(self, mc):
        older = req(row=3, col=0, arrival=1)
        younger = req(row=7, col=0, arrival=2)
        mc.enqueue(younger)
        mc.enqueue(older)
        assert mc.service_one() is older

    def test_row_hit_latency_shorter_than_miss(self, mc, config):
        t = config.timing
        mc.enqueue(req(row=5, col=0))
        miss = mc.service_one()
        mc.enqueue(req(row=5, col=1, arrival=miss.completed_at))
        hit = mc.service_one()
        assert hit.latency < miss.latency

    def test_row_conflict_costs_precharge(self, mc, config):
        mc.enqueue(req(row=5))
        first = mc.service_one()
        mc.enqueue(req(row=9, col=0, arrival=first.completed_at))
        conflict = mc.service_one()
        assert mc.stats.row_conflicts == 1
        t = config.timing
        assert conflict.latency >= t.tRP + t.tRCD + t.tCL

    def test_stats_counters(self, mc):
        mc.enqueue(req(row=1, col=0))
        mc.service_one()
        mc.enqueue(req(row=1, col=1, arrival=100))
        mc.service_one()
        assert mc.stats.served == 2
        assert mc.stats.row_hits == 1
        assert mc.stats.row_misses == 1
        assert mc.stats.row_hit_rate == 0.5


class TestDrainAndBandwidth:
    def test_drain_serves_everything(self, mc):
        for i in range(20):
            mc.enqueue(req(bg=i % 4, bank=(i // 4) % 4, row=0, col=i % 16,
                           arrival=i))
        done = mc.drain()
        assert len(done) == 20
        assert all(r.completed_at is not None for r in done)
        assert mc.queue == []

    def test_streaming_row_hits_approach_peak_bandwidth(self, mc, config):
        """Back-to-back row hits across bank groups should reach a large
        fraction of the channel's peak bandwidth."""
        n = 400
        for batch_start in range(0, n, 50):
            for i in range(batch_start, batch_start + 50):
                mc.enqueue(req(bg=i % 4, bank=0, row=0, col=i % 16, arrival=0))
            mc.drain()
        achieved = mc.achieved_bandwidth_gbps()
        # One column (128 B) per tCCDs=1 clock theoretical max; bursts share
        # the data bus (tBL=4), so the bound is 128 B / 4 clk * 440 MHz.
        bus_bound = config.column_bytes / config.timing.tBL * config.freq_mhz * 1e6 / 1e9
        assert achieved > 0.5 * bus_bound

    def test_bandwidth_zero_before_any_service(self, mc):
        assert mc.achieved_bandwidth_gbps() == 0.0

    def test_writes_served(self, mc):
        mc.enqueue(req(kind=RequestKind.WRITE, row=2, col=3))
        done = mc.service_one()
        assert done.completed_at is not None
        assert mc.channel.writes == 1


class TestRefresh:
    def test_refresh_disabled_by_default(self, config):
        mc = MemoryController(config)
        mc.enqueue(req(row=0))
        mc.service_one()
        assert mc.refreshes == 0

    def test_refresh_fires_every_trefi(self, config):
        mc = MemoryController(config, refresh_enabled=True)
        t = config.timing
        # A request arriving after several refresh intervals forces the
        # controller to catch up on the missed refreshes first.
        mc.enqueue(req(row=0, arrival=3 * t.tREFI + 10))
        mc.service_one()
        assert mc.refreshes == 3

    def test_refresh_closes_open_rows(self, config):
        mc = MemoryController(config, refresh_enabled=True)
        t = config.timing
        mc.enqueue(req(row=5, arrival=0))
        mc.service_one()
        assert mc.channel.open_row(0, 0) == 5
        mc.enqueue(req(row=5, col=1, arrival=t.tREFI + 1))
        mc.service_one()
        # The refresh precharged the bank, so the second access re-opened
        # the row (a row miss, not a hit).
        assert mc.stats.row_misses == 2

    def test_refresh_adds_latency(self, config):
        t = config.timing
        busy = MemoryController(config, refresh_enabled=True)
        quiet = MemoryController(config, refresh_enabled=False)
        for mc in (busy, quiet):
            mc.enqueue(req(row=0, arrival=t.tREFI + 1))
            mc.service_one()
        assert busy.now >= quiet.now + t.tRFC

    def test_trfc_must_fit_in_trefi(self):
        from repro.hbm import HBMTiming
        with pytest.raises(Exception):
            HBMTiming(tREFI=100, tRFC=100).validate()


class TestWriteBuffer:
    def make(self, config, entries=16):
        return MemoryController(config, write_buffer_entries=entries)

    def test_writes_park_in_buffer(self, config):
        mc = self.make(config)
        for i in range(4):
            mc.enqueue(req(kind=RequestKind.WRITE, row=0, col=i))
        assert len(mc.write_buffer) == 4
        assert mc.stats.served == 0  # nothing issued yet

    def test_high_watermark_triggers_burst(self, config):
        mc = self.make(config, entries=16)
        for i in range(12):  # 12 >= 0.75 * 16
            mc.enqueue(req(kind=RequestKind.WRITE, bg=i % 4, row=0, col=i % 16))
        assert mc.write_bursts >= 1
        assert len(mc.write_buffer) <= 4  # drained to the low watermark
        assert mc.stats.served >= 8

    def test_reads_bypass_the_buffer(self, config):
        mc = self.make(config)
        mc.enqueue(req(kind=RequestKind.WRITE, row=0, col=0))
        mc.enqueue(req(kind=RequestKind.READ, row=0, col=1))
        served = mc.service_one()
        assert served.kind is RequestKind.READ

    def test_drain_flushes_buffer(self, config):
        mc = self.make(config)
        for i in range(5):
            mc.enqueue(req(kind=RequestKind.WRITE, row=0, col=i))
        completed = mc.drain()
        assert len(completed) == 5
        assert not mc.write_buffer
        assert all(r.completed_at is not None for r in completed)

    def test_burst_amortizes_turnaround(self, config):
        """Interleaved read/write service pays tWTR repeatedly; buffered
        writes issue as one burst and finish sooner."""
        interleaved = MemoryController(config)
        for i in range(16):
            kind = RequestKind.WRITE if i % 2 else RequestKind.READ
            interleaved.enqueue(req(kind=kind, bg=0, row=0, col=i))
            interleaved.service_one()
        buffered = self.make(config, entries=32)
        for i in range(16):
            kind = RequestKind.WRITE if i % 2 else RequestKind.READ
            buffered.enqueue(req(kind=kind, bg=0, row=0, col=i))
        buffered.drain()
        assert buffered.now < interleaved.now

    def test_invalid_watermarks(self, config):
        with pytest.raises(ProtocolError):
            MemoryController(config, write_buffer_entries=8,
                             write_high_watermark=0.2,
                             write_low_watermark=0.5)
        with pytest.raises(ProtocolError):
            MemoryController(config, write_buffer_entries=-1)
