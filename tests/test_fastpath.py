"""The numpy fast path against the scalar golden oracle.

The contract of :mod:`repro.fastpath` is *byte identity*: every float the
vectorized backend produces must equal, bitwise, what the pure-python
scalar code produces.  The Hypothesis property test below drives
:meth:`PerformanceModel.throughput_batch` over randomized kernels and
slice shapes — including the degenerate 0-SM and 0-channel slices — and
compares each field's ``float.hex()`` against a fresh scalar model, so
the vector path (not a memo hit) is what's being checked.

The rest covers the plumbing that keeps the two backends honest: backend
resolution priority, whole-system scalar-vs-numpy agreement on an
open-system run (the path the golden closed-system fixtures don't reach),
the round-robin migration planner, the ExecStats backend field, and the
bench/compare layers' refusal to gate timings across backends.
"""

import dataclasses

import pytest

np = pytest.importorskip("numpy")
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.fastpath import (
    KERNEL_BACKENDS,
    numpy_available,
    resolve_kernel_backend,
    set_default_kernel_backend,
)
from repro.gpu.config import GPUConfig
from repro.gpu.kernel import Kernel
from repro.gpu.llc import HitRateCurve
from repro.gpu.performance import PerformanceModel


@pytest.fixture(autouse=True)
def _clear_backend_override():
    """Tests must not leak a process-wide backend override."""
    yield
    set_default_kernel_backend(None)


def _hexed(t) -> list:
    """Every float field of a SliceThroughput as its exact hex form."""
    return [
        getattr(t, f.name).hex() if isinstance(getattr(t, f.name), float)
        else getattr(t, f.name)
        for f in dataclasses.fields(t)
    ]


finite = dict(allow_nan=False, allow_infinity=False)

hit_curves = st.builds(
    HitRateCurve,
    reference_capacity=st.floats(min_value=1e6, max_value=1e8, **finite),
    reference_hit_rate=st.floats(min_value=0.0, max_value=0.8, **finite),
    working_set=st.floats(min_value=1e6, max_value=1e9, **finite),
    alpha=st.floats(min_value=0.1, max_value=2.0, **finite),
)

kernels = st.builds(
    Kernel,
    name=st.just("k"),
    ipc_per_sm=st.floats(min_value=0.05, max_value=4.0, **finite),
    apki_llc=st.floats(min_value=0.0, max_value=400.0, **finite),
    llc_hit_rate=st.floats(min_value=0.0, max_value=1.0, **finite),
    footprint_bytes=st.integers(min_value=0, max_value=1 << 33),
    instructions=st.integers(min_value=1, max_value=10**9),
    hit_curve=st.one_of(st.none(), hit_curves),
)


class TestThroughputBatchProperty:
    @settings(max_examples=200, deadline=None)
    @given(batch=st.lists(
        st.tuples(kernels,
                  st.integers(min_value=0, max_value=80),
                  st.integers(min_value=0, max_value=32)),
        min_size=1, max_size=6,
    ))
    def test_batch_is_bitwise_identical_to_scalar(self, batch):
        ks = [k for k, _, _ in batch]
        sms = [s for _, s, _ in batch]
        chans = [m for _, _, m in batch]
        # Fresh model per draw: an empty memo forces the vector path.
        vectorized = PerformanceModel(GPUConfig()).throughput_batch(
            ks, sms, chans
        )
        oracle = PerformanceModel(GPUConfig())
        for got, (kernel, s, m) in zip(vectorized, batch):
            want = oracle.throughput(kernel, s, m)
            assert _hexed(got) == _hexed(want)

    def test_zero_sm_and_zero_channel_edges(self):
        memory = Kernel("m", ipc_per_sm=1.0, apki_llc=120.0,
                        llc_hit_rate=0.5, footprint_bytes=1 << 30)
        compute = Kernel("c", ipc_per_sm=2.0, apki_llc=0.0,
                         llc_hit_rate=0.0, footprint_bytes=0)
        ks = [memory, memory, compute, compute]
        sms = [0, 10, 0, 10]
        chans = [4, 0, 0, 0]
        batch = PerformanceModel(GPUConfig()).throughput_batch(ks, sms, chans)
        oracle = PerformanceModel(GPUConfig())
        for got, kernel, s, m in zip(batch, ks, sms, chans):
            assert _hexed(got) == _hexed(oracle.throughput(kernel, s, m))
        assert batch[0].ipc == 0.0          # no SMs
        assert batch[1].ipc == 0.0          # memory-bound, no channels
        assert batch[2].ipc == 0.0          # no SMs, even compute-bound
        assert batch[3].ipc == 20.0         # compute-bound needs no channels
        assert batch[3].bandwidth_roof == float("inf")

    def test_batch_validates_inputs(self):
        model = PerformanceModel(GPUConfig())
        kernel = Kernel("k", 1.0, 10.0, 0.5, 0)
        with pytest.raises(ConfigError):
            model.throughput_batch([kernel], [1, 2], [1])
        with pytest.raises(ConfigError):
            model.throughput_batch([kernel], [-1], [1])

    def test_batch_hits_memo_on_repeat(self):
        model = PerformanceModel(GPUConfig())
        kernel = Kernel("k", 1.0, 10.0, 0.5, 0)
        first = model.throughput_batch([kernel], [8], [4])[0]
        misses = model.memo_misses
        again = model.throughput_batch([kernel, kernel], [8, 8], [4, 4])
        assert again[0] is first and again[1] is first
        assert model.memo_misses == misses


class TestBackendResolution:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "numpy")
        assert resolve_kernel_backend("scalar") == "scalar"

    def test_process_default_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "numpy")
        set_default_kernel_backend("scalar")
        assert resolve_kernel_backend() == "scalar"

    def test_environment_beats_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "scalar")
        assert resolve_kernel_backend() == "scalar"

    def test_auto_detects_numpy(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL_BACKEND", raising=False)
        assert numpy_available()
        assert resolve_kernel_backend() == "numpy"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError):
            resolve_kernel_backend("cuda")
        with pytest.raises(ConfigError):
            set_default_kernel_backend("cuda")


class TestSystemBackendAgreement:
    def test_open_system_runs_are_identical(self):
        """Arrivals exercise the boundary/admission path the closed-system
        golden fixtures never reach; both backends must agree exactly."""
        from repro.core.system import MultitaskSystem, clear_solo_ipc_cache
        from repro.policies import UGPUPolicy
        from repro.workloads.arrivals import poisson_arrivals

        def run(backend):
            clear_solo_ipc_cache()
            schedule = poisson_arrivals(
                mean_interarrival_cycles=1_000_000,
                horizon_cycles=8_000_000,
                seed=3,
            )
            system = MultitaskSystem(
                [], policy=UGPUPolicy(), epoch_cycles=500_000,
                arrivals=schedule, kernel_backend=backend,
            )
            return system.run(8_000_000, mix_name="agree")

        a, b = run("scalar"), run("numpy")
        assert (a.arrivals, a.admissions, a.departures, a.repartitions) == \
               (b.arrivals, b.admissions, b.departures, b.repartitions)
        assert len(a.epochs) == len(b.epochs)
        for ea, eb in zip(a.epochs, b.epochs):
            assert (ea.index, ea.start_cycle, ea.end_cycle) == \
                   (eb.index, eb.start_cycle, eb.end_cycle)
            assert ea.instructions == eb.instructions
        assert a.stp.hex() == b.stp.hex()

    def test_round_robin_planner_backends_agree(self):
        from repro.pagemove.engine import _round_robin_destinations

        kept = [1, 4, 6]
        set_default_kernel_backend("numpy")
        vec = _round_robin_destinations(kept, 7, 500)
        set_default_kernel_backend("scalar")
        sca = _round_robin_destinations(kept, 7, 500)
        assert vec == sca
        assert all(type(d) is int for d in vec)


class TestBackendSurfacing:
    def test_exec_stats_merge_marks_mixed(self):
        from repro.exec.stats import ExecStats

        stats = ExecStats(kernel_backend="numpy")
        stats.merge(ExecStats(kernel_backend="numpy"))
        assert stats.kernel_backend == "numpy"
        stats.merge(ExecStats(kernel_backend="scalar"))
        assert stats.kernel_backend == "mixed"
        assert "backend mixed" in stats.format()
        empty = ExecStats()
        empty.merge(ExecStats(kernel_backend="scalar"))
        assert empty.kernel_backend == "scalar"

    def test_executor_records_backend(self):
        from repro.exec import SweepExecutor, SweepJob

        set_default_kernel_backend("scalar")
        executor = SweepExecutor(jobs=1, cache=None)
        executor.run([SweepJob.build("bp", ["PVC", "DXTC"], 1_000_000)])
        assert executor.last_stats.kernel_backend == "scalar"

    def test_bench_document_records_backend(self):
        from repro.profiling.bench import Scenario, run_bench

        suite = {"tiny": Scenario("tiny", "synthetic", lambda p=None: {"n": 1})}
        doc = run_bench(names=["tiny"], repeats=1, suite=suite)
        assert doc["kernel_backend"] in KERNEL_BACKENDS

    def test_compare_refuses_cross_backend_documents(self):
        from repro.profiling.bench import BENCH_SCHEMA
        from repro.profiling.compare import compare_benchmarks

        def doc(backend):
            d = {"schema": BENCH_SCHEMA, "repeats": 1, "scenarios": {}}
            if backend is not None:
                d["kernel_backend"] = backend
            return d

        skewed = compare_benchmarks(doc("scalar"), doc("numpy"))
        assert skewed.failed
        assert any(v.status == "skewed" for v in skewed.verdicts)
        # A legacy document without the key still gates normally.
        assert not compare_benchmarks(doc(None), doc("numpy")).failed
        assert not compare_benchmarks(doc("numpy"), doc("numpy")).failed
