"""Tests for the benchmark harness (repro.profiling.bench) and the
regression gate (repro.profiling.compare): artifact schema round-trips,
min/median statistics over scripted clocks, verdict semantics on
synthetic document pairs, and the CLI exit codes."""

import json

import pytest

from repro.errors import ConfigError
from repro.profiling import (
    BENCH_SCHEMA,
    Scenario,
    bench_filename,
    compare_benchmarks,
    read_bench,
    run_bench,
    scenario_names,
    write_bench,
)


class ScriptedClock:
    def __init__(self, times):
        self._times = list(times)

    def __call__(self):
        return self._times.pop(0)


def tiny_suite():
    return {
        "alpha": Scenario("alpha", "first synthetic scenario",
                          lambda profiler=None: {"count": 7}),
        "beta": Scenario("beta", "second synthetic scenario",
                         lambda profiler=None: {"count": 9}),
    }


def synthetic_doc(scenarios):
    """A BENCH document from {name: (min_seconds, meta)} pairs."""
    return {
        "schema": BENCH_SCHEMA,
        "repeats": 3,
        "provenance": {"git_sha": "feedc0de"},
        "scenarios": {
            name: {
                "description": name,
                "seconds": [minimum, minimum * 1.1, minimum * 1.2],
                "min_seconds": minimum,
                "median_seconds": minimum * 1.1,
                "meta": meta,
            }
            for name, (minimum, meta) in scenarios.items()
        },
    }


class TestRunBench:
    def test_min_and_median_over_scripted_clock(self):
        # alpha durations 5, 3, 2 -> min 2, median 3; beta 1, 1, 4.
        clock = ScriptedClock([0, 5, 5, 8, 8, 10,
                               10, 11, 11, 12, 12, 16])
        doc = run_bench(names=["alpha", "beta"], repeats=3,
                        suite=tiny_suite(), clock=clock)
        alpha = doc["scenarios"]["alpha"]
        assert alpha["seconds"] == [5.0, 3.0, 2.0]
        assert alpha["min_seconds"] == 2.0
        assert alpha["median_seconds"] == 3.0
        assert alpha["meta"] == {"count": 7}
        beta = doc["scenarios"]["beta"]
        assert beta["min_seconds"] == 1.0
        assert beta["median_seconds"] == 1.0

    def test_document_carries_schema_and_provenance(self):
        doc = run_bench(names=["alpha"], repeats=1, suite=tiny_suite())
        assert doc["schema"] == BENCH_SCHEMA
        assert doc["repeats"] == 1
        assert doc["provenance"]["command"] == "bench"
        assert doc["provenance"]["git_sha"]

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigError, match="unknown scenario"):
            run_bench(names=["gamma"], suite=tiny_suite())

    def test_repeats_must_be_positive(self):
        with pytest.raises(ConfigError, match="repeats"):
            run_bench(suite=tiny_suite(), repeats=0)

    def test_progress_called_per_scenario(self):
        lines = []
        run_bench(names=["alpha", "beta"], repeats=1, suite=tiny_suite(),
                  progress=lines.append)
        assert len(lines) == 2 and "alpha" in lines[0]

    def test_pinned_suite_names(self):
        assert scenario_names() == [
            "closed_bp", "closed_ugpu", "closed_mps",
            "arrivals", "ppmm_migration", "sweep", "fleet",
        ]


class TestArtifactRoundTrip:
    def test_write_then_read(self, tmp_path):
        doc = run_bench(names=["alpha"], repeats=2, suite=tiny_suite())
        path = write_bench(doc, tmp_path)
        assert path.name == bench_filename(doc)
        assert path.name.startswith("BENCH_")
        assert read_bench(path) == doc

    def test_write_creates_directory(self, tmp_path):
        doc = run_bench(names=["alpha"], repeats=1, suite=tiny_suite())
        path = write_bench(doc, tmp_path / "artifacts" / "nested")
        assert path.exists()

    def test_filename_keeps_dirty_suffix(self):
        doc = {"provenance": {"git_sha": "abc123-dirty"}}
        assert bench_filename(doc) == "BENCH_abc123-dirty.json"

    def test_read_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"schema": "repro.bench/0",
                                    "scenarios": {}}))
        with pytest.raises(ConfigError, match="schema"):
            read_bench(path)

    def test_read_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("{not json")
        with pytest.raises(ConfigError, match="not valid JSON"):
            read_bench(path)

    def test_read_rejects_missing_scenarios(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text(json.dumps({"schema": BENCH_SCHEMA}))
        with pytest.raises(ConfigError, match="scenarios"):
            read_bench(path)


class TestCompare:
    META = {"epochs": 500}

    def test_within_noise_is_ok(self):
        base = synthetic_doc({"s": (0.100, self.META)})
        cand = synthetic_doc({"s": (0.103, self.META)})
        comparison = compare_benchmarks(base, cand)
        assert [v.status for v in comparison.verdicts] == ["ok"]
        assert not comparison.failed
        assert comparison.format().endswith("PASS")

    def test_regression_fails_the_gate(self):
        base = synthetic_doc({"s": (0.100, self.META)})
        cand = synthetic_doc({"s": (0.120, self.META)})
        comparison = compare_benchmarks(base, cand)
        verdict = comparison.verdicts[0]
        assert verdict.status == "regression"
        assert verdict.rel_delta == pytest.approx(0.20)
        assert comparison.failed
        assert comparison.regressions == [verdict]
        assert "FAIL" in comparison.format()

    def test_warn_band_does_not_fail(self):
        base = synthetic_doc({"s": (0.100, self.META)})
        cand = synthetic_doc({"s": (0.110, self.META)})
        comparison = compare_benchmarks(base, cand)
        assert comparison.verdicts[0].status == "warn"
        assert not comparison.failed

    def test_improvement_celebrated_never_failed(self):
        base = synthetic_doc({"s": (0.100, self.META)})
        cand = synthetic_doc({"s": (0.050, self.META)})
        comparison = compare_benchmarks(base, cand)
        assert comparison.verdicts[0].status == "improved"
        assert not comparison.failed

    def test_meta_drift_is_skewed_and_fails(self):
        base = synthetic_doc({"s": (0.100, {"epochs": 500})})
        cand = synthetic_doc({"s": (0.050, {"epochs": 250})})
        comparison = compare_benchmarks(base, cand)
        verdict = comparison.verdicts[0]
        assert verdict.status == "skewed"
        assert "epochs 500->250" in verdict.note
        assert comparison.failed  # a faster-but-different workload gates

    def test_missing_scenarios_reported_not_failed(self):
        base = synthetic_doc({"old": (0.1, self.META)})
        cand = synthetic_doc({"new": (0.1, self.META)})
        comparison = compare_benchmarks(base, cand)
        statuses = {v.name: v.status for v in comparison.verdicts}
        assert statuses == {"old": "missing", "new": "missing"}
        assert not comparison.failed

    def test_zero_baseline_cannot_gate(self):
        base = synthetic_doc({"s": (0.0, self.META)})
        cand = synthetic_doc({"s": (0.1, self.META)})
        comparison = compare_benchmarks(base, cand)
        assert comparison.verdicts[0].status == "skewed"

    def test_custom_thresholds(self):
        base = synthetic_doc({"s": (0.100, self.META)})
        cand = synthetic_doc({"s": (0.104, self.META)})
        comparison = compare_benchmarks(base, cand, fail_threshold=0.03,
                                        warn_threshold=0.01)
        assert comparison.verdicts[0].status == "regression"

    def test_threshold_ordering_enforced(self):
        base = synthetic_doc({"s": (0.1, self.META)})
        with pytest.raises(ConfigError, match="thresholds"):
            compare_benchmarks(base, base, fail_threshold=0.05,
                               warn_threshold=0.15)

    def test_self_comparison_passes(self):
        doc = synthetic_doc({"a": (0.1, self.META), "b": (0.2, self.META)})
        assert not compare_benchmarks(doc, doc).failed

    def test_regression_note_names_hot_paths(self):
        base = synthetic_doc({"s": (0.100, self.META)})
        cand = synthetic_doc({"s": (0.200, self.META)})
        base["scenarios"]["s"]["phases"] = {"epoch": 0.010,
                                            "epoch/advance": 0.050}
        cand["scenarios"]["s"]["phases"] = {"epoch": 0.011,
                                            "epoch/advance": 0.140}
        verdict = compare_benchmarks(base, cand).verdicts[0]
        assert verdict.status == "regression"
        assert verdict.note.startswith("hot paths: ")
        # The dominant delta leads, and it lands in the rendered line.
        assert "epoch/advance +90.0ms" in verdict.note
        assert "[hot paths: " in verdict.format()

    def test_phase_note_absent_without_phase_maps(self):
        base = synthetic_doc({"s": (0.100, self.META)})
        cand = synthetic_doc({"s": (0.200, self.META)})
        verdict = compare_benchmarks(base, cand).verdicts[0]
        assert verdict.status == "regression" and verdict.note == ""


class TestProfilePhases:
    def test_phases_recorded_separately_from_meta(self):
        def fn(profiler=None):
            if profiler is not None:
                profiler.begin("work")
                profiler.begin("inner")
                profiler.end("inner")
                profiler.end("work")
            return {"count": 3}

        suite = {"gamma": Scenario("gamma", "profiled scenario", fn)}
        # 2 reads for the timing repeat, then 4 for the profiled spans.
        clock = ScriptedClock([0.0, 1.0, 2.0, 2.5, 4.5, 5.0])
        doc = run_bench(names=["gamma"], repeats=1, suite=suite,
                        clock=clock, profile_phases=True)
        gamma = doc["scenarios"]["gamma"]
        assert gamma["meta"] == {"count": 3}  # fingerprint untouched
        assert gamma["phases"] == {"work/inner": pytest.approx(2.0),
                                   "work": pytest.approx(1.0)}
        # Ranked by self time: the inner span dominates.
        assert list(gamma["phases"]) == ["work/inner", "work"]

    def test_phases_omitted_by_default(self):
        doc = run_bench(names=["alpha"], repeats=1, suite=tiny_suite())
        assert "phases" not in doc["scenarios"]["alpha"]


class TestCli:
    def test_bench_list(self, capsys):
        from repro.cli import main

        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "closed_ugpu" in out and "ppmm_migration" in out

    def test_profile_unknown_scenario_exits_2(self, capsys):
        from repro.cli import main

        assert main(["profile", "--scenario", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_profile_prints_table_and_writes_trace(self, tmp_path, capsys):
        from repro.cli import main

        prefix = tmp_path / "prof"
        assert main(["profile", "--scenario", "arrivals",
                     "--output", str(prefix)]) == 0
        out = capsys.readouterr().out
        assert "epoch.advance" in out and "self%" in out
        doc = json.loads((tmp_path / "prof.chrome.json").read_text())
        assert any(e.get("ph") == "X" for e in doc["traceEvents"])

    def test_bench_compare_exit_codes(self, tmp_path, capsys):
        """Gate semantics end to end: an injected 100x-faster baseline
        makes this run a regression (exit 1, or 0 with --warn-only); an
        injected 100x-slower baseline makes it an improvement (exit 0)."""
        from repro.cli import main

        doc = run_bench(names=["arrivals"], repeats=2)

        def scaled(factor, directory):
            copy = json.loads(json.dumps(doc))
            entry = copy["scenarios"]["arrivals"]
            entry["min_seconds"] = round(entry["min_seconds"] * factor, 9)
            entry["median_seconds"] = round(
                entry["median_seconds"] * factor, 9)
            entry["seconds"] = [round(s * factor, 9)
                                for s in entry["seconds"]]
            return write_bench(copy, tmp_path / directory)

        fast = scaled(0.01, "fast")
        slow = scaled(100.0, "slow")
        argv = ["bench", "--scenarios", "arrivals", "--repeat", "2",
                "--out", str(tmp_path)]
        assert main(argv + ["--compare", str(fast)]) == 1
        assert "REGRESSION" in capsys.readouterr().out
        assert main(argv + ["--compare", str(slow)]) == 0
        assert "improved" in capsys.readouterr().out
        assert main(argv + ["--compare", str(fast), "--warn-only"]) == 0
        assert "--warn-only" in capsys.readouterr().out
