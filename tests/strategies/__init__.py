"""Shared Hypothesis profiles/strategies for the property-test modules.

Usage::

    from tests.strategies import STANDARD_SETTINGS

    @STANDARD_SETTINGS
    @given(...)
    def test_invariant(...): ...
"""

from tests.strategies.settings import (
    DETERMINISM_SETTINGS,
    QUICK_SETTINGS,
    SLOW_SETTINGS,
    STANDARD_SETTINGS,
    STATE_MACHINE_SETTINGS,
)

__all__ = [
    "DETERMINISM_SETTINGS",
    "QUICK_SETTINGS",
    "SLOW_SETTINGS",
    "STANDARD_SETTINGS",
    "STATE_MACHINE_SETTINGS",
]
