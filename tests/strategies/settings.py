"""Standardized Hypothesis settings profiles for property tests.

Every property module picks a tier instead of scattering ad-hoc
``max_examples`` values, so example budgets are explicit and tuned in
one place:

- ``DETERMINISM_SETTINGS``: 200 examples — hash/canonical-key stability
  (cache keys must never drift between processes or runs);
- ``STANDARD_SETTINGS``: 100 examples — regular property tests;
- ``SLOW_SETTINGS``: 50 examples — tests whose single example is costly
  (full command-sequence replays, multi-epoch simulations);
- ``QUICK_SETTINGS``: 20 examples — fast validation checks;
- ``STATE_MACHINE_SETTINGS``: stateful rule-based tests (bounded step
  count, no deadline — step cost varies with machine state).

``settings`` instances are decorators: stack them under ``@given`` as
``@STANDARD_SETTINGS``.
"""

from hypothesis import settings

DETERMINISM_SETTINGS = settings(max_examples=200, deadline=None)
STANDARD_SETTINGS = settings(max_examples=100, deadline=None)
SLOW_SETTINGS = settings(max_examples=50, deadline=None)
QUICK_SETTINGS = settings(max_examples=20, deadline=None)
STATE_MACHINE_SETTINGS = settings(
    max_examples=40, stateful_step_count=40, deadline=None
)
