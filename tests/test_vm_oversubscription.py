"""Unit and integration tests for memory-oversubscription support
(repro.vm.oversubscription and its wiring into the system simulations)."""

import pytest

from repro import BPSystem, UGPUSystem
from repro.errors import ConfigError
from repro.gpu import Application, GPUConfig, Kernel
from repro.units import GB
from repro.vm.oversubscription import FaultOverheadModel

TOTAL_MEMORY = 16 * GB


@pytest.fixture
def model():
    return FaultOverheadModel(GPUConfig())


class TestFaultOverheadModel:
    def test_fitting_workload_is_free(self, model):
        charge = model.charge(footprint_bytes=1 * GB, capacity_bytes=8 * GB,
                              dram_bytes_per_cycle=100.0)
        assert not charge.oversubscribed
        assert charge.throughput_factor == 1.0
        assert charge.faults_per_cycle == 0.0

    def test_overflow_fraction(self, model):
        charge = model.charge(12 * GB, 8 * GB, dram_bytes_per_cycle=100.0)
        assert charge.overflow_fraction == pytest.approx(1 - 8 / 12)
        assert charge.oversubscribed

    def test_factor_decreases_with_overflow(self, model):
        factors = [
            model.charge(f * GB, 8 * GB, 100.0).throughput_factor
            for f in (8, 10, 12, 16)
        ]
        assert factors[0] == 1.0
        assert factors == sorted(factors, reverse=True)

    def test_factor_decreases_with_traffic(self, model):
        light = model.charge(12 * GB, 8 * GB, 10.0).throughput_factor
        heavy = model.charge(12 * GB, 8 * GB, 400.0).throughput_factor
        assert heavy < light < 1.0

    def test_more_channels_mean_more_capacity(self, model):
        assert model.capacity_for_channels(16, TOTAL_MEMORY) == TOTAL_MEMORY / 2
        assert model.capacity_for_channels(32, TOTAL_MEMORY) == TOTAL_MEMORY

    def test_zero_footprint_is_free(self, model):
        assert model.charge(0, 0, 100.0).throughput_factor == 1.0

    def test_validation(self, model):
        with pytest.raises(ConfigError):
            FaultOverheadModel(GPUConfig(), page_size=0)
        with pytest.raises(ConfigError):
            model.charge(-1, 0, 0)
        with pytest.raises(ConfigError):
            model.capacity_for_channels(-1, TOTAL_MEMORY)


def oversubscribed_app(app_id=0, footprint_gb=12):
    """A streaming kernel whose working set exceeds the even-split 8 GB."""
    return Application(app_id, "HOG", [Kernel(
        name="hog",
        ipc_per_sm=64.0,
        apki_llc=6.0,
        llc_hit_rate=0.25,
        footprint_bytes=footprint_gb * GB,
        instructions=6_000_000_000,
    )])


def small_compute_app(app_id=1):
    return Application(app_id, "TINY", [Kernel(
        name="tiny",
        ipc_per_sm=64.0,
        apki_llc=1.2,
        llc_hit_rate=0.9997,
        footprint_bytes=20 * 1024 * 1024,
        instructions=6_000_000_000,
    )])


class TestSystemIntegration:
    def test_bp_pays_fault_overhead(self):
        apps = [oversubscribed_app(), small_compute_app()]
        with_faults = BPSystem(apps, total_memory_bytes=TOTAL_MEMORY).run()
        apps2 = [oversubscribed_app(), small_compute_app()]
        without = BPSystem(apps2).run()
        hog_with = next(r for r in with_faults.runs if r.name == "HOG")
        hog_without = next(r for r in without.runs if r.name == "HOG")
        assert hog_with.ipc < hog_without.ipc

    def test_ugpu_grants_channels_to_oversubscribed_app(self):
        """The capacity extension: an oversubscribed app is treated as
        memory-bound and receives channels, which carry capacity and cut
        the fault overhead (the paper's stated behaviour)."""
        apps = [oversubscribed_app(), small_compute_app()]
        system = UGPUSystem(apps, total_memory_bytes=TOTAL_MEMORY)
        ugpu = system.run()
        assert system.apps[0].allocation.channels > 16

        apps2 = [oversubscribed_app(), small_compute_app()]
        bp = BPSystem(apps2, total_memory_bytes=TOTAL_MEMORY).run()
        assert ugpu.stp > bp.stp
        hog_ugpu = next(r for r in ugpu.runs if r.name == "HOG")
        hog_bp = next(r for r in bp.runs if r.name == "HOG")
        assert hog_ugpu.normalized_progress > hog_bp.normalized_progress

    def test_capacity_pressure_alone_classifies_memory_bound(self):
        """Even a compute-profile app gets channels if its working set
        does not fit (Section 3.2's capacity rule)."""
        hog = Application(0, "CHOG", [Kernel(
            name="chog", ipc_per_sm=64.0, apki_llc=1.2, llc_hit_rate=0.9997,
            footprint_bytes=12 * GB, instructions=6_000_000_000,
        )])
        system = UGPUSystem(
            [hog, small_compute_app()], total_memory_bytes=TOTAL_MEMORY
        )
        system.run()
        # 12 GB needs 24 of 32 channels' worth of capacity.
        assert system.apps[0].allocation.channels >= 24

    def test_solo_run_unaffected_when_fitting(self):
        apps = [oversubscribed_app(footprint_gb=4), small_compute_app()]
        result = BPSystem(apps, total_memory_bytes=TOTAL_MEMORY).run()
        # 4 GB fits the 8 GB share: no overhead anywhere, NP ~0.5.
        hog = next(r for r in result.runs if r.name == "HOG")
        assert hog.normalized_progress > 0.4
