"""Tests for result aggregation and reporting (repro.analysis)."""

import pytest

from repro import BPSystem, UGPUSystem
from repro.analysis import (
    PolicySweep,
    Table,
    compare_policies,
    format_markdown,
    format_text,
)
from repro.errors import ConfigError


class TestTable:
    def test_add_and_column(self):
        table = Table("t", ("a", "b"))
        table.add(1, 2).add(3, 4)
        assert table.column("b") == [2, 4]

    def test_row_arity_checked(self):
        with pytest.raises(ConfigError):
            Table("t", ("a", "b")).add(1)

    def test_unknown_column(self):
        with pytest.raises(ConfigError):
            Table("t", ("a",)).column("z")

    def test_text_rendering(self):
        table = Table("title", ("name", "value"))
        table.add("alpha", 10)
        text = format_text(table)
        assert "== title ==" in text
        assert "alpha" in text and "10" in text

    def test_markdown_rendering(self):
        table = Table("title", ("name", "value"))
        table.add("alpha", 10)
        md = format_markdown(table)
        assert md.startswith("### title")
        assert "| alpha | 10 |" in md
        assert "| --- | --- |" in md


class TestPolicySweep:
    def test_sweep_collects_results(self):
        sweep = PolicySweep("BP", BPSystem, total_cycles=10_000_000)
        summary = sweep.run([("PVC", "DXTC"), ("LBM", "CP")])
        assert summary.policy == "BP"
        assert len(summary.stp_values) == 2
        assert all(s > 0 for s in summary.stp_values)
        assert len(sweep.results) == 2

    def test_summary_before_run_rejected(self):
        with pytest.raises(ConfigError):
            PolicySweep("BP", BPSystem).summary()

    def test_gain_computation(self):
        workloads = [("PVC", "DXTC")]
        bp = PolicySweep("BP", BPSystem, 10_000_000).run(workloads)
        ugpu = PolicySweep("UGPU", UGPUSystem, 10_000_000).run(workloads)
        assert ugpu.stp_gain_over(bp) > 0
        assert ugpu.antt_gain_over(bp) > 0

    def test_mismatched_sweeps_rejected(self):
        bp = PolicySweep("BP", BPSystem, 10_000_000).run([("PVC", "DXTC")])
        ugpu = PolicySweep("UGPU", UGPUSystem, 10_000_000).run(
            [("PVC", "DXTC"), ("LBM", "CP")]
        )
        with pytest.raises(ConfigError):
            ugpu.stp_gain_over(bp)

    def test_invalid_cycles(self):
        with pytest.raises(ConfigError):
            PolicySweep("BP", BPSystem, total_cycles=0)


class TestComparePolicies:
    def test_comparison_table(self):
        table, summaries = compare_policies(
            {"BP": BPSystem, "UGPU": UGPUSystem},
            workloads=[("PVC", "DXTC"), ("LAVAMD", "CP")],
            total_cycles=10_000_000,
        )
        assert set(summaries) == {"BP", "UGPU"}
        text = format_text(table)
        assert "UGPU" in text
        gains = dict(zip(table.column("policy"), table.column("STP vs BP")))
        assert gains["BP"] == "+0.0%"
        assert gains["UGPU"].startswith("+")

    def test_unknown_baseline_rejected(self):
        with pytest.raises(ConfigError):
            compare_policies({"UGPU": UGPUSystem}, [("PVC", "DXTC")],
                             baseline="BP")


class TestAsciiPlot:
    def test_sparkline_shape(self):
        from repro.analysis import sparkline
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert len(line) == 8
        assert line[0] == "▁" and line[-1] == "█"

    def test_sparkline_flat_series(self):
        from repro.analysis import sparkline
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_sparkline_shared_scale(self):
        from repro.analysis import sparkline
        a = sparkline([0, 10], lo=0, hi=20)
        assert a == "▁▄"

    def test_sparkline_empty_rejected(self):
        from repro.analysis import sparkline
        with pytest.raises(ConfigError):
            sparkline([])

    def test_bar_chart(self):
        from repro.analysis import bar_chart
        chart = bar_chart({"BP": 1.0, "UGPU": 1.25}, width=10, baseline=1.0)
        lines = chart.splitlines()
        assert lines[0].startswith("BP")
        assert "█" in lines[1]
        assert "1.250" in lines[1]

    def test_bar_chart_negative_relative(self):
        from repro.analysis import bar_chart
        chart = bar_chart({"ORI": 0.8}, width=10, baseline=1.0)
        assert "-" in chart

    def test_compare_sparklines(self):
        from repro.analysis import compare_sparklines
        out = compare_sparklines({"BP": [1, 1, 1], "UGPU": [1, 2, 3]})
        assert out.count("\n") == 1
        assert "[1.00..3.00]" in out

    def test_plot_validation(self):
        from repro.analysis import bar_chart, compare_sparklines
        with pytest.raises(ConfigError):
            bar_chart({})
        with pytest.raises(ConfigError):
            compare_sparklines({})
