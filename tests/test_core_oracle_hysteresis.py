"""Tests for the oracle partitioner (repro.core.oracle) and the
repartition-hysteresis option (Section 3.3's overhead discussion)."""

import pytest

from repro import BPSystem, UGPUSystem, build_application, build_mix
from repro.core.oracle import OraclePartitioner
from repro.core.slices import ResourceAllocation
from repro.errors import AllocationError
from repro.gpu import GPUConfig


def kernels_for(*abbrs):
    return {
        i: build_application(a, app_id=i).kernels[0]
        for i, a in enumerate(abbrs)
    }


class TestOracleTwoWay:
    def test_finds_unbalanced_optimum(self):
        oracle = OraclePartitioner(GPUConfig())
        result = oracle.best_partition(kernels_for("PVC", "DXTC"))
        pvc, dxtc = result.allocations[0], result.allocations[1]
        assert pvc.channels > 16      # memory-bound app gets channels
        assert dxtc.sms > 40          # compute-bound app gets SMs
        assert result.evaluations > 50

    def test_oracle_beats_even_split(self):
        oracle = OraclePartitioner(GPUConfig())
        kernels = kernels_for("PVC", "DXTC")
        even = {
            0: ResourceAllocation(40, 16),
            1: ResourceAllocation(40, 16),
        }
        assert oracle.best_partition(kernels).stp > oracle.score(kernels, even)

    def test_oracle_conserves_budget(self):
        oracle = OraclePartitioner(GPUConfig())
        result = oracle.best_partition(kernels_for("LAVAMD", "CP"))
        assert sum(a.sms for a in result.allocations.values()) == 80
        assert sum(a.channels for a in result.allocations.values()) == 32

    def test_homogeneous_optimum_is_near_even(self):
        oracle = OraclePartitioner(GPUConfig())
        kernels = kernels_for("CP", "MRI-Q")
        result = oracle.best_partition(kernels)
        even = {0: ResourceAllocation(40, 16), 1: ResourceAllocation(40, 16)}
        assert result.stp <= oracle.score(kernels, even) * 1.05

    def test_empty_rejected(self):
        with pytest.raises(AllocationError):
            OraclePartitioner().best_partition({})

    def test_invalid_steps(self):
        with pytest.raises(AllocationError):
            OraclePartitioner(sm_step=0)


class TestOracleFourWay:
    def test_coordinate_descent_improves_on_even(self):
        oracle = OraclePartitioner(GPUConfig())
        kernels = kernels_for("PVC", "LAVAMD", "DXTC", "CP")
        result = oracle.best_partition(kernels)
        even = {i: ResourceAllocation(20, 8) for i in range(4)}
        assert result.stp > oracle.score(kernels, even)
        assert sum(a.sms for a in result.allocations.values()) == 80
        assert sum(a.channels for a in result.allocations.values()) == 32

    def test_minimums_respected(self):
        oracle = OraclePartitioner(GPUConfig())
        result = oracle.best_partition(
            kernels_for("PVC", "LBM", "DXTC", "CP")
        )
        for alloc in result.allocations.values():
            assert alloc.sms >= 4
            assert alloc.channels >= 4


class TestHysteresis:
    def test_default_reproduces_paper_behaviour(self):
        system = UGPUSystem(build_mix(["PVC", "DXTC"]).applications)
        assert system.hysteresis == 0.0
        system.run()
        assert system.repartitions >= 1
        assert system.suppressed_repartitions == 0

    def test_large_hysteresis_suppresses_repartitioning(self):
        # A near-homogeneous pair: the algorithm finds tiny-gain moves
        # that a 50% hysteresis bar rejects.
        base = UGPUSystem(build_mix(["BH", "DXTC"]).applications)
        base.run()
        damped = UGPUSystem(build_mix(["BH", "DXTC"]).applications,
                            hysteresis=0.5)
        damped.run()
        assert damped.repartitions < base.repartitions or (
            damped.suppressed_repartitions > 0
        )

    def test_small_hysteresis_keeps_big_wins(self):
        bp = BPSystem(build_mix(["PVC", "DXTC"]).applications).run()
        damped = UGPUSystem(build_mix(["PVC", "DXTC"]).applications,
                            hysteresis=0.05)
        result = damped.run()
        assert result.stp > 1.1 * bp.stp  # the large gain still applies

    def test_negative_hysteresis_rejected(self):
        with pytest.raises(ValueError):
            UGPUSystem(build_mix(["PVC", "DXTC"]).applications,
                       hysteresis=-0.1)
