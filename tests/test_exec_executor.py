"""Tests for the parallel sweep executor and its sweep-layer rewiring."""

import pytest

from repro import BPSystem, UGPUSystem
from repro.analysis import PolicySweep, compare_policies
from repro.errors import ConfigError
from repro.exec import ResultCache, SweepExecutor, SweepJob

CYCLES = 2_000_000
MIXES = [("PVC", "DXTC"), ("LBM", "CP"), ("PVC", "CP")]


def jobs_for(policies=("bp", "ugpu")):
    return [SweepJob.build(policy, mix, CYCLES)
            for policy in policies for mix in MIXES]


class TestExecutor:
    def test_jobs_must_be_positive(self):
        with pytest.raises(ConfigError):
            SweepExecutor(jobs=0)

    def test_serial_and_parallel_results_are_identical(self):
        batch = jobs_for()
        serial = SweepExecutor(jobs=1).run(batch)
        parallel = SweepExecutor(jobs=3).run(batch)
        assert serial == parallel  # full SystemResult equality, in job order

    def test_results_come_back_in_job_order(self):
        batch = jobs_for()
        results = SweepExecutor(jobs=2).run(batch)
        assert [r.mix_name for r in results] == [j.mix_name for j in batch]
        assert [r.policy for r in results] == (
            ["BP"] * len(MIXES) + ["UGPU"] * len(MIXES)
        )

    def test_stats_reflect_the_run(self):
        executor = SweepExecutor(jobs=1)
        executor.run(jobs_for())
        stats = executor.last_stats
        assert stats.jobs_total == stats.jobs_run == len(jobs_for())
        assert stats.cache_hits == 0
        assert len(stats.job_seconds) == stats.jobs_run
        assert stats.p95_seconds >= stats.p50_seconds >= 0.0

    def test_empty_job_list(self):
        assert SweepExecutor(jobs=2).run([]) == []


class TestExecutorCache:
    def test_second_run_is_all_hits_and_identical(self, tmp_path):
        cache = ResultCache(tmp_path)
        executor = SweepExecutor(jobs=1, cache=cache)
        first = executor.run(jobs_for())
        assert executor.last_stats.jobs_run == len(jobs_for())
        second = executor.run(jobs_for())
        assert second == first
        assert executor.last_stats.jobs_run == 0
        assert executor.last_stats.cache_hits == len(jobs_for())

    def test_cache_shared_between_serial_and_parallel(self, tmp_path):
        cache = ResultCache(tmp_path)
        serial = SweepExecutor(jobs=1, cache=cache).run(jobs_for())
        parallel_exec = SweepExecutor(jobs=2, cache=cache)
        parallel = parallel_exec.run(jobs_for())
        assert parallel == serial
        assert parallel_exec.last_stats.cache_hits == len(jobs_for())

    def test_corrupted_entry_recomputed(self, tmp_path):
        cache = ResultCache(tmp_path)
        executor = SweepExecutor(jobs=1, cache=cache)
        first = executor.run(jobs_for())
        cache.path_for(jobs_for()[0].key()).write_bytes(b"\x80garbage")
        again = executor.run(jobs_for())
        assert again == first
        assert executor.last_stats.jobs_run == 1  # only the poisoned job
        assert executor.last_stats.cache_hits == len(jobs_for()) - 1


class TestSweepLayer:
    def test_policy_sweep_accepts_registry_names(self):
        by_name = PolicySweep("BP", "bp", total_cycles=CYCLES).run(MIXES)
        by_factory = PolicySweep("BP", BPSystem, total_cycles=CYCLES).run(MIXES)
        assert by_name.stp_values == by_factory.stp_values

    def test_policy_sweep_parallel_matches_serial(self):
        serial = PolicySweep("UGPU", UGPUSystem, total_cycles=CYCLES).run(MIXES)
        parallel = PolicySweep("UGPU", UGPUSystem, total_cycles=CYCLES,
                               jobs=2).run(MIXES)
        assert serial.stp_values == parallel.stp_values
        assert serial.antt_values == parallel.antt_values
        assert serial.min_np_values == parallel.min_np_values

    def test_adhoc_callable_still_works(self):
        summary = PolicySweep(
            "custom", lambda apps: BPSystem(apps), total_cycles=CYCLES
        ).run(MIXES)
        assert len(summary.stp_values) == len(MIXES)

    def test_compare_policies_parallel_identical_to_serial(self):
        policies = {"BP": BPSystem, "UGPU": UGPUSystem}
        table_s, serial = compare_policies(policies, MIXES, total_cycles=CYCLES)
        table_p, parallel = compare_policies(policies, MIXES,
                                             total_cycles=CYCLES, jobs=2)
        for name in policies:
            assert serial[name].stp_values == parallel[name].stp_values
            assert serial[name].antt_values == parallel[name].antt_values
        assert table_s.rows == table_p.rows

    def test_compare_policies_cached_rerun_is_zero_resimulation(self, tmp_path):
        executor = SweepExecutor(jobs=1, cache=ResultCache(tmp_path))
        policies = {"BP": "bp", "UGPU": "ugpu"}
        _, first = compare_policies(policies, MIXES, total_cycles=CYCLES,
                                    executor=executor)
        jobs_first = executor.stats.jobs_run
        assert jobs_first == len(policies) * len(MIXES)
        _, second = compare_policies(policies, MIXES, total_cycles=CYCLES,
                                     executor=executor)
        assert executor.stats.jobs_run == jobs_first  # nothing re-simulated
        assert executor.last_stats.cache_hits == len(policies) * len(MIXES)
        for name in policies:
            assert second[name].stp_values == first[name].stp_values

    def test_mismatched_gain_message_names_both_sweeps(self):
        a = PolicySweep("UGPU", "ugpu", total_cycles=CYCLES).run(MIXES)
        b = PolicySweep("BP", "bp", total_cycles=CYCLES).run(MIXES[:1])
        with pytest.raises(ConfigError, match=r"'UGPU' has 3 .* 'BP' has 1"):
            a.stp_gain_over(b)
