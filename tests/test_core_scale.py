"""Scale and long-run consistency tests for the system simulations."""

import pytest

from repro import BPSystem, MigrationMode, UGPUSystem, build_mix
from repro.workloads import eight_program_mixes, four_program_mixes


class TestBudgetConservation:
    def assert_partition_valid(self, system):
        total_sms = sum(s.allocation.sms for s in system.apps.values())
        total_mcs = sum(s.allocation.channels for s in system.apps.values())
        assert total_sms == system.config.num_sms
        assert total_mcs == system.config.num_channels
        for state in system.apps.values():
            assert state.allocation.sms >= system.partition.min_sms
            assert state.allocation.channels >= system.partition.min_channels
            assert state.allocation.channels % 4 == 0

    def test_two_program_partition_stays_valid(self):
        system = UGPUSystem(build_mix(["PVC", "DXTC"]).applications)
        system.run(50_000_000)  # 10 epochs
        self.assert_partition_valid(system)

    def test_four_program_partition_stays_valid(self):
        mix = four_program_mixes(count=1)[0]
        system = UGPUSystem(build_mix(mix.abbrs).applications)
        system.run(50_000_000)
        self.assert_partition_valid(system)

    def test_eight_program_partition_stays_valid(self):
        mix = eight_program_mixes(count=1)[0]
        system = UGPUSystem(build_mix(mix.abbrs).applications)
        result = system.run(50_000_000)
        self.assert_partition_valid(system)
        assert len(result.runs) == 8
        assert all(r.ipc > 0 for r in result.runs)

    def test_partition_valid_under_every_migration_mode(self):
        for mode in MigrationMode:
            system = UGPUSystem(build_mix(["PVC", "DXTC"]).applications,
                                mode=mode)
            system.run(25_000_000)
            self.assert_partition_valid(system)


class TestLongHorizon:
    def test_long_run_is_stable(self):
        """A 40-epoch run neither drifts nor accumulates phantom
        penalties: late epochs retire at least as much as mid epochs."""
        system = UGPUSystem(build_mix(["PVC", "DXTC"]).applications)
        result = system.run(200_000_000)
        mid = sum(sum(e.instructions.values()) for e in result.epochs[10:20])
        late = sum(sum(e.instructions.values()) for e in result.epochs[30:40])
        assert late >= 0.95 * mid

    def test_ipc_scale_invariance(self):
        """Doubling the horizon leaves steady-state IPC unchanged."""
        short = UGPUSystem(build_mix(["PVC", "DXTC"]).applications).run(25_000_000)
        long = UGPUSystem(build_mix(["PVC", "DXTC"]).applications).run(50_000_000)
        for s, l in zip(short.runs, long.runs):
            assert l.ipc == pytest.approx(s.ipc, rel=0.10)

    def test_deterministic_replay(self):
        """Two identical simulations produce identical results."""
        a = UGPUSystem(build_mix(["BH", "CP"]).applications).run(25_000_000)
        b = UGPUSystem(build_mix(["BH", "CP"]).applications).run(25_000_000)
        assert a.stp == b.stp
        assert a.antt == b.antt
        assert [r.ipc for r in a.runs] == [r.ipc for r in b.runs]

    def test_bp_reference_is_horizon_invariant(self):
        a = BPSystem(build_mix(["PVC", "DXTC"]).applications).run(25_000_000)
        b = BPSystem(build_mix(["PVC", "DXTC"]).applications).run(100_000_000)
        assert b.stp == pytest.approx(a.stp, rel=0.05)
