"""Unit tests for the 4-level page table (repro.vm.page_table)."""

import pytest

from repro.errors import TranslationError
from repro.vm import PageTable


@pytest.fixture
def table():
    return PageTable(app_id=0)


class TestMapping:
    def test_map_and_lookup(self, table):
        table.map(vpn=10, rpn=99, channel=3)
        entry = table.lookup(10)
        assert entry.rpn == 99
        assert entry.channel == 3
        assert entry.valid

    def test_lookup_unmapped_returns_none(self, table):
        assert table.lookup(123) is None

    def test_remap_replaces_entry(self, table):
        table.map(5, 1, channel=0)
        table.map(5, 2, channel=1)
        assert table.lookup(5).rpn == 2
        assert len(table) == 1

    def test_len_counts_mappings(self, table):
        for vpn in range(100):
            table.map(vpn, vpn + 1000, channel=vpn % 8)
        assert len(table) == 100

    def test_unmap(self, table):
        table.map(7, 70, channel=2)
        removed = table.unmap(7)
        assert removed.rpn == 70
        assert table.lookup(7) is None
        assert len(table) == 0

    def test_unmap_missing_raises(self, table):
        with pytest.raises(TranslationError):
            table.unmap(7)

    def test_distant_vpns_do_not_collide(self, table):
        # VPNs differing only in the top radix level.
        a = 0
        b = 1 << 27
        table.map(a, 1, channel=0)
        table.map(b, 2, channel=1)
        assert table.lookup(a).rpn == 1
        assert table.lookup(b).rpn == 2


class TestTranslateAndInvalidate:
    def test_translate_sets_referenced(self, table):
        table.map(3, 30, channel=0)
        entry = table.translate(3)
        assert entry.referenced

    def test_translate_invalid_entry_returns_none(self, table):
        table.map(3, 30, channel=0)
        table.invalidate(3)
        assert table.translate(3) is None
        # But the raw entry is still there.
        assert table.lookup(3) is not None

    def test_invalidate_missing_raises(self, table):
        with pytest.raises(TranslationError):
            table.invalidate(99)


class TestIterationHelpers:
    def test_entries_sorted_by_vpn(self, table):
        for vpn in (500, 2, 77, 1 << 20):
            table.map(vpn, vpn, channel=0)
        vpns = [vpn for vpn, _ in table.entries()]
        assert vpns == sorted(vpns)
        assert len(vpns) == 4

    def test_pages_in_channel(self, table):
        table.map(1, 10, channel=0)
        table.map(2, 20, channel=1)
        table.map(3, 30, channel=0)
        table.invalidate(3)
        found = list(table.pages_in_channel(0))
        assert [vpn for vpn, _ in found] == [1]

    def test_channel_page_counts(self, table):
        for vpn in range(10):
            table.map(vpn, vpn, channel=vpn % 2)
        assert table.channel_page_counts() == {0: 5, 1: 5}


class TestWalkDepth:
    def test_mapped_vpn_touches_all_levels(self, table):
        table.map(42, 420, channel=0)
        assert table.levels_touched(42) == 4

    def test_empty_table_touches_one_level(self, table):
        assert table.levels_touched(42) == 1

    def test_partial_population(self, table):
        table.map(0, 1, channel=0)
        # A vpn sharing the first radix index but diverging at level 2.
        diverging = 1 << 18
        assert 1 < table.levels_touched(diverging) <= 4

    def test_cr3_distinct_per_app(self):
        assert PageTable(0).cr3 != PageTable(1).cr3
