"""Tests for the tracing layer (repro.trace) and its instrumentation
hooks across sim, core, pagemove, vm and exec."""

import json

import pytest

from repro import BPSystem, UGPUSystem, build_mix
from repro.errors import ConfigError
from repro.exec import ResultCache, SweepExecutor, SweepJob
from repro.pagemove import (
    InterleavedPageMapping,
    MigrationEngine,
    PageMoveAddressMapping,
)
from repro.sim.engine import EventQueue
from repro.trace import (
    TraceCategory,
    TraceEvent,
    TraceRecorder,
    chrome_trace,
    read_jsonl,
    summarize,
    write_chrome_trace,
    write_jsonl,
)
from repro.vm import FaultKind, GPUDriver


class TestRecorder:
    def test_emit_and_retrieve(self):
        recorder = TraceRecorder()
        event = recorder.emit("epoch", "epoch[0]", time=5.0, duration=2.0,
                              instructions=10)
        assert event is not None
        assert event.category == "epoch"
        assert event.kind == "span"
        assert event.end_time == 7.0
        assert recorder.events() == [event]
        assert recorder.events("epoch") == [event]
        assert recorder.events("fault") == []

    def test_instant_default_kind(self):
        recorder = TraceRecorder()
        assert recorder.emit("fault", "demand").kind == "instant"

    def test_disabled_recorder_records_nothing(self):
        recorder = TraceRecorder(enabled=False)
        assert recorder.emit("epoch", "e") is None
        assert len(recorder) == 0 and recorder.emitted == 0
        recorder.enable()
        assert recorder.emit("epoch", "e") is not None
        recorder.disable()
        assert recorder.emit("epoch", "e") is None
        assert len(recorder) == 1

    def test_category_filter(self):
        recorder = TraceRecorder(categories=["epoch", TraceCategory.REALLOC])
        assert recorder.emit("epoch", "e") is not None
        assert recorder.emit("realloc", "apply") is not None
        assert recorder.emit("fault", "demand") is None
        assert recorder.filtered == 1
        assert recorder.wants("epoch")
        assert not recorder.wants("fault")

    def test_unknown_category_rejected(self):
        recorder = TraceRecorder()
        with pytest.raises(ConfigError):
            recorder.emit("nonsense", "x")
        with pytest.raises(ConfigError):
            TraceRecorder(categories=["nonsense"])

    def test_ring_buffer_wraparound(self):
        recorder = TraceRecorder(capacity=4)
        for index in range(10):
            recorder.emit("event", f"e{index}", time=index)
        assert len(recorder) == 4
        assert recorder.emitted == 10
        assert recorder.dropped == 6
        # The survivors are the newest four, in emission order.
        assert [e.name for e in recorder.events()] == ["e6", "e7", "e8", "e9"]
        assert [e.seq for e in recorder.events()] == [6, 7, 8, 9]

    def test_clear_empties_ring_but_keeps_counters(self):
        recorder = TraceRecorder()
        recorder.emit("epoch", "e")
        assert recorder.clear() == 1
        assert len(recorder) == 0
        assert recorder.emitted == 1

    def test_bad_capacity_rejected(self):
        with pytest.raises(ConfigError):
            TraceRecorder(capacity=0)


class TestExport:
    def _sample_events(self):
        recorder = TraceRecorder()
        recorder.emit("epoch", "epoch[0]", time=0.0, duration=100.0,
                      instructions=42, migration_cycles=10)
        recorder.emit("fault", "demand", time=7.0, app_id=1, vpn=3)
        recorder.emit("realloc", "apply", time=100.0, epoch=0, iterations=2)
        return recorder.events()

    def test_jsonl_round_trip(self, tmp_path):
        events = self._sample_events()
        path = tmp_path / "trace.jsonl"
        assert write_jsonl(events, path) == 3
        assert read_jsonl(path) == events

    def test_jsonl_gzip_round_trip(self, tmp_path):
        events = self._sample_events()
        path = tmp_path / "trace.jsonl.gz"
        assert write_jsonl(events, path) == 3
        # The artifact really is gzip (magic bytes), not plain text with
        # a misleading extension.
        assert path.read_bytes()[:2] == b"\x1f\x8b"
        assert read_jsonl(path) == events

    def test_jsonl_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"not": "a trace record"}\n')
        with pytest.raises(ConfigError):
            read_jsonl(path)

    def test_chrome_trace_shape(self):
        payload = chrome_trace(self._sample_events(), clock_ghz=1.0)
        records = payload["traceEvents"]
        spans = [r for r in records if r.get("ph") == "X"]
        instants = [r for r in records if r.get("ph") == "i"]
        metadata = [r for r in records if r.get("ph") == "M"]
        assert len(spans) == 1 and spans[0]["dur"] == pytest.approx(0.1)
        assert spans[0]["ts"] == pytest.approx(0.0)
        assert len(instants) == 2
        # One named row per (category, app_id) pair seen.
        assert len(metadata) == 3
        # 1 GHz: 7 cycles -> 0.007 us.
        fault = next(r for r in instants if r["cat"] == "fault")
        assert fault["ts"] == pytest.approx(0.007)

    def test_chrome_trace_file_is_json(self, tmp_path):
        path = tmp_path / "trace.chrome.json"
        count = write_chrome_trace(self._sample_events(), path)
        with open(path) as handle:
            payload = json.load(handle)
        assert len(payload["traceEvents"]) == count
        assert payload["displayTimeUnit"] == "ms"

    def test_bad_clock_rejected(self):
        with pytest.raises(ConfigError):
            chrome_trace([], clock_ghz=0.0)


class TestSummary:
    def test_derived_metrics(self):
        recorder = TraceRecorder()
        for index in range(4):
            recorder.emit("epoch", f"epoch[{index}]", time=index * 100.0,
                          duration=100.0, instructions=5,
                          migration_cycles=20 if index in (1, 3) else 0)
        recorder.emit("realloc", "apply", time=100.0, epoch=1)
        recorder.emit("realloc", "apply", time=300.0, epoch=3)
        recorder.emit("realloc", "suppress", time=200.0, epoch=2)
        for _ in range(6):
            recorder.emit("fault", "demand")
        recorder.emit("fault", "lost_channel")
        recorder.emit("qos", "enforce", app_id=1)
        summary = summarize(recorder.events())
        assert summary.epochs == 4
        assert summary.total_cycles == 400.0
        assert summary.faults == 7
        assert summary.faults_by_kind == {"demand": 6, "lost_channel": 1}
        assert summary.fault_rate_per_epoch == pytest.approx(7 / 4)
        assert summary.migration_stall_fraction == pytest.approx(40 / 400)
        assert summary.reallocations_applied == 2
        assert summary.reallocations_suppressed == 1
        assert summary.reallocation_cadence_epochs == pytest.approx(2.0)
        assert summary.qos_interventions == 1
        text = summary.format()
        assert "migration stall 10.0%" in text
        assert "2 applied, 1 suppressed" in text

    def test_empty_trace(self):
        summary = summarize([])
        assert summary.fault_rate_per_epoch == 0.0
        assert summary.migration_stall_fraction == 0.0
        assert summary.reallocation_cadence_epochs is None


class TestSystemInstrumentation:
    def _run(self, tracer=None, policy=UGPUSystem):
        apps = build_mix(["PVC", "DXTC"]).applications
        return policy(apps, tracer=tracer).run(15_000_000, mix_name="PVC_DXTC")

    def test_traced_run_matches_untraced_run(self):
        recorder = TraceRecorder()
        untraced = self._run()
        traced = self._run(tracer=recorder)
        assert traced.stp == untraced.stp
        assert traced.antt == untraced.antt
        assert traced.total_cycles == untraced.total_cycles
        assert traced.repartitions == untraced.repartitions
        assert [e.instructions for e in traced.epochs] == [
            e.instructions for e in untraced.epochs
        ]
        assert recorder.emitted > 0

    def test_disabled_recorder_run_matches_untraced(self):
        recorder = TraceRecorder(enabled=False)
        untraced = self._run()
        traced = self._run(tracer=recorder)
        assert traced.stp == untraced.stp
        assert len(recorder) == 0

    def test_epoch_events_cover_the_horizon(self):
        recorder = TraceRecorder()
        result = self._run(tracer=recorder)
        epochs = recorder.events("epoch")
        assert len(epochs) == len(result.epochs)
        assert sum(e.duration for e in epochs) == result.total_cycles
        assert all(e.kind == "span" for e in epochs)

    def test_realloc_events_match_repartition_count(self):
        recorder = TraceRecorder()
        result = self._run(tracer=recorder)
        applies = [e for e in recorder.events("realloc") if e.name == "apply"]
        assert len(applies) == result.repartitions
        for event in applies:
            assert set(event.args["allocations"]) == {0, 1}

    def test_bp_system_accepts_tracer(self):
        recorder = TraceRecorder()
        self._run(tracer=recorder, policy=BPSystem)
        assert len(recorder.events("epoch")) == 3
        assert recorder.events("realloc") == []  # static policy

    def test_migration_windows_traced(self):
        recorder = TraceRecorder()
        self._run(tracer=recorder)
        migrations = recorder.events("migration")
        assert migrations, "a repartition must charge migration windows"
        assert all(e.args["mode"] == "ppmm" for e in migrations)


class TestComponentInstrumentation:
    def test_event_queue_fire_hook(self):
        recorder = TraceRecorder()
        queue = EventQueue(tracer=recorder)
        queue.schedule(5, lambda: None, tag="tick")
        queue.schedule(9, lambda: None)
        queue.run_all()
        events = recorder.events("event")
        assert [e.name for e in events] == ["tick", "event"]
        assert [e.time for e in events] == [5, 9]

    def test_driver_fault_events(self):
        recorder = TraceRecorder()
        driver = GPUDriver(num_channel_groups=2, pages_per_channel=8,
                           tracer=recorder)
        driver.register_app(0, [0, 1])
        driver.handle_fault(FaultKind.DEMAND, 0, vpn=1)
        driver.handle_fault(FaultKind.REBALANCE, 0, vpn=1, target_channel=1)
        names = [e.name for e in recorder.events("fault")]
        assert names == ["demand", "rebalance"]
        rebalance = recorder.events("fault")[1]
        assert rebalance.args["source_channel"] is not None

    def test_migration_engine_plan_and_execute_events(self):
        recorder = TraceRecorder()
        mapping = PageMoveAddressMapping()
        driver = GPUDriver(pages_per_channel=64,
                           mapping=InterleavedPageMapping(mapping))
        engine = MigrationEngine(driver, mapping=mapping, tracer=recorder)
        driver.register_app(0, [0, 1])
        for vpn in range(8):
            driver.handle_fault(FaultKind.DEMAND, 0, vpn,
                                target_channel=vpn % 2)
        plan = engine.plan_channel_reallocation(0, [0])
        engine.execute(plan)
        names = [e.name for e in recorder.events("migration")]
        assert names == ["plan", "execute"]
        plan_event, execute_event = recorder.events("migration")
        assert plan_event.args["eager"] == 4
        assert plan_event.args["lost_channels"] == [1]
        assert execute_event.args["eager"] == 4
        assert execute_event.duration > 0

    def test_executor_cache_and_job_events(self, tmp_path):
        recorder = TraceRecorder()
        cache = ResultCache(tmp_path / "sweeps")
        executor = SweepExecutor(jobs=1, cache=cache, tracer=recorder)
        job = SweepJob.build("bp", ("PVC", "DXTC"), 2_000_000)
        executor.run([job])
        executor.run([job])
        cache_names = [e.name for e in recorder.events("cache")]
        assert cache_names == ["miss", "hit"]
        jobs = recorder.events("job")
        assert len(jobs) == 1
        assert jobs[0].duration > 0
        assert jobs[0].args["policy"] == "bp"


class TestTraceCLI:
    def test_trace_command_writes_both_formats(self, tmp_path, capsys):
        from repro.cli import main

        prefix = str(tmp_path / "out")
        assert main(["trace", "--mix", "PVC,DXTC", "--cycles", "5000000",
                     "--output", prefix]) == 0
        out = capsys.readouterr().out
        assert "trace:" in out
        events = read_jsonl(prefix + ".jsonl")
        assert events and any(e.category == "epoch" for e in events)
        with open(prefix + ".chrome.json") as handle:
            assert json.load(handle)["traceEvents"]

    def test_trace_command_category_filter(self, tmp_path, capsys):
        from repro.cli import main

        prefix = str(tmp_path / "filtered")
        assert main(["trace", "--mix", "PVC,DXTC", "--cycles", "5000000",
                     "--output", prefix, "--format", "jsonl",
                     "--categories", "epoch"]) == 0
        events = read_jsonl(prefix + ".jsonl")
        assert events
        assert {e.category for e in events} == {"epoch"}
