"""Unit tests for PageMove routing hardware (repro.hbm.crossbar)."""

import pytest

from repro.errors import ProtocolError
from repro.hbm import BankGroupCrossbar, TriStateDecoder


class TestTriStateDecoder:
    def test_default_binding_maps_bundle_to_same_die(self):
        dec = TriStateDecoder(8)
        for bundle in range(8):
            assert dec.default_die(bundle) == bundle
            assert dec.driver_of(bundle, now=0) == bundle

    def test_grant_rebinds_bundle(self):
        dec = TriStateDecoder(8, enhanced=True)
        dec.grant(bundle=3, die=5, now=10, until=60)
        assert dec.driver_of(3, now=20) == 5
        assert dec.driver_of(3, now=60) == 3  # expired -> default

    def test_stock_decoder_cannot_rebind(self):
        dec = TriStateDecoder(8, enhanced=False)
        with pytest.raises(ProtocolError):
            dec.grant(bundle=3, die=5, now=0, until=10)

    def test_stock_decoder_allows_default_grant(self):
        dec = TriStateDecoder(8, enhanced=False)
        dec.grant(bundle=3, die=3, now=0, until=10)

    def test_overlapping_grant_rejected(self):
        dec = TriStateDecoder(8)
        dec.grant(3, 5, now=0, until=100)
        with pytest.raises(ProtocolError):
            dec.grant(3, 6, now=50, until=150)

    def test_grant_after_expiry_allowed(self):
        dec = TriStateDecoder(8)
        dec.grant(3, 5, now=0, until=100)
        dec.grant(3, 6, now=100, until=200)
        assert dec.driver_of(3, 150) == 6

    def test_empty_interval_rejected(self):
        dec = TriStateDecoder(8)
        with pytest.raises(ProtocolError):
            dec.grant(0, 1, now=10, until=10)

    def test_free_bundles(self):
        dec = TriStateDecoder(4)
        dec.grant(1, 2, now=0, until=100)
        assert dec.free_bundles(now=50) == [0, 2, 3]
        assert dec.free_bundles(now=100) == [0, 1, 2, 3]

    def test_release(self):
        dec = TriStateDecoder(4)
        dec.grant(1, 2, now=0, until=100)
        dec.release(1)
        assert dec.is_free(1, now=50)

    def test_bundle_bounds_checked(self):
        dec = TriStateDecoder(4)
        with pytest.raises(ProtocolError):
            dec.driver_of(4, 0)
        with pytest.raises(ProtocolError):
            dec.grant(-1, 0, 0, 1)


class TestBankGroupCrossbar:
    def test_pagemove_crossbar_is_fully_connected(self):
        xbar = BankGroupCrossbar(4, 8)
        assert xbar.is_fully_connected
        assert xbar.concurrent_capacity() == 4

    def test_stock_crossbar_width_one(self):
        xbar = BankGroupCrossbar(4, 8, width=1)
        assert not xbar.is_fully_connected
        assert xbar.concurrent_capacity() == 1

    def test_four_concurrent_routes_on_pagemove_crossbar(self):
        xbar = BankGroupCrossbar(4, 8)
        for bg in range(4):
            xbar.connect(bg, bundle=bg + 2, now=0, until=50)
        assert xbar.active_routes(now=10) == {0: 2, 1: 3, 2: 4, 3: 5}

    def test_stock_crossbar_serializes_transfers(self):
        xbar = BankGroupCrossbar(4, 8, width=1)
        xbar.connect(0, bundle=0, now=0, until=50)
        with pytest.raises(ProtocolError):
            xbar.connect(1, bundle=1, now=10, until=60)
        # After the first route expires, the next is allowed.
        xbar.connect(1, bundle=1, now=50, until=100)

    def test_output_port_conflict_rejected(self):
        xbar = BankGroupCrossbar(4, 8)
        xbar.connect(0, bundle=5, now=0, until=50)
        with pytest.raises(ProtocolError):
            xbar.connect(1, bundle=5, now=25, until=75)

    def test_input_port_conflict_rejected(self):
        xbar = BankGroupCrossbar(4, 8)
        xbar.connect(0, bundle=5, now=0, until=50)
        with pytest.raises(ProtocolError):
            xbar.connect(0, bundle=6, now=25, until=75)

    def test_route_expiry_frees_ports(self):
        xbar = BankGroupCrossbar(4, 8)
        xbar.connect(0, bundle=5, now=0, until=50)
        xbar.connect(0, bundle=5, now=50, until=100)

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ProtocolError):
            BankGroupCrossbar(0, 8)
        with pytest.raises(ProtocolError):
            BankGroupCrossbar(4, 8, width=9)
        with pytest.raises(ProtocolError):
            BankGroupCrossbar(4, 8, width=0)

    def test_route_bounds_checked(self):
        xbar = BankGroupCrossbar(4, 8)
        with pytest.raises(ProtocolError):
            xbar.connect(4, 0, 0, 10)
        with pytest.raises(ProtocolError):
            xbar.connect(0, 8, 0, 10)
        with pytest.raises(ProtocolError):
            xbar.connect(0, 0, 10, 10)
