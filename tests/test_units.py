"""Unit tests for unit helpers (repro.units)."""

import pytest

from repro.units import (
    GB,
    GB_DECIMAL,
    KB,
    MB,
    bytes_per_cycle_to_gbps,
    bytes_to_mb,
    cycles_to_seconds,
    gbps_to_bytes_per_cycle,
    is_power_of_two,
    log2_int,
    seconds_to_cycles,
)


class TestConstants:
    def test_binary_prefixes(self):
        assert KB == 1024
        assert MB == 1024 ** 2
        assert GB == 1024 ** 3
        assert GB_DECIMAL == 10 ** 9


class TestConversions:
    def test_bytes_to_mb(self):
        assert bytes_to_mb(3 * MB) == 3.0

    def test_bandwidth_roundtrip(self):
        bpc = gbps_to_bytes_per_cycle(900.0, 1.4e9)
        assert bytes_per_cycle_to_gbps(bpc, 1.4e9) == pytest.approx(900.0)

    def test_channel_bandwidth_example(self):
        # 900/32 GB/s at 1.4 GHz: the per-channel figure used everywhere.
        bpc = gbps_to_bytes_per_cycle(900.0 / 32, 1.4e9)
        assert bpc == pytest.approx(20.089, rel=1e-3)

    def test_cycles_seconds_roundtrip(self):
        seconds = cycles_to_seconds(25_000_000, 1.4e9)
        assert seconds_to_cycles(seconds, 1.4e9) == pytest.approx(25_000_000)

    def test_nonpositive_frequency_rejected(self):
        for fn in (gbps_to_bytes_per_cycle, bytes_per_cycle_to_gbps,
                   cycles_to_seconds, seconds_to_cycles):
            with pytest.raises(ValueError):
                fn(1.0, 0)


class TestPowersOfTwo:
    def test_is_power_of_two(self):
        assert all(is_power_of_two(1 << k) for k in range(20))
        assert not any(is_power_of_two(n) for n in (0, -2, 3, 6, 12, 100))

    def test_log2_int(self):
        assert log2_int(1) == 0
        assert log2_int(4096) == 12

    def test_log2_int_rejects_non_powers(self):
        with pytest.raises(ValueError):
            log2_int(12)
        with pytest.raises(ValueError):
            log2_int(0)
