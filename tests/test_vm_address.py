"""Unit tests for address helpers (repro.vm.address)."""

import pytest

from repro.errors import AddressError
from repro.vm import PAGE_SIZE, VirtualAddress, page_number, page_offset


class TestPageHelpers:
    def test_page_number(self):
        assert page_number(0) == 0
        assert page_number(PAGE_SIZE) == 1
        assert page_number(PAGE_SIZE * 3 + 17) == 3

    def test_page_offset(self):
        assert page_offset(0) == 0
        assert page_offset(PAGE_SIZE + 17) == 17
        assert page_offset(PAGE_SIZE - 1) == PAGE_SIZE - 1

    def test_custom_page_shift(self):
        # 64 KB pages
        assert page_number(0x20000, page_shift=16) == 2
        assert page_offset(0x2ABCD, page_shift=16) == 0xABCD

    def test_negative_address_rejected(self):
        with pytest.raises(AddressError):
            page_number(-1)
        with pytest.raises(AddressError):
            page_offset(-1)


class TestVirtualAddress:
    def test_vpn_and_offset(self):
        va = VirtualAddress(PAGE_SIZE * 5 + 100)
        assert va.vpn == 5
        assert va.offset == 100

    def test_rejects_out_of_space(self):
        with pytest.raises(AddressError):
            VirtualAddress(1 << 48)
        with pytest.raises(AddressError):
            VirtualAddress(-1)

    def test_table_indices_cover_vpn(self):
        va = VirtualAddress.from_vpn(0b101_000000001_000000010_000000011)
        i0, i1, i2, i3 = va.table_indices()
        assert i3 == 0b000000011
        assert i2 == 0b000000010
        assert i1 == 0b000000001
        assert i0 == 0b101

    def test_from_vpn_roundtrip(self):
        for vpn in (0, 1, 12345, (1 << 36) - 1):
            assert VirtualAddress.from_vpn(vpn).vpn == vpn

    def test_indices_are_nine_bits(self):
        va = VirtualAddress((1 << 48) - 1)
        for index in va.table_indices():
            assert 0 <= index < 512
