"""Stateful property-based testing of the GPU driver's frame accounting
(hypothesis RuleBasedStateMachine)."""

import pytest
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.errors import AllocationError
from repro.pagemove import InterleavedPageMapping, PageMoveAddressMapping
from repro.vm import FaultKind, GPUDriver
from tests.strategies import STATE_MACHINE_SETTINGS

PAGES_PER_CHANNEL = 12
CHANNELS = 8


class DriverMachine(RuleBasedStateMachine):
    """Random interleavings of register / fault / reassign / release must
    never corrupt the driver's frame bookkeeping."""

    def __init__(self):
        super().__init__()
        self.driver = GPUDriver(
            pages_per_channel=PAGES_PER_CHANNEL,
            mapping=InterleavedPageMapping(PageMoveAddressMapping()),
        )
        self.mapped = {}          # app_id -> {vpn: rpn}
        self.apps = set()
        self.next_vpn = 0

    # ------------------------------------------------------------------
    # Rules
    # ------------------------------------------------------------------
    @rule(app_id=st.integers(min_value=0, max_value=3),
          channels=st.sets(st.integers(min_value=0, max_value=7),
                           min_size=1, max_size=8))
    def register(self, app_id, channels):
        if app_id in self.apps:
            with pytest.raises(AllocationError):
                self.driver.register_app(app_id, channels)
            return
        self.driver.register_app(app_id, channels)
        self.apps.add(app_id)
        self.mapped[app_id] = {}

    @precondition(lambda self: self.apps)
    @rule(data=st.data())
    def demand_fault(self, data):
        app_id = data.draw(st.sampled_from(sorted(self.apps)))
        vpn = self.next_vpn
        self.next_vpn += 1
        try:
            fault = self.driver.handle_fault(FaultKind.DEMAND, app_id, vpn)
        except AllocationError:
            # Out of frames in every assigned channel: legal terminal state
            # for that app; nothing must have changed.
            return
        self.mapped[app_id][vpn] = fault.rpn
        assert self.driver.channel_of_frame(fault.rpn) == fault.channel
        assert fault.channel in self.driver.assigned_channels(app_id)

    @precondition(lambda self: any(self.mapped.get(a) for a in self.apps))
    @rule(data=st.data())
    def release(self, data):
        candidates = [a for a in sorted(self.apps) if self.mapped[a]]
        app_id = data.draw(st.sampled_from(candidates))
        vpn = data.draw(st.sampled_from(sorted(self.mapped[app_id])))
        rpn = self.mapped[app_id].pop(vpn)
        self.driver.release_page(app_id, rpn)
        self.driver.page_tables[app_id].unmap(vpn)

    @precondition(lambda self: self.apps)
    @rule(data=st.data(),
          channels=st.sets(st.integers(min_value=0, max_value=7),
                           min_size=1, max_size=8))
    def reassign(self, data, channels):
        app_id = data.draw(st.sampled_from(sorted(self.apps)))
        self.driver.reassign_channels(app_id, channels)

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    @invariant()
    def frames_conserved(self):
        """free + resident == capacity, per channel."""
        for channel in range(CHANNELS):
            resident = sum(
                self.driver.resident_pages(app_id, channel)
                for app_id in self.apps
            )
            free = self.driver.free_pages(channel)
            assert free + resident == PAGES_PER_CHANNEL, (
                f"channel {channel}: {free} free + {resident} resident"
            )

    @invariant()
    def no_frame_double_allocated(self):
        seen = set()
        for app_id in self.apps:
            for rpn in self.mapped[app_id].values():
                assert rpn not in seen, f"frame {rpn} owned twice"
                seen.add(rpn)

    @invariant()
    def page_tables_match_shadow(self):
        for app_id in self.apps:
            table = self.driver.page_tables[app_id]
            assert len(table) == len(self.mapped[app_id])
            for vpn, rpn in self.mapped[app_id].items():
                entry = table.lookup(vpn)
                assert entry is not None and entry.rpn == rpn


DriverMachine.TestCase.settings = STATE_MACHINE_SETTINGS
TestDriverStateMachine = DriverMachine.TestCase
