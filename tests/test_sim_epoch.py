"""Unit tests for the epoch runner (repro.sim.epoch)."""

import pytest

from repro.sim import EpochResult, EpochRunner
from repro.sim.epoch import truncate_epochs


def make_result(index, span, migration=0, instructions=None):
    start = index * span
    return EpochResult(
        index=index,
        start_cycle=start,
        end_cycle=start + span,
        instructions=instructions or {},
        migration_cycles=migration,
    )


class TestEpochResult:
    def test_cycles(self):
        r = EpochResult(index=0, start_cycle=100, end_cycle=350)
        assert r.cycles == 250

    def test_migration_fraction(self):
        r = EpochResult(index=0, start_cycle=0, end_cycle=1000, migration_cycles=89)
        assert r.migration_fraction == pytest.approx(0.089)

    def test_migration_fraction_of_empty_epoch_is_zero(self):
        r = EpochResult(index=0, start_cycle=5, end_cycle=5)
        assert r.migration_fraction == 0.0


class TestEpochRunner:
    def test_rejects_nonpositive_epoch_length(self):
        with pytest.raises(ValueError):
            EpochRunner(epoch_cycles=0)

    def test_runs_expected_number_of_epochs(self):
        runner = EpochRunner(epoch_cycles=1000)
        results = runner.run(lambda i, span: make_result(i, span), total_cycles=5000)
        assert len(results) == 5
        assert [r.index for r in results] == [0, 1, 2, 3, 4]

    def test_last_epoch_truncated_to_horizon(self):
        runner = EpochRunner(epoch_cycles=1000)
        spans = []

        def step(i, span):
            spans.append(span)
            return make_result(i, span)

        runner.run(step, total_cycles=2500)
        assert spans == [1000, 1000, 500]

    def test_rejects_nonpositive_horizon(self):
        runner = EpochRunner()
        with pytest.raises(ValueError):
            runner.run(lambda i, s: make_result(i, s), total_cycles=0)

    def test_stop_when_predicate_ends_early(self):
        runner = EpochRunner(epoch_cycles=100)
        results = runner.run(
            lambda i, s: make_result(i, s, migration=50 if i == 2 else 0),
            total_cycles=10_000,
            stop_when=lambda r: r.migration_cycles > 0,
        )
        assert len(results) == 3

    def test_migration_fractions_series(self):
        runner = EpochRunner(epoch_cycles=1000)
        runner.run(
            lambda i, s: make_result(i, s, migration=i * 100),
            total_cycles=3000,
        )
        assert runner.migration_fractions() == [0.0, 0.1, 0.2]

    def test_total_instructions_accumulates_per_app(self):
        runner = EpochRunner(epoch_cycles=10)
        runner.run(
            lambda i, s: make_result(i, s, instructions={"a": 5, "b": i}),
            total_cycles=30,
        )
        assert runner.total_instructions() == {"a": 15, "b": 3}


class TestTruncateEpochs:
    def test_truncates_at_cycle_budget(self):
        results = [make_result(i, 100) for i in range(10)]
        kept = truncate_epochs(results, 350)
        assert len(kept) == 4  # 3 full epochs = 300 < 350, 4th crosses

    def test_empty_input(self):
        assert truncate_epochs([], 100) == []
