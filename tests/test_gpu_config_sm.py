"""Unit tests for GPU configuration and SM models (repro.gpu.config/sm)."""

import pytest

from repro.errors import ConfigError
from repro.gpu import GPUConfig, OccupancyLimits, StreamingMultiprocessor, occupancy


class TestGPUConfig:
    def test_table1_defaults_validate(self):
        GPUConfig().validate()

    def test_table1_headline_numbers(self):
        cfg = GPUConfig()
        assert cfg.num_sms == 80
        assert cfg.num_channels == 32
        assert cfg.llc_size == 6 * 1024 * 1024
        assert cfg.llc_slices == 64
        assert cfg.llc_slices_per_channel == 2
        assert cfg.hbm.total_bandwidth_gbps == 900.0

    def test_channel_bandwidth_per_gpu_cycle(self):
        cfg = GPUConfig()
        # 900/32 GB/s at 1.4 GHz ~ 20.1 bytes per GPU cycle per channel.
        assert cfg.channel_bandwidth_bytes_per_cycle() == pytest.approx(
            900 / 32 * 1e9 / 1.4e9
        )

    def test_page_fault_latency_cycles(self):
        cfg = GPUConfig()
        assert cfg.page_fault_latency_cycles() == pytest.approx(28_000)  # 20us @ 1.4GHz

    def test_inconsistent_warp_geometry_rejected(self):
        with pytest.raises(ConfigError):
            GPUConfig(max_threads_per_sm=1000).validate()

    def test_inconsistent_llc_geometry_rejected(self):
        with pytest.raises(ConfigError):
            GPUConfig(llc_sets_per_slice=50).validate()

    def test_zero_sms_rejected(self):
        with pytest.raises(ConfigError):
            GPUConfig(num_sms=0).validate()


class TestOccupancy:
    def test_thread_limited(self):
        limits = occupancy(GPUConfig(), threads_per_block=256)
        assert limits.blocks_by_threads == 8
        assert limits.blocks == 8
        assert limits.limiter == "threads"

    def test_shared_memory_limited(self):
        limits = occupancy(
            GPUConfig(), threads_per_block=64, shared_mem_per_block=48 * 1024
        )
        assert limits.blocks_by_shared_memory == 2
        assert limits.blocks == 2
        assert limits.limiter == "shared_memory"

    def test_register_limited(self):
        limits = occupancy(
            GPUConfig(), threads_per_block=256, registers_per_thread=128
        )
        assert limits.blocks_by_registers == 2
        assert limits.limiter == "registers"

    def test_block_slot_limited(self):
        limits = occupancy(GPUConfig(), threads_per_block=32)
        assert limits.blocks == 32
        assert limits.limiter == "block_slots"

    def test_oversized_block_rejected(self):
        with pytest.raises(ConfigError):
            occupancy(GPUConfig(), threads_per_block=4096)

    def test_nonpositive_block_rejected(self):
        with pytest.raises(ConfigError):
            occupancy(GPUConfig(), threads_per_block=0)


class TestStreamingMultiprocessor:
    def test_peak_ipc_is_scheduler_width(self):
        sm = StreamingMultiprocessor(GPUConfig())
        assert sm.peak_ipc() == 2.0

    def test_achieved_ipc_latency_bound(self):
        sm = StreamingMultiprocessor(GPUConfig())
        # 8 warps each ready 10% of cycles -> 0.8 IPC.
        assert sm.achieved_ipc(8, 0.1) == pytest.approx(0.8)

    def test_achieved_ipc_saturates_at_peak(self):
        sm = StreamingMultiprocessor(GPUConfig())
        assert sm.achieved_ipc(64, 0.5) == 2.0

    def test_invalid_inputs(self):
        sm = StreamingMultiprocessor(GPUConfig())
        with pytest.raises(ConfigError):
            sm.achieved_ipc(-1, 0.5)
        with pytest.raises(ConfigError):
            sm.achieved_ipc(8, 1.5)

    def test_retire_and_assign(self):
        sm = StreamingMultiprocessor(GPUConfig())
        sm.assign(3)
        sm.retire(1000)
        assert sm.owner == 3
        assert sm.instructions_retired == 1000
        with pytest.raises(ConfigError):
            sm.retire(-1)
