"""Setup shim for environments without the ``wheel`` package.

Allows ``pip install -e . --no-build-isolation --no-use-pep517`` (legacy
editable install) where modern PEP-517 editable installs would require
``bdist_wheel``.  All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
