#!/usr/bin/env python3
"""ASCII dashboard over a telemetry CSV: watch an open-system run settle.

The :mod:`repro.telemetry` CSV sampler appends one row per live metric
series at every epoch boundary.  This script tails that file and renders
the open-system headlines — wait-queue depth, resident jobs, mean
queueing delay, per-epoch fault and event rates — as shared-scale
sparklines via the existing :mod:`repro.analysis.ascii_plot` module.

Produce a series file (the run and the dashboard can share a terminal
or run side by side)::

    python -m repro arrivals --seed 0 --metrics-csv series.csv
    python examples/live_dashboard.py series.csv

Pass ``--follow`` to re-read and re-render every interval while a long
run is still appending (a torn final row from a mid-write read is
skipped, not fatal)::

    python examples/live_dashboard.py series.csv --follow --interval 2

``--once`` renders a single frame and exits — for scripts and CI.
"""

import argparse
import sys
import time

from repro.analysis.ascii_plot import compare_sparklines, sparkline
from repro.telemetry import read_provenance, read_series, series_values


def _deltas(pairs):
    """Per-epoch increments of a cumulative (epoch, value) series."""
    out = []
    previous = 0.0
    for epoch, value in pairs:
        out.append((epoch, value - previous))
        previous = value
    return out


def _sum_over_labels(rows, metric):
    """Collapse a labeled family into one (epoch, total) series."""
    totals = {}
    for row in rows:
        if row.metric == metric:
            totals[row.epoch] = totals.get(row.epoch, 0.0) + row.value
    return sorted(totals.items())


def _mean_series(rows, metric):
    """Cumulative mean of a histogram: ``_sum`` / ``_count`` per epoch."""
    sums = dict(series_values(rows, f"{metric}_sum"))
    counts = dict(series_values(rows, f"{metric}_count"))
    return [
        (epoch, sums[epoch] / counts[epoch])
        for epoch in sorted(sums)
        if counts.get(epoch, 0.0) > 0
    ]


def render(path) -> bool:
    # Tolerant parsing: a live run may be appending while we read, so a
    # torn final row (or an empty line from a mid-write flush) is
    # expected, not an error.
    rows = read_series(path, strict=False)
    if not rows:
        print(f"{path}: no samples yet")
        return False
    provenance = read_provenance(path)
    epochs = sorted({row.epoch for row in rows})
    stamp = " ".join(
        f"{key}={provenance[key]}"
        for key in ("policy", "seed", "git_sha")
        if key in provenance
    )
    print(f"{path}: {len(rows)} samples over {len(epochs)} epochs  {stamp}\n")

    gauges = {
        "wait queue": series_values(rows, "repro_open_wait_queue_depth"),
        "resident": series_values(rows, "repro_open_resident_jobs"),
    }
    gauges = {label: s for label, s in gauges.items() if s}
    if gauges:
        print("open system (gauge per epoch):")
        print(compare_sparklines(
            {label: [v for _, v in s] for label, s in gauges.items()}))
        print()

    delay = _mean_series(rows, "repro_open_queueing_delay_cycles")
    if delay:
        values = [v for _, v in delay]
        print(f"mean queueing delay (cycles, cumulative): "
              f"{sparkline(values)} last={values[-1]:,.0f}")

    rates = {
        "faults/epoch": _deltas(_sum_over_labels(rows, "repro_vm_faults_total")),
        "events/epoch": _deltas(
            series_values(rows, "repro_sim_events_fired_total")),
        "pages/epoch": _deltas(
            _sum_over_labels(rows, "repro_migration_pages_total")),
    }
    rates = {label: s for label, s in rates.items() if s}
    if rates:
        print("\nper-epoch rates (delta of cumulative counters):")
        for label, series in rates.items():
            values = [v for _, v in series]
            print(f"  {label:<13} {sparkline(values)} "
                  f"[{min(values):,.0f}..{max(values):,.0f}]")
    return True


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("csv", help="series file from --metrics-csv")
    parser.add_argument("--follow", action="store_true",
                        help="re-render every --interval seconds")
    parser.add_argument("--once", action="store_true",
                        help="render a single frame and exit (overrides "
                             "--follow; handy for scripts and CI)")
    parser.add_argument("--interval", type=float, default=2.0,
                        help="refresh period in seconds (default: 2)")
    args = parser.parse_args()

    if args.once or not args.follow:
        return 0 if render(args.csv) else 1
    try:
        while True:
            sys.stdout.write("\x1b[2J\x1b[H")  # clear screen, home cursor
            render(args.csv)
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
