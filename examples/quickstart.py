#!/usr/bin/env python3
"""Quickstart: run one heterogeneous workload under BP and UGPU.

Builds the paper's motivating mix — PVC (memory-bound) co-executing with
DXTC (compute-bound) — and compares the balanced-partition baseline
against UGPU's dynamically constructed unbalanced slices.

Run:  python examples/quickstart.py
"""

from repro import BPSystem, UGPUSystem, build_mix


def main() -> None:
    horizon = 25_000_000  # the paper's 25M-cycle simulation window

    # Balanced partitioning (MIG-like): each app gets 40 SMs / 16 channels.
    bp = BPSystem(build_mix(["PVC", "DXTC"]).applications).run(horizon)

    # UGPU: epoch profiling + demand-aware repartitioning + PageMove.
    system = UGPUSystem(build_mix(["PVC", "DXTC"]).applications)
    ugpu = system.run(horizon)

    print("PVC (memory-bound) + DXTC (compute-bound), 25M cycles\n")
    print(f"{'policy':<8} {'STP':>6} {'ANTT':>6}   per-app normalized progress")
    for result in (bp, ugpu):
        nps = ", ".join(
            f"{run.name}={run.normalized_progress:.2f}" for run in result.runs
        )
        print(f"{result.policy:<8} {result.stp:>6.3f} {result.antt:>6.2f}   {nps}")

    print("\nUGPU's final slice sizes:")
    for state in system.apps.values():
        alloc = state.allocation
        print(f"  {state.app.name:<6} {alloc.sms} SMs, {alloc.channels} memory channels")

    gain = ugpu.stp / bp.stp - 1
    print(f"\nSTP gain over BP: {gain:+.1%} "
          f"(paper reports +34.3% on average across 50 heterogeneous mixes)")


if __name__ == "__main__":
    main()
