#!/usr/bin/env python3
"""Cloud GPU scheduler scenario: pick a slicing policy per tenant mix.

A cloud operator receives batches of tenant jobs with different
characteristics and must choose how to share each physical GPU.  This
example sweeps several representative tenant mixes through BP, MPS,
CD-Search and UGPU, then prints the policy ranking per mix — the decision
table a scheduler would consult (paper Sections 6.4-6.7: UGPU when
isolation is required, MPS when sharing is acceptable).

Run:  python examples/cloud_scheduler.py
"""

from repro import (
    BPSystem,
    CDSearchSystem,
    MPSSystem,
    QoSTarget,
    UGPUSystem,
    build_mix,
)

HORIZON = 25_000_000

TENANT_MIXES = {
    "analytics + rendering": ["PVC", "DXTC"],          # strongly heterogeneous
    "two streaming tenants": ["PVC", "LAVAMD"],        # both memory-bound
    "two solver tenants": ["CP", "MRI-Q"],             # both compute-bound
    "mixed four-tenant node": ["PVC", "LBM", "DXTC", "CP"],
}


def evaluate(mix_name, abbrs):
    policies = {
        "BP": BPSystem(build_mix(abbrs).applications),
        "MPS": MPSSystem(build_mix(abbrs).applications),
        "CD-Search": CDSearchSystem(build_mix(abbrs).applications),
        "UGPU": UGPUSystem(build_mix(abbrs).applications),
    }
    return {
        name: system.run(HORIZON, mix_name=mix_name)
        for name, system in policies.items()
    }


def main() -> None:
    print("Cloud slicing decision table (higher STP is better)\n")
    for mix_name, abbrs in TENANT_MIXES.items():
        results = evaluate(mix_name, abbrs)
        ranking = sorted(results.items(), key=lambda kv: -kv[1].stp)
        print(f"{mix_name}  ({'+'.join(abbrs)})")
        for name, result in ranking:
            marker = "  <- pick" if name == ranking[0][0] else ""
            print(f"    {name:<10} STP {result.stp:.3f}  ANTT {result.antt:.2f}"
                  f"  min-NP {result.min_np:.2f}{marker}")
        print()

    # A QoS-sensitive tenant changes the calculus: MPS may win raw STP but
    # cannot guarantee the floor; UGPU can.
    print("QoS-sensitive tenant (DXTC needs 0.75 normalized progress):")
    apps = build_mix(["PVC", "DXTC"]).applications
    qos = UGPUSystem(apps, qos=QoSTarget(app_id=1, target_np=0.75)).run(HORIZON)
    mps = MPSSystem(build_mix(["PVC", "DXTC"]).applications,
                    sm_assignment={1: 60, 0: 20}).run(HORIZON)
    for name, result in (("UGPU+QoS", qos), ("MPS", mps)):
        hp = next(r for r in result.runs if r.name == "DXTC")
        verdict = "meets" if hp.normalized_progress >= 0.73 else "VIOLATES"
        print(f"    {name:<10} high-priority NP {hp.normalized_progress:.2f} "
              f"({verdict} target)  STP {result.stp:.3f}")


if __name__ == "__main__":
    main()
