#!/usr/bin/env python3
"""Generate a Markdown evaluation report with the analysis toolkit.

Sweeps five slicing policies over a workload sample and renders the
comparison as both a terminal table and a Markdown file — the same
machinery EXPERIMENTS.md-style reports are built from.  The sweep fans
out over every CPU core and memoizes results in a local cache directory,
so a re-run reproduces the table from cache without re-simulating.

Run:  python examples/full_report.py [output.md]
"""

import os
import sys

from repro.analysis import compare_policies, format_markdown, format_text
from repro.exec import ResultCache, SweepExecutor
from repro.workloads import heterogeneous_pairs


def main() -> None:
    # A representative sample keeps this example fast; pass all 50 pairs
    # for the full Figure 10 sweep.
    workloads = heterogeneous_pairs()[::5]

    # Registry names let the executor ship jobs to worker processes and
    # memoize each result under a content-addressed key.
    policies = {
        "BP": "bp",
        "MPS": "mps",
        "BP(CD-Search)": "cd-search",
        "UGPU-Ori": "ugpu-ori",
        "UGPU": "ugpu",
    }
    executor = SweepExecutor(
        jobs=os.cpu_count() or 1,
        cache=ResultCache(os.path.join(os.path.dirname(__file__), ".sweep_cache")),
    )
    table, summaries = compare_policies(
        policies, workloads, baseline="BP", total_cycles=25_000_000,
        executor=executor,
    )

    print(format_text(table))
    print()
    gain = summaries["UGPU"].stp_gain_over(summaries["BP"])
    print(f"UGPU mean STP gain over BP: {gain:+.1%} "
          f"(paper: +34.3% over the full 50-mix sweep)")
    print(executor.stats.format())

    if len(sys.argv) > 1:
        with open(sys.argv[1], "w") as handle:
            handle.write(format_markdown(table) + "\n")
        print(f"Markdown report written to {sys.argv[1]}")


if __name__ == "__main__":
    main()
