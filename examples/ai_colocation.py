#!/usr/bin/env python3
"""AI workload co-location (paper Section 6.6).

Pairs each Tango network (AlexNet, ResNet, SqueezeNet, GRU, LSTM) with a
compute-bound benchmark and shows how UGPU adapts slice sizes to the
network's layer phases: channels flow to the memory-hungry fully
connected / recurrent phases and SMs to the convolution phases.

Run:  python examples/ai_colocation.py
"""

from repro import BPSystem, UGPUSystem, build_ai_application, build_application

HORIZON = 25_000_000


def run_pair(model_name: str, partner: str):
    def apps():
        return [
            build_ai_application(model_name, app_id=0),
            build_application(partner, app_id=1),
        ]

    bp = BPSystem(apps()).run(HORIZON)
    system = UGPUSystem(apps())
    ugpu = system.run(HORIZON)
    return bp, ugpu, system


def main() -> None:
    partner = "DXTC"
    print(f"AI networks co-located with {partner} (compute-bound), "
          f"{HORIZON:,} cycles\n")
    print(f"{'network':<12} {'BP STP':>7} {'UGPU STP':>9} {'gain':>7}   "
          f"final AI slice")
    for model_name in ("AlexNet", "ResNet", "SqueezeNet", "GRU", "LSTM"):
        bp, ugpu, system = run_pair(model_name, partner)
        alloc = system.apps[0].allocation
        print(f"{model_name:<12} {bp.stp:>7.3f} {ugpu.stp:>9.3f} "
              f"{ugpu.stp / bp.stp - 1:>+7.1%}   "
              f"{alloc.sms} SMs / {alloc.channels} MCs")

    print("\nWhy: the recurrent networks stream weight matrices every step,"
          "\nso UGPU hands them memory channels; convolution-heavy networks"
          "\nkeep more SMs.  Repartitioning tracks the layer phases online.")


if __name__ == "__main__":
    main()
