#!/usr/bin/env python3
"""PageMove under the microscope: drive the command-level HBM model.

Walks through the mechanics of Section 4 step by step on the detailed
hardware model: the Figure 8 address mapping, idle-TSV detection, the 4x8
crossbar routing, and the MIGRATION command stream of a single page —
then contrasts PageMove's latency with the stock (serialized) design.

Run:  python examples/pagemove_microscope.py
"""

from repro import HBMSystem, MigrationCostModel, MigrationEngine, MigrationMode
from repro.hbm.crossbar import BankGroupCrossbar
from repro.pagemove import InterleavedPageMapping, PageMoveAddressMapping
from repro.vm import FaultKind, GPUDriver, TLB


def show_mapping(mapping: PageMoveAddressMapping, rpn: int) -> None:
    coords = mapping.page_coordinates(rpn)
    print(f"physical page {rpn} (Figure 8 mapping):")
    print(f"  channel index {coords.channel} (same channel of every stack)")
    print(f"  bank {coords.bank}, row {coords.row}, "
          f"columns {coords.column_base}..{coords.column_base + 1}")
    columns = mapping.page_columns(rpn)
    stacks = sorted({c.stack for c in columns})
    groups = sorted({c.bank_group for c in columns})
    print(f"  striped over stacks {stacks} x bank groups {groups} "
          f"= {mapping.slices_per_page} slices of "
          f"{mapping.columns_per_slice * 128} B")
    print(f"  => {mapping.migrations_per_page} MIGRATION commands per page, "
          f"at most {mapping.serialized_migrations_per_bank_group} serialized "
          f"per bank group\n")


def migrate_with_hardware(width: int) -> int:
    """Page migration latency (memory clocks) with a given crossbar width."""
    mapping = PageMoveAddressMapping()
    driver = GPUDriver(pages_per_channel=32,
                       mapping=InterleavedPageMapping(mapping))
    engine = MigrationEngine(driver, mapping=mapping)
    system = HBMSystem()
    if width != system.config.channels_per_stack:
        for stack in system.stacks:
            stack.crossbars = [
                BankGroupCrossbar(system.config.bank_groups_per_channel,
                                  system.config.channels_per_stack, width=width)
                for _ in range(system.config.channels_per_stack)
            ]
    return engine.execute_page_on_hardware(system, src_rpn=0, dst_channel=1)


def main() -> None:
    mapping = PageMoveAddressMapping()
    show_mapping(mapping, rpn=12345)

    print("one-page migration latency on the command-level model:")
    ppmm = migrate_with_hardware(width=8)
    stock = migrate_with_hardware(width=1)
    cfg = HBMSystem().config
    print(f"  PageMove (4x8 crossbar): {ppmm} memory clocks "
          f"(~{cfg.to_gpu_cycles(ppmm):.0f} GPU cycles)")
    print(f"  stock 4x1 crossbar:      {stock} memory clocks "
          f"({stock / ppmm:.1f}x slower)\n")

    cost = MigrationCostModel(mapping=mapping)
    print("per-page costs the epoch simulation charges:")
    for mode in MigrationMode:
        print(f"  {mode.value:<12} {cost.page_cycles(mode):7.0f} GPU cycles, "
              f"{cost.commands_per_page(mode):3d} DRAM data commands")

    # End-to-end: a channel changes hands and the VM layer stays coherent.
    print("\nchannel reallocation walkthrough (8 pages, channel 3 -> {0,1}):")
    driver = GPUDriver(pages_per_channel=32,
                       mapping=InterleavedPageMapping(mapping))
    engine = MigrationEngine(driver, mapping=mapping,
                             l1_tlbs=[TLB.l1() for _ in range(4)])
    driver.register_app(0, channels=[0, 1, 3])
    for vpn in range(8):
        driver.handle_fault(FaultKind.DEMAND, 0, vpn, target_channel=3)
    plan = engine.plan_channel_reallocation(0, new_channels=[0, 1])
    report = engine.execute(plan)
    table = driver.page_tables[0]
    print(f"  eager migrations: {len(plan.eager)}  "
          f"(window {report.eager_charge.window_cycles:.0f} GPU cycles)")
    print(f"  resident pages per channel now: {table.channel_page_counts()}")
    print(f"  channel 3 frames returned to the free list: "
          f"{driver.free_pages(3) == 32}")


if __name__ == "__main__":
    main()
