#!/usr/bin/env python3
"""Memory-oversubscribed tenant: channels carry capacity.

The paper excludes oversubscribed workloads from its evaluation but
states the expected behaviour (Sections 3.2, 5): a tenant whose working
set exceeds its allocated memory is classified memory-bound, and the
extra channels UGPU grants it bring *capacity* along with bandwidth,
cutting the 20 us far-fault overhead.  This example sweeps the working
set on a 16 GB GPU and shows the effect.

Run:  python examples/oversubscribed_tenant.py
"""

from repro import BPSystem, UGPUSystem
from repro.gpu import Application, Kernel
from repro.units import GB

TOTAL_MEMORY = 16 * GB
HORIZON = 25_000_000


def hog(footprint_gb: float) -> Application:
    return Application(0, "HOG", [Kernel(
        name="scan", ipc_per_sm=64.0, apki_llc=6.0, llc_hit_rate=0.25,
        footprint_bytes=int(footprint_gb * GB), instructions=6_000_000_000,
    )])


def tiny() -> Application:
    return Application(1, "TINY", [Kernel(
        name="solve", ipc_per_sm=64.0, apki_llc=1.2, llc_hit_rate=0.9997,
        footprint_bytes=20 * 1024 * 1024, instructions=6_000_000_000,
    )])


def main() -> None:
    print("16 GB GPU; HOG co-runs with a tiny compute tenant.")
    print("Even split gives HOG 8 GB of capacity.\n")
    print(f"{'working set':>12} {'BP STP':>8} {'UGPU STP':>9} {'gain':>9}"
          f"   HOG slice")
    for footprint in (4, 8, 10, 12, 14):
        bp = BPSystem([hog(footprint), tiny()],
                      total_memory_bytes=TOTAL_MEMORY).run(HORIZON)
        system = UGPUSystem([hog(footprint), tiny()],
                            total_memory_bytes=TOTAL_MEMORY)
        ugpu = system.run(HORIZON)
        alloc = system.apps[0].allocation
        capacity_gb = 16 * alloc.channels / 32
        print(f"{footprint:>10}GB {bp.stp:>8.3f} {ugpu.stp:>9.3f} "
              f"{ugpu.stp / bp.stp - 1:>+9.1%}   "
              f"{alloc.sms} SMs / {alloc.channels} MCs "
              f"(= {capacity_gb:.0f} GB)")

    print("\nReading the table: once the working set exceeds 8 GB, BP's")
    print("fixed half-capacity thrashes through 20 us far-faults while")
    print("UGPU's channel grant makes the set fit — until even 24")
    print("channels (12 GB) are not enough and both policies degrade.")


if __name__ == "__main__":
    main()
