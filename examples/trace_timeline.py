#!/usr/bin/env python3
"""Tracing a reallocation: the time-resolved view behind Figures 11-16.

The end-of-run aggregates (STP, ANTT) say *how much* UGPU gains; the
trace layer says *when* and *why*: which epoch repartitioned, what each
migration window cost, how the driver's fault mix breaks down, and where
QoS enforcement intervened.  This walkthrough:

1. runs a UGPU mix with a :class:`repro.trace.TraceRecorder` attached
   and prints an ASCII epoch timeline from the ``epoch``/``realloc``
   events;
2. drives the page-level :class:`~repro.pagemove.MigrationEngine` with
   the same recorder to capture ``migration`` plans and ``fault``
   records;
3. exports everything as JSONL plus a Chrome-trace file that loads in
   chrome://tracing or https://ui.perfetto.dev.

Run:  python examples/trace_timeline.py
"""

from repro import UGPUSystem, build_mix
from repro.pagemove import InterleavedPageMapping, MigrationEngine, PageMoveAddressMapping
from repro.trace import TraceRecorder, summarize, write_chrome_trace, write_jsonl
from repro.vm import FaultKind, GPUDriver


def epoch_timeline(recorder: TraceRecorder) -> None:
    """One row per epoch: bandwidth of the migration stall, R = realloc."""
    realloc_epochs = {
        e.args["epoch"] for e in recorder.events("realloc") if e.name == "apply"
    }
    print("epoch timeline (| = 10% of the epoch spent in migration windows):")
    for event in recorder.events("epoch"):
        index = int(event.name.split("[")[1].rstrip("]"))
        stall = event.args["migration_cycles"] / max(1.0, event.duration)
        bar = "|" * round(stall * 10)
        mark = "R" if index in realloc_epochs else " "
        print(f"  epoch {index:>2} {mark} [{bar:<10}] "
              f"stall {stall:5.1%}  instr {event.args['instructions']:,}")


def system_level(recorder: TraceRecorder) -> None:
    apps = build_mix(["PVC", "DXTC"]).applications
    system = UGPUSystem(apps, tracer=recorder)
    result = system.run(25_000_000, mix_name="PVC_DXTC")
    print(f"UGPU on PVC_DXTC: STP {result.stp:.3f}, "
          f"{result.repartitions} repartition(s)\n")
    epoch_timeline(recorder)


def page_level(recorder: TraceRecorder) -> None:
    """The same recorder captures driver faults and migration plans."""
    mapping = PageMoveAddressMapping()
    driver = GPUDriver(pages_per_channel=32,
                       mapping=InterleavedPageMapping(mapping),
                       tracer=recorder)
    engine = MigrationEngine(driver, mapping=mapping, tracer=recorder)
    driver.register_app(0, channels=[0, 1, 3])
    for vpn in range(8):
        driver.handle_fault(FaultKind.DEMAND, 0, vpn, target_channel=3)
    plan = engine.plan_channel_reallocation(0, new_channels=[0, 1])
    engine.execute(plan)
    plan_event = recorder.events("migration")[-2]
    print(f"\npage-level: planned eager={plan_event.args['eager']} "
          f"lazy={plan_event.args['lazy']} "
          f"(lost channels {plan_event.args['lost_channels']})")
    kinds = {}
    for event in recorder.events("fault"):
        kinds[event.name] = kinds.get(event.name, 0) + 1
    print(f"driver fault mix: {kinds}")


def main() -> None:
    recorder = TraceRecorder()
    system_level(recorder)
    page_level(recorder)

    events = recorder.events()
    write_jsonl(events, "trace_timeline.jsonl")
    write_chrome_trace(events, "trace_timeline.chrome.json")
    print(f"\nexported {len(events)} events to trace_timeline.jsonl and "
          "trace_timeline.chrome.json (open in Perfetto)")
    print(f"\n{summarize(events).format()}")


if __name__ == "__main__":
    main()
