"""S2 — MIGRATION latency validation (paper Section 4.5).

Drives the command-level HBM model through whole-page migrations and
checks the paper's arithmetic:

* one 4 KB page costs 32 MIGRATION commands (2 per bank group x 4 bank
  groups x 4 stacks);
* one MIGRATION completes within 50 memory clocks (= 40 GPU cycles at the
  1.25x clock ratio);
* PPMM's four-bank-group parallelism keeps the whole-page latency near
  2 x tMIG instead of 32 x tMIG;
* the analytic cost model used by the epoch simulation agrees with the
  command-level result.
"""

import pytest
from conftest import print_series

from repro import HBMSystem, MigrationCostModel, MigrationEngine, MigrationMode
from repro.pagemove import InterleavedPageMapping, PageMoveAddressMapping
from repro.vm import GPUDriver


def make_engine():
    mapping = PageMoveAddressMapping()
    driver = GPUDriver(pages_per_channel=64,
                       mapping=InterleavedPageMapping(mapping))
    return MigrationEngine(driver, mapping=mapping), mapping


def test_migration_command_count_and_latency(benchmark):
    engine, mapping = make_engine()

    def migrate_one_page():
        system = HBMSystem()
        done = engine.execute_page_on_hardware(system, src_rpn=0,
                                               dst_channel=1, now=0)
        return system, done

    system, done = benchmark(migrate_one_page)
    timing = system.config.timing
    stats = system.stats()

    ideal_serial = 32 * timing.tMIG          # no parallelism
    ppmm_data = 2 * timing.tMIG              # per-bank-group serialization

    print_series("Section 4.5: one-page migration on the command-level model", [
        ("MIGRATION commands", stats["migrations_completed"], "(paper: 32)"),
        ("tMIG (memory clocks)", timing.tMIG, "(paper: < 50)"),
        ("MIGRATION in GPU cycles",
         f"{system.config.migration_gpu_cycles_per_command():.0f}",
         "(paper: ~40)"),
        ("page latency (memory clocks)", done,
         f"(PPMM data time {ppmm_data}, serial would be {ideal_serial})"),
    ])

    assert stats["migrations_completed"] == 32
    assert system.config.migration_gpu_cycles_per_command() == pytest.approx(40)
    # PPMM: far below a serialized design, within a few x of the data time
    # (activations + command-bus skew account for the rest).
    assert done < ideal_serial / 4
    assert done >= ppmm_data


def test_cost_model_matches_command_level(benchmark):
    """The analytic per-page PPMM cost used by the epoch simulation stays
    within 2x of the command-level steady-state cost."""
    engine, mapping = make_engine()
    cost = MigrationCostModel(mapping=mapping)

    def steady_state_pages(n=8):
        system = HBMSystem()
        start = 0
        for page in range(n):
            start = engine.execute_page_on_hardware(
                system, src_rpn=page * 8, dst_channel=1, now=start
            )
        return start / n

    per_page_mem_clocks = benchmark(steady_state_pages)
    analytic_gpu = cost.page_cycles(MigrationMode.PPMM)
    measured_gpu = HBMSystem().config.to_gpu_cycles(per_page_mem_clocks)
    print(f"\n  analytic {analytic_gpu:.0f} GPU cycles/page, "
          f"command-level {measured_gpu:.0f}")
    # The analytic model charges only the serialized column copies; the
    # command-level run adds row activations and command-bus skew (not
    # pipelined across pages here), so it may run up to ~4x the data time.
    assert analytic_gpu / 2 <= measured_gpu <= analytic_gpu * 4


def test_migration_does_not_interrupt_demand_traffic(benchmark):
    """MIGRATION executes without occupying the channels' external data
    buses, so demand reads proceed at full speed during a migration."""
    from repro.hbm import MemoryRequest, RequestKind

    def interleave():
        engine, mapping = make_engine()
        system = HBMSystem()
        # Saturate channel 2 of stack 0 with demand reads.
        controller = system.controller(system.global_channel_id(0, 2))
        for i in range(32):
            controller.enqueue(MemoryRequest(
                kind=RequestKind.READ, bank_group=i % 4, bank=0,
                row=0, column=i % 16, arrival=0))
        controller.drain()
        baseline_bw = controller.achieved_bandwidth_gbps()
        # Re-run with a concurrent migration between channels 0 and 1.
        engine2, _ = make_engine()
        system2 = HBMSystem()
        engine2.execute_page_on_hardware(system2, src_rpn=0, dst_channel=1)
        controller2 = system2.controller(system2.global_channel_id(0, 2))
        for i in range(32):
            controller2.enqueue(MemoryRequest(
                kind=RequestKind.READ, bank_group=i % 4, bank=0,
                row=0, column=i % 16, arrival=0))
        controller2.drain()
        return baseline_bw, controller2.achieved_bandwidth_gbps()

    baseline, with_migration = benchmark(interleave)
    print(f"\n  channel 2 bandwidth: {baseline:.1f} GB/s alone, "
          f"{with_migration:.1f} GB/s during migration")
    assert with_migration == pytest.approx(baseline, rel=0.01)
