"""Extension E3 — fleet-scale placement under arrival/departure dynamics.

The papers the placement zoo is grounded in evaluate at datacenter
scale: hundreds of accelerators, thousands of arriving/departing jobs.
This bench runs that scenario — a 200-node fleet, ~10k jobs from one
seeded Poisson stream — under every placement policy, and checks the
orderings the source papers report:

* fragmentation-aware packing (Ting et al.) strands no more slots than
  class-blind first-fit;
* the consolidating manager (Saraha et al.) concentrates load on fewer
  active nodes, which is where its energy saving comes from;
* sharding node execution over worker processes is byte-identical to the
  serial run (the tentpole invariant, at acceptance scale).
"""

import pytest
from conftest import print_series

from repro.cluster import FleetSimulator, PlacementPolicy
from repro.exec import SweepExecutor
from repro.workloads import poisson_arrivals

#: ~10k jobs over the horizon: 400M cycles / 40k mean inter-arrival.
FLEET_NODES = 200
FLEET_HORIZON = 400_000_000
MEAN_INTERARRIVAL = 40_000
ROUND = 2_500_000
IPK = 50_000_000


def fleet_schedule():
    return poisson_arrivals(MEAN_INTERARRIVAL, FLEET_HORIZON, seed=0,
                            instructions_per_kernel=IPK)


def run_fleet(placement, executor=None, schedule=None):
    return FleetSimulator(
        FLEET_NODES,
        schedule if schedule is not None else fleet_schedule(),
        placement,
        round_cycles=ROUND,
        horizon_cycles=FLEET_HORIZON,
        instructions_per_kernel=IPK,
        executor=executor,
    ).run()


def test_fleet_policy_shootout(benchmark):
    schedule = fleet_schedule()
    assert len(schedule) > 9_000  # genuinely fleet-scale

    def shootout():
        return {
            policy: run_fleet(policy, schedule=schedule)
            for policy in PlacementPolicy
        }

    results = benchmark.pedantic(shootout, rounds=1, iterations=1)
    print_series(
        "fleet: 200 nodes, ~10k jobs, one seeded stream",
        [("policy", "stp", "antt", "frag", "active", "energy_J")] + [
            (p.value, round(r.stp, 3), round(r.antt, 3),
             round(r.fragmentation, 4), round(r.mean_active_nodes, 1),
             round(r.energy.total, 1) if r.energy else "-")
            for p, r in results.items()
        ],
    )
    for result in results.values():
        assert result.departures > 9_000    # the fleet keeps up
    frag_aware = results[PlacementPolicy.FRAG_AWARE]
    first_fit = results[PlacementPolicy.FIRST_FIT]
    consolidate = results[PlacementPolicy.CONSOLIDATE]
    assert frag_aware.fragmentation <= first_fit.fragmentation * 1.001
    assert consolidate.mean_active_nodes <= first_fit.mean_active_nodes
    assert consolidate.energy is not None and consolidate.energy.total > 0


def test_fleet_sharded_matches_serial_at_scale(benchmark):
    """Acceptance: the 200-node/10k-job run completes sharded over a
    persistent worker pool byte-identical to the serial run."""
    schedule = fleet_schedule()
    serial = run_fleet(PlacementPolicy.CONSOLIDATE, schedule=schedule)

    def sharded_run():
        with SweepExecutor(jobs=2) as executor:
            return run_fleet(PlacementPolicy.CONSOLIDATE, executor=executor,
                             schedule=schedule)

    sharded = benchmark.pedantic(sharded_run, rounds=1, iterations=1)
    assert sharded.runs == serial.runs
    assert sharded.summary() == serial.summary()
    assert sharded.energy == serial.energy
    assert sharded.shard_runs > serial.shard_runs  # it really fanned out
