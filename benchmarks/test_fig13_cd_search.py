"""F13 — Figure 13: comparison against BP (CD-Search).

CD-Search reallocates only SMs across BP instances.  Paper headlines:

* BP (CD-Search) improves STP by 11.2% over BP;
* UGPU beats BP (CD-Search) by 22.4% STP / 43.6% ANTT by also moving
  memory channels;
* the advantage grows with four-program workloads (25.4% / 56.1%).
"""

import statistics

import pytest
from conftest import mean_antt_gain, mean_gain, print_series, sweep_policy

from repro import BPSystem, CDSearchSystem, UGPUSystem, build_mix
from repro.workloads import four_program_mixes


@pytest.fixture(scope="module")
def two_program():
    return {p: sweep_policy(p) for p in ("BP", "CD", "UGPU")}


def test_fig13_two_program_comparison(benchmark, two_program):
    def summarize():
        bp = two_program["BP"]
        return {
            "cd_vs_bp": mean_gain(two_program["CD"], bp),
            "ugpu_vs_cd": mean_gain(two_program["UGPU"], two_program["CD"]),
            "ugpu_antt_vs_cd": mean_antt_gain(two_program["UGPU"], two_program["CD"]),
        }

    gains = benchmark(summarize)
    print_series("Figure 13: two-program workloads", [
        ("BP(CD-Search) vs BP STP", f"{gains['cd_vs_bp']:+.1%}  (paper +11.2%)"),
        ("UGPU vs BP(CD-Search) STP", f"{gains['ugpu_vs_cd']:+.1%}  (paper +22.4%)"),
        ("UGPU vs BP(CD-Search) ANTT", f"{gains['ugpu_antt_vs_cd']:+.1%}  (paper +43.6%)"),
    ])
    # SM-only reallocation helps...
    assert 0.05 < gains["cd_vs_bp"] < 0.25
    # ...but moving channels too buys a further improvement.
    assert gains["ugpu_vs_cd"] > 0.03
    assert gains["ugpu_antt_vs_cd"] > 0.0


def test_fig13_four_program_advantage(benchmark):
    """With four programs the reallocation space grows and UGPU's edge
    over SM-only reallocation widens (paper: 25.4% STP)."""
    mixes = four_program_mixes(count=12)

    def run_all():
        out = []
        for mix in mixes:
            cd = CDSearchSystem(build_mix(mix.abbrs).applications).run()
            ugpu = UGPUSystem(build_mix(mix.abbrs).applications).run()
            out.append((cd, ugpu))
        return out

    pairs = benchmark.pedantic(run_all, rounds=1, iterations=1)
    gain = statistics.fmean(u.stp / c.stp - 1 for c, u in pairs)
    print(f"\n  UGPU vs BP(CD-Search), 4-program: {gain:+.1%} (paper +25.4%)")
    assert gain > 0.05
