"""Ablation A2 — PPMM crossbar width.

How much of PageMove's speed comes from the fully connected 4x8 crossbar?
Sweeps the per-die crossbar width on the command-level model: width 1 is
the stock design (one bank-group transfer at a time per die), width 8 is
PageMove's fully connected crossbar.
"""

import pytest
from conftest import print_series

from repro import HBMSystem, MigrationEngine
from repro.hbm.crossbar import BankGroupCrossbar
from repro.pagemove import InterleavedPageMapping, PageMoveAddressMapping
from repro.vm import GPUDriver


def migrate_page_with_width(width: int) -> int:
    """One-page migration latency (memory clocks) with constrained
    crossbars."""
    mapping = PageMoveAddressMapping()
    engine = MigrationEngine(
        GPUDriver(pages_per_channel=16, mapping=InterleavedPageMapping(mapping)),
        mapping=mapping,
    )
    system = HBMSystem()
    for stack in system.stacks:
        stack.crossbars = [
            BankGroupCrossbar(
                system.config.bank_groups_per_channel,
                system.config.channels_per_stack,
                width=width,
            )
            for _ in range(system.config.channels_per_stack)
        ]
    return engine.execute_page_on_hardware(system, src_rpn=0, dst_channel=1)


def test_crossbar_width_sweep(benchmark):
    def sweep():
        return {width: migrate_page_with_width(width) for width in (1, 2, 4, 8)}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_series(
        "Ablation: per-die crossbar width vs one-page migration latency "
        "(memory clocks)",
        [(w, cycles) for w, cycles in results.items()],
    )
    # Wider crossbars monotonically reduce migration time...
    widths = sorted(results)
    for narrow, wide in zip(widths, widths[1:]):
        assert results[wide] <= results[narrow]
    # ...and the fully connected crossbar clearly beats the stock
    # single-route design (4 bank groups -> up to ~4x on the data time).
    assert results[1] >= 2.0 * results[8]
    # Width 4 already captures the full benefit: only 4 bank groups exist.
    assert results[4] == results[8]
