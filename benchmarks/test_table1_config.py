"""T1 — Table 1: the simulated GPU architecture.

Regenerates the configuration table and checks every row against the
paper's published values.
"""

from conftest import print_series

from repro import GPUConfig


def test_table1_simulated_architecture(benchmark):
    config = benchmark(GPUConfig)
    config.validate()

    rows = [
        ("No. SMs", config.num_sms, "80 SMs"),
        ("SM frequency", f"{config.sm_freq_ghz} GHz", "1.4 GHz"),
        ("SIMT width", config.simt_width, 32),
        ("Max threads/SM", config.max_threads_per_sm, 2048),
        ("Warps/SM", config.max_warps_per_sm, 64),
        ("Warp schedulers/SM", config.warp_schedulers_per_sm, 2),
        ("Shared memory/SM", f"{config.shared_memory_per_sm // 1024} KB", "96 KB"),
        ("L1D size", f"{config.l1d_size // 1024} KB", "48 KB"),
        ("L1D geometry", f"{config.l1d_ways}-way, {config.l1d_sets} sets", "6-way, 64 sets"),
        ("L1D MSHRs", config.l1d_mshr_entries, 128),
        ("L1 TLB entries", config.l1_tlb_entries, 64),
        ("LLC size", f"{config.llc_size // (1024 * 1024)} MB", "6 MB"),
        ("LLC slices", config.llc_slices, 64),
        ("LLC geometry", f"{config.llc_ways}-way, {config.llc_sets_per_slice} sets", "16-way, 48 sets"),
        ("LLC latency", f"{config.llc_latency_cycles} cycles", "120 cycles"),
        ("L2 TLB", f"{config.l2_tlb_entries} entries, {config.l2_tlb_ways}-way", "512, 16-way"),
        ("NoC", f"{config.noc_ports_sm}x{config.noc_ports_mem} crossbar, "
                f"{config.noc_channel_bytes} B channels", "80x64, 32 B"),
        ("Memory stacks", config.hbm.num_stacks, 4),
        ("Channels/stack", config.hbm.channels_per_stack, 8),
        ("Bank groups/channel", config.hbm.bank_groups_per_channel, 4),
        ("Banks/group", config.hbm.banks_per_group, 4),
        ("Queue entries", config.hbm.queue_entries, 64),
        ("Memory frequency", f"{config.hbm.freq_mhz} MHz", "440 MHz"),
        ("Total bandwidth", f"{config.hbm.total_bandwidth_gbps} GB/s", "900 GB/s"),
        ("PTW threads", config.ptw_threads, 64),
        ("Page table levels", config.page_table_levels, 4),
    ]
    print_series("Table 1: simulated GPU architecture", rows)

    # Every 'measured' column must equal the paper column.
    assert config.num_sms == 80
    assert config.sm_freq_ghz == 1.4
    assert config.max_threads_per_sm == 2048
    assert config.llc_size == 6 * 1024 * 1024
    assert config.llc_slices == 64
    assert config.hbm.num_stacks == 4
    assert config.hbm.channels_per_stack == 8
    assert config.hbm.total_bandwidth_gbps == 900.0
    assert config.hbm.queue_entries == 64


def test_table1_hbm_timing(benchmark):
    timing = benchmark(lambda: GPUConfig().hbm.timing)
    rows = [(name, getattr(timing, name)) for name in (
        "tRC", "tRCD", "tRP", "tCL", "tWL", "tRAS", "tRRDl", "tRRDs",
        "tFAW", "tRTP", "tCCDl", "tCCDs", "tWTRl", "tWTRs",
    )]
    print_series("Table 1: HBM timing (memory clocks)", rows)
    expected = dict(tRC=47, tRCD=14, tRP=14, tCL=14, tWL=2, tRAS=33,
                    tRRDl=6, tRRDs=4, tFAW=20, tRTP=4, tCCDl=2, tCCDs=1,
                    tWTRl=8, tWTRs=3)
    for name, value in expected.items():
        assert getattr(timing, name) == value, name
