"""Ablation A4 — SM handover policy: drain vs. switch vs. adaptive.

The paper adopts draining when a thread block completes within the epoch
and switching otherwise (Section 3.3).  This bench quantifies both costs
across block durations and shows the adaptive rule always picks the
cheaper mechanism.
"""

import pytest
from conftest import print_series

from repro import GPUConfig
from repro.core import SMPolicy, SMReallocator

EPOCH = 5_000_000
TB_DURATIONS = (50_000, 200_000, 1_000_000, 5_000_000, 20_000_000)


def test_drain_vs_switch_cost_crossover(benchmark):
    reallocator = SMReallocator(GPUConfig())

    def sweep():
        out = {}
        for tb in TB_DURATIONS:
            drain = reallocator.drain_cost(8, tb).cycles
            switch = reallocator.switch_cost(8, channels_available=16).cycles
            adaptive = reallocator.cost(8, tb, EPOCH, 16)
            out[tb] = (drain, switch, adaptive.policy, adaptive.cycles)
        return out

    results = benchmark(sweep)
    rows = [("TB cycles", "drain cost", "switch cost", "adaptive")]
    for tb, (drain, switch, policy, cycles) in results.items():
        rows.append((f"{tb:,}", f"{drain:,.0f}", f"{switch:,.0f}",
                     f"{policy.value} ({cycles:,.0f})"))
    print_series("Ablation: SM handover policy (8 SMs, 16 channels)", rows)

    # Draining wins for short blocks; switching for very long ones.
    short = results[50_000]
    long = results[20_000_000]
    assert short[0] < short[1]           # drain cheaper
    assert long[0] > long[1]             # switch cheaper
    # The adaptive rule follows the epoch boundary.
    for tb, (drain, switch, policy, cycles) in results.items():
        expected = SMPolicy.DRAIN if tb <= EPOCH else SMPolicy.SWITCH
        assert policy is expected


def test_switch_cost_scales_with_available_bandwidth(benchmark):
    reallocator = SMReallocator(GPUConfig())

    def sweep():
        return {m: reallocator.switch_cost(8, channels_available=m).cycles
                for m in (4, 8, 16, 32)}

    costs = benchmark(sweep)
    print_series("Switch cost by channel count (8 SMs)",
                 [(m, f"{c:,.0f}") for m, c in costs.items()])
    # Twice the channels, half the context-copy time (above the fixed
    # preemption overhead).
    fixed = SMReallocator(GPUConfig()).switch_fixed_cycles
    assert costs[8] - fixed == pytest.approx((costs[16] - fixed) * 2)
    assert costs[4] - fixed == pytest.approx((costs[32] - fixed) * 8)
