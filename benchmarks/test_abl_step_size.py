"""Ablation A3 — reallocation step size.

The paper's algorithm moves resources in fixed steps each iteration.
Sweeps the SM step: tiny steps converge slowly (may hit the iteration
cap); huge steps overshoot the balance point.
"""

import pytest
from conftest import HORIZON, print_series

from repro import BPSystem, UGPUSystem, build_mix


def test_sm_step_sweep(benchmark):
    def sweep():
        bp = BPSystem(build_mix(["PVC", "DXTC"]).applications).run(HORIZON)
        out = {}
        for step in (2, 4, 8, 16):
            apps = build_mix(["PVC", "DXTC"]).applications
            result = UGPUSystem(apps, sm_step=step).run(HORIZON)
            out[step] = (result.stp / bp.stp - 1, result.repartitions)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [("sm_step", "STP gain vs BP", "repartitions")]
    for step, (gain, reparts) in results.items():
        rows.append((step, f"{gain:+.1%}", reparts))
    print_series("Ablation: SM reallocation step size (PVC_DXTC)", rows)

    # All step sizes improve on BP for a strongly heterogeneous pair.
    assert all(gain > 0.05 for gain, _ in results.values())
    # The default (4) is within a few points of the best.
    best = max(gain for gain, _ in results.values())
    assert results[4][0] > best - 0.08


def test_iteration_cap_binds_only_tiny_steps(benchmark):
    """With a 20-iteration cap, a 2-SM step may stop short of balance
    while an 8-SM step converges comfortably."""
    from repro.core import DemandAwarePartitioner, PartitionState
    from repro.core.profiler import AppProfile, EpochProfiler
    from repro.gpu import GPUConfig

    config = GPUConfig()
    profiler = EpochProfiler(config)

    def profile(app_id, apki, hit):
        return AppProfile(
            app_id=app_id, ipc_max_per_sm=64.0, apki_llc=apki,
            llc_hit_rate=hit,
            bw_demand_per_sm=profiler.bw_demand_per_sm(64.0, apki),
            bw_supply_per_mc=profiler.bw_supply_per_mc(hit),
        )

    profiles = {0: profile(0, 6.4, 0.25), 1: profile(1, 1.2, 0.9997)}

    def iterations_for(step):
        partitioner = DemandAwarePartitioner(
            PartitionState.even([0, 1]), sm_step=step, gpu_config=config
        )
        return partitioner.compute(profiles).iterations

    counts = benchmark(lambda: {s: iterations_for(s) for s in (2, 4, 8)})
    print_series("Iterations to converge by step size", list(counts.items()))
    assert counts[2] >= counts[4] >= counts[8]
