"""F4 — Figure 4: system performance of a heterogeneous workload
(PVC_DXTC) as resources are redistributed.

The x/y axes give the memory-bound application's share; the compute-bound
application gets the remainder.  The paper's message: starting from the
even partition, moving SMs to the compute-bound app and channels to the
memory-bound app raises system performance; the opposite direction lowers
it.
"""

import pytest
from conftest import print_series

from repro import GPUConfig, PerformanceModel, build_application


@pytest.fixture(scope="module")
def setup():
    model = PerformanceModel(GPUConfig())
    pvc = build_application("PVC").kernels[0]
    dxtc = build_application("DXTC").kernels[0]
    alone = {
        "PVC": model.throughput(pvc, 80, 32).ipc,
        "DXTC": model.throughput(dxtc, 80, 32).ipc,
    }
    return model, pvc, dxtc, alone


def stp_at(model, pvc, dxtc, alone, pvc_sms, pvc_mcs):
    a = model.throughput(pvc, pvc_sms, pvc_mcs).ipc / alone["PVC"]
    b = model.throughput(dxtc, 80 - pvc_sms, 32 - pvc_mcs).ipc / alone["DXTC"]
    return a + b


def test_fig4_resource_distribution_surface(benchmark, setup):
    model, pvc, dxtc, alone = setup

    def sweep():
        grid = {}
        for sms in (12, 20, 28, 36, 40, 44, 52, 60):
            for mcs in (8, 12, 16, 20, 24, 28):
                grid[(sms, mcs)] = stp_at(model, pvc, dxtc, alone, sms, mcs)
        return grid

    grid = benchmark(sweep)
    rows = [("PVC SMs \\ MCs",) + (8, 12, 16, 20, 24, 28)]
    for sms in (12, 20, 28, 36, 40, 44, 52, 60):
        rows.append((sms,) + tuple(
            f"{grid[(sms, mcs)]:.2f}" for mcs in (8, 12, 16, 20, 24, 28)
        ))
    print_series("Figure 4: STP vs resources given to PVC", rows)

    even = grid[(40, 16)]
    best = max(grid.values())
    best_point = max(grid, key=grid.get)

    # Fewer SMs + more MCs for the memory-bound app beats the even split.
    assert grid[(28, 24)] > even
    # The optimum is unbalanced: PVC holds fewer SMs and more channels
    # than its even share.
    assert best_point[0] < 40
    assert best_point[1] > 16
    assert best > 1.25 * even
    # The opposite direction (more SMs, fewer MCs to the memory-bound
    # app) degrades system performance.
    assert grid[(52, 12)] < even
    assert grid[(60, 8)] < even
