"""F12a — Figure 12(a): fraction of each epoch spent on resource
reallocation (SM migration plus data migration).

Paper: applications keep executing during reallocation; the combined
SM + data migration occupies 8.9% of an epoch on average and 19.5% in the
worst case, thanks to PageMove's fast migration.
"""

import statistics

import pytest
from conftest import print_series, sweep_policy


@pytest.fixture(scope="module")
def results():
    return sweep_policy("UGPU")


def test_fig12a_migration_time_fraction(benchmark, results):
    def collect():
        fractions = []
        for result in results:
            fractions.extend(result.migration_fractions())
        return fractions

    fractions = benchmark(collect)
    nonzero = [f for f in fractions if f > 0]
    mean_all = statistics.fmean(fractions)
    worst = max(fractions)
    print_series("Figure 12(a): per-epoch reallocation occupancy", [
        ("epochs observed", len(fractions)),
        ("epochs with reallocation", len(nonzero)),
        ("mean fraction", f"{mean_all:.1%}  (paper 8.9%)"),
        ("worst fraction", f"{worst:.1%}  (paper 19.5%)"),
    ])

    # Stable workloads show zero-overhead epochs (no repartitioning).
    assert any(f == 0 for f in fractions)
    # The mean stays in the paper's single-digit band...
    assert mean_all < 0.15
    # ...and the worst case stays bounded (paper: 19.5%).
    assert worst <= 0.25


def test_fig12a_overhead_concentrated_at_phase_changes(benchmark, results):
    """Reallocation overhead appears in the epochs where repartitioning
    happened, not uniformly."""

    def split():
        with_repart, without = [], []
        for result in results:
            for epoch in result.epochs:
                target = with_repart if epoch.repartitioned else without
                target.append(epoch.migration_fraction)
        return with_repart, without

    with_repart, without = benchmark(split)
    # Epochs following a repartition carry the overhead; untouched epochs
    # carry (almost) none of the *new* overhead.
    assert statistics.fmean(without) <= statistics.fmean(with_repart) + 0.05
