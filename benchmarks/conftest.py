"""Shared fixtures and helpers for the experiment benches.

Every bench reproduces one table or figure from the paper's evaluation:
it regenerates the figure's series (printed with ``-s``), asserts the
*shape* properties the paper reports (who wins, orderings, crossover
positions), and times the underlying computation via pytest-benchmark.

Run the whole harness with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import os
import statistics
from typing import List, Sequence

import pytest

from repro.core.system import SystemResult
from repro.exec import SweepExecutor, SweepJob, execute_job
from repro.workloads import heterogeneous_pairs

#: The paper's simulation horizon (Section 5).
HORIZON = 25_000_000

#: Benches fan sweeps out over this many workers (REPRO_BENCH_JOBS=N to
#: raise it; the default stays in-process so timings are comparable).
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))


def run_policy(policy: str, abbrs: Sequence[str], **kwargs) -> SystemResult:
    """Instantiate and run one policy on a fresh mix.

    ``policy`` is any name the :mod:`repro.exec` registry knows
    ("BP", "CD", "UGPU-offline", ...).
    """
    return execute_job(SweepJob.build(policy, abbrs, HORIZON, kwargs))


def sweep_policy(policy: str, pairs=None, jobs: int = None,
                 **kwargs) -> List[SystemResult]:
    """Run one policy across workload pairs (default: all 50
    heterogeneous mixes) through the sweep executor."""
    selected = pairs if pairs is not None else heterogeneous_pairs()
    sweep_jobs = [SweepJob.build(policy, pair, HORIZON, kwargs)
                  for pair in selected]
    executor = SweepExecutor(jobs=jobs if jobs is not None else BENCH_JOBS)
    return executor.run(sweep_jobs)


def mean_gain(results: Sequence[SystemResult],
              baseline: Sequence[SystemResult]) -> float:
    """Mean relative STP gain over a baseline, as a fraction."""
    gains = [r.stp / b.stp - 1.0 for r, b in zip(results, baseline)]
    return statistics.fmean(gains)


def mean_antt_gain(results: Sequence[SystemResult],
                   baseline: Sequence[SystemResult]) -> float:
    """Mean ANTT improvement (baseline/result - 1; positive is better)."""
    gains = [b.antt / r.antt - 1.0 for r, b in zip(results, baseline)]
    return statistics.fmean(gains)


def print_series(title: str, rows: Sequence[tuple]) -> None:
    """Print a labelled series the way the paper's figures tabulate it."""
    print(f"\n=== {title} ===")
    for row in rows:
        print("  " + "  ".join(str(c) for c in row))


@pytest.fixture
def horizon():
    return HORIZON
