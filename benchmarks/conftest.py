"""Shared fixtures and helpers for the experiment benches.

Every bench reproduces one table or figure from the paper's evaluation:
it regenerates the figure's series (printed with ``-s``), asserts the
*shape* properties the paper reports (who wins, orderings, crossover
positions), and times the underlying computation via pytest-benchmark.

Run the whole harness with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import statistics
from typing import Callable, Dict, List, Sequence

import pytest

from repro import (
    BPBigSmallSystem,
    BPSmallBigSystem,
    BPSystem,
    CDSearchSystem,
    MigrationMode,
    MPSSystem,
    UGPUSystem,
    build_mix,
)
from repro.core.system import SystemResult
from repro.workloads import heterogeneous_pairs

#: The paper's simulation horizon (Section 5).
HORIZON = 25_000_000


def run_policy(policy: str, abbrs: Sequence[str], **kwargs) -> SystemResult:
    """Instantiate and run one policy on a fresh mix."""
    apps = build_mix(list(abbrs)).applications
    factories: Dict[str, Callable] = {
        "BP": lambda: BPSystem(apps, **kwargs),
        "BP-BS": lambda: BPBigSmallSystem(apps, **kwargs),
        "BP-SB": lambda: BPSmallBigSystem(apps, **kwargs),
        "MPS": lambda: MPSSystem(apps, **kwargs),
        "CD": lambda: CDSearchSystem(apps, **kwargs),
        "UGPU": lambda: UGPUSystem(apps, **kwargs),
        "UGPU-offline": lambda: UGPUSystem(apps, offline=True, **kwargs),
        "UGPU-soft": lambda: UGPUSystem(
            apps, mode=MigrationMode.SOFTWARE, **kwargs
        ),
        "UGPU-ori": lambda: UGPUSystem(
            apps, mode=MigrationMode.TRADITIONAL, **kwargs
        ),
    }
    return factories[policy]().run(HORIZON, mix_name="_".join(abbrs))


def sweep_policy(policy: str, pairs=None, **kwargs) -> List[SystemResult]:
    """Run one policy across workload pairs (default: all 50
    heterogeneous mixes)."""
    selected = pairs if pairs is not None else heterogeneous_pairs()
    return [run_policy(policy, pair, **kwargs) for pair in selected]


def mean_gain(results: Sequence[SystemResult],
              baseline: Sequence[SystemResult]) -> float:
    """Mean relative STP gain over a baseline, as a fraction."""
    gains = [r.stp / b.stp - 1.0 for r, b in zip(results, baseline)]
    return statistics.fmean(gains)


def mean_antt_gain(results: Sequence[SystemResult],
                   baseline: Sequence[SystemResult]) -> float:
    """Mean ANTT improvement (baseline/result - 1; positive is better)."""
    gains = [b.antt / r.antt - 1.0 for r, b in zip(results, baseline)]
    return statistics.fmean(gains)


def print_series(title: str, rows: Sequence[tuple]) -> None:
    """Print a labelled series the way the paper's figures tabulate it."""
    print(f"\n=== {title} ===")
    for row in rows:
        print("  " + "  ".join(str(c) for c in row))


@pytest.fixture
def horizon():
    return HORIZON
