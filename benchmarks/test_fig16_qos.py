"""F16 — Figure 16: QoS support in MPS, BP and UGPU.

The compute-bound application is high-priority with a 0.75 NP target.
Paper headlines:

* BP and UGPU meet the QoS target for *all* workloads (isolation);
* MPS breaks the target for some workloads (memory contention);
* UGPU beats QoS-aware BP by 33.7% STP by handing the spare channels to
  the low-priority application.
"""

import statistics

import pytest
from conftest import HORIZON, print_series

from repro import BPSystem, MPSSystem, QoSTarget, UGPUSystem, build_mix
from repro.workloads import heterogeneous_pairs

QOS_NP = 0.75
#: Allow a small whole-run measurement slack (the paper evaluates the
#: target against steady-state progress).
QOS_SLACK = 0.97


def qos_pairs():
    """(memory-bound, compute-bound) with the compute-bound app (id 1)
    high-priority."""
    return heterogeneous_pairs()


def run_qos(policy, pair):
    apps = build_mix(list(pair)).applications
    if policy == "MPS":
        # Offline analysis gives the high-priority app 60 SMs (paper).
        system = MPSSystem(apps, sm_assignment={1: 60, 0: 20})
    elif policy == "BP":
        # QoS-aware BP: high-priority app gets the big partition.  Our
        # mixes put the high-priority (compute-bound) app second, so we
        # construct the partition with qos_big_first on the reordered mix.
        apps = build_mix([pair[1], pair[0]]).applications
        system = BPSystem(apps, qos_big_first=True)
    else:
        system = UGPUSystem(apps, qos=QoSTarget(app_id=1, target_np=QOS_NP))
    return system.run(HORIZON, mix_name="_".join(pair))


def high_priority_np(policy, result, pair):
    name = pair[1]
    return next(r.normalized_progress for r in result.runs if r.name == name)


@pytest.fixture(scope="module")
def results():
    pairs = qos_pairs()
    return {
        policy: [(pair, run_qos(policy, pair)) for pair in pairs]
        for policy in ("MPS", "BP", "UGPU")
    }


def test_fig16_qos_satisfaction(benchmark, results):
    def count_violations():
        out = {}
        for policy, runs in results.items():
            nps = [high_priority_np(policy, r, pair) for pair, r in runs]
            out[policy] = (
                sum(1 for np_value in nps if np_value < QOS_NP * QOS_SLACK),
                min(nps),
            )
        return out

    violations = benchmark(count_violations)
    rows = [("policy", "violations / 50", "min high-priority NP")]
    for policy, (count, minimum) in violations.items():
        rows.append((policy, count, f"{minimum:.3f}"))
    print_series(f"Figure 16: QoS target {QOS_NP} NP", rows)

    # Isolation-based designs always meet the target.
    assert violations["BP"][0] == 0
    assert violations["UGPU"][0] == 0
    # MPS's shared memory breaks it for some workloads.
    assert violations["MPS"][0] > 0


def test_fig16_ugpu_stp_above_qos_bp(benchmark, results):
    def summarize():
        bp = [r.stp for _, r in results["BP"]]
        ugpu = [r.stp for _, r in results["UGPU"]]
        return statistics.fmean(u / b - 1 for u, b in zip(ugpu, bp))

    gain = benchmark(summarize)
    print(f"\n  UGPU vs QoS-aware BP STP: {gain:+.1%} (paper +33.7%)")
    assert gain > 0.10


def test_fig16_mps_sometimes_wins_raw_stp(benchmark, results):
    """MPS's memory sharing can beat UGPU's isolation in raw STP for some
    workloads — the paper's closing observation."""

    def count():
        wins = 0
        for (_, mps), (_, ugpu) in zip(results["MPS"], results["UGPU"]):
            if mps.stp > ugpu.stp:
                wins += 1
        return wins

    wins = benchmark(count)
    total = len(results["MPS"])
    print(f"\n  MPS beats UGPU in raw STP on {wins}/{total} workloads")
    assert 0 < wins < total
