"""T2 — Table 2: the GPU-compute benchmark catalog.

Regenerates the benchmark table (MPKI, kernel count, footprint) and checks
the class split that produces the paper's 50 heterogeneous + 55
homogeneous two-program workloads.
"""

from conftest import print_series

from repro import GPUConfig, PerformanceModel, TABLE2, build_application
from repro.workloads import (
    COMPUTE_BOUND_ABBRS,
    MEMORY_BOUND_ABBRS,
    all_pairs,
    heterogeneous_pairs,
    homogeneous_pairs,
)


def test_table2_benchmark_catalog(benchmark):
    specs = benchmark(lambda: list(TABLE2))
    rows = [("Benchmark", "Abbr", "MPKI", "#Knls", "Footprint", "Class")]
    for spec in specs:
        rows.append((
            spec.name, spec.abbr, spec.mpki, spec.num_kernels,
            f"{spec.footprint_mb} MB",
            "memory" if spec.memory_bound else "compute",
        ))
    print_series("Table 2: GPU-compute benchmarks", rows)

    assert len(specs) == 15
    assert len(MEMORY_BOUND_ABBRS) == 10
    assert len(COMPUTE_BOUND_ABBRS) == 5
    published = {
        "PVC": (4.79, 1, 3810), "LBM": (6.09, 3, 389), "BH": (1.54, 14, 48),
        "DWT2D": (2.72, 1, 301), "EULER3D": (4.39, 7, 286),
        "FWT": (2.23, 4, 269), "LAVAMD": (10.45, 1, 123),
        "SC": (3.42, 2, 302), "CONVS": (1.14, 4, 151), "SRAD": (1.09, 1, 1048),
        "DXTC": (0.0004, 2, 20), "HOTSPOT": (0.08, 1, 130),
        "PF": (0.06, 5, 792), "CP": (0.02, 1, 40), "MRI-Q": (0.01, 3, 50),
    }
    for spec in specs:
        mpki, kernels, footprint = published[spec.abbr]
        assert spec.mpki == mpki
        assert spec.num_kernels == kernels
        assert spec.footprint_mb == footprint


def test_table2_workload_mix_counts(benchmark):
    pairs = benchmark(all_pairs)
    assert len(heterogeneous_pairs()) == 50
    assert len(homogeneous_pairs()) == 55
    assert len(pairs) == 105


def test_table2_classification_boundary(benchmark):
    """Each benchmark lands on its published side of the Equation 1/2
    demand/supply boundary at the even partition."""
    model = PerformanceModel(GPUConfig())

    def classify():
        out = {}
        for spec in TABLE2:
            kernel = build_application(spec.abbr, with_hit_curve=False).kernels[0]
            out[spec.abbr] = model.throughput(kernel, 40, 16).demand_supply_ratio
        return out

    ratios = benchmark(classify)
    rows = [(abbr, f"{ratio:.2f}") for abbr, ratio in ratios.items()]
    print_series("Demand/supply ratio at 40 SMs / 16 channels", rows)
    for spec in TABLE2:
        if spec.memory_bound:
            assert ratios[spec.abbr] > 1.0, spec.abbr
        else:
            assert ratios[spec.abbr] < 1.0, spec.abbr
