"""F15 — Figure 15: AI workloads.

Tango networks (AlexNet, ResNet, SqueezeNet, GRU, LSTM) co-executed with
compute-bound Table 2 benchmarks.  Paper: UGPU improves STP by 39.4% and
ANTT by 57.6% on average over BP by matching slices to each phase's
memory/compute demand.
"""

import statistics

import pytest
from conftest import HORIZON, print_series

from repro import BPSystem, UGPUSystem, build_ai_application, build_application
from repro.workloads import AI_MODELS, COMPUTE_BOUND_ABBRS


def ai_mixes():
    """Every AI model paired with every compute-bound benchmark."""
    mixes = []
    for model_name in sorted(AI_MODELS):
        for cb in sorted(COMPUTE_BOUND_ABBRS):
            mixes.append((model_name, cb))
    return mixes


def run_pair(model_name, cb):
    def apps():
        return [
            build_ai_application(model_name, app_id=0),
            build_application(cb, app_id=1),
        ]

    bp = BPSystem(apps()).run(HORIZON, mix_name=f"{model_name}_{cb}")
    ugpu = UGPUSystem(apps()).run(HORIZON, mix_name=f"{model_name}_{cb}")
    return bp, ugpu


@pytest.fixture(scope="module")
def results():
    return [(m, c, *run_pair(m, c)) for m, c in ai_mixes()]


def test_fig15_ai_stp_antt(benchmark, results):
    def summarize():
        stp = statistics.fmean(u.stp / b.stp - 1 for _, _, b, u in results)
        antt = statistics.fmean(b.antt / u.antt - 1 for _, _, b, u in results)
        return stp, antt

    stp_gain, antt_gain = benchmark(summarize)
    rows = [("mix", "BP STP", "UGPU STP", "gain")]
    for model_name, cb, bp, ugpu in results[:10]:
        rows.append((f"{model_name}_{cb}", f"{bp.stp:.2f}", f"{ugpu.stp:.2f}",
                     f"{ugpu.stp / bp.stp - 1:+.1%}"))
    rows.append(("MEAN", "", "", f"{stp_gain:+.1%} (paper +39.4%)"))
    rows.append(("MEAN ANTT", "", "", f"{antt_gain:+.1%} (paper +57.6%)"))
    print_series("Figure 15: AI workloads", rows)

    assert stp_gain > 0.10
    assert antt_gain > 0.05


def test_fig15_recurrent_models_gain_most(benchmark, results):
    """GRU/LSTM are the most memory-bound networks and benefit most from
    extra channels."""

    def split():
        recurrent, feedforward = [], []
        for model_name, _, bp, ugpu in results:
            gain = ugpu.stp / bp.stp - 1
            if model_name in ("GRU", "LSTM"):
                recurrent.append(gain)
            else:
                feedforward.append(gain)
        return statistics.fmean(recurrent), statistics.fmean(feedforward)

    recurrent, feedforward = benchmark(split)
    print(f"\n  recurrent nets: {recurrent:+.1%}, feed-forward: {feedforward:+.1%}")
    assert recurrent > feedforward - 0.05
    assert recurrent > 0.15
