"""F10 — Figure 10: STP and ANTT across the 50 heterogeneous workloads.

Compares BP, BP-BS, BP-SB, UGPU and UGPU-offline.  Paper headlines:

* BP, BP-BS and BP-SB perform similarly in STP (unequal *balanced*
  partitions don't help), but the big/small variants hurt ANTT;
* UGPU improves STP by 34.3% on average (up to 56.7%) and ANTT by 46.7%;
* online UGPU is within ~12.1% STP of the UGPU-offline ideal.
"""

import statistics

import pytest
from conftest import (
    mean_antt_gain,
    mean_gain,
    print_series,
    run_policy,
    sweep_policy,
)


@pytest.fixture(scope="module")
def results():
    return {
        policy: sweep_policy(policy)
        for policy in ("BP", "BP-BS", "BP-SB", "UGPU", "UGPU-offline")
    }


def test_fig10a_stp_across_workloads(benchmark, results):
    def summarize():
        return {
            policy: sorted(r.stp for r in rs)
            for policy, rs in results.items()
        }

    sorted_stp = benchmark(summarize)
    rows = [("policy", "min", "median", "max", "mean")]
    for policy, series in sorted_stp.items():
        rows.append((
            policy, f"{series[0]:.2f}",
            f"{series[len(series) // 2]:.2f}", f"{series[-1]:.2f}",
            f"{statistics.fmean(series):.2f}",
        ))
    print_series("Figure 10(a): STP, 50 heterogeneous workloads", rows)

    bp = results["BP"]
    # BP-BS and BP-SB do not meaningfully beat BP (within a few percent).
    assert abs(mean_gain(results["BP-BS"], bp)) < 0.10
    assert abs(mean_gain(results["BP-SB"], bp)) < 0.10

    # UGPU's mean gain over BP: the paper reports +34.3% (max +56.7%);
    # our epoch-level substrate lands in the same band.
    ugpu_gain = mean_gain(results["UGPU"], bp)
    max_gain = max(u.stp / b.stp - 1 for u, b in zip(results["UGPU"], bp))
    print(f"  UGPU mean STP gain: {ugpu_gain:+.1%} (paper +34.3%), "
          f"max {max_gain:+.1%} (paper +56.7%)")
    assert 0.15 < ugpu_gain < 0.50
    assert max_gain > 0.25
    # Every heterogeneous workload benefits.
    assert all(u.stp > b.stp for u, b in zip(results["UGPU"], bp))

    # Online UGPU sits below the offline ideal by a bounded margin.
    overhead = 1 - statistics.fmean(
        u.stp / o.stp for u, o in zip(results["UGPU"], results["UGPU-offline"])
    )
    print(f"  online below offline: {overhead:.1%} (paper 12.1%)")
    assert 0.0 < overhead < 0.20


def test_fig10b_antt_across_workloads(benchmark, results):
    def summarize():
        return {
            policy: statistics.fmean(r.antt for r in rs)
            for policy, rs in results.items()
        }

    means = benchmark(summarize)
    print_series(
        "Figure 10(b): mean ANTT",
        [(p, f"{v:.2f}") for p, v in means.items()],
    )

    bp = results["BP"]
    # The big/small variants starve one application, raising ANTT.
    assert means["BP-BS"] > means["BP"]
    assert means["BP-SB"] > means["BP"]

    # UGPU improves ANTT substantially (paper: 46.7%).
    antt_gain = mean_antt_gain(results["UGPU"], bp)
    print(f"  UGPU mean ANTT improvement: {antt_gain:+.1%} (paper +46.7%)")
    assert antt_gain > 0.12


def test_fig10_full_105_workload_series(benchmark):
    """The paper's Figure 10 x-axis covers all 105 two-program workloads
    (50 heterogeneous + 55 homogeneous, sorted by STP).  Homogeneous
    mixes have nothing to trade, so UGPU tracks BP there; the gains come
    entirely from the heterogeneous half."""
    from repro.workloads import all_pairs, homogeneous_pairs

    def sweep_all():
        series = []
        for pair in all_pairs():
            bp = run_policy("BP", pair)
            ugpu = run_policy("UGPU", pair)
            series.append((pair, bp.stp, ugpu.stp))
        return series

    series = benchmark.pedantic(sweep_all, rounds=1, iterations=1)
    homo = set(homogeneous_pairs())
    het_rows = [(b, u) for p, b, u in series if p not in homo]
    homo_rows = [(b, u) for p, b, u in series if p in homo]

    het_gain = statistics.fmean(u / b - 1 for b, u in het_rows)
    homo_gain = statistics.fmean(u / b - 1 for b, u in homo_rows)
    sorted_bp = sorted(b for _, b, _ in series)
    sorted_ugpu = sorted(u for _, _, u in series)
    print_series("Figure 10: all 105 workloads (sorted STP deciles)", [
        ("decile",) + tuple(range(0, 110, 10)),
        ("BP",) + tuple(f"{sorted_bp[min(i, 104)]:.2f}"
                        for i in range(0, 110, 10)),
        ("UGPU",) + tuple(f"{sorted_ugpu[min(i, 104)]:.2f}"
                          for i in range(0, 110, 10)),
    ])
    from repro.analysis import compare_sparklines
    print(compare_sparklines({
        "BP": sorted_bp[::3], "UGPU": sorted_ugpu[::3]
    }))
    print(f"  heterogeneous gain {het_gain:+.1%}, homogeneous {homo_gain:+.1%}")

    assert len(series) == 105
    # All gains concentrate in the heterogeneous half...
    assert het_gain > 0.15
    assert abs(homo_gain) < 0.03
    # ...and UGPU never meaningfully loses to BP anywhere.
    assert all(u >= 0.97 * b for _, b, u in series)
