"""F14 — Figure 14: four- and eight-program workload mixes.

Paper headlines (Section 6.5):

* four-program mixes: UGPU improves STP by 38.3% and ANTT by 101.8% —
  *more* than two-program mixes, since more memory-/compute-bound apps
  give more reallocation room;
* eight-program mixes (200 random, 4 memory-bound + 4 compute-bound):
  +30.3% STP / +89.3% ANTT — slightly less than four programs, as each
  application's smaller share shrinks the reallocation space.
"""

import statistics

import pytest
from conftest import HORIZON, print_series

from repro import BPSystem, UGPUSystem, build_mix
from repro.workloads import eight_program_mixes, four_program_mixes, heterogeneous_pairs


def run_mixes(mixes):
    results = []
    for mix in mixes:
        bp = BPSystem(build_mix(mix.abbrs).applications).run(HORIZON)
        ugpu = UGPUSystem(build_mix(mix.abbrs).applications).run(HORIZON)
        results.append((bp, ugpu))
    return results


@pytest.fixture(scope="module")
def two_program_gain():
    gains = []
    for pair in heterogeneous_pairs()[::5]:  # representative subsample
        bp = BPSystem(build_mix(pair).applications).run(HORIZON)
        ugpu = UGPUSystem(build_mix(pair).applications).run(HORIZON)
        gains.append(ugpu.stp / bp.stp - 1)
    return statistics.fmean(gains)


def test_fig14_four_program_mixes(benchmark, two_program_gain):
    mixes = four_program_mixes(count=20)
    pairs = benchmark.pedantic(run_mixes, args=(mixes,), rounds=1, iterations=1)
    stp_gain = statistics.fmean(u.stp / b.stp - 1 for b, u in pairs)
    antt_gain = statistics.fmean(b.antt / u.antt - 1 for b, u in pairs)
    print_series("Figure 14: four-program mixes", [
        ("STP gain", f"{stp_gain:+.1%}  (paper +38.3%)"),
        ("ANTT gain", f"{antt_gain:+.1%}  (paper +101.8%)"),
        ("two-program reference", f"{two_program_gain:+.1%}"),
    ])
    assert stp_gain > 0.10
    assert antt_gain > 0.10
    # More co-runners -> more reallocation room than two-program mixes.
    assert stp_gain > two_program_gain - 0.05


def test_fig14_eight_program_mixes(benchmark):
    mixes = eight_program_mixes(count=20)
    pairs = benchmark.pedantic(run_mixes, args=(mixes,), rounds=1, iterations=1)
    stp_gain = statistics.fmean(u.stp / b.stp - 1 for b, u in pairs)
    antt_gain = statistics.fmean(b.antt / u.antt - 1 for b, u in pairs)
    print_series("Figure 14: eight-program mixes", [
        ("STP gain", f"{stp_gain:+.1%}  (paper +30.3%)"),
        ("ANTT gain", f"{antt_gain:+.1%}  (paper +89.3%)"),
    ])
    assert stp_gain > 0.05
    assert antt_gain > 0.05


def test_fig14_every_mix_gains(benchmark):
    """UGPU never loses STP on the sampled multiprogram mixes."""
    mixes = four_program_mixes(count=8) + eight_program_mixes(count=8)
    pairs = benchmark.pedantic(run_mixes, args=(mixes,), rounds=1, iterations=1)
    assert all(u.stp >= 0.98 * b.stp for b, u in pairs)
