"""Ablation A5 — repartition hysteresis.

Section 3.3: for workloads whose epoch behaviour barely changes,
"reallocation overhead could outweigh its benefits, potentially degrading
overall performance."  This ablation sweeps the hysteresis bar (minimum
estimated STP gain required to apply a new partition) and shows:

* zero hysteresis (the paper's behaviour) captures the full gain on
  strongly heterogeneous mixes;
* a small bar suppresses churn on near-balanced mixes without giving up
  the big wins;
* a huge bar degenerates to BP.
"""

import statistics

import pytest
from conftest import HORIZON, print_series

from repro import BPSystem, UGPUSystem, build_mix
from repro.workloads import heterogeneous_pairs

BARS = (0.0, 0.03, 0.10, 1.0)


def test_hysteresis_sweep(benchmark):
    pairs = heterogeneous_pairs()[::7]

    def sweep():
        out = {}
        bp = [
            BPSystem(build_mix(list(p)).applications).run(HORIZON)
            for p in pairs
        ]
        for bar in BARS:
            gains, reparts, suppressed = [], 0, 0
            for pair, base in zip(pairs, bp):
                system = UGPUSystem(build_mix(list(pair)).applications,
                                    hysteresis=bar)
                result = system.run(HORIZON)
                gains.append(result.stp / base.stp - 1)
                reparts += result.repartitions
                suppressed += system.suppressed_repartitions
            out[bar] = (statistics.fmean(gains), reparts, suppressed)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [("hysteresis", "mean STP gain", "repartitions", "suppressed")]
    for bar, (gain, reparts, suppressed) in results.items():
        rows.append((bar, f"{gain:+.1%}", reparts, suppressed))
    print_series("Ablation: repartition hysteresis", rows)

    # Zero hysteresis (paper behaviour) and a small bar deliver similar
    # gains; an absurd bar forfeits (nearly) everything.
    assert results[0.0][0] > 0.15
    assert results[0.03][0] > results[0.0][0] - 0.05
    assert results[1.0][0] < 0.05
    # The bar visibly suppresses reallocations as it rises.
    reparts_by_bar = [results[bar][1] for bar in BARS]
    assert reparts_by_bar == sorted(reparts_by_bar, reverse=True)
