"""F11 — Figure 11: the performance benefit breakdown of PageMove.

Compares BP, UGPU-Ori (traditional page migration), UGPU-Soft (customized
address mapping + virtual-memory updates, no crossbar hardware) and full
UGPU.  Paper headlines:

* UGPU-Ori *loses* to BP by 16.8% on average — unbalanced slicing without
  fast migration is a net negative;
* UGPU-Soft recovers 12.7% over UGPU-Ori;
* the crossbar + PPMM hardware delivers the rest, putting UGPU +34.3%
  over BP.
"""

import statistics

import pytest
from conftest import mean_gain, print_series, sweep_policy


@pytest.fixture(scope="module")
def results():
    return {
        policy: sweep_policy(policy)
        for policy in ("BP", "UGPU-ori", "UGPU-soft", "UGPU")
    }


def test_fig11_stp_breakdown(benchmark, results):
    def summarize():
        bp = results["BP"]
        return {p: mean_gain(results[p], bp) for p in
                ("UGPU-ori", "UGPU-soft", "UGPU")}

    gains = benchmark(summarize)
    paper = {"UGPU-ori": -0.168, "UGPU-soft": None, "UGPU": 0.343}
    rows = [("design", "mean STP vs BP", "paper")]
    for policy, gain in gains.items():
        rows.append((policy, f"{gain:+.1%}",
                     f"{paper[policy]:+.1%}" if paper[policy] else "(between)"))
    print_series("Figure 11: PageMove benefit breakdown", rows)

    # UGPU-Ori's massive migration makes it *worse* than BP on average.
    assert gains["UGPU-ori"] < -0.05
    # The mapping + VM software recovers a chunk...
    assert gains["UGPU-soft"] > gains["UGPU-ori"] + 0.08
    # ...and the crossbar/PPMM hardware delivers the rest.
    assert gains["UGPU"] > gains["UGPU-soft"] + 0.10
    assert gains["UGPU"] > 0.15


def test_fig11_per_workload_ordering(benchmark, results):
    """The BP < Soft < UGPU ordering holds for the large majority of
    individual workloads, with Ori frequently below BP."""

    def count_orderings():
        below_bp = full_best = 0
        for bp, ori, soft, ugpu in zip(results["BP"], results["UGPU-ori"],
                                       results["UGPU-soft"], results["UGPU"]):
            if ori.stp < bp.stp:
                below_bp += 1
            if ugpu.stp >= soft.stp and ugpu.stp >= ori.stp:
                full_best += 1
        return below_bp, full_best

    below_bp, full_best = benchmark(count_orderings)
    total = len(results["BP"])
    print(f"\n  UGPU-Ori below BP on {below_bp}/{total} workloads; "
          f"full UGPU best on {full_best}/{total}")
    assert below_bp >= total // 2
    assert full_best == total
