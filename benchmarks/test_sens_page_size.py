"""S1 — Page-size sensitivity (paper Sections 4.3 and 5).

The Figure 8 mapping idea works with different page sizes: larger pages
stripe more columns per bank-group slice, so MIGRATION counts scale
linearly while the per-page cost stays proportional — the *per-byte*
migration cost is flat.
"""

import pytest
from conftest import print_series

from repro import MigrationCostModel, MigrationMode, PageMoveAddressMapping


PAGE_SIZES = (4096, 8192, 16384, 32768)


def test_page_size_migration_scaling(benchmark):
    def sweep():
        out = {}
        for size in PAGE_SIZES:
            mapping = PageMoveAddressMapping(page_size=size)
            cost = MigrationCostModel(mapping=mapping)
            out[size] = (
                mapping.migrations_per_page,
                cost.page_cycles(MigrationMode.PPMM),
            )
        return out

    results = benchmark(sweep)
    rows = [("page size", "MIGRATIONs/page", "PPMM cycles/page", "cycles/KB")]
    for size, (commands, cycles) in results.items():
        rows.append((size, commands, f"{cycles:.0f}",
                     f"{cycles / (size / 1024):.1f}"))
    print_series("Page-size sensitivity", rows)

    # Command count scales linearly with page size (32 at 4 KB).
    assert results[4096][0] == 32
    for size in PAGE_SIZES:
        assert results[size][0] == 32 * size // 4096

    # Per-byte PPMM cost is flat: doubling the page doubles the cycles.
    base = results[4096][1] / 4096
    for size in PAGE_SIZES[1:]:
        assert results[size][1] / size == pytest.approx(base, rel=0.01)


def test_page_size_confinement_invariant(benchmark):
    """Every page size keeps the one-channel-per-page invariant that
    makes intra-stack migration possible."""

    def check():
        out = {}
        for size in PAGE_SIZES:
            mapping = PageMoveAddressMapping(page_size=size)
            channels = set()
            for offset in range(0, size, 128):
                channels.add(mapping.decode((3 << (size.bit_length() - 1)) + offset).channel)
            out[size] = len(channels)
        return out

    spread = benchmark(check)
    print_series("Channels touched by one page", list(spread.items()))
    assert all(count == 1 for count in spread.values())


def test_page_size_end_to_end_stability(benchmark):
    """UGPU's STP advantage survives a different migration page size (the
    epoch model's costs shift proportionally)."""
    from conftest import run_policy

    def run():
        out = {}
        for size in (4096, 16384):
            from repro import UGPUSystem, build_mix
            from repro.pagemove import MigrationCostModel, PageMoveAddressMapping
            apps = build_mix(["PVC", "DXTC"]).applications
            system = UGPUSystem(apps)
            system.migration_cost = MigrationCostModel(
                mapping=PageMoveAddressMapping(page_size=size)
            )
            system.page_size = size
            out[size] = system.run(25_000_000).stp
        return out

    stps = benchmark.pedantic(run, rounds=1, iterations=1)
    print_series("UGPU STP by page size", [(s, f"{v:.3f}") for s, v in stps.items()])
    assert stps[16384] == pytest.approx(stps[4096], rel=0.05)
