"""S3 — Epoch-length sensitivity (paper Section 3.3).

The paper uses 5M-cycle epochs and argues the partitioning algorithm's
latency (<= 3388 cycles) hides behind any reasonable epoch.  Shorter
epochs react faster but repartition (and pay flush/migration) more often;
longer epochs amortize overhead but adapt slower.
"""

import pytest
from conftest import HORIZON, print_series

from repro import AlgorithmCostModel, BPSystem, UGPUSystem, build_mix

EPOCHS = (1_000_000, 2_500_000, 5_000_000, 12_500_000)


def test_epoch_length_sweep(benchmark):
    def sweep():
        out = {}
        bp = BPSystem(build_mix(["PVC", "DXTC"]).applications).run(HORIZON)
        for epoch in EPOCHS:
            apps = build_mix(["PVC", "DXTC"]).applications
            result = UGPUSystem(apps, epoch_cycles=epoch).run(HORIZON)
            out[epoch] = (result.stp / bp.stp - 1, result.repartitions)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [("epoch cycles", "STP gain vs BP", "repartitions")]
    for epoch, (gain, reparts) in results.items():
        rows.append((f"{epoch:,}", f"{gain:+.1%}", reparts))
    print_series("Epoch-length sensitivity (PVC_DXTC)", rows)

    # Every epoch length beats BP on this strongly heterogeneous pair.
    assert all(gain > 0.10 for gain, _ in results.values())
    # The paper's 5M default is within a few points of the best choice.
    best = max(gain for gain, _ in results.values())
    assert results[5_000_000][0] > best - 0.08


def test_algorithm_latency_hidden_for_all_epochs(benchmark):
    model = AlgorithmCostModel()

    def check():
        return {epoch: model.hidden_by_epoch(epoch) for epoch in EPOCHS}

    hidden = benchmark(check)
    print_series(
        "Algorithm latency (3388 cycles) hidden by epoch?",
        list(hidden.items()),
    )
    assert all(hidden.values())


def test_repartitioning_active_across_epoch_lengths(benchmark):
    """A multi-kernel mix triggers at least one online repartition at
    every epoch length, and the decision latency stays hidden."""

    def count():
        out = {}
        for epoch in (1_000_000, 5_000_000, 12_500_000):
            apps = build_mix(["BH", "DXTC"]).applications  # multi-kernel app
            out[epoch] = UGPUSystem(apps, epoch_cycles=epoch).run(HORIZON).repartitions
        return out

    reparts = benchmark.pedantic(count, rounds=1, iterations=1)
    print_series("Repartition count by epoch length (BH_DXTC)",
                 list(reparts.items()))
    assert all(count >= 1 for count in reparts.values())
