"""F3 — Figure 3: memory-bound application (PVC) scaling.

(a) With 40 SMs, performance first scales linearly with channel count,
    then grows slowly once 40 SMs can no longer pull the extra bandwidth.
(b) With 16 channels, performance is flat from 40 to 80 SMs and declines
    once the application can only use ~20 SMs.

All values normalized to the half-GPU point, as in the paper.
"""

import pytest
from conftest import print_series

from repro import GPUConfig, PerformanceModel, build_application


@pytest.fixture(scope="module")
def model():
    return PerformanceModel(GPUConfig())


@pytest.fixture(scope="module")
def pvc():
    return build_application("PVC").kernels[0]


def test_fig3a_performance_vs_channel_count(benchmark, model, pvc):
    baseline = model.throughput(pvc, 40, 16).ipc

    def sweep():
        return {m: model.throughput(pvc, 40, m).ipc / baseline
                for m in (4, 8, 12, 16, 20, 24, 28, 32)}

    series = benchmark(sweep)
    print_series("Figure 3(a): PVC, 40 SMs, varying channels",
                 [(m, f"{v:.3f}") for m, v in series.items()])

    # Linear at first...
    assert series[8] == pytest.approx(2 * series[4], rel=0.06)
    assert series[16] == pytest.approx(1.0)
    # ...then eventually slowly: the last segment's slope is clearly below
    # the early linear slope (40 SMs cannot fully utilize 32 channels).
    early = (series[12] - series[4]) / 8
    late = (series[32] - series[28]) / 4
    assert late < 0.7 * early
    assert series[32] > series[28]  # still improving, just slowly


def test_fig3b_performance_vs_sm_count(benchmark, model, pvc):
    baseline = model.throughput(pvc, 40, 16).ipc

    def sweep():
        return {s: model.throughput(pvc, s, 16).ipc / baseline
                for s in (8, 12, 16, 20, 40, 60, 80)}

    series = benchmark(sweep)
    print_series("Figure 3(b): PVC, 16 channels, varying SMs",
                 [(s, f"{v:.3f}") for s, v in series.items()])

    # Flat from 40 to 80 SMs.
    assert series[80] == pytest.approx(series[40], rel=0.01)
    # Performance begins to decrease around 20 SMs...
    assert series[20] >= 0.9
    # ...and clearly declines below it.
    assert series[12] < series[20]
    assert series[8] < 0.8
