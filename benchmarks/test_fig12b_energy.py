"""F12b — Figure 12(b): energy discussion.

Paper aggregates for heterogeneous workloads:

* the GPU core and HBM occupy 88.3% / 11.6% of system energy on average
  (HBM up to 30.3% for memory-heavy mixes);
* UGPU's migration raises memory-system energy by ~38%;
* the performance gain cuts static energy, for a ~7.1% net system saving
  (per unit of work).
"""

import statistics

import pytest
from conftest import print_series, sweep_policy

from repro.metrics import EnergyModel


@pytest.fixture(scope="module")
def results():
    energy = EnergyModel()
    return {
        "BP": sweep_policy("BP", energy_model=energy),
        "UGPU": sweep_policy("UGPU", energy_model=energy),
    }


def test_fig12b_energy_split(benchmark, results):
    def fractions():
        return [r.energy.memory_fraction for r in results["BP"]]

    memory_fractions = benchmark(fractions)
    mean_frac = statistics.fmean(memory_fractions)
    print_series("Figure 12(b): BP energy split", [
        ("mean HBM share", f"{mean_frac:.1%}  (paper 11.6%)"),
        ("max HBM share", f"{max(memory_fractions):.1%}  (paper up to 30.3%)"),
        ("core share", f"{1 - mean_frac:.1%}  (paper 88.3%)"),
    ])
    # Core dominates; HBM is a limited but workload-dependent share.
    assert 0.03 < mean_frac < 0.30
    assert max(memory_fractions) < 0.45


def test_fig12b_migration_energy_and_net_saving(benchmark, results):
    def compare():
        mem_increase, per_work = [], []
        for bp, ugpu in zip(results["BP"], results["UGPU"]):
            mem_increase.append(
                (ugpu.energy.migration + ugpu.energy.mem_dynamic)
                / max(bp.energy.mem_dynamic, 1e-12) - 1
            )
            # Energy per unit of normalized progress: the static energy is
            # amortized over more work under UGPU.
            bp_work = bp.stp
            ugpu_work = ugpu.stp
            per_work.append(
                (ugpu.energy.total / ugpu_work) / (bp.energy.total / bp_work) - 1
            )
        return statistics.fmean(mem_increase), statistics.fmean(per_work)

    mem_increase, per_work_delta = benchmark(compare)
    print_series("Figure 12(b): UGPU vs BP energy", [
        ("memory-system dynamic energy", f"{mem_increase:+.1%}  (paper +38%)"),
        ("system energy per unit work", f"{per_work_delta:+.1%}  (paper -7.1%)"),
    ])
    # Migration adds memory energy...
    assert mem_increase > 0.0
    # ...but the speedup amortizes static power: net energy per unit of
    # work drops.
    assert per_work_delta < -0.02
