"""Ablation A1 — demand-aware algorithm vs. exhaustive oracle.

DESIGN.md asks how close the O(iterations) demand-aware redistribution
gets to the offline-optimal partition found by exhaustively sweeping all
(SMs, channels) splits under the same performance model.
"""

import statistics

import pytest
from conftest import HORIZON, print_series

from repro import GPUConfig, UGPUSystem, build_application, build_mix
from repro.core.oracle import OraclePartitioner
from repro.workloads import heterogeneous_pairs


def test_oracle_gap(benchmark):
    oracle = OraclePartitioner(GPUConfig())
    pairs = heterogeneous_pairs()[::5]  # representative subsample

    def compute_gaps():
        gaps = []
        for mb, cb in pairs:
            kernels = {
                0: build_application(mb).kernels[0],
                1: build_application(cb).kernels[0],
            }
            best = oracle.best_partition(kernels).stp
            achieved = UGPUSystem(
                build_mix([mb, cb]).applications, offline=True
            ).run(HORIZON).stp
            gaps.append((f"{mb}_{cb}", best, achieved, achieved / best))
        return gaps

    gaps = benchmark.pedantic(compute_gaps, rounds=1, iterations=1)
    rows = [("mix", "oracle STP", "demand-aware STP", "ratio")]
    for name, oracle, achieved, ratio in gaps:
        rows.append((name, f"{oracle:.2f}", f"{achieved:.2f}", f"{ratio:.2f}"))
    mean_ratio = statistics.fmean(r for _, _, _, r in gaps)
    rows.append(("MEAN", "", "", f"{mean_ratio:.2f}"))
    print_series("Ablation: demand-aware vs exhaustive oracle", rows)

    # The cheap iterative algorithm captures most of the oracle's value.
    assert mean_ratio > 0.85
    assert all(ratio > 0.7 for _, _, _, ratio in gaps)
