"""F2 — Figure 2: compute-bound application (DXTC) scaling.

(a) With 40 SMs, performance is flat as channels shrink from 32 until a
    left-edge knee, below which it collapses.
(b) With 16 channels, performance scales linearly with SM count.

All values normalized to the half-GPU point (40 SMs / 16 channels), as in
the paper.
"""

import pytest
from conftest import print_series

from repro import GPUConfig, PerformanceModel, build_application


@pytest.fixture(scope="module")
def model():
    return PerformanceModel(GPUConfig())


@pytest.fixture(scope="module")
def dxtc():
    return build_application("DXTC").kernels[0]


def test_fig2a_performance_vs_channel_count(benchmark, model, dxtc):
    baseline = model.throughput(dxtc, 40, 16).ipc

    def sweep():
        return {m: model.throughput(dxtc, 40, m).ipc / baseline
                for m in (2, 4, 8, 12, 16, 20, 24, 28, 32)}

    series = benchmark(sweep)
    print_series("Figure 2(a): DXTC, 40 SMs, varying channels",
                 [(m, f"{v:.3f}") for m, v in series.items()])

    # Flat from 32 down to the knee...
    assert series[32] == pytest.approx(1.0)
    assert series[16] == pytest.approx(1.0)
    assert series[8] == pytest.approx(1.0, abs=0.02)
    # ...then decreasing MCs eventually decreases performance.
    assert series[2] < 0.9
    assert series[2] < series[4] <= series[8]


def test_fig2b_performance_vs_sm_count(benchmark, model, dxtc):
    baseline = model.throughput(dxtc, 40, 16).ipc

    def sweep():
        return {s: model.throughput(dxtc, s, 16).ipc / baseline
                for s in (20, 30, 40, 50, 60, 70, 80)}

    series = benchmark(sweep)
    print_series("Figure 2(b): DXTC, 16 channels, varying SMs",
                 [(s, f"{v:.3f}") for s, v in series.items()])

    # Linear: performance proportional to SM count (16 MCs satisfy the
    # bandwidth demand even with 80 SMs).
    for s, value in series.items():
        assert value == pytest.approx(s / 40, rel=0.02)
