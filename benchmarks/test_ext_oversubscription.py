"""Extension E1 — memory-oversubscribed workloads.

The paper's evaluation excludes oversubscription but specifies the
expected behaviour (Sections 3.2, 5): such applications "would be
classified as memory-bound applications, and additional memory channels
would be allocated to reduce page faults and swapping overhead, thus
improving performance."  This bench runs that scenario.
"""

import pytest
from conftest import HORIZON, print_series

from repro import BPSystem, UGPUSystem
from repro.gpu import Application, Kernel
from repro.units import GB

TOTAL_MEMORY = 16 * GB


def hog(footprint_gb):
    return Application(0, "HOG", [Kernel(
        name="hog", ipc_per_sm=64.0, apki_llc=6.0, llc_hit_rate=0.25,
        footprint_bytes=int(footprint_gb * GB), instructions=6_000_000_000,
    )])


def tiny():
    return Application(1, "TINY", [Kernel(
        name="tiny", ipc_per_sm=64.0, apki_llc=1.2, llc_hit_rate=0.9997,
        footprint_bytes=20 * 1024 * 1024, instructions=6_000_000_000,
    )])


def test_oversubscription_scenario(benchmark):
    def sweep():
        out = {}
        for footprint in (6, 10, 12, 14):
            bp = BPSystem([hog(footprint), tiny()],
                          total_memory_bytes=TOTAL_MEMORY).run(HORIZON)
            system = UGPUSystem([hog(footprint), tiny()],
                                total_memory_bytes=TOTAL_MEMORY)
            ugpu = system.run(HORIZON)
            out[footprint] = (
                bp.stp, ugpu.stp, system.apps[0].allocation.channels
            )
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [("working set", "BP STP", "UGPU STP", "gain", "HOG channels")]
    for footprint, (bp_stp, ugpu_stp, channels) in results.items():
        rows.append((f"{footprint} GB", f"{bp_stp:.3f}", f"{ugpu_stp:.3f}",
                     f"{ugpu_stp / bp_stp - 1:+.1%}", channels))
    print_series("Oversubscription: 16 GB GPU, even split = 8 GB/app", rows)

    # The oversubscribed runs classify the hog memory-bound and grant it
    # channels (capacity travels with them).
    for footprint, (_, _, channels) in results.items():
        if footprint > 8:
            assert channels > 16
    # UGPU's gain grows once the working set stops fitting the even split:
    # the channels now buy both bandwidth *and* capacity.
    gains = {f: u / b - 1 for f, (b, u, _) in results.items()}
    # The gain peaks in the regime where UGPU's extra channels make the
    # working set fit (10-12 GB needs 20-24 channels' capacity)...
    assert gains[12] > 0.5
    assert gains[12] > gains[6]
    # ...and BP's absolute STP collapses once the even split stops
    # fitting, while UGPU holds its level until even 24 channels are not
    # enough (14 GB: both suffer, UGPU still ahead).
    assert results[12][0] < 0.7 * results[6][0]
    assert results[12][1] > 0.85 * results[6][1]
    assert results[14][1] > results[14][0]


def test_capacity_floor_respected(benchmark):
    """The partitioner never shrinks an app below the channels its
    working set needs."""

    def run():
        system = UGPUSystem([hog(12), tiny()],
                            total_memory_bytes=TOTAL_MEMORY)
        system.run(HORIZON)
        return system.apps[0].allocation

    alloc = benchmark.pedantic(run, rounds=1, iterations=1)
    # 12 GB needs >= 24 of 32 channels' capacity.
    assert alloc.channels >= 24
