"""S4 — GPU-geometry sensitivity.

The paper evaluates one 80-SM / 4-stack machine; a mechanism worth
adopting must not be an artifact of that geometry.  This bench re-runs
the headline comparison on smaller and larger GPUs (2-stack/40-SM,
8-stack/160-SM... sized so the SM:channel proportion stays the paper's
2.5) and checks UGPU's advantage survives.
"""

import statistics

import pytest
from conftest import HORIZON, print_series

from repro import BPSystem, GPUConfig, UGPUSystem, build_mix
from repro.hbm import HBMConfig
from repro.workloads import heterogeneous_pairs


def geometry(num_stacks: int) -> GPUConfig:
    """A balanced GPU scaled to ``num_stacks`` HBM stacks."""
    channels = num_stacks * 8
    sms = int(channels * 2.5)
    return GPUConfig(
        num_sms=sms,
        llc_size=channels * 2 * 16 * 48 * 128,   # 2 slices per channel
        llc_slices=channels * 2,
        noc_ports_sm=sms,
        noc_ports_mem=channels * 2,
        hbm=HBMConfig(
            num_stacks=num_stacks,
            total_bandwidth_gbps=900.0 * num_stacks / 4,
        ),
    )


GEOMETRIES = {2: geometry(2), 4: GPUConfig(), 8: geometry(8)}


def test_geometry_sweep(benchmark):
    pairs = heterogeneous_pairs()[::10]

    def sweep():
        out = {}
        for stacks, config in GEOMETRIES.items():
            gains = []
            for pair in pairs:
                bp = BPSystem(build_mix(list(pair)).applications,
                              config=config).run(HORIZON)
                ugpu = UGPUSystem(build_mix(list(pair)).applications,
                                  config=config).run(HORIZON)
                gains.append(ugpu.stp / bp.stp - 1)
            out[stacks] = statistics.fmean(gains)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [("stacks", "SMs", "channels", "UGPU mean STP gain")]
    for stacks, gain in results.items():
        cfg = GEOMETRIES[stacks]
        rows.append((stacks, cfg.num_sms, cfg.num_channels, f"{gain:+.1%}"))
    print_series("GPU-geometry sensitivity", rows)

    # The mechanism wins on every geometry.
    assert all(gain > 0.08 for gain in results.values())


def test_scaled_configs_are_internally_consistent(benchmark):
    def validate_all():
        for config in GEOMETRIES.values():
            config.validate()
        return True

    assert benchmark(validate_all)
    for stacks, config in GEOMETRIES.items():
        assert config.num_channels == stacks * 8
        assert config.llc_slices_per_channel == 2
        # Per-channel bandwidth is geometry-invariant (same HBM parts).
        assert config.channel_bandwidth_bytes_per_cycle() == pytest.approx(
            GPUConfig().channel_bandwidth_bytes_per_cycle()
        )
