"""Extension E2 — multi-GPU cluster utilization (paper Section 6.6).

"UGPU can be utilized in multi-GPU systems ... idle resources can then be
allocated to other tasks launched by different users, thus enhancing the
utilization of cloud GPU clusters."  This bench quantifies that claim:
demand-aware tenant placement + per-node UGPU slicing vs class-blind
placement + balanced partitioning.
"""

import pytest
from conftest import HORIZON, print_series

from repro import BPSystem, UGPUSystem, build_application
from repro.cluster import ClusterScheduler, PlacementPolicy


def tenant_jobs():
    """Eight tenants: four memory-bound, four compute-bound.

    The arrival order is adversarial for class-blind breadth-first
    placement (node i receives jobs i and i+4, pairing same-class
    tenants), the situation a real scheduler faces when tenants arrive
    in bursts of similar jobs.
    """
    abbrs = ["PVC", "LBM", "DXTC", "CP", "LAVAMD", "EULER3D", "MRI-Q", "PF"]
    return [build_application(a, app_id=i) for i, a in enumerate(abbrs)]


def run_configuration(placement, slicing):
    cluster = ClusterScheduler(num_nodes=4, tenants_per_node=2)
    return cluster.schedule_and_run(
        tenant_jobs(), placement=placement,
        slicing_policy=slicing, total_cycles=HORIZON,
    )


def test_cluster_policy_matrix(benchmark):
    def sweep():
        return {
            ("first-fit", "BP"): run_configuration(
                PlacementPolicy.FIRST_FIT, BPSystem
            ).cluster_stp,
            ("first-fit", "UGPU"): run_configuration(
                PlacementPolicy.FIRST_FIT, UGPUSystem
            ).cluster_stp,
            ("demand-aware", "BP"): run_configuration(
                PlacementPolicy.DEMAND_AWARE, BPSystem
            ).cluster_stp,
            ("demand-aware", "UGPU"): run_configuration(
                PlacementPolicy.DEMAND_AWARE, UGPUSystem
            ).cluster_stp,
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [("placement", "slicing", "cluster STP")]
    for (placement, slicing), stp in results.items():
        rows.append((placement, slicing, f"{stp:.3f}"))
    print_series("4-node cluster, 8 tenants", rows)

    # UGPU slicing helps under any placement...
    assert results[("demand-aware", "UGPU")] > results[("demand-aware", "BP")]
    # ...and demand-aware placement unlocks more of it (every node gets a
    # complementary pair to trade resources within).
    assert results[("demand-aware", "UGPU")] >= results[("first-fit", "UGPU")]
    # The full stack beats the class-blind balanced status quo clearly.
    baseline = results[("first-fit", "BP")]
    best = results[("demand-aware", "UGPU")]
    print(f"\n  full stack vs status quo: {best / baseline - 1:+.1%}")
    assert best > 1.05 * baseline


def test_cluster_scales_with_nodes(benchmark):
    def sweep():
        out = {}
        for nodes in (2, 4):
            cluster = ClusterScheduler(num_nodes=nodes, tenants_per_node=2)
            jobs = tenant_jobs()[: nodes * 2]
            out[nodes] = cluster.schedule_and_run(
                jobs, total_cycles=HORIZON
            ).cluster_stp
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_series("Cluster STP by node count",
                 [(n, f"{s:.3f}") for n, s in results.items()])
    assert results[4] > results[2]
