"""The L2-TLB channel-status register (paper Section 4.4).

Per application the hardware keeps an 11-bit record: 2 bits of application
id (so up to 4 applications), 1 status bit saying whether the application
*gained* or *lost* memory channels in the most recent reallocation, and 8
bits marking channels.  The marks are interpreted relative to the status
bit:

* direction ``LOST``  — a '1' marks a channel the application still owns;
  a translation landing in an unmarked channel means the page sits in a
  deallocated channel and must migrate out.
* direction ``GAINED`` — a '1' marks a *newly granted* channel; pages found
  outside those channels are candidates to migrate in, to spread load onto
  the new bandwidth.

The 8 channel bits index *channel groups* (one channel per HBM stack, see
:mod:`repro.pagemove.address_mapping`), matching the paper's 8
channels-per-stack geometry.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional

from repro.errors import ConfigError


class ReallocationDirection(enum.Enum):
    """Did the application gain or lose channels this reallocation?"""

    LOST = 0
    GAINED = 1


@dataclass(frozen=True)
class _Record:
    direction: ReallocationDirection
    marked: FrozenSet[int]


class ChannelStatusRegister:
    """Hardware register bank tracking channel reallocation per app."""

    APP_ID_BITS = 2
    CHANNEL_BITS = 8

    def __init__(self, max_apps: Optional[int] = None,
                 num_channel_groups: Optional[int] = None) -> None:
        self.max_apps = max_apps if max_apps is not None else 1 << self.APP_ID_BITS
        self.num_channel_groups = (
            num_channel_groups if num_channel_groups is not None else self.CHANNEL_BITS
        )
        if self.max_apps <= 0 or self.num_channel_groups <= 0:
            raise ConfigError("register sizes must be positive")
        self._records: Dict[int, _Record] = {}

    def _check_app(self, app_id: int) -> None:
        if not 0 <= app_id < self.max_apps:
            raise ConfigError(
                f"app id {app_id} exceeds register capacity ({self.max_apps} apps)"
            )

    def _check_channels(self, channels: Iterable[int]) -> FrozenSet[int]:
        marked = frozenset(channels)
        for channel in marked:
            if not 0 <= channel < self.num_channel_groups:
                raise ConfigError(
                    f"channel group {channel} exceeds register width "
                    f"({self.num_channel_groups} bits)"
                )
        return marked

    # ------------------------------------------------------------------
    # Configuration (driven by the resource-partition decision)
    # ------------------------------------------------------------------
    def set_lost(self, app_id: int, still_owned: Iterable[int]) -> None:
        """Record that ``app_id`` lost channels; mark those it keeps."""
        self._check_app(app_id)
        self._records[app_id] = _Record(
            ReallocationDirection.LOST, self._check_channels(still_owned)
        )

    def set_gained(self, app_id: int, newly_granted: Iterable[int]) -> None:
        """Record that ``app_id`` gained the ``newly_granted`` channels."""
        self._check_app(app_id)
        self._records[app_id] = _Record(
            ReallocationDirection.GAINED, self._check_channels(newly_granted)
        )

    def clear(self, app_id: int) -> None:
        """Driver request once page counts are balanced (Section 4.4)."""
        self._check_app(app_id)
        self._records.pop(app_id, None)

    # ------------------------------------------------------------------
    # Queries made on every L2 TLB hit during reallocation
    # ------------------------------------------------------------------
    def is_tracking(self, app_id: int) -> bool:
        self._check_app(app_id)
        return app_id in self._records

    def direction(self, app_id: int) -> Optional[ReallocationDirection]:
        self._check_app(app_id)
        record = self._records.get(app_id)
        return record.direction if record else None

    def needs_migration(self, app_id: int, channel: int) -> bool:
        """Should a translated page found in ``channel`` be migrated?

        Both directions share one check — a page migrates when its
        channel is unmarked — because the *marks* differ by direction:
        LOST marks the channels the application still owns (an unmarked
        channel was taken away), GAINED marks the newly granted channels
        (an unmarked channel is an old one whose pages spread out).
        Returns False when the application is not being tracked.
        """
        self._check_app(app_id)
        record = self._records.get(app_id)
        return record is not None and channel not in record.marked

    def marked_channels(self, app_id: int) -> FrozenSet[int]:
        self._check_app(app_id)
        record = self._records.get(app_id)
        return record.marked if record else frozenset()

    def encoded_bits(self, app_id: int) -> int:
        """The raw 11-bit register value (2b app | 1b status | 8b marks),
        mirroring the paper's encoding; useful for hardware-cost tests."""
        self._check_app(app_id)
        record = self._records.get(app_id)
        if record is None:
            return 0
        mask = 0
        for channel in record.marked:
            mask |= 1 << channel
        return (app_id << 9) | (record.direction.value << 8) | mask
