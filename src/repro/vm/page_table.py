"""4-level radix page table.

One table per application (the paper isolates address spaces via per-app
CR3 roots).  The table maps 36-bit VPNs to physical page numbers (RPNs in
the paper's terminology) plus the memory channel group holding the page —
the attribute PageMove's fault handling inspects (Section 4.4).

The structure is an explicit radix tree rather than a flat dict so the
page-table walker can charge a realistic number of memory references per
walk (one per level, minus MMU-cache hits).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

from repro.errors import TranslationError
from repro.vm.address import LEVELS, VirtualAddress


@dataclass
class PageTableEntry:
    """Leaf entry: the translation plus PageMove bookkeeping.

    Attributes
    ----------
    rpn:
        Real (physical) page number.
    channel:
        Memory channel group currently holding the physical page.
    valid:
        Cleared when PageMove invalidates the entry during reallocation.
    dirty, referenced:
        Standard status bits (used by tests and the migration planner).
    """

    rpn: int
    channel: int
    valid: bool = True
    dirty: bool = False
    referenced: bool = False


class _Node:
    """Interior radix node."""

    __slots__ = ("children",)

    def __init__(self) -> None:
        self.children: Dict[int, object] = {}


class PageTable:
    """A 4-level page table for one application address space."""

    def __init__(self, app_id: int, cr3: Optional[int] = None) -> None:
        self.app_id = app_id
        #: Emulates the CR3 root-pointer register value for identification.
        self.cr3 = cr3 if cr3 is not None else (0x1000 + app_id)
        self._root = _Node()
        self._count = 0

    def __len__(self) -> int:
        return self._count

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def map(self, vpn: int, rpn: int, channel: int) -> PageTableEntry:
        """Install (or replace) the translation for ``vpn``."""
        node = self._root
        indices = VirtualAddress.from_vpn(vpn).table_indices()
        for index in indices[:-1]:
            child = node.children.get(index)
            if child is None:
                child = _Node()
                node.children[index] = child
            node = child
        leaf_index = indices[-1]
        existed = leaf_index in node.children
        entry = PageTableEntry(rpn=rpn, channel=channel)
        node.children[leaf_index] = entry
        if not existed:
            self._count += 1
        return entry

    def unmap(self, vpn: int) -> PageTableEntry:
        """Remove the translation for ``vpn``; return the removed entry."""
        node, leaf_index = self._walk_to_leaf(vpn)
        entry = node.children.pop(leaf_index, None)
        if entry is None:
            raise TranslationError(f"vpn {vpn:#x} is not mapped (app {self.app_id})")
        self._count -= 1
        return entry

    def invalidate(self, vpn: int) -> PageTableEntry:
        """Clear the valid bit (PageMove's PTW-driven invalidation)."""
        entry = self.lookup(vpn)
        if entry is None:
            raise TranslationError(f"vpn {vpn:#x} is not mapped (app {self.app_id})")
        entry.valid = False
        return entry

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def lookup(self, vpn: int) -> Optional[PageTableEntry]:
        """Return the entry for ``vpn`` or None; does not touch status bits."""
        node, leaf_index = self._walk_to_leaf(vpn)
        child = node.children.get(leaf_index)
        return child if isinstance(child, PageTableEntry) else None

    def translate(self, vpn: int) -> Optional[PageTableEntry]:
        """Lookup that also sets the referenced bit on a valid hit."""
        entry = self.lookup(vpn)
        if entry is not None and entry.valid:
            entry.referenced = True
            return entry
        return None

    def levels_touched(self, vpn: int) -> int:
        """How many radix levels a walk for ``vpn`` traverses before
        either finding the leaf or hitting a hole (for PTW latency)."""
        node = self._root
        indices = VirtualAddress.from_vpn(vpn).table_indices()
        touched = 0
        for index in indices[:-1]:
            touched += 1
            child = node.children.get(index)
            if not isinstance(child, _Node):
                return touched
            node = child
        return LEVELS

    # ------------------------------------------------------------------
    # Iteration (used by the migration planner)
    # ------------------------------------------------------------------
    def entries(self) -> Iterator[Tuple[int, PageTableEntry]]:
        """Yield (vpn, entry) pairs in ascending VPN order."""

        def recurse(node: _Node, prefix: int, depth: int):
            for index in sorted(node.children):
                child = node.children[index]
                vpn_part = (prefix << 9) | index
                if isinstance(child, PageTableEntry):
                    yield vpn_part, child
                else:
                    yield from recurse(child, vpn_part, depth + 1)

        yield from recurse(self._root, 0, 1)

    def pages_in_channel(self, channel: int) -> Iterator[Tuple[int, PageTableEntry]]:
        """Yield the (vpn, entry) pairs whose physical page lives in
        ``channel`` — the pages PageMove must migrate when that channel is
        reallocated away."""
        for vpn, entry in self.entries():
            if entry.channel == channel and entry.valid:
                yield vpn, entry

    def channel_page_counts(self) -> Dict[int, int]:
        """Count of valid resident pages per channel group (the driver's
        balance bookkeeping from Section 4.4)."""
        counts: Dict[int, int] = {}
        for _, entry in self.entries():
            if entry.valid:
                counts[entry.channel] = counts.get(entry.channel, 0) + 1
        return counts

    def _walk_to_leaf(self, vpn: int):
        node = self._root
        indices = VirtualAddress.from_vpn(vpn).table_indices()
        for index in indices[:-1]:
            child = node.children.get(index)
            if not isinstance(child, _Node):
                return _Node(), indices[-1]  # unmapped region
            node = child
        return node, indices[-1]
