"""Virtual address helpers.

The GPU uses 48-bit virtual addresses with 4 KB pages by default (the
paper's baseline; Section 5 evaluates other sizes).  A virtual page number
(VPN) therefore has 36 bits, split into four 9-bit indices for the 4-level
page table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import AddressError

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT      #: 4 KB baseline page size
VA_BITS = 48
LEVEL_BITS = 9                   #: radix of each page-table level
LEVELS = 4


def page_number(address: int, page_shift: int = PAGE_SHIFT) -> int:
    """Extract the page number from a byte address."""
    if address < 0:
        raise AddressError(f"address must be non-negative, got {address}")
    return address >> page_shift

def page_offset(address: int, page_shift: int = PAGE_SHIFT) -> int:
    """Extract the within-page byte offset from a byte address."""
    if address < 0:
        raise AddressError(f"address must be non-negative, got {address}")
    return address & ((1 << page_shift) - 1)


@dataclass(frozen=True)
class VirtualAddress:
    """A validated virtual address with page-table index helpers."""

    value: int
    page_shift: int = PAGE_SHIFT

    def __post_init__(self) -> None:
        if not 0 <= self.value < (1 << VA_BITS):
            raise AddressError(
                f"virtual address {self.value:#x} outside {VA_BITS}-bit space"
            )

    @property
    def vpn(self) -> int:
        """Virtual page number."""
        return self.value >> self.page_shift

    @property
    def offset(self) -> int:
        """Byte offset within the page."""
        return self.value & ((1 << self.page_shift) - 1)

    def table_indices(self) -> Tuple[int, ...]:
        """The four radix indices used by the 4-level page-table walk,
        ordered from the root level down."""
        vpn = self.vpn
        indices = []
        for level in reversed(range(LEVELS)):
            indices.append((vpn >> (level * LEVEL_BITS)) & ((1 << LEVEL_BITS) - 1))
        return tuple(indices)

    @classmethod
    def from_vpn(cls, vpn: int, page_shift: int = PAGE_SHIFT) -> "VirtualAddress":
        """Build the base address of virtual page ``vpn``."""
        return cls(vpn << page_shift, page_shift)
