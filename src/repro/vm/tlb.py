"""Set-associative TLB with LRU replacement.

One class serves both levels of the paper's hierarchy (Table 1):

* L1 TLB — 64 entries per SM, fully associative, private per SM.
* L2 TLB — 512 entries, 16-way set associative, shared by all SMs and all
  co-executing applications (entries are tagged with the application id).

PageMove's reallocation flows flush L1 TLBs wholesale and invalidate
individual L2 entries whose physical page moved (Section 4.4); both
operations are first-class here.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError


@dataclass
class TLBStats:
    """Hit/miss accounting for one TLB instance."""

    hits: int = 0
    misses: int = 0
    fills: int = 0
    evictions: int = 0
    invalidations: int = 0
    flushes: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses


@dataclass
class TLBEntry:
    """One cached translation, tagged with the owning application."""

    app_id: int
    vpn: int
    rpn: int
    channel: int


class TLB:
    """A set-associative, LRU TLB shared by multiple address spaces.

    Keys are (app_id, vpn) so co-executing applications never alias.
    ``ways >= entries / sets``; a fully associative TLB uses ``sets=1``.
    """

    def __init__(self, entries: int, ways: Optional[int] = None, sets: int = 1,
                 name: str = "tlb") -> None:
        if entries <= 0 or sets <= 0:
            raise ConfigError("TLB entries and sets must be positive")
        if entries % sets != 0:
            raise ConfigError(f"{entries} entries not divisible into {sets} sets")
        self.entries = entries
        self.sets = sets
        self.ways = ways if ways is not None else entries // sets
        if self.ways * sets != entries:
            raise ConfigError(
                f"geometry mismatch: {sets} sets x {self.ways} ways != {entries}"
            )
        self.name = name
        # Each set is an OrderedDict for O(1) LRU: most recent at the end.
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(sets)]
        self.stats = TLBStats()

    @classmethod
    def l1(cls, name: str = "l1tlb") -> "TLB":
        """Paper Table 1 L1 TLB: 64 entries, fully associative."""
        return cls(entries=64, sets=1, name=name)

    @classmethod
    def l2(cls, name: str = "l2tlb") -> "TLB":
        """Paper Table 1 L2 TLB: 512 entries, 16-way set associative."""
        return cls(entries=512, sets=512 // 16, ways=16, name=name)

    def _set_for(self, app_id: int, vpn: int) -> OrderedDict:
        return self._sets[(vpn ^ (app_id * 0x9E37)) % self.sets]

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def lookup(self, app_id: int, vpn: int) -> Optional[TLBEntry]:
        """Probe the TLB; updates LRU order and hit/miss statistics."""
        ways = self._set_for(app_id, vpn)
        key = (app_id, vpn)
        entry = ways.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        ways.move_to_end(key)
        self.stats.hits += 1
        return entry

    def peek(self, app_id: int, vpn: int) -> Optional[TLBEntry]:
        """Probe without disturbing LRU order or statistics."""
        return self._set_for(app_id, vpn).get((app_id, vpn))

    def fill(self, app_id: int, vpn: int, rpn: int, channel: int) -> Optional[TLBEntry]:
        """Insert a translation; returns the victim entry if one was
        evicted."""
        ways = self._set_for(app_id, vpn)
        key = (app_id, vpn)
        victim = None
        if key not in ways and len(ways) >= self.ways:
            _, victim = ways.popitem(last=False)
            self.stats.evictions += 1
        ways[key] = TLBEntry(app_id=app_id, vpn=vpn, rpn=rpn, channel=channel)
        ways.move_to_end(key)
        self.stats.fills += 1
        return victim

    # ------------------------------------------------------------------
    # Invalidation (PageMove, Section 4.4)
    # ------------------------------------------------------------------
    def invalidate(self, app_id: int, vpn: int) -> bool:
        """Drop a single translation; True if it was present."""
        ways = self._set_for(app_id, vpn)
        removed = ways.pop((app_id, vpn), None) is not None
        if removed:
            self.stats.invalidations += 1
        return removed

    def flush(self, app_id: Optional[int] = None) -> int:
        """Drop all entries (or all entries of one application).

        PageMove flushes every SM's L1 TLB when a reallocation begins.
        Returns the number of entries dropped.
        """
        dropped = 0
        for ways in self._sets:
            if app_id is None:
                dropped += len(ways)
                ways.clear()
            else:
                victims = [k for k in ways if k[0] == app_id]
                for key in victims:
                    del ways[key]
                dropped += len(victims)
        self.stats.flushes += 1
        return dropped

    def entries_in_channels(self, app_id: int, channels) -> List[TLBEntry]:
        """Entries of ``app_id`` whose page lives in one of ``channels`` —
        the candidates PageMove checks against the channel-status register."""
        wanted = set(channels)
        found = []
        for ways in self._sets:
            for (eid, _), entry in ways.items():
                if eid == app_id and entry.channel in wanted:
                    found.append(entry)
        return found

    def occupancy(self) -> int:
        """Number of live entries."""
        return sum(len(ways) for ways in self._sets)
