"""GPU virtual memory substrate.

Models the paper's Figure 9 memory-management stack: per-SM L1 TLBs, a
shared L2 TLB, a multi-threaded page-table walker over a 4-level page
table, and the GPU driver that owns per-channel free physical page lists
and handles page faults — including the two new PageMove fault flavours
raised when a translation lands in a deallocated or not-yet-populated
memory channel (Section 4.4).
"""

from repro.vm.address import PAGE_SHIFT, PAGE_SIZE, VirtualAddress, page_number, page_offset
from repro.vm.page_table import PageTable, PageTableEntry
from repro.vm.tlb import TLB, TLBStats
from repro.vm.ptw import PageTableWalker, WalkResult
from repro.vm.channel_registry import ChannelStatusRegister, ReallocationDirection
from repro.vm.driver import FaultKind, GPUDriver, PageFault
from repro.vm.mmu import MMU, MMUStats, Translation
from repro.vm.oversubscription import FaultOverheadModel, OversubscriptionCharge

__all__ = [
    "PAGE_SHIFT",
    "PAGE_SIZE",
    "VirtualAddress",
    "page_number",
    "page_offset",
    "PageTable",
    "PageTableEntry",
    "TLB",
    "TLBStats",
    "PageTableWalker",
    "WalkResult",
    "ChannelStatusRegister",
    "ReallocationDirection",
    "FaultKind",
    "GPUDriver",
    "PageFault",
    "FaultOverheadModel",
    "OversubscriptionCharge",
    "MMU",
    "MMUStats",
    "Translation",
]
