"""Page-table walker.

The paper's walker (Table 1) supports up to 64 concurrent walk threads over
4-level page tables.  We model walk latency as one LLC-latency memory
reference per level touched, and track walker-thread occupancy so that
bursts of TLB misses queue when all threads are busy — the behaviour that
makes L1-TLB flushes (PageMove's reallocation step) briefly expensive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ConfigError
from repro.vm.address import LEVELS
from repro.vm.page_table import PageTable, PageTableEntry


@dataclass
class WalkResult:
    """Outcome of one page-table walk."""

    vpn: int
    entry: Optional[PageTableEntry]   #: None on a page-table miss (fault)
    issued_at: int
    completed_at: int
    levels: int

    @property
    def latency(self) -> int:
        return self.completed_at - self.issued_at

    @property
    def faulted(self) -> bool:
        return self.entry is None or not self.entry.valid


class PageTableWalker:
    """Multi-threaded walker shared by all SMs.

    Parameters
    ----------
    max_threads:
        Concurrent walks supported (64 in Table 1).
    level_latency:
        Cycles per radix level touched; defaults to the paper's 120-cycle
        LLC latency since walk references mostly hit the LLC.
    """

    def __init__(self, max_threads: int = 64, level_latency: int = 120) -> None:
        if max_threads <= 0:
            raise ConfigError("walker needs at least one thread")
        if level_latency <= 0:
            raise ConfigError("level latency must be positive")
        self.max_threads = max_threads
        self.level_latency = level_latency
        #: Completion times of in-flight walks (min-heap not needed at this
        #: scale; kept sorted on insert).
        self._busy_until: List[int] = []
        self.walks = 0
        self.faults = 0
        self.total_latency = 0

    def _admit(self, now: int) -> int:
        """Find the cycle a new walk can start, retiring finished walks."""
        self._busy_until = [t for t in self._busy_until if t > now]
        if len(self._busy_until) < self.max_threads:
            return now
        start = min(self._busy_until)
        self._busy_until.remove(start)
        # Re-filter relative to the delayed start.
        self._busy_until = [t for t in self._busy_until if t > start]
        return start

    def walk(self, table: PageTable, vpn: int, now: int) -> WalkResult:
        """Perform one walk; returns timing plus the entry (or None)."""
        start = self._admit(now)
        levels = table.levels_touched(vpn)
        entry = table.translate(vpn)
        if entry is None:
            # A translation miss still walks the populated prefix levels.
            self.faults += 1
        else:
            levels = LEVELS
        completed = start + levels * self.level_latency
        self._busy_until.append(completed)
        self.walks += 1
        self.total_latency += completed - now
        return WalkResult(
            vpn=vpn,
            entry=entry,
            issued_at=now,
            completed_at=completed,
            levels=levels,
        )

    @property
    def in_flight(self) -> int:
        return len(self._busy_until)

    @property
    def mean_latency(self) -> float:
        if self.walks == 0:
            return 0.0
        return self.total_latency / self.walks
