"""The MMU front-end: the full Figure 9 translation path.

Ties the per-SM L1 TLBs, the shared L2 TLB, the page-table walker, the
GPU driver and the channel-status register into the exact flows Section
4.4 describes:

1. An SM's access probes its L1 TLB; a hit returns immediately.
2. On an L1 miss, the L2 TLB is probed.  On an L2 hit *during
   reallocation*, the channel-status register is consulted: a page found
   in a deallocated (or not-yet-populated) channel triggers a PageMove
   fault — the L2 entry and page-table entry are invalidated, the driver
   allocates a new frame in a valid channel, migrates the page, and the
   translation retries.
3. On an L2 miss, the walker traverses the 4-level page table; a table
   miss raises a demand fault handled by the driver (allocation from the
   least-loaded assigned channel).
4. Fills propagate down: page table -> L2 TLB -> the requesting L1 TLB.

The MMU charges latencies (TLB hit = 1 cycle, walker = level-latency per
level, driver fault = 1000 cycles, migration = cost-model PPMM page) and
is the workhorse of the coherence integration tests: after any channel
reallocation, no access may ever observe a translation into a channel its
application no longer owns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigError, TranslationError
from repro.pagemove.cost import MigrationCostModel, MigrationMode
from repro.vm.channel_registry import ChannelStatusRegister
from repro.vm.driver import FaultKind, GPUDriver
from repro.vm.ptw import PageTableWalker
from repro.vm.tlb import TLB


@dataclass
class Translation:
    """Outcome of one MMU access."""

    app_id: int
    vpn: int
    rpn: int
    channel: int
    latency: int
    l1_hit: bool = False
    l2_hit: bool = False
    walked: bool = False
    demand_fault: bool = False
    migrated: bool = False


@dataclass
class MMUStats:
    """Aggregate MMU event counts."""

    accesses: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    walks: int = 0
    demand_faults: int = 0
    migration_faults: int = 0
    total_latency: int = 0

    @property
    def l1_hit_rate(self) -> float:
        return self.l1_hits / self.accesses if self.accesses else 0.0


class MMU:
    """The shared translation machinery of all SMs."""

    L1_HIT_CYCLES = 1
    L2_HIT_CYCLES = 10

    def __init__(
        self,
        driver: GPUDriver,
        num_sms: int = 80,
        registry: Optional[ChannelStatusRegister] = None,
        walker: Optional[PageTableWalker] = None,
        cost_model: Optional[MigrationCostModel] = None,
        mode: MigrationMode = MigrationMode.PPMM,
    ) -> None:
        if num_sms <= 0:
            raise ConfigError("need at least one SM")
        self.driver = driver
        self.l1_tlbs: List[TLB] = [TLB.l1(f"l1tlb{i}") for i in range(num_sms)]
        self.l2_tlb = TLB.l2()
        self.registry = registry if registry is not None else ChannelStatusRegister(
            num_channel_groups=driver.num_channel_groups
        )
        self.walker = walker if walker is not None else PageTableWalker()
        self.cost_model = cost_model if cost_model is not None else MigrationCostModel()
        self.mode = mode
        self.stats = MMUStats()
        self.now = 0

    # ------------------------------------------------------------------
    # The translation flow
    # ------------------------------------------------------------------
    def translate(self, sm_id: int, app_id: int, vpn: int) -> Translation:
        """Translate one access from ``sm_id``; returns the final
        translation after any faults and migrations resolve."""
        if not 0 <= sm_id < len(self.l1_tlbs):
            raise ConfigError(f"sm {sm_id} out of range")
        self.stats.accesses += 1
        l1 = self.l1_tlbs[sm_id]

        entry = l1.lookup(app_id, vpn)
        if entry is not None:
            self.stats.l1_hits += 1
            return self._done(app_id, vpn, entry.rpn, entry.channel,
                              self.L1_HIT_CYCLES, l1_hit=True)

        latency = self.L1_HIT_CYCLES  # L1 probe time before the miss
        entry = self.l2_tlb.lookup(app_id, vpn)
        if entry is not None:
            latency += self.L2_HIT_CYCLES
            if self.registry.needs_migration(app_id, entry.channel):
                return self._migration_fault(l1, app_id, vpn, latency)
            self.stats.l2_hits += 1
            l1.fill(app_id, vpn, entry.rpn, entry.channel)
            return self._done(app_id, vpn, entry.rpn, entry.channel,
                              latency, l2_hit=True)

        # L2 miss: walk the page table.
        table = self.driver.page_tables[app_id]
        walk = self.walker.walk(table, vpn, self.now)
        latency += walk.latency
        self.stats.walks += 1
        if walk.faulted:
            fault = self.driver.handle_fault(FaultKind.DEMAND, app_id, vpn)
            latency += fault.software_cycles
            self.stats.demand_faults += 1
            self._fill_both(l1, app_id, vpn, fault.rpn, fault.channel)
            return self._done(app_id, vpn, fault.rpn, fault.channel,
                              latency, walked=True, demand_fault=True)

        pte = walk.entry
        if self.registry.needs_migration(app_id, pte.channel):
            return self._migration_fault(l1, app_id, vpn, latency, walked=True)
        self._fill_both(l1, app_id, vpn, pte.rpn, pte.channel)
        return self._done(app_id, vpn, pte.rpn, pte.channel, latency,
                          walked=True)

    def _migration_fault(self, l1: TLB, app_id: int, vpn: int,
                         latency: int, walked: bool = False) -> Translation:
        """The PageMove fault path: invalidate, reallocate, migrate,
        refill (Section 4.4)."""
        self.l2_tlb.invalidate(app_id, vpn)
        direction = self.registry.direction(app_id)
        from repro.vm.channel_registry import ReallocationDirection

        kind = (
            FaultKind.LOST_CHANNEL
            if direction is ReallocationDirection.LOST
            else FaultKind.REBALANCE
        )
        target = None
        if direction is ReallocationDirection.GAINED:
            marked = sorted(self.registry.marked_channels(app_id))
            if marked:
                # Spread rebalance fills over the new channels.
                target = marked[vpn % len(marked)]
        fault = self.driver.handle_fault(kind, app_id, vpn, target_channel=target)
        latency += fault.software_cycles
        latency += int(self.cost_model.page_cycles(self.mode))
        self.stats.migration_faults += 1
        if self._reallocation_settled(app_id, direction):
            self.registry.clear(app_id)
        self._fill_both(l1, app_id, vpn, fault.rpn, fault.channel)
        return self._done(app_id, vpn, fault.rpn, fault.channel, latency,
                          walked=walked, migrated=True)

    def _reallocation_settled(self, app_id: int, direction) -> bool:
        """May the channel-status register be cleared?

        For an application that *lost* channels the register must stay
        live until no page remains resident in any lost channel — clearing
        earlier would let stale L2 entries be served again.  For a
        *gained* application the driver's balance condition suffices
        (Section 4.4).
        """
        from repro.vm.channel_registry import ReallocationDirection

        if direction is ReallocationDirection.LOST:
            owned = self.driver.assigned_channels(app_id)
            for channel in range(self.driver.num_channel_groups):
                if channel in owned:
                    continue
                if self.driver.resident_pages(app_id, channel) > 0:
                    return False
            return True
        return self.driver.is_balanced(app_id)

    def _fill_both(self, l1: TLB, app_id: int, vpn: int, rpn: int,
                   channel: int) -> None:
        self.l2_tlb.fill(app_id, vpn, rpn, channel)
        l1.fill(app_id, vpn, rpn, channel)

    def _done(self, app_id, vpn, rpn, channel, latency, **flags) -> Translation:
        self.stats.total_latency += latency
        self.now += latency
        return Translation(app_id=app_id, vpn=vpn, rpn=rpn, channel=channel,
                           latency=latency, **flags)

    # ------------------------------------------------------------------
    # Reallocation entry point
    # ------------------------------------------------------------------
    def begin_reallocation(self, app_id: int,
                           new_channels: Sequence[int]) -> None:
        """Reconfigure for a channel reallocation: flush all L1 TLBs,
        program the status register, update the driver assignment.

        Pages migrate lazily through :meth:`translate`'s fault path — the
        paper's on-demand flow, as opposed to the bulk path in
        :class:`repro.pagemove.engine.MigrationEngine`.
        """
        old = self.driver.assigned_channels(app_id)
        new = set(new_channels)
        for tlb in self.l1_tlbs:
            tlb.flush()
        if new - old:
            self.registry.set_gained(app_id, sorted(new - old))
        elif old - new:
            self.registry.set_lost(app_id, sorted(new))
        self.driver.reassign_channels(app_id, new)

    def assert_coherent(self, app_id: int) -> None:
        """Invariant check: no cached translation of ``app_id`` points at
        a channel the application does not own.  Raises
        :class:`TranslationError` on violation (used by tests)."""
        owned = self.driver.assigned_channels(app_id)
        for tlb in [self.l2_tlb] + self.l1_tlbs:
            for entry in tlb.entries_in_channels(
                app_id, set(range(self.driver.num_channel_groups)) - owned
            ):
                raise TranslationError(
                    f"stale translation: app {app_id} vpn {entry.vpn:#x} "
                    f"cached in unowned channel {entry.channel}"
                )
