"""Memory-oversubscription overhead model (paper Sections 3.2 and 5).

The paper's evaluation excludes oversubscribed workloads but specifies how
UGPU would treat them: an application whose working set exceeds its
allocated memory capacity is classified memory-bound, and additional
memory channels (which carry capacity with them) reduce page-fault and
swapping overhead.

This model supplies the missing piece for the epoch simulation: given an
application's footprint, its allocated capacity and its demand traffic, it
estimates the far-fault rate and the throughput factor the 20 us fault
latency imposes.

The fault-rate model is the standard working-set argument: a fraction
``overflow = 1 - capacity / footprint`` of the resident set is absent at
any time; accesses are spread uniformly over the footprint (GPU kernels'
streaming behaviour), so that same fraction of *page touches* faults.
Page touches are DRAM traffic divided by the page size times a reuse
factor (most of a page's lines are consumed per touch for streaming
kernels).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError
from repro.gpu.config import GPUConfig


@dataclass(frozen=True)
class OversubscriptionCharge:
    """Per-epoch fault overhead."""

    overflow_fraction: float      #: share of the working set not resident
    faults_per_cycle: float
    throughput_factor: float      #: multiply IPC by this (<= 1)

    @property
    def oversubscribed(self) -> bool:
        return self.overflow_fraction > 0.0


class FaultOverheadModel:
    """Far-fault cost of running with less memory than the working set."""

    def __init__(self, config: Optional[GPUConfig] = None,
                 page_size: int = 4096,
                 lines_per_page_touch: float = 16.0,
                 concurrent_faults: float = 16.0) -> None:
        """``lines_per_page_touch``: cache lines consumed per page visit
        (streaming kernels use most of a 4 KB page: 32 lines; irregular
        ones fewer).  ``concurrent_faults``: faults the driver overlaps
        (batched handling hides part of the 20 us latency)."""
        config = config if config is not None else GPUConfig()
        config.validate()
        if page_size <= 0 or lines_per_page_touch <= 0 or concurrent_faults <= 0:
            raise ConfigError("oversubscription parameters must be positive")
        self.config = config
        self.page_size = page_size
        self.lines_per_page_touch = lines_per_page_touch
        self.concurrent_faults = concurrent_faults

    def capacity_for_channels(self, channels: int,
                              total_capacity_bytes: int) -> float:
        """Memory capacity an allocation of ``channels`` channels carries."""
        if channels < 0:
            raise ConfigError("channels must be non-negative")
        return total_capacity_bytes * channels / self.config.num_channels

    def charge(self, footprint_bytes: int, capacity_bytes: float,
               dram_bytes_per_cycle: float) -> OversubscriptionCharge:
        """Fault overhead for one application this epoch.

        Returns a throughput factor derived from the fault service time
        per useful cycle: with ``f`` faults/cycle each costing ``L``
        cycles, overlapped ``c`` ways, useful throughput scales by
        ``1 / (1 + f * L / c)``.
        """
        if footprint_bytes < 0 or capacity_bytes < 0 or dram_bytes_per_cycle < 0:
            raise ConfigError("charge inputs must be non-negative")
        if footprint_bytes <= capacity_bytes or footprint_bytes == 0:
            return OversubscriptionCharge(0.0, 0.0, 1.0)
        overflow = 1.0 - capacity_bytes / footprint_bytes
        line = self.config.llc_line_bytes
        touch_bytes = self.lines_per_page_touch * line
        page_touches_per_cycle = dram_bytes_per_cycle / touch_bytes
        faults_per_cycle = overflow * page_touches_per_cycle
        latency = self.config.page_fault_latency_cycles()
        stall = faults_per_cycle * latency / self.concurrent_faults
        return OversubscriptionCharge(
            overflow_fraction=overflow,
            faults_per_cycle=faults_per_cycle,
            throughput_factor=1.0 / (1.0 + stall),
        )
