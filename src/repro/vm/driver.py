"""GPU driver model: physical page allocation and fault handling.

The driver (Figure 9, Section 4.4) owns a free-physical-page list per
memory channel group, tracks how many pages each application has resident
in each channel, and services three fault flavours:

* ``DEMAND`` — classic first-touch fault: allocate a free page from the
  least-loaded channel currently assigned to the application.
* ``LOST_CHANNEL`` — PageMove fault raised when a translation lands in a
  channel that was reallocated away: allocate a page in a still-owned
  channel and migrate the data.
* ``REBALANCE`` — PageMove fault raised for an application that *gained*
  channels: move a page into the new channel to exploit its bandwidth.

Every fault charges the paper's 1000-cycle software processing delay
(Section 4.5, following Vesely et al.).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.errors import AllocationError
from repro.vm.page_table import PageTable

#: Software fault-processing delay in GPU cycles (paper Section 4.5).
DRIVER_FAULT_CYCLES = 1000


class FaultKind(enum.Enum):
    """The three fault flavours the PageMove driver distinguishes."""

    DEMAND = "demand"
    LOST_CHANNEL = "lost_channel"
    REBALANCE = "rebalance"


@dataclass
class PageFault:
    """Record of one serviced fault."""

    kind: FaultKind
    app_id: int
    vpn: int
    rpn: int
    channel: int
    source_channel: Optional[int] = None  #: set when a migration was triggered
    software_cycles: int = DRIVER_FAULT_CYCLES


class GPUDriver:
    """Physical memory manager for co-executing applications.

    Parameters
    ----------
    num_channel_groups:
        Channel groups managed (8 in the paper's geometry: one channel per
        stack forms a group).
    pages_per_channel:
        Physical page frames available per channel group.
    """

    def __init__(self, num_channel_groups: int = 8,
                 pages_per_channel: int = 262_144, mapping=None,
                 tracer=None, metrics=None, profiler=None) -> None:
        """``mapping``, when given, must provide ``channel_of_frame(rpn)``
        and ``frames_of_channel(channel)`` (e.g.
        :class:`repro.pagemove.address_mapping.InterleavedPageMapping`);
        it overrides the default contiguous frame layout with the paper's
        Figure 8 interleave.

        ``tracer`` (a :class:`repro.trace.TraceRecorder`) receives one
        ``fault``-category record per serviced fault, named by kind;
        ``metrics`` (a telemetry registry) counts faults by kind and
        accumulates software fault-handling cycles; ``profiler`` (a
        :class:`~repro.profiling.profiler.PhaseProfiler`) attributes host
        wall time per serviced fault to a ``vm.handle_fault`` phase."""
        if mapping is not None:
            num_channel_groups = mapping.num_channel_groups
            pages_per_channel = min(pages_per_channel, mapping.pages_per_channel)
        if num_channel_groups <= 0 or pages_per_channel <= 0:
            raise AllocationError("driver geometry must be positive")
        self.num_channel_groups = num_channel_groups
        self.pages_per_channel = pages_per_channel
        self.mapping = mapping
        #: Free frame numbers per channel group, popped from the tail so
        #: low frame numbers are handed out first.
        if mapping is None:
            # Contiguous layout: channel c owns [c*N, (c+1)*N).
            self._free: List[List[int]] = [
                list(range(c * pages_per_channel + pages_per_channel - 1,
                           c * pages_per_channel - 1, -1))
                for c in range(num_channel_groups)
            ]
        else:
            self._free = []
            for c in range(num_channel_groups):
                frames = []
                for rpn in mapping.frames_of_channel(c):
                    frames.append(rpn)
                    if len(frames) >= pages_per_channel:
                        break
                frames.reverse()
                self._free.append(frames)
        #: app_id -> channels currently assigned to it.
        self._assigned: Dict[int, Set[int]] = {}
        #: app_id -> {channel: resident page count}.
        self._resident: Dict[int, Dict[int, int]] = {}
        self.page_tables: Dict[int, PageTable] = {}
        self.faults: List[PageFault] = []
        self.tracer = tracer
        self.metrics = metrics
        self.profiler = profiler
        if metrics is not None:
            from repro.telemetry import names as _names

            self._m_faults = _names.vm_faults_total(metrics)
            self._m_fault_cycles = _names.vm_fault_software_cycles_total(metrics)

    # ------------------------------------------------------------------
    # Application lifecycle
    # ------------------------------------------------------------------
    def register_app(self, app_id: int, channels: Iterable[int]) -> PageTable:
        """Create an address space bound to an initial channel set."""
        if app_id in self.page_tables:
            raise AllocationError(f"app {app_id} already registered")
        channel_set = self._validated(channels)
        if not channel_set:
            raise AllocationError("an application needs at least one channel")
        self._assigned[app_id] = channel_set
        self._resident[app_id] = {c: 0 for c in channel_set}
        table = PageTable(app_id)
        self.page_tables[app_id] = table
        return table

    def assigned_channels(self, app_id: int) -> Set[int]:
        self._check_app(app_id)
        return set(self._assigned[app_id])

    def reassign_channels(self, app_id: int, channels: Iterable[int]) -> None:
        """Update the channel set after a resource-partition decision.

        Does not move any pages by itself — migration is orchestrated by
        :class:`repro.pagemove.engine.MigrationEngine`.
        """
        self._check_app(app_id)
        channel_set = self._validated(channels)
        if not channel_set:
            raise AllocationError("an application needs at least one channel")
        self._assigned[app_id] = channel_set
        for channel in channel_set:
            self._resident[app_id].setdefault(channel, 0)

    # ------------------------------------------------------------------
    # Frame bookkeeping
    # ------------------------------------------------------------------
    def channel_of_frame(self, rpn: int) -> int:
        """The channel group a physical frame number belongs to."""
        if self.mapping is not None:
            return self.mapping.channel_of_frame(rpn)
        channel = rpn // self.pages_per_channel
        if not 0 <= channel < self.num_channel_groups:
            raise AllocationError(f"frame {rpn} outside physical memory")
        return channel

    def free_pages(self, channel: int) -> int:
        self._check_channel(channel)
        return len(self._free[channel])

    def resident_pages(self, app_id: int, channel: Optional[int] = None) -> int:
        self._check_app(app_id)
        counts = self._resident[app_id]
        if channel is None:
            return sum(counts.values())
        return counts.get(channel, 0)

    def least_loaded_channel(self, app_id: int) -> int:
        """The assigned channel with the fewest resident pages that still
        has free frames (the paper allocates from the least-used channel)."""
        self._check_app(app_id)
        candidates = [
            c for c in sorted(self._assigned[app_id]) if self._free[c]
        ]
        if not candidates:
            raise AllocationError(
                f"app {app_id}: no free frames in any assigned channel"
            )
        return min(candidates, key=lambda c: self._resident[app_id].get(c, 0))

    # ------------------------------------------------------------------
    # Allocation primitives
    # ------------------------------------------------------------------
    def allocate_page(self, app_id: int, channel: Optional[int] = None) -> int:
        """Take one free frame for ``app_id``; returns the frame number."""
        self._check_app(app_id)
        if channel is None:
            channel = self.least_loaded_channel(app_id)
        self._check_channel(channel)
        if channel not in self._assigned[app_id]:
            raise AllocationError(
                f"channel {channel} is not assigned to app {app_id}"
            )
        if not self._free[channel]:
            raise AllocationError(f"channel {channel} has no free frames")
        rpn = self._free[channel].pop()
        counts = self._resident[app_id]
        counts[channel] = counts.get(channel, 0) + 1
        return rpn

    def release_page(self, app_id: int, rpn: int) -> None:
        """Return a frame to its channel's free list."""
        self._check_app(app_id)
        channel = self.channel_of_frame(rpn)
        counts = self._resident[app_id]
        if counts.get(channel, 0) <= 0:
            raise AllocationError(
                f"app {app_id} has no resident pages in channel {channel}"
            )
        counts[channel] -= 1
        self._free[channel].append(rpn)

    # ------------------------------------------------------------------
    # Fault handling
    # ------------------------------------------------------------------
    def handle_fault(self, kind: FaultKind, app_id: int, vpn: int,
                     target_channel: Optional[int] = None) -> PageFault:
        """Service a fault: allocate, update the page table, log the fault.

        For ``LOST_CHANNEL``/``REBALANCE`` the existing mapping is replaced
        and the old frame is released; ``source_channel`` records where the
        data migrates from so the migration engine can cost the copy.
        """
        prof = self.profiler
        if prof is not None:
            prof.begin("vm.handle_fault")
        self._check_app(app_id)
        table = self.page_tables[app_id]
        source_channel = None
        if kind in (FaultKind.LOST_CHANNEL, FaultKind.REBALANCE):
            old = table.lookup(vpn)
            if old is None:
                raise AllocationError(
                    f"{kind.value} fault for unmapped vpn {vpn:#x}"
                )
            source_channel = old.channel
            self.release_page(app_id, old.rpn)
        rpn = self.allocate_page(app_id, target_channel)
        channel = self.channel_of_frame(rpn)
        table.map(vpn, rpn, channel)
        fault = PageFault(
            kind=kind,
            app_id=app_id,
            vpn=vpn,
            rpn=rpn,
            channel=channel,
            source_channel=source_channel,
        )
        self.faults.append(fault)
        if self.tracer is not None:
            self.tracer.emit(
                "fault", kind.value, app_id=app_id, vpn=vpn,
                channel=channel, source_channel=source_channel,
                software_cycles=fault.software_cycles,
            )
        if self.metrics is not None:
            self._m_faults.labels(kind=kind.value).inc()
            self._m_fault_cycles.inc(fault.software_cycles)
        if prof is not None:
            prof.end("vm.handle_fault")
        return fault

    def is_balanced(self, app_id: int, tolerance: int = 1) -> bool:
        """True when resident page counts across the app's channels differ
        by at most ``tolerance`` — the condition for clearing the channel
        status register (Section 4.4)."""
        self._check_app(app_id)
        counts = [
            self._resident[app_id].get(c, 0) for c in self._assigned[app_id]
        ]
        return (max(counts) - min(counts)) <= tolerance if counts else True

    # ------------------------------------------------------------------
    # Internal checks
    # ------------------------------------------------------------------
    def _check_app(self, app_id: int) -> None:
        if app_id not in self.page_tables:
            raise AllocationError(f"app {app_id} is not registered")

    def _check_channel(self, channel: int) -> None:
        if not 0 <= channel < self.num_channel_groups:
            raise AllocationError(
                f"channel {channel} out of range [0, {self.num_channel_groups})"
            )

    def _validated(self, channels: Iterable[int]) -> Set[int]:
        channel_set = set(channels)
        for channel in channel_set:
            self._check_channel(channel)
        return channel_set
