"""AI workload models (paper Section 6.6, Tango benchmark suite).

Each network is modelled layer-by-layer: convolution layers are
compute-heavy (high arithmetic intensity, modest APKI), fully connected
and recurrent layers stream weight matrices (high APKI, low reuse).  The
per-layer profiles are derived from the well-known layer shapes of each
network; UGPU only ever observes the resulting counter values, so this
level of fidelity matches what the mechanism can exploit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import ConfigError
from repro.gpu.kernel import Application, Kernel
from repro.units import MB


@dataclass(frozen=True)
class LayerProfile:
    """One layer type's execution profile."""

    name: str
    ipc_per_sm: float
    apki_llc: float
    llc_hit_rate: float
    instructions: int


def _conv(name: str, scale: float = 1.0) -> LayerProfile:
    """Convolutions: good reuse but heavy LLC access streams (im2col
    expansions), leaving them mildly memory-bound on this machine."""
    return LayerProfile(name, ipc_per_sm=62.0, apki_llc=5.5,
                        llc_hit_rate=0.82, instructions=int(4_000_000_000 * scale))


def _fc(name: str, scale: float = 1.0) -> LayerProfile:
    """Fully connected layers: stream weights, memory-bound."""
    return LayerProfile(name, ipc_per_sm=56.0, apki_llc=7.0,
                        llc_hit_rate=0.25, instructions=int(1_500_000_000 * scale))


def _recurrent(name: str, scale: float = 1.0) -> LayerProfile:
    """GRU/LSTM cells: matrix-vector streams, strongly memory-bound."""
    return LayerProfile(name, ipc_per_sm=50.0, apki_llc=9.0,
                        llc_hit_rate=0.20, instructions=int(2_500_000_000 * scale))


def _pool(name: str) -> LayerProfile:
    """Pooling/normalization: light, bandwidth-leaning."""
    return LayerProfile(name, ipc_per_sm=58.0, apki_llc=6.0,
                        llc_hit_rate=0.50, instructions=800_000_000)


#: name -> (layer profiles, model footprint in MB)
AI_MODELS: Dict[str, Tuple[List[LayerProfile], int]] = {
    "AlexNet": (
        [
            _conv("conv1", 1.2), _pool("pool1"),
            _conv("conv2", 1.5), _pool("pool2"),
            _conv("conv3", 1.1), _conv("conv4", 1.0), _conv("conv5", 0.8),
            _fc("fc6", 2.5), _fc("fc7", 1.1), _fc("fc8", 0.3),
        ],
        240,
    ),
    "ResNet": (
        [_conv(f"conv{i}", 0.9 + 0.02 * i) for i in range(1, 17)]
        + [_pool("avgpool"), _fc("fc", 0.2)],
        110,
    ),
    "SqueezeNet": (
        [_conv("conv1", 0.8)]
        + [p for i in range(1, 9) for p in (_conv(f"fire{i}/squeeze", 0.3),
                                            _conv(f"fire{i}/expand", 0.6))]
        + [_pool("avgpool")],
        30,
    ),
    "GRU": ([_recurrent(f"step{i}", 1.0) for i in range(8)], 320),
    "LSTM": ([_recurrent(f"step{i}", 1.2) for i in range(8)], 410),
}


def build_ai_application(name: str, app_id: int = 0) -> Application:
    """Instantiate a Tango network as an :class:`Application`."""
    try:
        layers, footprint_mb = AI_MODELS[name]
    except KeyError:
        raise ConfigError(
            f"unknown AI model {name!r}; known: {sorted(AI_MODELS)}"
        ) from None
    kernels = [
        Kernel(
            name=f"{name}/{layer.name}",
            ipc_per_sm=layer.ipc_per_sm,
            apki_llc=layer.apki_llc,
            llc_hit_rate=layer.llc_hit_rate,
            footprint_bytes=footprint_mb * MB,
            instructions=layer.instructions,
        )
        for layer in layers
    ]
    return Application(app_id=app_id, name=name, kernels=kernels)
