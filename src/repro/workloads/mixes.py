"""Multi-program workload construction (paper Section 5).

The paper builds 105 two-program workloads from the 15 Table 2 benchmarks:
50 heterogeneous (one memory-bound x one compute-bound) and 55 homogeneous
(same-class pairs).  For the scaling study (Section 6.5) it adds
four-program mixes and 200 randomly selected eight-program mixes of four
compute-bound and four memory-bound applications.

All "random" selections here use an explicit LCG with a fixed default
seed, so every bench run reproduces the same workload list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import List, Sequence, Tuple

from repro.errors import ConfigError
from repro.gpu.kernel import Application
from repro.workloads.benchmarks import (
    COMPUTE_BOUND_ABBRS,
    MEMORY_BOUND_ABBRS,
    build_application,
    spec_for,
)
from repro.workloads.synthetic import _lcg


@dataclass
class MultiProgramMix:
    """A named multi-program workload."""

    name: str
    abbrs: Tuple[str, ...]
    applications: List[Application] = field(default_factory=list)

    @property
    def heterogeneous(self) -> bool:
        """True when the mix contains both workload classes."""
        classes = {spec_for(a).memory_bound for a in self.abbrs}
        return len(classes) == 2

    @property
    def num_programs(self) -> int:
        return len(self.abbrs)


def _sorted_mb() -> List[str]:
    return sorted(MEMORY_BOUND_ABBRS)


def _sorted_cb() -> List[str]:
    return sorted(COMPUTE_BOUND_ABBRS)


def heterogeneous_pairs() -> List[Tuple[str, str]]:
    """The 50 memory-bound x compute-bound pairs (memory-bound first)."""
    return [(m, c) for m in _sorted_mb() for c in _sorted_cb()]


def homogeneous_pairs() -> List[Tuple[str, str]]:
    """The 55 same-class pairs: C(10,2)=45 memory + C(5,2)=10 compute."""
    return list(combinations(_sorted_mb(), 2)) + list(combinations(_sorted_cb(), 2))


def all_pairs() -> List[Tuple[str, str]]:
    """All 105 two-program workloads of the paper."""
    return heterogeneous_pairs() + homogeneous_pairs()


def build_mix(abbrs: Sequence[str],
              instructions_per_kernel: int = 6_000_000_000) -> MultiProgramMix:
    """Instantiate a mix; application ids follow list order."""
    if not abbrs:
        raise ConfigError("a mix needs at least one benchmark")
    apps = [
        build_application(abbr, app_id=i,
                          instructions_per_kernel=instructions_per_kernel)
        for i, abbr in enumerate(abbrs)
    ]
    return MultiProgramMix(name="_".join(abbrs), abbrs=tuple(abbrs),
                           applications=apps)


def four_program_mixes(count: int = 50, seed: int = 2025) -> List[MultiProgramMix]:
    """Four-program mixes with two memory-bound and two compute-bound
    applications each, sampled deterministically."""
    return _sampled_mixes(count, seed, per_class=2)


def eight_program_mixes(count: int = 200, seed: int = 2025) -> List[MultiProgramMix]:
    """The paper's 200 random eight-program mixes: four compute-bound and
    four memory-bound applications each (Section 6.5)."""
    return _sampled_mixes(count, seed, per_class=4)


def _sampled_mixes(count: int, seed: int, per_class: int) -> List[MultiProgramMix]:
    if count <= 0:
        raise ConfigError("count must be positive")
    if per_class > len(MEMORY_BOUND_ABBRS) or per_class > len(COMPUTE_BOUND_ABBRS):
        raise ConfigError("per_class exceeds the available benchmarks")
    rng = _lcg(seed)
    memory, compute = _sorted_mb(), _sorted_cb()
    mixes = []
    seen = set()
    while len(mixes) < count:
        chosen_m = _sample(memory, per_class, rng)
        chosen_c = _sample(compute, per_class, rng)
        abbrs = tuple(chosen_m + chosen_c)
        # Allow duplicates only after the space is exhausted.
        if abbrs in seen and len(seen) < _space_size(per_class):
            continue
        seen.add(abbrs)
        mixes.append(build_mix(abbrs))
    return mixes


def _sample(pool: List[str], k: int, rng) -> List[str]:
    """Deterministic sampling without replacement."""
    remaining = list(pool)
    chosen = []
    for _ in range(k):
        index = next(rng) % len(remaining)
        chosen.append(remaining.pop(index))
    return sorted(chosen)


def _space_size(per_class: int) -> int:
    from math import comb

    return comb(10, per_class) * comb(5, per_class)
