"""Job arrival schedules for open-system simulation.

The paper's evaluation is a closed system (a fixed mix over a 25M-cycle
horizon); the online schedulers we compare against (fragmentation-aware
MIG placement, MIG management for throughput/energy) evaluate under *job
arrival/departure dynamics*.  An :class:`ArrivalSchedule` is the explicit
form — ``(cycle, Application, instruction budget)`` events — and
:func:`poisson_arrivals` generates one from the Table 2 catalog with the
repo's deterministic LCG, so a seeded trace is bit-reproducible.

An application *departs* when it retires its instruction budget; a
``None`` budget means the job runs until the horizon (a resident
service, like the initial mix of a closed system).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.gpu.kernel import Application
from repro.workloads.benchmarks import TABLE2, build_application
from repro.workloads.synthetic import _lcg


@dataclass(frozen=True)
class ArrivalEvent:
    """One job arriving at ``cycle``.

    ``budget_instructions`` is the retirement target that triggers
    departure; ``None`` keeps the job resident until the horizon.
    """

    cycle: int
    app: Application
    budget_instructions: Optional[int] = None

    def __post_init__(self) -> None:
        if self.cycle < 0:
            raise ConfigError(f"arrival cycle must be >= 0, got {self.cycle}")
        if self.budget_instructions is not None and self.budget_instructions <= 0:
            raise ConfigError(
                f"budget_instructions must be positive, got "
                f"{self.budget_instructions}"
            )


class ArrivalSchedule:
    """An ordered, validated sequence of :class:`ArrivalEvent`.

    Events sort by cycle (stable, so same-cycle arrivals keep insertion
    order — they queue in submission order).  App ids must be unique
    within the schedule: the runner keys its state tables by app id.
    """

    def __init__(self, events: Iterable[ArrivalEvent] = ()) -> None:
        ordered = sorted(events, key=lambda e: e.cycle)
        seen = set()
        for event in ordered:
            if event.app.app_id in seen:
                raise ConfigError(
                    f"duplicate app_id {event.app.app_id} in arrival schedule"
                )
            seen.add(event.app.app_id)
        self.events: Tuple[ArrivalEvent, ...] = tuple(ordered)

    @classmethod
    def from_pairs(
        cls,
        pairs: Iterable[Tuple[int, Application]],
        budget_instructions: Optional[int] = None,
    ) -> "ArrivalSchedule":
        """Build from explicit ``(cycle, Application)`` pairs, all sharing
        one budget (or none)."""
        return cls(
            ArrivalEvent(cycle, app, budget_instructions)
            for cycle, app in pairs
        )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[ArrivalEvent]:
        return iter(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    @property
    def last_cycle(self) -> int:
        return self.events[-1].cycle if self.events else 0


def poisson_arrivals(
    mean_interarrival_cycles: float,
    horizon_cycles: int,
    seed: int = 0,
    catalog: Optional[Sequence[str]] = None,
    first_app_id: int = 100,
    budget_instructions: Optional[int] = None,
    instructions_per_kernel: int = 2_000_000_000,
) -> ArrivalSchedule:
    """A seeded Poisson arrival process over the benchmark catalog.

    Inter-arrival times are exponential with the given mean (the inverse
    transform of the LCG's uniform output); each arrival draws a
    benchmark uniformly from ``catalog`` (default: all 15 Table 2
    abbreviations, sorted).  App ids count up from ``first_app_id`` so a
    schedule composes with an initial closed mix whose ids start at 0.

    ``budget_instructions`` defaults to one full launch of the drawn
    application (every kernel once), so jobs genuinely depart.
    """
    if mean_interarrival_cycles <= 0:
        raise ConfigError("mean_interarrival_cycles must be positive")
    if horizon_cycles <= 0:
        raise ConfigError("horizon_cycles must be positive")
    # None means "the full Table 2 pool"; an explicitly empty catalog is a
    # configuration mistake and must not silently widen to every benchmark.
    if catalog is None:
        pool: List[str] = sorted(spec.abbr for spec in TABLE2)
    else:
        pool = sorted(catalog)
        if not pool:
            raise ConfigError(
                "catalog cannot be empty: pass None for the full Table 2 "
                "pool or name at least one benchmark"
            )
    rng = _lcg(seed)
    events: List[ArrivalEvent] = []
    t = 0.0
    index = 0
    while True:
        # (0, 1) uniform from the 32-bit LCG state; +1 keeps it off zero.
        u = (next(rng) + 1) / 4294967297.0
        t += -math.log(1.0 - u) * mean_interarrival_cycles
        if t >= horizon_cycles:
            break
        abbr = pool[next(rng) % len(pool)]
        app = build_application(
            abbr,
            app_id=first_app_id + index,
            instructions_per_kernel=instructions_per_kernel,
        )
        budget = (
            budget_instructions
            if budget_instructions is not None
            else app.instructions_per_launch
        )
        events.append(ArrivalEvent(int(t), app, budget))
        index += 1
    return ArrivalSchedule(events)
