"""The paper's Table 2 benchmark catalog.

Published columns (MPKI, kernel count, memory footprint) are reproduced
verbatim.  The remaining profile parameters — peak per-SM issue rate and
LLC hit rate — are not in the paper; they are calibrated per benchmark so
that (a) ``apki * (1 - hit) == MPKI`` holds exactly, (b) the ten
memory-bound benchmarks exceed bandwidth supply at the even partition
(40 SMs / 16 channels) and the five compute-bound ones stay below it, and
(c) Figure 2/3-style scaling shapes emerge from the performance model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import ConfigError
from repro.gpu.kernel import Application, Kernel
from repro.gpu.llc import HitRateCurve
from repro.units import MB


@dataclass(frozen=True)
class BenchmarkSpec:
    """One Table 2 row plus calibrated profile parameters.

    ``mpki``, ``num_kernels`` and ``footprint_mb`` are the published
    values; ``ipc_per_sm`` (thread-level, <= 64) and ``llc_hit_rate`` are
    our calibration (see module docstring).
    """

    name: str
    abbr: str
    suite: str
    mpki: float
    num_kernels: int
    footprint_mb: int
    ipc_per_sm: float
    llc_hit_rate: float

    @property
    def apki_llc(self) -> float:
        """LLC accesses per kilo-instruction implied by MPKI and hit rate."""
        miss = 1.0 - self.llc_hit_rate
        if miss <= 0:
            raise ConfigError(f"{self.abbr}: hit rate of 1.0 leaves APKI undefined")
        return self.mpki / miss

    @property
    def footprint_bytes(self) -> int:
        return self.footprint_mb * MB

    @property
    def memory_bound(self) -> bool:
        return self.abbr in MEMORY_BOUND_ABBRS


#: Table 2, in the paper's row order.  The first ten rows are the
#: memory-bound class, the last five the compute-bound class (10 x 5 = 50
#: heterogeneous pairs, C(10,2) + C(5,2) = 55 homogeneous pairs: the
#: paper's 105 two-program workloads).
TABLE2: List[BenchmarkSpec] = [
    # Memory-bound class: a mix of DRAM-streaming kernels (low hit rate,
    # high miss traffic: PVC, LBM, LAVAMD, EULER3D) and cache-thrashing
    # kernels whose heavy LLC access streams saturate LLC bandwidth even
    # though most accesses hit (BH, CONVS, SRAD) — both flavours exceed
    # Equation 2's supply at the even partition.
    BenchmarkSpec("Page View Count", "PVC", "Mars", 4.79, 1, 3810, 64.0, 0.25),
    BenchmarkSpec("Lattice-Boltzmann Method", "LBM", "Parboil", 6.09, 3, 389, 60.0, 0.20),
    BenchmarkSpec("BlackScholes", "BH", "CUDA SDK", 1.54, 14, 48, 62.0, 0.90),
    BenchmarkSpec("DWT2D", "DWT2D", "Rodinia", 2.72, 1, 301, 58.0, 0.60),
    BenchmarkSpec("EULER3D", "EULER3D", "Rodinia", 4.39, 7, 286, 56.0, 0.28),
    BenchmarkSpec("FastWalshTransform", "FWT", "CUDA SDK", 2.23, 4, 269, 60.0, 0.75),
    BenchmarkSpec("Lavamd", "LAVAMD", "Rodinia", 10.45, 1, 123, 52.0, 0.15),
    BenchmarkSpec("Streamcluster", "SC", "Rodinia", 3.42, 2, 302, 58.0, 0.50),
    BenchmarkSpec("Convolution Separable", "CONVS", "CUDA SDK", 1.14, 4, 151, 64.0, 0.90),
    BenchmarkSpec("Srad_v2", "SRAD", "Rodinia", 1.09, 1, 1048, 64.0, 0.90),
    # Compute-bound class: near-zero MPKI and modest LLC access streams —
    # their demand stays under supply until the channel count gets small
    # (the Figure 2a left-edge knee around 4-8 channels).
    BenchmarkSpec("DXTC", "DXTC", "CUDA SDK", 0.0004, 2, 20, 64.0, 0.99966),
    BenchmarkSpec("HOTSPOT", "HOTSPOT", "Rodinia", 0.08, 1, 130, 60.0, 0.936),
    BenchmarkSpec("PATHFINDER", "PF", "Rodinia", 0.06, 5, 792, 58.0, 0.94),
    BenchmarkSpec("Coulombic Potential", "CP", "Parboil", 0.02, 1, 40, 64.0, 0.974),
    BenchmarkSpec("MRI-Q", "MRI-Q", "Parboil", 0.01, 3, 50, 64.0, 0.983),
]

MEMORY_BOUND_ABBRS = frozenset(
    s.abbr for s in TABLE2[:10]
)
COMPUTE_BOUND_ABBRS = frozenset(
    s.abbr for s in TABLE2[10:]
)

_CATALOG: Dict[str, BenchmarkSpec] = {s.abbr: s for s in TABLE2}


def catalog() -> Dict[str, BenchmarkSpec]:
    """Benchmark specs keyed by abbreviation."""
    return dict(_CATALOG)


def spec_for(abbr: str) -> BenchmarkSpec:
    """Look up one benchmark; raises :class:`ConfigError` if unknown."""
    try:
        return _CATALOG[abbr]
    except KeyError:
        raise ConfigError(
            f"unknown benchmark {abbr!r}; known: {sorted(_CATALOG)}"
        ) from None


def _kernel_variation(index: int, num_kernels: int) -> Tuple[float, float]:
    """Deterministic per-kernel (intensity, length) variation.

    Multi-kernel benchmarks mix heavier and lighter kernels around the
    application mean; single-kernel benchmarks get exactly the mean.  The
    pattern is a fixed +-20% triangle wave so results are reproducible
    without any random source.
    """
    if num_kernels == 1:
        return 1.0, 1.0
    phase = index / (num_kernels - 1)          # 0 .. 1
    swing = 0.35 * (2.0 * abs(phase - 0.5) * 2.0 - 1.0)  # -0.35 .. +0.35
    return 1.0 + swing, 1.0 - swing / 2.0


def build_application(
    abbr: str,
    app_id: int = 0,
    instructions_per_kernel: int = 6_000_000_000,
    with_hit_curve: bool = True,
) -> Application:
    """Instantiate a Table 2 benchmark as a runnable :class:`Application`.

    Each of the benchmark's ``num_kernels`` kernels varies around the
    published application-level profile; the aggregate MPKI matches
    Table 2.  ``with_hit_curve`` attaches a capacity-dependent hit-rate
    curve anchored at the full-GPU LLC (6 MB) so reduced allocations see
    reduced hit rates.
    """
    spec = spec_for(abbr)
    kernels = []
    for index in range(spec.num_kernels):
        intensity, length = _kernel_variation(index, spec.num_kernels)
        curve = None
        if with_hit_curve:
            # GPU kernels' LLC hits come mostly from spatial locality and
            # short-range reuse, so the hit rate is only mildly capacity
            # sensitive: a shallow power law saturating at the full 6 MB
            # LLC.  (A steep curve would wrongly collapse near-zero-MPKI
            # kernels like DXTC when their slice holds few channels.)
            curve = HitRateCurve(
                reference_capacity=6 * MB,
                reference_hit_rate=spec.llc_hit_rate,
                working_set=6.0 * MB,
                peak_hit_rate=spec.llc_hit_rate,
                alpha=0.15,
            )
        kernels.append(
            Kernel(
                name=f"{spec.abbr}#{index}",
                ipc_per_sm=spec.ipc_per_sm,
                apki_llc=spec.apki_llc * intensity,
                llc_hit_rate=spec.llc_hit_rate,
                footprint_bytes=spec.footprint_bytes,
                instructions=max(1, int(instructions_per_kernel * length)),
                hit_curve=curve,
            )
        )
    return Application(app_id=app_id, name=spec.abbr, kernels=kernels)
