"""Synthetic workload generators.

Deterministic trace and kernel builders used by tests and calibration —
no global random state: generators that need pseudo-randomness use an
explicit linear congruential generator seeded by the caller.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.errors import ConfigError
from repro.gpu.kernel import Kernel


def _lcg(seed: int) -> Iterator[int]:
    """Numerical-Recipes LCG; deterministic and dependency-free."""
    state = seed & 0xFFFFFFFF
    while True:
        state = (1664525 * state + 1013904223) & 0xFFFFFFFF
        yield state


def streaming_trace(num_lines: int, line_bytes: int = 128,
                    start: int = 0) -> List[int]:
    """Sequential one-touch addresses: worst case for any cache."""
    if num_lines < 0:
        raise ConfigError("num_lines must be non-negative")
    return [start + i * line_bytes for i in range(num_lines)]


def strided_trace(num_accesses: int, stride_bytes: int,
                  wrap_bytes: int, line_bytes: int = 128) -> List[int]:
    """Strided access over a circular ``wrap_bytes`` region."""
    if stride_bytes <= 0 or wrap_bytes <= 0:
        raise ConfigError("stride and wrap must be positive")
    return [(i * stride_bytes) % wrap_bytes for i in range(num_accesses)]


def hotset_trace(num_accesses: int, hot_bytes: int, cold_bytes: int,
                 hot_fraction: float = 0.9, line_bytes: int = 128,
                 seed: int = 1) -> List[int]:
    """A hot working set absorbing ``hot_fraction`` of accesses, the rest
    scattered over a cold region placed above it."""
    if not 0.0 <= hot_fraction <= 1.0:
        raise ConfigError("hot_fraction must be in [0, 1]")
    if hot_bytes <= 0 or cold_bytes <= 0:
        raise ConfigError("region sizes must be positive")
    rng = _lcg(seed)
    hot_lines = max(1, hot_bytes // line_bytes)
    cold_lines = max(1, cold_bytes // line_bytes)
    trace = []
    threshold = int(hot_fraction * 2**32)
    for _ in range(num_accesses):
        pick = next(rng)
        if pick < threshold:
            trace.append((pick % hot_lines) * line_bytes)
        else:
            trace.append(hot_bytes + (pick % cold_lines) * line_bytes)
    return trace


def synthetic_kernel(
    name: str = "synthetic",
    intensity: float = 0.5,
    footprint_mb: int = 256,
    instructions: int = 50_000_000,
) -> Kernel:
    """Build a kernel on a compute<->memory intensity dial.

    ``intensity`` = 0 is a pure-compute kernel (near-zero APKI, perfect
    hits); 1 is a pure-streaming kernel (high APKI, no reuse).  Useful for
    sweeping the classification boundary in tests and ablations.
    """
    if not 0.0 <= intensity <= 1.0:
        raise ConfigError("intensity must be in [0, 1]")
    apki = 0.05 + intensity * 12.0
    hit = 0.995 - intensity * 0.85
    return Kernel(
        name=name,
        ipc_per_sm=64.0 - intensity * 12.0,
        apki_llc=apki,
        llc_hit_rate=hit,
        footprint_bytes=footprint_mb * 1024 * 1024,
        instructions=instructions,
    )
