"""Workload models.

The paper evaluates 15 GPU-compute benchmarks (Table 2) from Rodinia,
Parboil, the CUDA SDK and Mars, plus 5 Tango AI workloads (Section 6.6).
We cannot run CUDA binaries, so each benchmark is modelled by the profile
UGPU's hardware observes: per-kernel peak issue rate, LLC APKI, hit rate
and footprint, pinned to the published Table 2 MPKI / kernel-count /
footprint columns (see DESIGN.md's substitution table).
"""

from repro.workloads.benchmarks import (
    COMPUTE_BOUND_ABBRS,
    MEMORY_BOUND_ABBRS,
    TABLE2,
    BenchmarkSpec,
    build_application,
    catalog,
    spec_for,
)
from repro.workloads.ai_models import AI_MODELS, build_ai_application
from repro.workloads.mixes import (
    MultiProgramMix,
    all_pairs,
    build_mix,
    eight_program_mixes,
    four_program_mixes,
    heterogeneous_pairs,
    homogeneous_pairs,
)
from repro.workloads.arrivals import (
    ArrivalEvent,
    ArrivalSchedule,
    poisson_arrivals,
)
from repro.workloads.characterize import TraceCharacterizer, TraceProfile
from repro.workloads.synthetic import (
    hotset_trace,
    strided_trace,
    streaming_trace,
    synthetic_kernel,
)

__all__ = [
    "BenchmarkSpec",
    "TABLE2",
    "MEMORY_BOUND_ABBRS",
    "COMPUTE_BOUND_ABBRS",
    "catalog",
    "spec_for",
    "build_application",
    "AI_MODELS",
    "build_ai_application",
    "MultiProgramMix",
    "heterogeneous_pairs",
    "homogeneous_pairs",
    "all_pairs",
    "build_mix",
    "four_program_mixes",
    "eight_program_mixes",
    "ArrivalEvent",
    "ArrivalSchedule",
    "poisson_arrivals",
    "streaming_trace",
    "strided_trace",
    "hotset_trace",
    "synthetic_kernel",
    "TraceCharacterizer",
    "TraceProfile",
]
