"""Characterize kernels from memory-access traces.

The Table 2 catalog pins profiles to published numbers; for *new*
workloads the pipeline a real deployment would use is: run (or sample) the
kernel, collect its L1-miss address trace, and derive the profile UGPU's
counters would report.  This module implements that pipeline against the
library's own cache model:

1. replay the trace through an LLC-sized set-associative cache to get the
   hit rate (and, via down-scaled replays, the capacity curve);
2. compute APKI from the access count and the instruction count;
3. derive the stall-free issue rate from the warp timing model.

The result is a ready-to-run :class:`~repro.gpu.kernel.Kernel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import ConfigError
from repro.gpu.config import GPUConfig
from repro.gpu.kernel import Kernel
from repro.gpu.llc import HitRateCurve, SetAssociativeCache
from repro.gpu.warp import WarpTimingModel


@dataclass(frozen=True)
class TraceProfile:
    """Raw quantities measured from a trace."""

    accesses: int
    instructions: int
    llc_hit_rate: float
    footprint_bytes: int

    @property
    def apki_llc(self) -> float:
        if self.instructions <= 0:
            return 0.0
        return self.accesses * 1000.0 / self.instructions


class TraceCharacterizer:
    """Turn (address trace, instruction count) into a kernel profile."""

    def __init__(self, config: Optional[GPUConfig] = None,
                 warp_model: Optional[WarpTimingModel] = None) -> None:
        config = config if config is not None else GPUConfig()
        config.validate()
        self.config = config
        self.warp_model = (
            warp_model if warp_model is not None else WarpTimingModel(config)
        )

    def _cache(self, capacity: int) -> SetAssociativeCache:
        cfg = self.config
        line = cfg.llc_line_bytes
        ways = cfg.llc_ways
        # Round the capacity to the nearest legal geometry.
        sets = max(1, capacity // (ways * line))
        return SetAssociativeCache(size_bytes=sets * ways * line,
                                   ways=ways, line_bytes=line)

    def measure(self, trace: Sequence[int], instructions: int) -> TraceProfile:
        """Replay ``trace`` through a full-LLC-sized cache."""
        if instructions <= 0:
            raise ConfigError("instructions must be positive")
        cache = self._cache(self.config.llc_size)
        stats = cache.run_trace(trace)
        line = self.config.llc_line_bytes
        footprint = len({a // line for a in trace}) * line
        return TraceProfile(
            accesses=len(trace),
            instructions=instructions,
            llc_hit_rate=stats.hit_rate,
            footprint_bytes=footprint,
        )

    def capacity_curve(self, trace: Sequence[int],
                       fractions: Sequence[float] = (0.125, 0.25, 0.5, 1.0),
                       ) -> HitRateCurve:
        """Fit a :class:`HitRateCurve` by replaying at scaled capacities."""
        if not trace:
            raise ConfigError("cannot fit a curve to an empty trace")
        points = []
        for fraction in fractions:
            capacity = max(1, int(self.config.llc_size * fraction))
            cache = self._cache(capacity)
            points.append((capacity, cache.run_trace(trace).hit_rate))
        full_capacity, full_hit = points[-1]
        # Working set: the smallest measured capacity already at (close
        # to) the full-capacity hit rate; default to full capacity.
        working_set = float(full_capacity)
        for capacity, hit in points:
            if full_hit <= 0 or hit >= 0.98 * full_hit:
                working_set = float(capacity)
                break
        return HitRateCurve(
            reference_capacity=float(full_capacity),
            reference_hit_rate=full_hit,
            working_set=max(working_set, 1.0),
            peak_hit_rate=full_hit,
        )

    def kernel_from_trace(self, name: str, trace: Sequence[int],
                          instructions: int,
                          with_curve: bool = True) -> Kernel:
        """The full pipeline: trace -> runnable kernel profile."""
        profile = self.measure(trace, instructions)
        probe = Kernel(
            name=name,
            ipc_per_sm=1.0,  # placeholder; replaced below
            apki_llc=profile.apki_llc,
            llc_hit_rate=profile.llc_hit_rate,
            footprint_bytes=profile.footprint_bytes,
            instructions=instructions,
        )
        ipc = self.warp_model.ipc_per_sm(probe)
        curve = self.capacity_curve(trace) if with_curve and trace else None
        return Kernel(
            name=name,
            ipc_per_sm=max(ipc, 1.0),
            apki_llc=profile.apki_llc,
            llc_hit_rate=profile.llc_hit_rate,
            footprint_bytes=profile.footprint_bytes,
            instructions=instructions,
            hit_curve=curve,
        )
