"""Analytic migration cost model, calibrated against the command-level
HBM model (see ``benchmarks/test_sens_migration_latency.py``).

Three modes, matching the paper's evaluated design points (Section 6.2):

* ``PPMM`` — full PageMove: Figure 8 mapping + 4x8 crossbar + MIGRATION
  command.  A page needs 32 MIGRATION commands; within each stack the 4
  bank groups copy concurrently, so only ``columns_per_slice`` (2) commands
  serialize per bank group: ~80 GPU cycles of DRAM-side latency per page.
  Demand traffic keeps flowing because the copies use idle TSVs, costing
  only a small bank-group-occupancy penalty on the two involved channels.
* ``SOFTWARE`` — UGPU-Soft: the customized mapping and virtual-memory
  updates but no crossbar.  Pages still move within a stack, but over the
  normal READ/WRITE path, monopolizing the source and destination channel
  data buses for the copy duration.
* ``TRADITIONAL`` — UGPU-Ori: stock mapping, so a page's data is spread
  over *all* channels; reallocation re-organizes data across the whole
  hierarchy through the NoC and LLC, stalling demand traffic system-wide.

All returned latencies are GPU core cycles.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.hbm.config import HBMConfig
from repro.pagemove.address_mapping import PageMoveAddressMapping
from repro.vm.driver import DRIVER_FAULT_CYCLES


class MigrationMode(enum.Enum):
    """Page migration mechanism being modelled."""

    PPMM = "ppmm"
    SOFTWARE = "software"
    TRADITIONAL = "traditional"


@dataclass(frozen=True)
class MigrationCharge:
    """Cost of migrating a batch of pages.

    Attributes
    ----------
    window_cycles:
        Wall-clock GPU cycles the migration occupies (applications keep
        executing during this window; see Figure 12a).
    channel_bw_penalty:
        Fraction of the source/destination channels' bandwidth consumed by
        the copies during the window (0..1).
    global_penalty:
        System-wide slowdown factor during the window (NoC/LLC pollution),
        nonzero only in TRADITIONAL mode.
    commands:
        DRAM data-movement commands issued (MIGRATIONs, or READ+WRITE
        pairs for the software paths).
    bytes_moved:
        Total payload migrated.
    """

    window_cycles: float
    channel_bw_penalty: float
    global_penalty: float
    commands: int
    bytes_moved: int


class MigrationCostModel:
    """Closed-form costs for the three migration mechanisms."""

    #: Fraction of a channel's bandwidth PPMM steals (bank groups briefly
    #: busy with MIGRATION columns; the external bus stays free).
    PPMM_BW_PENALTY = 0.12
    #: The software paths monopolize the two involved channels.
    SOFT_BW_PENALTY = 1.0
    #: TRADITIONAL additionally slows the whole system (NoC + LLC churn).
    TRADITIONAL_GLOBAL_PENALTY = 0.30

    def __init__(self, config: HBMConfig = HBMConfig(),
                 mapping: PageMoveAddressMapping = None,
                 driver_cycles: int = DRIVER_FAULT_CYCLES) -> None:
        config.validate()
        self.config = config
        self.mapping = mapping if mapping is not None else PageMoveAddressMapping(config)
        if driver_cycles < 0:
            raise ConfigError("driver_cycles must be non-negative")
        self.driver_cycles = driver_cycles

    # ------------------------------------------------------------------
    # Per-page latencies
    # ------------------------------------------------------------------
    def page_cycles(self, mode: MigrationMode) -> float:
        """Serialized GPU cycles to move one page, excluding driver time."""
        cfg = self.config
        mig_gpu = cfg.migration_gpu_cycles_per_command()
        if mode is MigrationMode.PPMM:
            # Bank groups copy in parallel; only the per-bank-group chain
            # of `columns_per_slice` MIGRATIONs serializes (2 x 40 = 80).
            return self.mapping.serialized_migrations_per_bank_group * mig_gpu
        # Software copy of one page slice per stack over the channel bus:
        # without the crossbar the data leaves the source die through its
        # TSVs, is buffered on the logic die, and re-enters through the
        # destination die's TSVs — each 128 B column crosses a channel bus
        # twice on the read side and twice on the write side (4 bus
        # transits per column), plus row handling on both banks.
        slice_bytes = self.mapping.page_size // cfg.num_stacks
        bursts = slice_bytes // cfg.column_bytes
        mem_clocks = 4 * bursts * cfg.timing.tBL
        soft = cfg.to_gpu_cycles(mem_clocks) + cfg.to_gpu_cycles(
            2 * (cfg.timing.tRCD + cfg.timing.tRP)         # row handling
        )
        if mode is MigrationMode.SOFTWARE:
            return soft
        if mode is MigrationMode.TRADITIONAL:
            # Stock mapping: data crosses the NoC twice (to the GPU and
            # back) and cannot exploit intra-stack locality: ~2x the
            # software path plus a fixed per-page driver/LLC detour.
            return 2.0 * soft + 120.0
        raise ConfigError(f"unknown migration mode {mode}")  # pragma: no cover

    def commands_per_page(self, mode: MigrationMode) -> int:
        """DRAM data commands issued per page."""
        columns = self.mapping.page_size // self.config.column_bytes
        if mode is MigrationMode.PPMM:
            return self.mapping.migrations_per_page
        return 2 * columns  # READ + WRITE per cache line

    # ------------------------------------------------------------------
    # Batch costs
    # ------------------------------------------------------------------
    def charge(self, n_pages: int, mode: MigrationMode) -> MigrationCharge:
        """Cost of migrating ``n_pages`` in one reallocation batch.

        Pages pipeline back-to-back within a channel pair; the driver pays
        one software invocation per batch plus a small per-page table
        update folded into the pipeline.
        """
        if n_pages < 0:
            raise ConfigError(f"n_pages must be non-negative, got {n_pages}")
        if n_pages == 0:
            return MigrationCharge(0.0, 0.0, 0.0, 0, 0)
        per_page = self.page_cycles(mode)
        window = self.driver_cycles + n_pages * per_page
        penalty = (
            self.PPMM_BW_PENALTY
            if mode is MigrationMode.PPMM
            else self.SOFT_BW_PENALTY
        )
        global_penalty = (
            self.TRADITIONAL_GLOBAL_PENALTY
            if mode is MigrationMode.TRADITIONAL
            else 0.0
        )
        return MigrationCharge(
            window_cycles=window,
            channel_bw_penalty=penalty,
            global_penalty=global_penalty,
            commands=n_pages * self.commands_per_page(mode),
            bytes_moved=n_pages * self.mapping.page_size,
        )

    def fault_migration_cycles(self, mode: MigrationMode) -> float:
        """Latency of a single demand-triggered page migration (a
        LOST_CHANNEL or REBALANCE fault): driver software plus one page."""
        return self.driver_cycles + self.page_cycles(mode)
