"""PageMove: fast page migration between HBM channels (paper Section 4).

Three cooperating pieces:

* :mod:`repro.pagemove.address_mapping` — the customized physical address
  mapping of Figure 8, which confines every page to one channel index
  (replicated across stacks) and spreads it over all bank groups, so a
  page migration is an intra-stack, bank-group-parallel operation.
* :mod:`repro.pagemove.engine` — the migration engine: plans which pages
  move when channels change hands, drives the command-level HBM model for
  PPMM execution, and updates TLBs/page tables/driver state coherently.
* :mod:`repro.pagemove.cost` — the calibrated analytic cost model used by
  the epoch-level system simulation, with one mode per evaluated design
  point (PPMM / software-only / traditional).
"""

from repro.pagemove.address_mapping import (
    ColumnLocation,
    InterleavedPageMapping,
    PageCoordinates,
    PageMoveAddressMapping,
)
from repro.pagemove.cost import MigrationCostModel, MigrationMode
from repro.pagemove.engine import (
    MigrationEngine,
    MigrationPlan,
    MigrationReport,
    PageMigration,
)

__all__ = [
    "ColumnLocation",
    "PageCoordinates",
    "PageMoveAddressMapping",
    "InterleavedPageMapping",
    "MigrationMode",
    "MigrationCostModel",
    "MigrationEngine",
    "MigrationPlan",
    "MigrationReport",
    "PageMigration",
]
