"""Migration engine: plan and execute page migrations coherently.

This is the orchestration layer of Section 4.4.  When the resource
partitioner hands a memory channel from one application to another, the
engine:

1. flushes every SM's L1 TLB (all translations revalidate via the L2),
2. programs the L2-TLB channel-status register for both applications,
3. plans the page set to migrate — *eager* migrations vacate channels the
   losing application no longer owns; *lazy* migrations spread the gaining
   application's pages onto its new channels for bandwidth,
4. executes the plan: updates the driver's residency bookkeeping, the page
   table, and the L2 TLB, and costs the data movement with the
   :class:`~repro.pagemove.cost.MigrationCostModel` (or, for validation,
   by driving the command-level HBM model MIGRATION by MIGRATION).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import islice
from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import MigrationError, ProtocolError
from repro.fastpath import resolve_kernel_backend
from repro.hbm.commands import activate, migration, precharge
from repro.hbm.system import HBMSystem
from repro.pagemove.address_mapping import PageMoveAddressMapping
from repro.pagemove.cost import MigrationCharge, MigrationCostModel, MigrationMode
from repro.vm.channel_registry import ChannelStatusRegister
from repro.vm.driver import FaultKind, GPUDriver
from repro.vm.tlb import TLB

#: Retries granted to one MIGRATION command waiting for a narrow (stock)
#: crossbar route to free before the command-level replay gives up.
CROSSBAR_RETRY_LIMIT = 256

#: Page count above which the round-robin destination assignment is worth
#: computing as one vectorized modular arange instead of a python loop.
_VECTOR_THRESHOLD = 64


def _round_robin_destinations(kept: Sequence[int], start: int, count: int) -> List[int]:
    """Destination channels for ``count`` pages round-robined over
    ``kept``, continuing from offset ``start``.

    Under the numpy backend large batches collapse to a single modular
    ``arange`` gather; the scalar walk ``kept[(start + i) % len(kept)]``
    is the oracle.  Destinations are exact integers either way
    (``.tolist()`` yields python ints), so the backends agree bit-for-bit.
    """
    n = len(kept)
    if n == 1:
        return [kept[0]] * count
    if count >= _VECTOR_THRESHOLD and resolve_kernel_backend() == "numpy":
        import numpy as np

        return np.asarray(kept, dtype=np.int64)[
            (start + np.arange(count, dtype=np.int64)) % n
        ].tolist()
    return [kept[(start + i) % n] for i in range(count)]


@dataclass(frozen=True)
class PageMigration:
    """One page's planned move between channel groups."""

    app_id: int
    vpn: int
    src_channel: int
    dst_channel: int


@dataclass
class MigrationPlan:
    """Planned migrations for one reallocation event.

    ``eager`` pages sit in channels taken away and must move before the
    new owner can use them; ``lazy`` pages are rebalance candidates that
    migrate opportunistically (demand faults / background trickle).
    """

    app_id: int
    old_channels: frozenset
    new_channels: frozenset
    eager: List[PageMigration] = field(default_factory=list)
    lazy: List[PageMigration] = field(default_factory=list)

    @property
    def lost_channels(self) -> frozenset:
        return self.old_channels - self.new_channels

    @property
    def gained_channels(self) -> frozenset:
        return self.new_channels - self.old_channels

    @property
    def total_pages(self) -> int:
        return len(self.eager) + len(self.lazy)


@dataclass
class MigrationReport:
    """Outcome of executing a migration plan."""

    plan: MigrationPlan
    eager_charge: MigrationCharge
    lazy_charge: MigrationCharge
    l1_entries_flushed: int = 0
    l2_entries_invalidated: int = 0

    @property
    def pages_moved(self) -> int:
        return len(self.plan.eager) + len(self.plan.lazy)

    @property
    def window_cycles(self) -> float:
        """Wall-clock cycles of the eager migration window; lazy moves
        overlap with execution and are charged separately."""
        return self.eager_charge.window_cycles


class MigrationEngine:
    """Coordinates driver, TLBs, status register and the cost model."""

    def __init__(
        self,
        driver: GPUDriver,
        mapping: Optional[PageMoveAddressMapping] = None,
        cost_model: Optional[MigrationCostModel] = None,
        l2_tlb: Optional[TLB] = None,
        l1_tlbs: Optional[Sequence[TLB]] = None,
        registry: Optional[ChannelStatusRegister] = None,
        mode: MigrationMode = MigrationMode.PPMM,
        tracer=None,
        metrics=None,
        profiler=None,
        log=None,
    ) -> None:
        self.driver = driver
        self.tracer = tracer
        self.metrics = metrics
        self.profiler = profiler
        self.log = log
        if metrics is not None:
            from repro.telemetry import names as _names

            self._m_pages = _names.pagemove_pages_total(metrics)
            self._m_commands = _names.pagemove_commands_total(metrics)
            self._m_window = _names.pagemove_window_cycles_total(metrics)
        self.mapping = mapping if mapping is not None else PageMoveAddressMapping()
        self.cost_model = (
            cost_model if cost_model is not None else MigrationCostModel(mapping=self.mapping)
        )
        self.l2_tlb = l2_tlb if l2_tlb is not None else TLB.l2()
        self.l1_tlbs = list(l1_tlbs) if l1_tlbs is not None else []
        self.registry = registry if registry is not None else ChannelStatusRegister(
            num_channel_groups=driver.num_channel_groups
        )
        self.mode = mode
        self.reports: List[MigrationReport] = []

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan_channel_reallocation(
        self, app_id: int, new_channels: Iterable[int],
        rebalance_cap: Optional[int] = None,
    ) -> MigrationPlan:
        """Compute the page moves implied by switching ``app_id`` from its
        current channel set to ``new_channels``.

        ``rebalance_cap`` bounds the lazy batch (None = rebalance fully).
        """
        if self.profiler is not None:
            with self.profiler.span("pagemove.plan"):
                return self._plan_channel_reallocation(
                    app_id, new_channels, rebalance_cap
                )
        return self._plan_channel_reallocation(app_id, new_channels, rebalance_cap)

    def _plan_channel_reallocation(
        self, app_id: int, new_channels: Iterable[int],
        rebalance_cap: Optional[int] = None,
    ) -> MigrationPlan:
        old = frozenset(self.driver.assigned_channels(app_id))
        new = frozenset(new_channels)
        if not new:
            raise MigrationError("an application must keep at least one channel")
        plan = MigrationPlan(app_id=app_id, old_channels=old, new_channels=new)
        table = self.driver.page_tables[app_id]

        kept = sorted(old & new) or sorted(new)
        # Eager: vacate lost channels, round-robin over surviving channels.
        # The per-page destination is a pure function of the page's ordinal,
        # so the whole channel's assignment is computed in one batch.
        eager = plan.eager
        rr = 0
        for channel in sorted(old - new):
            vpns = [vpn for vpn, _ in table.pages_in_channel(channel)]
            if not vpns:
                continue
            dsts = _round_robin_destinations(kept, rr, len(vpns))
            eager.extend(
                PageMigration(app_id, vpn, src_channel=channel, dst_channel=dst)
                for vpn, dst in zip(vpns, dsts)
            )
            rr += len(vpns)

        # Lazy: move pages toward the gained channels until balanced.
        gained = sorted(new - old)
        if gained:
            counts = table.channel_page_counts()
            resident = sum(counts.get(c, 0) for c in new)
            target = resident // len(new) if new else 0
            budget = rebalance_cap
            donors = sorted(
                (c for c in old & new),
                key=lambda c: -counts.get(c, 0),
            )
            # A gained channel may already hold pages (a previous
            # reallocation's lazy batch, or demand faults since the
            # channel was last owned); its need is the shortfall to the
            # balance target, never the full target, or back-to-back
            # reallocations over-migrate into partially filled channels.
            need = {g: max(0, target - counts.get(g, 0)) for g in gained}
            lazy = plan.lazy
            single = gained[0] if len(gained) == 1 else None
            for donor in donors:
                surplus = counts.get(donor, 0) - target
                if surplus <= 0:
                    continue
                if single is not None:
                    # Bulk fast path: with one gained channel every page
                    # shares a destination, so the per-page max()/decrement
                    # walk collapses to a single sliced take.  Once need or
                    # budget hits zero no later donor can contribute either.
                    take = min(surplus, need[single])
                    if budget is not None:
                        take = min(take, budget)
                    if take <= 0:
                        break
                    lazy.extend(
                        PageMigration(
                            app_id, vpn, src_channel=donor, dst_channel=single
                        )
                        for vpn, _ in islice(table.pages_in_channel(donor), take)
                    )
                    need[single] -= take
                    if budget is not None:
                        budget -= take
                    continue
                for vpn, entry in table.pages_in_channel(donor):
                    if surplus <= 0:
                        break
                    dst = max(need, key=lambda g: need[g])
                    if need[dst] <= 0:
                        break
                    if budget is not None and budget <= 0:
                        break
                    lazy.append(
                        PageMigration(app_id, vpn, src_channel=donor, dst_channel=dst)
                    )
                    need[dst] -= 1
                    surplus -= 1
                    if budget is not None:
                        budget -= 1
        if self.tracer is not None:
            self.tracer.emit(
                "migration", "plan", app_id=app_id,
                eager=len(plan.eager), lazy=len(plan.lazy),
                lost_channels=sorted(plan.lost_channels),
                gained_channels=sorted(plan.gained_channels),
            )
        if self.log is not None:
            self.log.debug(
                "pagemove.plan", job_id=app_id,
                eager=len(plan.eager), lazy=len(plan.lazy),
                lost=len(plan.lost_channels),
                gained=len(plan.gained_channels),
            )
        return plan

    # ------------------------------------------------------------------
    # Execution (bookkeeping + analytic cost)
    # ------------------------------------------------------------------
    def execute(self, plan: MigrationPlan, include_lazy: bool = True) -> MigrationReport:
        """Apply a plan: VM state updates plus analytic data-movement cost.

        The plan is validated against destination-channel capacity before
        any page moves, so a plan that cannot complete is rejected whole
        rather than leaving the address space half-migrated.
        """
        if self.profiler is not None:
            with self.profiler.span("pagemove.execute"):
                return self._execute(plan, include_lazy)
        return self._execute(plan, include_lazy)

    def _execute(self, plan: MigrationPlan, include_lazy: bool = True) -> MigrationReport:
        app_id = plan.app_id
        self._check_capacity(plan, include_lazy)
        # 1. Flush L1 TLBs (all SMs revalidate through the L2 TLB).
        l1_flushed = sum(tlb.flush() for tlb in self.l1_tlbs)

        # 2. Program the channel-status register.  The register's status
        # bit is a single bit, so a plan that both loses and gains
        # channels must pick one direction: LOST wins.  Vacating
        # deallocated channels is the coherence-critical work of Section
        # 4.4 — marking the kept set (new_channels) routes every
        # translation landing outside it to a LOST_CHANNEL fault — while
        # the gained-side rebalance proceeds lazily via demand faults
        # without needing register guidance.
        if plan.lost_channels:
            self.registry.set_lost(app_id, sorted(plan.new_channels))
        elif plan.gained_channels:
            self.registry.set_gained(app_id, sorted(plan.gained_channels))

        # 3. Update the driver's channel assignment.
        self.driver.reassign_channels(app_id, plan.new_channels)

        # 4. Move pages: eager always, lazy optionally.
        l2_invalidated = 0
        l2_invalidated += self._move_pages(plan.eager, FaultKind.LOST_CHANNEL)
        lazy_moves = plan.lazy if include_lazy else []
        l2_invalidated += self._move_pages(lazy_moves, FaultKind.REBALANCE)

        # 5. Clear the register once balanced (Section 4.4).  Tolerance 1
        # matches GPUDriver.is_balanced's default and the paper's
        # clearing condition: per-channel page counts within one page of
        # each other.  (A tolerance scaled by channel count would declare
        # an 8-channel app "balanced" at a max-min spread of 8 pages and
        # clear the register while rebalancing is still in flight.)
        if self.driver.is_balanced(app_id, tolerance=1):
            self.registry.clear(app_id)

        report = MigrationReport(
            plan=plan,
            eager_charge=self.cost_model.charge(len(plan.eager), self.mode),
            lazy_charge=self.cost_model.charge(len(lazy_moves), self.mode),
            l1_entries_flushed=l1_flushed,
            l2_entries_invalidated=l2_invalidated,
        )
        self.reports.append(report)
        if self.tracer is not None:
            direction = self.registry.direction(app_id)
            self.tracer.emit(
                "migration", "execute",
                duration=report.window_cycles, app_id=app_id,
                eager=len(plan.eager), lazy=len(lazy_moves),
                mode=self.mode.value,
                l1_flushed=l1_flushed, l2_invalidated=l2_invalidated,
                register=direction.name.lower() if direction else "cleared",
                eager_cycles=report.eager_charge.window_cycles,
                lazy_cycles=report.lazy_charge.window_cycles,
            )
        if self.metrics is not None:
            self._m_pages.labels(kind="eager").inc(len(plan.eager))
            self._m_pages.labels(kind="lazy").inc(len(lazy_moves))
            self._m_window.inc(report.window_cycles)
        if self.log is not None:
            self.log.info(
                "pagemove.execute", job_id=app_id,
                eager=len(plan.eager), lazy=len(lazy_moves),
                window_cycles=round(report.window_cycles, 3),
                l1_flushed=l1_flushed, l2_invalidated=l2_invalidated,
            )
        return report

    def _check_capacity(self, plan: MigrationPlan, include_lazy: bool) -> None:
        """Reject plans whose destinations cannot absorb the pages.

        Frames freed by this plan's own moves *out of* a channel do not
        count: the conservative check is incoming pages against currently
        free frames, which is exact for the eager (vacate) direction and
        safe for rebalance.
        """
        moves = list(plan.eager) + (list(plan.lazy) if include_lazy else [])
        incoming: dict = {}
        for move in moves:
            incoming[move.dst_channel] = incoming.get(move.dst_channel, 0) + 1
        for channel, pages in incoming.items():
            free = self.driver.free_pages(channel)
            if pages > free:
                raise MigrationError(
                    f"plan needs {pages} frames in channel {channel} but "
                    f"only {free} are free; rejecting before any page moves"
                )

    def _move_pages(self, migrations: List[PageMigration], kind: FaultKind) -> int:
        if not migrations:
            return 0
        invalidated = 0
        tables = self.driver.page_tables
        invalidate = self.l2_tlb.invalidate
        handle_fault = self.driver.handle_fault
        for move in migrations:
            entry = tables[move.app_id].lookup(move.vpn)
            if entry is None or entry.channel != move.src_channel:
                raise MigrationError(
                    f"stale plan: vpn {move.vpn:#x} not resident in channel "
                    f"{move.src_channel}"
                )
            if invalidate(move.app_id, move.vpn):
                invalidated += 1
            handle_fault(
                kind, move.app_id, move.vpn, target_channel=move.dst_channel
            )
        return invalidated

    # ------------------------------------------------------------------
    # Command-level execution (validation path)
    # ------------------------------------------------------------------
    def execute_page_on_hardware(
        self, system: HBMSystem, src_rpn: int, dst_channel: int, now: int = 0
    ) -> int:
        """Drive the command-level HBM model to migrate one page.

        Issues the paper's 32 MIGRATION commands (2 per bank group, over
        all 4 stacks) preceded by the row activations both sides need.
        Returns the completion cycle (memory clock domain).  Used by the
        migration-latency microbenchmarks to validate the analytic model.
        """
        coords = self.mapping.page_coordinates(src_rpn)
        if dst_channel == coords.channel:
            raise MigrationError("destination channel equals source channel")
        cfg = system.config
        done = now
        commands_issued = 0
        for stack_idx, stack in enumerate(system.stacks):
            src_ch = stack.channel(coords.channel)
            dst_ch = stack.channel(dst_channel)
            # Activate the row in every bank group on both sides (skipping
            # banks whose row is already open from a previous page).
            ready = now
            for group in range(cfg.bank_groups_per_channel):
                for ch in (src_ch, dst_ch):
                    bank = ch.groups[group].bank(coords.bank)
                    if bank.is_row_open(coords.row):
                        continue
                    if bank.open_row is not None:
                        pre = precharge(group, coords.bank)
                        at = ch.earliest_issue(pre, ready)
                        ch.issue(pre, at)
                        ready = max(ready, at)
                    cmd = activate(group, coords.bank, coords.row)
                    at = ch.earliest_issue(cmd, ready)
                    ch.issue(cmd, at)
                    ready = max(ready, at)
            ready += cfg.timing.tRCD
            # PPMM issues wave by wave: one MIGRATION per bank group
            # concurrently, then each group's next column — so only
            # `columns_per_slice` commands serialize per group and the
            # shared command bus sees the waves in chronological order.
            group_time = {g: ready for g in range(cfg.bank_groups_per_channel)}
            for slot in range(self.mapping.columns_per_slice):
                for group in range(cfg.bank_groups_per_channel):
                    column = coords.column_base + slot
                    t = group_time[group]
                    tsv = stack.find_idle_tsv(
                        t, exclude=[coords.channel, dst_channel], window=0
                    )
                    # Bounded wait for a TSV bundle to free up.
                    waited = 0
                    while tsv is None and waited < 64:
                        t += cfg.timing.tMIG // 4
                        waited += 1
                        tsv = stack.find_idle_tsv(
                            t, exclude=[coords.channel, dst_channel], window=0
                        )
                    if tsv is None:
                        raise MigrationError("no idle TSV bundle available")
                    cmd = migration(
                        group, coords.bank, coords.row, column,
                        dest_channel=dst_channel, dest_bank_group=group,
                        dest_bank=coords.bank, dest_row=coords.row,
                        dest_column=column, tsv_index=tsv,
                    )
                    # A narrow (stock) crossbar may reject the route; wait
                    # for it to free and retry — this is exactly the
                    # serialization PageMove's 4x8 crossbar removes.
                    for _ in range(CROSSBAR_RETRY_LIMIT):
                        try:
                            group_time[group] = stack.issue_migration(
                                coords.channel, cmd, t
                            )
                            commands_issued += 1
                            break
                        except ProtocolError:
                            t += cfg.timing.tMIG // 4
                    else:  # pragma: no cover - defensive
                        raise RuntimeError(
                            f"crossbar route {coords.channel}->{dst_channel} "
                            f"(stack {stack_idx}, bank group {group}) did not "
                            f"free after {CROSSBAR_RETRY_LIMIT} retries; the "
                            "migration replay is not converging"
                        )
            done = max(done, max(group_time.values()))
        if self.metrics is not None:
            self._m_commands.inc(commands_issued)
        return done
