"""PageMove's customized physical address mapping (paper Figure 8).

Bit layout of a physical byte address, low to high, for the baseline
geometry (4 stacks, 8 channels/stack, 4 bank groups/channel, 4 banks/group,
2 KB rows, 128 B cache lines, 4 KB pages)::

    [6:0]    byte within a 128 B cache line (column)
    [8:7]    HBM stack id                      (paper: "bits [7:8]")
    [10:9]   bank group id                     (paper: "bits [9:10]")
    [11]     low column bit
    [14:12]  channel within each stack         (paper: "bits [12:14]")
    [16:15]  bank id within the bank group
    [19:17]  high column bits
    [33:20]  row id

Consequences the paper relies on, all testable properties here:

* A 4 KB page occupies exactly one *channel index* but is striped across
  all 4 stacks and all 4 bank groups (16 slices of 256 B = 2 columns each).
* Migrating a page to another channel never crosses a stack boundary, and
  all 4 bank groups can copy their slices concurrently — 32 MIGRATION
  commands per page, at most 2 serialized per bank group.
* The driver can steer a page's channel by choosing the frame number's low
  bits (the channel field sits directly above the page offset).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.errors import AddressError, ConfigError
from repro.hbm.config import HBMConfig
from repro.units import log2_int


@dataclass(frozen=True)
class ColumnLocation:
    """DRAM coordinates of one 128 B cache line."""

    stack: int
    channel: int
    bank_group: int
    bank: int
    row: int
    column: int


@dataclass(frozen=True)
class PageCoordinates:
    """Where a whole page lives: shared coordinates of its 32 columns.

    A page's columns share the channel index, bank and row; they differ in
    stack, bank group and the two column slots.
    """

    channel: int
    bank: int
    row: int
    column_base: int    #: first of the page's columns within the row
    columns_per_slice: int  #: columns per (stack, bank group) slice


class PageMoveAddressMapping:
    """Decode/encode physical addresses under the Figure 8 layout."""

    def __init__(self, config: HBMConfig = HBMConfig(), page_size: int = 4096) -> None:
        config.validate()
        self.config = config
        self.page_size = page_size
        self.line_bits = log2_int(config.column_bytes)
        self.stack_bits = log2_int(config.num_stacks)
        self.group_bits = log2_int(config.bank_groups_per_channel)
        self.channel_bits = log2_int(config.channels_per_stack)
        self.bank_bits = log2_int(config.banks_per_group)
        self.column_bits = log2_int(config.columns_per_row)
        page_bits = log2_int(page_size)
        #: Bits of column index that fall inside the page offset.
        self.low_column_bits = page_bits - (
            self.line_bits + self.stack_bits + self.group_bits
        )
        if self.low_column_bits < 0:
            raise ConfigError(
                f"page size {page_size} too small for the interleave fields"
            )
        if self.low_column_bits > self.column_bits:
            raise ConfigError(
                f"page size {page_size} needs {self.low_column_bits} low column"
                f" bits but rows only have {self.column_bits} column bits"
            )
        self.high_column_bits = self.column_bits - self.low_column_bits
        self.page_bits = page_bits

    # ------------------------------------------------------------------
    # Derived geometry
    # ------------------------------------------------------------------
    @property
    def slices_per_page(self) -> int:
        """(stack, bank group) slices a page is striped over (16)."""
        return self.config.num_stacks * self.config.bank_groups_per_channel

    @property
    def columns_per_slice(self) -> int:
        """Cache lines of one page held by one (stack, bank group) (2)."""
        return 1 << self.low_column_bits

    @property
    def migrations_per_page(self) -> int:
        """MIGRATION commands needed per page (32 in the paper)."""
        return self.slices_per_page * self.columns_per_slice

    @property
    def serialized_migrations_per_bank_group(self) -> int:
        """MIGRATIONs that must serialize on one bank group's bus (2)."""
        return self.columns_per_slice

    @property
    def total_bytes(self) -> int:
        """Physical memory capacity the mapping addresses."""
        cfg = self.config
        return (
            cfg.num_stacks
            * cfg.channels_per_stack
            * cfg.bank_groups_per_channel
            * cfg.banks_per_group
            * cfg.rows_per_bank
            * cfg.row_size_bytes
        )

    @property
    def pages_per_channel(self) -> int:
        return self.total_bytes // self.config.channels_per_stack // self.page_size

    # ------------------------------------------------------------------
    # Byte-address decode
    # ------------------------------------------------------------------
    def decode(self, address: int) -> ColumnLocation:
        """Decode a physical byte address into DRAM coordinates."""
        if not 0 <= address < self.total_bytes:
            raise AddressError(
                f"physical address {address:#x} outside {self.total_bytes:#x}"
            )
        bits = address >> self.line_bits
        stack = bits & ((1 << self.stack_bits) - 1)
        bits >>= self.stack_bits
        group = bits & ((1 << self.group_bits) - 1)
        bits >>= self.group_bits
        col_low = bits & ((1 << self.low_column_bits) - 1)
        bits >>= self.low_column_bits
        channel = bits & ((1 << self.channel_bits) - 1)
        bits >>= self.channel_bits
        bank = bits & ((1 << self.bank_bits) - 1)
        bits >>= self.bank_bits
        col_high = bits & ((1 << self.high_column_bits) - 1)
        bits >>= self.high_column_bits
        row = bits
        if row >= self.config.rows_per_bank:
            raise AddressError(f"row {row} out of range")  # pragma: no cover
        return ColumnLocation(
            stack=stack,
            channel=channel,
            bank_group=group,
            bank=bank,
            row=row,
            column=(col_high << self.low_column_bits) | col_low,
        )

    # ------------------------------------------------------------------
    # Page-granularity helpers
    # ------------------------------------------------------------------
    def channel_of_page(self, rpn: int) -> int:
        """Channel index a physical page lives in (rpn low bits)."""
        self._check_rpn(rpn)
        return rpn & ((1 << self.channel_bits) - 1)

    def page_coordinates(self, rpn: int) -> PageCoordinates:
        """Shared DRAM coordinates of a page's columns."""
        self._check_rpn(rpn)
        bits = rpn
        channel = bits & ((1 << self.channel_bits) - 1)
        bits >>= self.channel_bits
        bank = bits & ((1 << self.bank_bits) - 1)
        bits >>= self.bank_bits
        col_high = bits & ((1 << self.high_column_bits) - 1)
        bits >>= self.high_column_bits
        row = bits
        return PageCoordinates(
            channel=channel,
            bank=bank,
            row=row,
            column_base=col_high << self.low_column_bits,
            columns_per_slice=self.columns_per_slice,
        )

    def rpn_for(self, channel: int, bank: int, row: int, column_slot: int = 0) -> int:
        """Compose a frame number from DRAM coordinates (inverse of
        :meth:`page_coordinates`); ``column_slot`` picks one of the pages
        sharing a row."""
        if not 0 <= channel < self.config.channels_per_stack:
            raise AddressError(f"channel {channel} out of range")
        if not 0 <= bank < self.config.banks_per_group:
            raise AddressError(f"bank {bank} out of range")
        if not 0 <= row < self.config.rows_per_bank:
            raise AddressError(f"row {row} out of range")
        if not 0 <= column_slot < (1 << self.high_column_bits):
            raise AddressError(f"column slot {column_slot} out of range")
        rpn = row
        rpn = (rpn << self.high_column_bits) | column_slot
        rpn = (rpn << self.bank_bits) | bank
        rpn = (rpn << self.channel_bits) | channel
        return rpn

    def page_columns(self, rpn: int) -> List[ColumnLocation]:
        """All cache-line locations of a page, ordered by (stack, group,
        slice column) — the order PPMM issues MIGRATIONs in."""
        coords = self.page_coordinates(rpn)
        cfg = self.config
        locations = []
        for stack in range(cfg.num_stacks):
            for group in range(cfg.bank_groups_per_channel):
                for slot in range(self.columns_per_slice):
                    locations.append(
                        ColumnLocation(
                            stack=stack,
                            channel=coords.channel,
                            bank_group=group,
                            bank=coords.bank,
                            row=coords.row,
                            column=coords.column_base + slot,
                        )
                    )
        return locations

    def retarget_page(self, rpn: int, new_channel: int) -> int:
        """Frame number of the same in-stack location in another channel —
        the destination shape PPMM migrations preserve."""
        coords = self.page_coordinates(rpn)
        slot = coords.column_base >> self.low_column_bits
        return self.rpn_for(new_channel, coords.bank, coords.row, slot)

    def frames_of_channel(self, channel: int) -> Iterator[int]:
        """All frame numbers living in ``channel``, ascending."""
        if not 0 <= channel < self.config.channels_per_stack:
            raise AddressError(f"channel {channel} out of range")
        step = 1 << self.channel_bits
        total_frames = self.total_bytes // self.page_size
        return iter(range(channel, total_frames, step))

    def _check_rpn(self, rpn: int) -> None:
        if not 0 <= rpn < self.total_bytes // self.page_size:
            raise AddressError(
                f"rpn {rpn} outside physical memory "
                f"({self.total_bytes // self.page_size} frames)"
            )


class InterleavedPageMapping:
    """Adapter exposing the Figure 8 mapping through the small interface
    :class:`repro.vm.driver.GPUDriver` uses for frame bookkeeping."""

    def __init__(self, mapping: PageMoveAddressMapping) -> None:
        self.mapping = mapping

    @property
    def num_channel_groups(self) -> int:
        return self.mapping.config.channels_per_stack

    @property
    def pages_per_channel(self) -> int:
        return self.mapping.pages_per_channel

    def channel_of_frame(self, rpn: int) -> int:
        return self.mapping.channel_of_page(rpn)

    def frames_of_channel(self, channel: int) -> Iterator[int]:
        return self.mapping.frames_of_channel(channel)
