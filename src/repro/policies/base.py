"""The :class:`PartitionPolicy` protocol.

A policy decides *how the GPU is partitioned*; the shared
:class:`~repro.core.system.MultitaskSystem` runner decides *how time
advances* (epochs, penalties, arrivals, departures, metrics).  The
pre-refactor code fused the two — every policy subclassed the runner —
which made it impossible to express a job lifecycle once per runner.

A policy object is bound to exactly one runner and implements five hooks:

* :meth:`initial_partition` — the partition before cycle zero;
* :meth:`throughput_for` — how an app performs on its slice (MPS models
  shared-memory contention here; UGPU feeds the profiler);
* :meth:`on_epoch_end` — the profiling-boundary decision (UGPU and
  CD-Search repartition; static baselines do nothing);
* :meth:`on_app_arrival` / :meth:`on_app_departure` — open-system
  membership changes.  The defaults re-even the partition and charge
  every resident a cache/TLB flush window through the runner's
  :class:`~repro.core.system.PenaltyCharge` machinery, so joins and
  leaves are never free.

The base class itself is the even static baseline: policies override only
what they change.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Sequence

from repro.core.slices import PartitionState, ResourceAllocation
from repro.errors import AllocationError
from repro.gpu.kernel import Application

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.system import AppState, MultitaskSystem
    from repro.gpu.performance import SliceThroughput


def even_allocations(
    app_ids: Sequence[int], partition: PartitionState
) -> Dict[int, ResourceAllocation]:
    """The balanced split of ``partition``'s budget over ``app_ids``
    (the same arithmetic as :meth:`PartitionState.even`, without
    constructing a new partition object — membership changes must mutate
    the existing one, which the demand-aware partitioner holds by
    reference)."""
    ids = list(app_ids)
    if not ids:
        return {}
    sms = partition.total_sms // len(ids)
    channels = partition.total_channels // len(ids)
    channels -= channels % partition.channel_group
    if sms < partition.min_sms or channels < partition.min_channels:
        raise AllocationError(
            f"{len(ids)} applications cannot each receive the minimum allocation"
        )
    return {app_id: ResourceAllocation(sms, channels) for app_id in ids}


class PartitionPolicy:
    """Base policy: a static balanced partition (the BP behaviour).

    Subclasses override hooks; ``bind`` is called exactly once by the
    runner before any other hook, and ``on_start`` after the runner has
    materialized its per-app states (the place to build profilers,
    partitioners, or apply an offline partition).
    """

    policy_name = "base"

    #: What the value of :meth:`throughput_for` may depend on — the
    #: contract the numpy kernel backend's caching relies on
    #: (see :class:`repro.fastpath.epoch.FastEpochKernel`):
    #:
    #: * ``"slice"`` — only on the app's current kernel and its own
    #:   ``ResourceAllocation``; any side effects go through
    #:   :meth:`observe_throughput`.  This is the base contract:
    #:   ``throughput_for`` is exactly ``slice_throughput`` plus the
    #:   observe hook.
    #: * ``"resident-set"`` — additionally on the *other* residents'
    #:   kernels and allocations (MPS-style contention), but on nothing
    #:   else.
    #: * ``"stateful"`` — anything; the fast path calls the hook every
    #:   epoch, exactly like the scalar loop.
    #:
    #: A subclass that overrides :meth:`throughput_for` without
    #: re-declaring this attribute is treated as ``"stateful"``.
    throughput_dependence = "slice"

    #: Penalty charged to every resident when membership changes: the
    #: partition is redrawn, so caches/TLBs flush and refill exactly as
    #: after a UGPU repartition (Section 4.4's coherence step).
    membership_flush_window_cycles: float = 800_000.0
    membership_flush_factor: float = 0.35

    runner: "MultitaskSystem"

    # ------------------------------------------------------------------
    # Lifecycle wiring
    # ------------------------------------------------------------------
    def bind(self, runner: "MultitaskSystem") -> None:
        self.runner = runner

    def on_start(self) -> None:
        """Called once, after the runner created its AppStates."""

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def initial_partition(
        self, applications: Sequence[Application]
    ) -> PartitionState:
        """Default: the balanced partition (BP)."""
        runner = self.runner
        if not applications:
            # Open-system runs may start empty; the first admission
            # assigns the first slice.
            return PartitionState(
                total_sms=runner.config.num_sms,
                total_channels=runner.config.num_channels,
            )
        return PartitionState.even(
            [a.app_id for a in applications],
            total_sms=runner.config.num_sms,
            total_channels=runner.config.num_channels,
        )

    def throughput_for(self, state: "AppState") -> "SliceThroughput":
        """Default: the isolated-slice roofline evaluation, then the
        observe hook (so ``"slice"`` policies only override the hook)."""
        throughput = self.runner.slice_throughput(state)
        self.observe_throughput(state, throughput)
        return throughput

    def observe_throughput(
        self, state: "AppState", throughput: "SliceThroughput"
    ) -> None:
        """Side-effect hook fed once per app per epoch with the slice
        throughput (UGPU/CD-Search accumulate profiler counters here).
        Under the ``"slice"`` contract this is the *only* way
        ``throughput_for`` may touch policy state — the fast path calls
        it even when the throughput itself came from a cache."""

    def on_epoch_end(self, epoch_index: int, span: int) -> None:
        """Static policies do nothing at the boundary."""

    def on_app_arrival(self, state: "AppState") -> None:
        """Default: re-even the partition over the new resident set."""
        self.rebalance_even()

    def on_app_departure(self, state: "AppState") -> None:
        """Default: re-even the partition over the remaining residents."""
        self.rebalance_even()

    # ------------------------------------------------------------------
    # Shared membership-change machinery
    # ------------------------------------------------------------------
    def rebalance_even(self, counts_as_migration: bool = True) -> None:
        """Redistribute the budget evenly over the current residents and
        charge everyone the membership flush window."""
        runner = self.runner
        ids = list(runner.apps)
        if not ids:
            runner.partition.assign_all({})
            return
        allocations = even_allocations(ids, runner.partition)
        runner.apply_partition(allocations)
        runner.repartitions += 1
        self.charge_membership_flush(counts_as_migration)

    def charge_membership_flush(self, counts_as_migration: bool = True) -> None:
        runner = self.runner
        for app_id in runner.apps:
            runner.add_penalty(
                app_id,
                self.membership_flush_window_cycles,
                self.membership_flush_factor,
                counts_as_migration,
            )


class EvenPartitionPolicy(PartitionPolicy):
    """Explicit name for the base behaviour (useful in registries)."""
