"""CD-Search combined with BP (paper Section 6.4).

CD-Search (Zhao et al., ICS 2018) classifies applications and moves SMs
between them at epoch boundaries.  As the paper notes, CD-Search alone has
no resource isolation, so the comparison point is *BP (CD-Search)*: the
GPU stays split into isolated BP instances, memory channels never move,
and only SMs are reallocated across the instance boundary based on the
same demand classification UGPU uses.

SM handover costs are charged exactly as in UGPU (drain/switch); there is
never any page migration.  On membership changes (open system) the BP
instances are recreated, so the base policy's even rebalance applies.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.hardware_cost import AlgorithmCostModel
from repro.core.partitioner import DemandAwarePartitioner
from repro.core.profiler import EpochProfiler
from repro.core.reallocation import SMReallocator
from repro.policies.base import PartitionPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.system import AppState


class CDSearchPolicy(PartitionPolicy):
    """BP instances with SM-only reallocation."""

    policy_name = "BP(CD-Search)"

    def __init__(self, sm_step: int = 4,
                 tb_duration_cycles: float = 200_000.0) -> None:
        self._sm_step = sm_step
        self.tb_duration_cycles = tb_duration_cycles
        #: Throughputs recorded by :meth:`observe_throughput` during the
        #: epoch, consumed (per app) at the next boundary.
        self._pending_throughput: dict = {}

    def on_start(self) -> None:
        runner = self.runner
        self.profiler = EpochProfiler(runner.config)
        for state in runner.apps.values():
            self.profiler.track(
                state.app_id,
                ipc_max_per_sm=max(k.ipc_per_sm for k in state.app.kernels),
                footprint_bytes=state.app.footprint_bytes,
            )
        self.partitioner = DemandAwarePartitioner(
            runner.partition, sm_step=self._sm_step, gpu_config=runner.config
        )
        self.sm_reallocator = SMReallocator(runner.config)
        self.algorithm_cost = AlgorithmCostModel()

    def observe_throughput(self, state: "AppState", throughput) -> None:
        # Record only; counters are fed at the boundary through the
        # profiler's fused observe-and-profile pipeline (banks are
        # per-app, so the deferral is unobservable).
        self._pending_throughput[state.app_id] = throughput

    def on_epoch_end(self, epoch_index: int, span: int) -> None:
        runner = self.runner
        pending = self._pending_throughput
        epoch_cycles = runner.epoch_cycles
        profiles = {}
        for a in runner.apps:
            throughput = pending.get(a)
            if throughput is not None:
                profiles[a] = self.profiler.observe_and_profile(
                    a, throughput, epoch_cycles
                )
            else:
                profiles[a] = self.profiler.profile(a)
        previous = {a: s.allocation for a, s in runner.apps.items()}
        decision = self.partitioner.compute(profiles)
        # CD-Search moves SMs only: restore every channel allocation.
        constrained = {
            app_id: decision.allocations[app_id].move(
                d_channels=previous[app_id].channels
                - decision.allocations[app_id].channels
            )
            for app_id in decision.allocations
        }
        if constrained == previous:
            return
        runner.apply_partition(constrained)
        runner.repartitions += 1
        latency = float(
            self.algorithm_cost.total_cycles(decision.iterations, len(runner.apps))
        )
        for app_id, state in runner.apps.items():
            runner.add_penalty(app_id, latency, 1.0)
            moved = abs(constrained[app_id].sms - previous[app_id].sms)
            if moved and constrained[app_id].sms > 0:
                charge = self.sm_reallocator.cost(
                    moved, self.tb_duration_cycles, runner.epoch_cycles,
                    channels_available=max(1, constrained[app_id].channels),
                )
                runner.add_penalty(
                    app_id, charge.cycles, moved / constrained[app_id].sms
                )
                state.migrated_bytes += charge.dram_bytes

    def on_app_arrival(self, state: "AppState") -> None:
        self._membership_change(state)

    def on_app_departure(self, state: "AppState") -> None:
        self._membership_change(state)

    def _membership_change(self, state: "AppState") -> None:
        if not self.profiler.is_tracked(state.app_id):
            self.profiler.track(
                state.app_id,
                ipc_max_per_sm=max(k.ipc_per_sm for k in state.app.kernels),
                footprint_bytes=state.app.footprint_bytes,
            )
        self.rebalance_even()
