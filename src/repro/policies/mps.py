"""Multi-Process Service policy (paper Sections 6.7 and 7).

MPS partitions SMs between applications but shares the entire memory
system: all LLC slices and memory channels serve every application's
traffic.  Two consequences the model captures:

* higher memory utilization — an application can momentarily draw more
  than a proportional bandwidth share when its co-runners are idle, which
  is why MPS sometimes beats UGPU's isolated slices in raw STP;
* contention — when aggregate demand exceeds supply, bandwidth is split
  in proportion to demand, so a memory-hungry co-runner can push a
  high-priority application below its QoS floor (Figure 16's violations).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Sequence

from repro.core.slices import PartitionState, ResourceAllocation
from repro.errors import AllocationError
from repro.gpu.kernel import Application
from repro.gpu.performance import SliceThroughput
from repro.policies.base import PartitionPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.system import AppState


class MPSPolicy(PartitionPolicy):
    """SM partitioning with a fully shared memory system."""

    policy_name = "MPS"

    #: The shared-memory contention factor depends on every resident's
    #: current kernel (see :attr:`PartitionPolicy.throughput_dependence`).
    throughput_dependence = "resident-set"

    def __init__(self, sm_assignment: Optional[Dict[int, int]] = None,
                 contention_overhead: float = 0.18) -> None:
        """``sm_assignment`` fixes per-app SM counts (the paper's offline
        analysis gives a high-priority app 60 SMs); default is an even
        split.  ``contention_overhead`` models row-buffer locality loss and
        scheduling interference between interleaved address streams
        sharing a channel (~18% of peak bandwidth)."""
        self._sm_assignment = sm_assignment
        if not 0.0 <= contention_overhead < 1.0:
            raise AllocationError("contention_overhead must be in [0, 1)")
        self.contention_overhead = contention_overhead

    def _nominal_partition(
        self, app_ids: Sequence[int]
    ) -> PartitionState:
        """Every slice records the full channel count: memory is shared.

        The PartitionState budget tracks isolation, so MPS keeps its own
        bookkeeping: SM counts are real, channel counts are nominal.
        """
        config = self.runner.config
        state = PartitionState(
            total_sms=config.num_sms,
            total_channels=config.num_channels * max(1, len(app_ids)),
        )
        even = config.num_sms // max(1, len(app_ids))
        for app_id in app_ids:
            sms = (
                self._sm_assignment.get(app_id, even)
                if self._sm_assignment
                else even
            )
            state.assign(
                app_id, ResourceAllocation(sms=sms, channels=config.num_channels)
            )
        return state

    def initial_partition(
        self, applications: Sequence[Application]
    ) -> PartitionState:
        return self._nominal_partition([a.app_id for a in applications])

    # ------------------------------------------------------------------
    # Membership changes: the nominal budget (channels x residents)
    # itself changes, so MPS is the one policy that must replace the
    # partition object rather than reassign slices within it.
    # ------------------------------------------------------------------
    def _rebuild(self) -> None:
        runner = self.runner
        runner.replace_partition(self._nominal_partition(list(runner.apps)))
        if runner.apps:
            runner.repartitions += 1
            # SM re-split only: contexts restart on their new SM sets but
            # no pages move (memory was shared all along).
            self.charge_membership_flush(counts_as_migration=False)

    def on_app_arrival(self, state: "AppState") -> None:
        self._rebuild()

    def on_app_departure(self, state: "AppState") -> None:
        self._rebuild()

    # ------------------------------------------------------------------
    # Shared-memory contention
    # ------------------------------------------------------------------
    def _epoch_traffic(self) -> Dict[int, float]:
        """Each app's unconstrained DRAM traffic (bytes/cycle) when it can
        see the whole shared memory system."""
        runner = self.runner
        traffic = {}
        for state in runner.apps.values():
            solo = runner.perf.throughput(
                state.app.current_kernel,
                state.allocation.sms,
                runner.config.num_channels,
            )
            traffic[state.app_id] = solo.dram_bytes_per_cycle
        return traffic

    def throughput_for(self, state: "AppState") -> SliceThroughput:
        """Shared-memory contention: when aggregate DRAM traffic would
        exceed the (interference-degraded) supply, every request stream is
        throttled by the same oversubscription factor — the first-order
        behaviour of a shared FR-FCFS memory system.  A lightly-demanding
        co-runner therefore still slows down (its requests queue behind
        the flood), which is exactly how MPS breaks QoS in Figure 16."""
        runner = self.runner
        base = runner.perf.throughput(
            state.app.current_kernel,
            state.allocation.sms,
            runner.config.num_channels,
        )
        traffic = self._epoch_traffic()
        total = sum(traffic.values())
        supply = (
            runner.config.num_channels
            * runner.config.channel_bandwidth_bytes_per_cycle()
            * (1.0 - self.contention_overhead)
        )
        if total <= supply:
            return base
        factor = supply / total
        ipc = base.ipc * factor
        return SliceThroughput(
            ipc=ipc,
            compute_roof=base.compute_roof,
            bandwidth_roof=base.bandwidth_roof * factor,
            mlp_roof=base.mlp_roof,
            demand_bytes_per_cycle=base.demand_bytes_per_cycle,
            supply_bytes_per_cycle=base.supply_bytes_per_cycle,
            dram_bytes_per_cycle=base.dram_bytes_per_cycle * factor,
            llc_hit_rate=base.llc_hit_rate,
        )
