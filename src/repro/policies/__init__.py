"""Partition policies, decoupled from the epoch runner.

One :class:`~repro.core.system.MultitaskSystem` runner composes exactly
one :class:`PartitionPolicy`::

    from repro.core.system import MultitaskSystem
    from repro.policies import UGPUPolicy

    system = MultitaskSystem(mix.applications, policy=UGPUPolicy())
    result = system.run()

The deprecated inheritance spellings (``UGPUSystem``, ``BPSystem``, ...)
remain importable for one release and forward here.
"""

from repro.policies.base import (
    EvenPartitionPolicy,
    PartitionPolicy,
    even_allocations,
)
from repro.policies.bp import (
    BPBigSmallPolicy,
    BPPolicy,
    BPSmallBigPolicy,
    fixed_two_way,
)
from repro.policies.cd_search import CDSearchPolicy
from repro.policies.mps import MPSPolicy
from repro.policies.ugpu import UGPUPolicy

__all__ = [
    "PartitionPolicy",
    "EvenPartitionPolicy",
    "even_allocations",
    "BPPolicy",
    "BPBigSmallPolicy",
    "BPSmallBigPolicy",
    "fixed_two_way",
    "MPSPolicy",
    "CDSearchPolicy",
    "UGPUPolicy",
]
