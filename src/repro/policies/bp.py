"""Balanced-partitioning policies (paper Section 2 and 6).

* **BP** — equal balanced partitions (NVIDIA MIG-style), static.
* **BP-BS** — big partition (60 SMs / 24 channels) to the first app.
* **BP-SB** — the mirror image: small first, big second.

All three never repartition at epoch boundaries; in an open system they
fall back to the base policy's even rebalance on membership changes
(MIG instances are destroyed and recreated when the tenant set changes).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.slices import PartitionState, ResourceAllocation
from repro.errors import AllocationError
from repro.gpu.config import GPUConfig
from repro.gpu.kernel import Application
from repro.policies.base import PartitionPolicy


def fixed_two_way(config: GPUConfig, applications: Sequence[Application],
                  big_first: bool) -> PartitionState:
    """The paper's 60/24 + 20/8 split for two applications."""
    if len(applications) != 2:
        raise AllocationError(
            "the big/small BP variants are defined for two applications"
        )
    state = PartitionState(
        total_sms=config.num_sms, total_channels=config.num_channels
    )
    big = ResourceAllocation(
        sms=config.num_sms * 3 // 4, channels=config.num_channels * 3 // 4
    )
    small = ResourceAllocation(
        sms=config.num_sms - big.sms, channels=config.num_channels - big.channels
    )
    first, second = (big, small) if big_first else (small, big)
    state.assign(applications[0].app_id, first)
    state.assign(applications[1].app_id, second)
    return state


class BPPolicy(PartitionPolicy):
    """Equal balanced partitions; the paper's primary baseline."""

    policy_name = "BP"

    def __init__(self, qos_big_first: bool = False) -> None:
        #: QoS-aware BP gives the first (high-priority) app the big
        #: partition (Section 6.7); plain BP splits evenly.
        self._qos_big_first = qos_big_first

    def initial_partition(
        self, applications: Sequence[Application]
    ) -> PartitionState:
        if self._qos_big_first and len(applications) == 2:
            return fixed_two_way(self.runner.config, applications, big_first=True)
        return super().initial_partition(applications)


class BPBigSmallPolicy(PartitionPolicy):
    """BP-BS: big partition to the first application."""

    policy_name = "BP-BS"

    def initial_partition(
        self, applications: Sequence[Application]
    ) -> PartitionState:
        return fixed_two_way(self.runner.config, applications, big_first=True)


class BPSmallBigPolicy(PartitionPolicy):
    """BP-SB: small partition to the first application."""

    policy_name = "BP-SB"

    def initial_partition(
        self, applications: Sequence[Application]
    ) -> PartitionState:
        return fixed_two_way(self.runner.config, applications, big_first=False)
