"""The UGPU policy: demand-aware repartitioning plus PageMove costing.

Epoch flow (Sections 3.3 and 4):

1. Applications execute on their current slices; hardware counters fill.
2. At the boundary the profiler produces per-app
   :class:`~repro.core.profiler.AppProfile` records and the demand-aware
   partitioner computes a (possibly) new partition.  The fixed-function
   unit's latency (<= 3388 cycles) is charged.
3. If the partition changed, SMs drain or switch and memory channels are
   reallocated.  Page migration is costed by mode:

   * ``PPMM`` (PageMove): pages in lost channels move eagerly over idle
     TSVs; the gaining application rebalances lazily (demand faults plus a
     background trickle), so its penalty is small and overlapped.
   * ``SOFTWARE`` (UGPU-Soft): same page sets, but copies monopolize the
     involved channels' data buses.
   * ``TRADITIONAL`` (UGPU-Ori): no PageMove mapping discipline — the
     gaining side must also be populated eagerly through the GPU, and the
     copies pollute the NoC/LLC, slowing every co-executing application.

4. Migration windows longer than the per-epoch budget spill into later
   epochs (the penalty carry-over in :class:`~repro.core.system`).

``offline=True`` models UGPU-offline: the partition is computed from the
applications' known profiles before cycle zero, pages are allocated into
the right channels from the start, and no reallocation ever happens —
the paper's zero-overhead ideal.

Open-system membership changes (arrivals/departures) recompute the
partition immediately: the newcomer is seeded with an even slice, the
partitioner runs on the last observed profiles (static profiles for apps
with no observations yet — the counters are read-and-reset, so arrival
boundaries cannot re-read them), and the full reallocation cost —
algorithm latency, flush, SM handover, page migration — is charged
through the same machinery as an epoch-boundary repartition.  An
arriving app's previous allocation is (0, 0): it pays the spin-up for
every SM and channel it receives.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.core.hardware_cost import AlgorithmCostModel
from repro.core.partitioner import DemandAwarePartitioner, PartitionDecision
from repro.core.profiler import AppProfile, EpochProfiler
from repro.core.qos import QoSTarget, estimated_np, meets_target
from repro.core.reallocation import SMReallocator
from repro.core.slices import ResourceAllocation
from repro.pagemove.cost import MigrationCostModel, MigrationMode
from repro.policies.base import PartitionPolicy, even_allocations
from repro.telemetry import names as metric_names

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.system import AppState


class UGPUPolicy(PartitionPolicy):
    """Dynamically constructed unbalanced GPU slices."""

    policy_name = "UGPU"

    def __init__(
        self,
        mode: MigrationMode = MigrationMode.PPMM,
        offline: bool = False,
        qos: Optional[QoSTarget] = None,
        sm_step: int = 4,
        lazy_overlap: float = 0.5,
        lazy_fraction: float = 0.5,
        tb_duration_cycles: float = 200_000.0,
        migration_budget_cycles: Optional[float] = None,
        flush_window_cycles: float = 800_000.0,
        flush_factor: float = 0.35,
        hysteresis: float = 0.0,
    ) -> None:
        """``hysteresis``: minimum estimated relative STP gain required to
        actually apply a new partition.  The paper notes that for
        workloads whose epoch-level behaviour barely changes,
        "reallocation overhead could outweigh its benefits" (Section
        3.3); a small hysteresis (e.g. 0.03) suppresses such churn.  The
        default 0 reproduces the paper's always-apply behaviour."""
        self.mode = mode
        self.offline = offline
        self.qos = qos
        self._sm_step = sm_step
        self.lazy_overlap = lazy_overlap
        self.lazy_fraction = lazy_fraction
        self.tb_duration_cycles = tb_duration_cycles
        self._migration_budget_cycles = migration_budget_cycles
        self.flush_window_cycles = flush_window_cycles
        self.flush_factor = flush_factor
        if hysteresis < 0:
            raise ValueError("hysteresis must be non-negative")
        self.hysteresis = hysteresis
        self.suppressed_repartitions = 0
        #: Last boundary's profiles, kept for arrival/departure
        #: repartitions: counter snapshots are read-and-reset, so they
        #: cannot be re-read mid-epoch.
        self._last_profiles: Dict[int, AppProfile] = {}
        #: Throughputs recorded by :meth:`observe_throughput` during the
        #: epoch, consumed (per app) at the next boundary.
        self._pending_throughput: Dict[int, "SliceThroughput"] = {}
        #: Steady-state short-circuit: signatures of boundaries whose
        #: partitioner run produced no change.  A signature captures the
        #: full partitioner input (app order, profile values, allocation
        #: values), so a learned no-change signature stays valid for the
        #: run's lifetime.  See :meth:`on_epoch_end`.
        self._steady_signatures: set = set()
        if offline:
            self.policy_name = "UGPU-offline"
        elif mode is not MigrationMode.PPMM:
            self.policy_name = f"UGPU-{mode.value}"

    # ------------------------------------------------------------------
    # Lifecycle wiring
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        runner = self.runner
        config = runner.config
        self.profiler = EpochProfiler(config)
        for state in runner.apps.values():
            self._track(state)
        self.partitioner = DemandAwarePartitioner(
            runner.partition,
            sm_step=self._sm_step,
            gpu_config=config,
            memory_capacity_bytes=runner.total_memory_bytes,
        )
        self.algorithm_cost = AlgorithmCostModel()
        self.sm_reallocator = SMReallocator(config)
        self.migration_cost = MigrationCostModel(config.hbm)
        self.page_size = self.migration_cost.mapping.page_size
        #: Per-reallocation cap on migration work: the driver's migration
        #: queue is bounded, so one reallocation occupies at most this many
        #: cycles.  PageMove drains its (cheap) migrations within an epoch;
        #: the software paths string their copies out over several epochs,
        #: which is exactly why UGPU-Ori loses to BP (Section 6.2).
        if self._migration_budget_cycles is not None:
            self.migration_budget_cycles = self._migration_budget_cycles
        elif self.mode is MigrationMode.PPMM:
            # PageMove's migration queue drains ~12.5K pages (50 MB) per
            # reallocation event; anything beyond trickles in on later
            # demand faults.
            self.migration_budget_cycles = 0.2 * runner.epoch_cycles
        else:
            # The software paths share the same driver migration queue;
            # their (much) higher per-page cost is what separates
            # UGPU-Soft from UGPU-Ori, not the queue depth.
            self.migration_budget_cycles = 2.0 * runner.epoch_cycles
        if self.offline and runner.apps:
            self._apply_offline_partition()
        if self.qos is not None and not self.offline and runner.apps:
            # The high-priority application is known upfront (the paper's
            # QoS scenario identifies it before launch), so its slice is
            # sized for the target from cycle zero; only the remaining
            # resources are repartitioned dynamically.
            initial = PartitionDecision(
                allocations={a: s.allocation for a, s in runner.apps.items()},
                iterations=0,
            )
            initial = self._enforce_qos(initial, self._static_profiles())
            runner.apply_partition(initial.allocations)

    def _track(self, state: "AppState") -> None:
        self.profiler.track(
            state.app_id,
            ipc_max_per_sm=max(k.ipc_per_sm for k in state.app.kernels),
            footprint_bytes=state.app.footprint_bytes,
        )

    # ------------------------------------------------------------------
    # Offline mode
    # ------------------------------------------------------------------
    def _static_profiles(self) -> Dict[int, AppProfile]:
        """Profiles from the applications' known (offline) parameters."""
        return {
            state.app_id: self._static_profile(state)
            for state in self.runner.apps.values()
        }

    def _static_profile(self, state: "AppState") -> AppProfile:
        kernel = state.app.current_kernel
        return AppProfile(
            app_id=state.app_id,
            ipc_max_per_sm=kernel.ipc_per_sm,
            apki_llc=kernel.apki_llc,
            llc_hit_rate=kernel.llc_hit_rate,
            bw_demand_per_sm=self.profiler.bw_demand_per_sm(
                kernel.ipc_per_sm, kernel.apki_llc
            ),
            bw_supply_per_mc=self.profiler.bw_supply_per_mc(kernel.llc_hit_rate),
            footprint_bytes=state.app.footprint_bytes,
        )

    def _apply_offline_partition(self) -> None:
        decision = self.partitioner.compute(self._static_profiles())
        decision = self._enforce_qos(decision, self._static_profiles())
        self.runner.apply_partition(decision.allocations)

    # ------------------------------------------------------------------
    # Epoch hook
    # ------------------------------------------------------------------
    def observe_throughput(self, state: "AppState", throughput) -> None:
        # Record only; the counter feed happens at the boundary through
        # the profiler's fused observe-and-profile pipeline.  Banks are
        # per-app, so deferring one app's counting past another's has no
        # observable effect on any counter sequence.
        self._pending_throughput[state.app_id] = throughput

    def on_epoch_end(self, epoch_index: int, span: int) -> None:
        runner = self.runner
        prof = runner.phase_profiler
        if prof is not None:
            prof.begin("ugpu.profile")
        profiler = self.profiler
        pending = self._pending_throughput
        epoch_cycles = runner.epoch_cycles
        profiles = {}
        for app_id in runner.apps:
            throughput = pending.get(app_id)
            if throughput is not None:
                profiles[app_id] = profiler.observe_and_profile(
                    app_id, throughput, epoch_cycles
                )
            else:
                profiles[app_id] = profiler.profile(app_id)
        self._last_profiles = profiles
        if prof is not None:
            prof.end("ugpu.profile")
        if self.offline:
            return  # partition fixed before execution
        signature = None
        if self.qos is None:
            # The partitioner is deterministic and pure in (app order,
            # profile values, current allocation values); a signature
            # seen at an earlier no-change boundary would reproduce the
            # same no-change decision, so skip the recompute.  QoS runs
            # keep the full path: _enforce_qos may emit per-epoch traces
            # even on no-change boundaries, and those must keep firing.
            apps = runner.apps
            signature = tuple(
                (app_id, profile, apps[app_id].allocation)
                for app_id, profile in profiles.items()
            )
            if signature in self._steady_signatures:
                return
        previous = {a: s.allocation for a, s in runner.apps.items()}
        if prof is not None:
            prof.begin("ugpu.partition")
        decision = self.partitioner.compute(profiles)
        decision = self._enforce_qos(decision, profiles)
        if prof is not None:
            prof.end("ugpu.partition")
        decision.latency_cycles = self.algorithm_cost.total_cycles(
            decision.iterations, num_apps=len(runner.apps)
        )
        if not decision.changed_from(previous):
            if signature is not None:
                if len(self._steady_signatures) >= 256:
                    self._steady_signatures.clear()
                self._steady_signatures.add(signature)
            return
        if self.hysteresis > 0 and not self._worth_applying(
            previous, decision.allocations, profiles
        ):
            self.suppressed_repartitions += 1
            if runner.tracer is not None:
                runner.tracer.emit(
                    "realloc", "suppress", time=runner._trace_now,
                    epoch=epoch_index, hysteresis=self.hysteresis,
                )
            if runner.metrics is not None:
                metric_names.reallocations_total(runner.metrics).labels(
                    outcome="suppress"
                ).inc()
            return
        runner.apply_partition(decision.allocations)
        runner.repartitions += 1
        if runner.tracer is not None:
            runner.tracer.emit(
                "realloc", "apply", time=runner._trace_now,
                epoch=epoch_index,
                iterations=decision.iterations,
                latency_cycles=decision.latency_cycles,
                allocations={
                    app_id: [alloc.sms, alloc.channels]
                    for app_id, alloc in decision.allocations.items()
                },
            )
        if runner.metrics is not None:
            metric_names.reallocations_total(runner.metrics).labels(
                outcome="apply"
            ).inc()
        if prof is not None:
            with prof.span("ugpu.charge"):
                self._charge_reallocation(previous, decision, profiles)
        else:
            self._charge_reallocation(previous, decision, profiles)

    def _worth_applying(self, previous, proposed, profiles) -> bool:
        """Estimated relative STP gain must clear the hysteresis bar."""
        from repro.core.qos import estimated_ipc

        config = self.runner.config
        old_stp = new_stp = 0.0
        for app_id, profile in profiles.items():
            alone = estimated_ipc(
                profile,
                ResourceAllocation(config.num_sms, config.num_channels),
                config,
            )
            if alone <= 0:
                continue
            old_stp += estimated_ipc(profile, previous[app_id], config) / alone
            new_stp += estimated_ipc(profile, proposed[app_id], config) / alone
        if old_stp <= 0:
            return True
        return (new_stp - old_stp) / old_stp >= self.hysteresis

    # ------------------------------------------------------------------
    # Open-system membership changes
    # ------------------------------------------------------------------
    def on_app_arrival(self, state: "AppState") -> None:
        if not self.profiler.is_tracked(state.app_id):
            self._track(state)
        self._membership_repartition()

    def on_app_departure(self, state: "AppState") -> None:
        self._last_profiles.pop(state.app_id, None)
        self._membership_repartition()

    def _membership_repartition(self) -> None:
        """Recompute the partition for the new resident set and charge the
        full reallocation cost.  Hysteresis never suppresses membership
        repartitions — a newcomer has no slice at all without one."""
        runner = self.runner
        ids = list(runner.apps)
        if not ids:
            runner.partition.assign_all({})
            return
        previous = {a: s.allocation for a, s in runner.apps.items()}
        # Seed every resident (including the newcomer) with an even slice
        # so the partitioner starts from a feasible membership-correct
        # state; the demand-aware compute then reshapes it.
        runner.apply_partition(even_allocations(ids, runner.partition))
        if self.offline:
            profiles = self._static_profiles()
        else:
            profiles = {
                app_id: self._profile_or_static(app_id) for app_id in ids
            }
        decision = self.partitioner.compute(profiles)
        decision = self._enforce_qos(decision, profiles)
        decision.latency_cycles = self.algorithm_cost.total_cycles(
            decision.iterations, num_apps=len(ids)
        )
        runner.apply_partition(decision.allocations)
        runner.repartitions += 1
        if runner.tracer is not None:
            runner.tracer.emit(
                "realloc", "membership", time=runner._trace_now,
                iterations=decision.iterations,
                latency_cycles=decision.latency_cycles,
                allocations={
                    app_id: [alloc.sms, alloc.channels]
                    for app_id, alloc in decision.allocations.items()
                },
            )
        if runner.metrics is not None:
            metric_names.reallocations_total(runner.metrics).labels(
                outcome="membership"
            ).inc()
        if self.offline:
            # Offline mode pre-places pages for the partition it knows;
            # a membership change still costs the algorithm latency but
            # no migration (the ideal keeps its zero-overhead story).
            return
        prev_full = {
            app_id: previous.get(app_id, ResourceAllocation(0, 0))
            for app_id in ids
        }
        self._charge_reallocation(prev_full, decision, profiles)

    def _profile_or_static(self, app_id: int) -> AppProfile:
        profile = self._last_profiles.get(app_id)
        if profile is not None:
            return profile
        return self._static_profile(self.runner.apps[app_id])

    # ------------------------------------------------------------------
    # QoS enforcement
    # ------------------------------------------------------------------
    def _enforce_qos(self, decision: PartitionDecision,
                     profiles: Dict[int, AppProfile]) -> PartitionDecision:
        """Grow the high-priority slice until its estimated NP clears the
        target, pulling resources back from the other slices."""
        runner = self.runner
        if self.qos is None or self.qos.app_id not in decision.allocations:
            return decision
        config = runner.config
        # Enforce against a padded floor: the counter-based NP estimate is
        # optimistic about hit rates at small LLC allocations and about a
        # multi-kernel app's heavier phases, so provision a ~6% guard band.
        target = QoSTarget(
            self.qos.app_id, min(1.0, self.qos.target_np * 1.06)
        )
        allocations = dict(decision.allocations)
        profile = profiles[target.app_id]
        others = [a for a in allocations if a != target.app_id]
        if not others:
            return decision

        def satisfied() -> bool:
            return meets_target(
                profile, allocations[target.app_id], config, target
            )

        def np_now() -> float:
            return estimated_np(profile, allocations[target.app_id], config)

        guard = 0
        while not satisfied() and guard < 64:
            guard += 1
            moved = False
            for resource, step, minimum in (
                ("sms", self.partitioner.sm_step, runner.partition.min_sms),
                ("channels", self.partitioner.mc_step,
                 runner.partition.min_channels),
            ):
                donor = max(others, key=lambda a: getattr(allocations[a], resource))
                if getattr(allocations[donor], resource) - step < minimum:
                    continue
                d_sms = step if resource == "sms" else 0
                d_channels = step if resource == "channels" else 0
                before = np_now()
                allocations[target.app_id] = allocations[target.app_id].move(
                    d_sms=d_sms, d_channels=d_channels
                )
                # Only keep the transfer if it actually raises the
                # high-priority app's progress — a compute-bound app must
                # not hoard channels the low-priority app could use.
                if np_now() <= before + 1e-9:
                    allocations[target.app_id] = allocations[target.app_id].move(
                        d_sms=-d_sms, d_channels=-d_channels
                    )
                    continue
                allocations[donor] = allocations[donor].move(
                    d_sms=-d_sms, d_channels=-d_channels
                )
                moved = True
                if satisfied():
                    break
            if not moved:
                break
        before_alloc = decision.allocations[target.app_id]
        after_alloc = allocations[target.app_id]
        if after_alloc != before_alloc:
            if runner.tracer is not None:
                runner.tracer.emit(
                    "qos", "enforce", time=runner._trace_now,
                    app_id=target.app_id,
                    target_np=self.qos.target_np,
                    estimated_np=np_now(),
                    granted_sms=after_alloc.sms - before_alloc.sms,
                    granted_channels=after_alloc.channels - before_alloc.channels,
                )
            if runner.metrics is not None:
                metric_names.qos_interventions_total(runner.metrics).inc()
        decision.allocations = allocations
        return decision

    # ------------------------------------------------------------------
    # Reallocation costing
    # ------------------------------------------------------------------
    def _resident_pages(self, state: "AppState") -> int:
        """Pages the application has touched so far.

        Bounded by both the footprint and the DRAM traffic the app has
        generated (a page cannot become resident without at least one line
        of DRAM traffic), so cache-resident compute-bound applications
        only ever migrate the small page set they actually populated.
        """
        footprint_pages = state.app.footprint_bytes // self.page_size
        touched = int(state.dram_bytes // self.page_size) + 1
        return min(footprint_pages, touched)

    def _charge_reallocation(
        self,
        previous: Dict[int, ResourceAllocation],
        decision: PartitionDecision,
        profiles: Dict[int, AppProfile],
    ) -> None:
        runner = self.runner
        algorithm_window = float(decision.latency_cycles)
        for app_id, state in runner.apps.items():
            old = previous[app_id]
            new = decision.allocations[app_id]
            profile = profiles[app_id]
            sensitivity = min(1.0, profile.demand_supply_ratio(new.sms, new.channels))

            # Algorithm latency stalls the reconfiguration, not execution,
            # but we charge it conservatively to everyone.
            runner.add_penalty(app_id, algorithm_window, 1.0)

            # Cache/TLB flush and refill (Section 4.4's coherence step).
            runner.add_penalty(
                app_id, self.flush_window_cycles, self.flush_factor
            )

            # SM handover: the moved SMs are unavailable for the drain or
            # switch window.
            moved_sms = abs(new.sms - old.sms)
            if moved_sms and new.sms > 0:
                charge = self.sm_reallocator.cost(
                    moved_sms, self.tb_duration_cycles, runner.epoch_cycles,
                    channels_available=max(1, new.channels),
                )
                runner.add_penalty(
                    app_id, charge.cycles, min(1.0, moved_sms / new.sms)
                )
                state.migrated_bytes += charge.dram_bytes
                if runner.tracer is not None:
                    runner.tracer.emit(
                        "realloc", "sm-handover", time=runner._trace_now,
                        duration=charge.cycles, app_id=app_id,
                        policy=charge.policy.value, sms=moved_sms,
                        dram_bytes=charge.dram_bytes,
                    )

            resident = self._resident_pages(state)
            lost = max(0, old.channels - new.channels)
            gained = max(0, new.channels - old.channels)
            budget_pages = int(
                self.migration_budget_cycles
                / self.migration_cost.page_cycles(self.mode)
            )

            if lost and old.channels > 0:
                eager_pages = min(resident * lost // old.channels, budget_pages)
                budget_pages -= eager_pages
                charge = self.migration_cost.charge(eager_pages, self.mode)
                runner.add_penalty(
                    app_id, charge.window_cycles,
                    charge.channel_bw_penalty * sensitivity,
                )
                state.migrated_bytes += charge.bytes_moved
                self._charge_global(charge)
                if runner.tracer is not None:
                    runner.tracer.emit(
                        "migration", "eager", time=runner._trace_now,
                        duration=charge.window_cycles, app_id=app_id,
                        pages=eager_pages, mode=self.mode.value,
                        lost_channels=lost, bytes_moved=charge.bytes_moved,
                    )
                if runner.metrics is not None:
                    metric_names.migration_pages_total(runner.metrics).labels(
                        phase="eager"
                    ).inc(eager_pages)
                    metric_names.migration_window_cycles_total(
                        runner.metrics
                    ).labels(phase="eager").inc(charge.window_cycles)

            if gained and new.channels > 0:
                rebalance_pages = min(
                    resident * gained // new.channels, max(0, budget_pages)
                )
                if self.mode is MigrationMode.TRADITIONAL:
                    # No PageMove mapping discipline: the new channels must
                    # be populated eagerly through the GPU.
                    charge = self.migration_cost.charge(rebalance_pages, self.mode)
                    runner.add_penalty(
                        app_id, charge.window_cycles,
                        charge.channel_bw_penalty * sensitivity,
                    )
                else:
                    # PageMove defers part of the rebalance to demand
                    # faults (lazy_fraction) and overlaps the copies with
                    # execution over idle TSVs (lazy_overlap).  The
                    # software path can do neither: its copies go through
                    # the channel data buses and must complete before the
                    # new channels carry balanced traffic.
                    if self.mode is MigrationMode.PPMM:
                        lazy_pages = int(rebalance_pages * self.lazy_fraction)
                        overlap = self.lazy_overlap
                    else:
                        lazy_pages = rebalance_pages
                        overlap = 1.0
                    charge = self.migration_cost.charge(lazy_pages, self.mode)
                    runner.add_penalty(
                        app_id, charge.window_cycles,
                        charge.channel_bw_penalty * sensitivity * overlap,
                        counts_as_migration=self.mode is not MigrationMode.PPMM,
                    )
                state.migrated_bytes += charge.bytes_moved
                self._charge_global(charge)
                if runner.tracer is not None:
                    runner.tracer.emit(
                        "migration", "rebalance", time=runner._trace_now,
                        duration=charge.window_cycles, app_id=app_id,
                        pages=rebalance_pages, mode=self.mode.value,
                        gained_channels=gained,
                        bytes_moved=charge.bytes_moved,
                    )
                if runner.metrics is not None:
                    metric_names.migration_pages_total(runner.metrics).labels(
                        phase="rebalance"
                    ).inc(rebalance_pages)
                    metric_names.migration_window_cycles_total(
                        runner.metrics
                    ).labels(phase="rebalance").inc(charge.window_cycles)

    def _charge_global(self, charge) -> None:
        """TRADITIONAL migrations pollute the NoC/LLC for everyone."""
        if charge.global_penalty > 0:
            for other_id in self.runner.apps:
                self.runner.add_penalty(
                    other_id, charge.window_cycles, charge.global_penalty
                )
