"""Exception hierarchy for the UGPU reproduction.

All exceptions raised by :mod:`repro` derive from :class:`ReproError`, so
callers can catch library failures without also swallowing bugs in their own
code.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigError(ReproError):
    """A configuration object is internally inconsistent.

    Raised during :meth:`validate` of configuration dataclasses, e.g. a GPU
    with zero SMs or an HBM stack whose channel count is not a power of two.
    """


class AddressError(ReproError):
    """A physical or virtual address is malformed or out of range."""


class AllocationError(ReproError):
    """A resource allocation request cannot be satisfied.

    Examples: requesting more SMs than the GPU has, allocating a physical
    page when every free list is empty, or constructing overlapping slices.
    """


class MigrationError(ReproError):
    """A page migration is invalid (e.g. source equals destination channel,
    or the page is not resident where the plan claims)."""


class ProtocolError(ReproError):
    """A DRAM command violates the device protocol.

    Raised by the command-level HBM model when, e.g., a column access is
    issued to a bank with no open row, or a ``MIGRATION`` command targets a
    busy TSV bundle.
    """


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class TranslationError(ReproError):
    """Virtual-to-physical translation failed in a way that is not an
    ordinary page fault (e.g. a page-table entry points at a freed frame)."""


class QoSError(ReproError):
    """A QoS constraint cannot be expressed or satisfied structurally
    (e.g. a target above 1.0 normalized progress)."""


class TelemetryError(ReproError):
    """A telemetry facility cannot be set up (e.g. the requested metrics
    port is already bound by another process)."""
