"""Deprecated shim: the MPS (shared memory system) subclass spelling.

The contention model now lives in :class:`repro.policies.mps.MPSPolicy`
and composes with the shared runner::

    MultitaskSystem(apps, policy=MPSPolicy(sm_assignment={0: 60}))

``MPSSystem`` keeps working for one release; it emits
:class:`DeprecationWarning` and builds the policy.
"""

from __future__ import annotations

import warnings
from typing import Dict, Optional

from repro.core.system import MultitaskSystem
from repro.policies.mps import MPSPolicy


class MPSSystem(MultitaskSystem):
    """SM partitioning with a fully shared memory system (deprecated
    spelling)."""

    policy_name = "MPS"

    def __init__(self, applications, config=None, epoch_cycles: int = 5_000_000,
                 energy_model=None,
                 sm_assignment: Optional[Dict[int, int]] = None,
                 contention_overhead: float = 0.18, tracer=None) -> None:
        """``sm_assignment`` fixes per-app SM counts (the paper's offline
        analysis gives a high-priority app 60 SMs); default is an even
        split.  ``contention_overhead`` models row-buffer locality loss and
        scheduling interference between interleaved address streams
        sharing a channel (~18% of peak bandwidth)."""
        warnings.warn(
            "MPSSystem is deprecated; use "
            "MultitaskSystem(apps, policy=MPSPolicy(...)) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(
            applications, config, epoch_cycles, energy_model,
            tracer=tracer,
            policy=MPSPolicy(
                sm_assignment=sm_assignment,
                contention_overhead=contention_overhead,
            ),
        )
