"""Multi-Process Service baseline (paper Sections 6.7 and 7).

MPS partitions SMs between applications but shares the entire memory
system: all LLC slices and memory channels serve every application's
traffic.  Two consequences the model captures:

* higher memory utilization — an application can momentarily draw more
  than a proportional bandwidth share when its co-runners are idle, which
  is why MPS sometimes beats UGPU's isolated slices in raw STP;
* contention — when aggregate demand exceeds supply, bandwidth is split
  in proportion to demand, so a memory-hungry co-runner can push a
  high-priority application below its QoS floor (Figure 16's violations).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.core.slices import PartitionState, ResourceAllocation
from repro.core.system import AppState, MultitaskSystem
from repro.errors import AllocationError
from repro.gpu.kernel import Application
from repro.gpu.performance import SliceThroughput


class MPSSystem(MultitaskSystem):
    """SM partitioning with a fully shared memory system."""

    policy_name = "MPS"

    def __init__(self, applications, config=None, epoch_cycles: int = 5_000_000,
                 energy_model=None,
                 sm_assignment: Optional[Dict[int, int]] = None,
                 contention_overhead: float = 0.18, tracer=None) -> None:
        """``sm_assignment`` fixes per-app SM counts (the paper's offline
        analysis gives a high-priority app 60 SMs); default is an even
        split.  ``contention_overhead`` models row-buffer locality loss and
        scheduling interference between interleaved address streams
        sharing a channel (~18% of peak bandwidth)."""
        self._sm_assignment = sm_assignment
        if not 0.0 <= contention_overhead < 1.0:
            raise AllocationError("contention_overhead must be in [0, 1)")
        self.contention_overhead = contention_overhead
        kwargs = {"epoch_cycles": epoch_cycles, "energy_model": energy_model,
                  "tracer": tracer}
        if config is not None:
            kwargs["config"] = config
        super().__init__(applications, **kwargs)

    def initial_partition(self, applications: Sequence[Application]) -> PartitionState:
        """Every slice records the full channel count: memory is shared.

        The PartitionState budget tracks isolation, so MPS keeps its own
        bookkeeping: SM counts are real, channel counts are nominal.
        """
        state = PartitionState(
            total_sms=self.config.num_sms,
            total_channels=self.config.num_channels * len(applications),
        )
        even = self.config.num_sms // len(applications)
        for app in applications:
            sms = (
                self._sm_assignment.get(app.app_id, even)
                if self._sm_assignment
                else even
            )
            state.assign(
                app.app_id,
                ResourceAllocation(sms=sms, channels=self.config.num_channels),
            )
        return state

    def _epoch_traffic(self) -> Dict[int, float]:
        """Each app's unconstrained DRAM traffic (bytes/cycle) when it can
        see the whole shared memory system."""
        traffic = {}
        for state in self.apps.values():
            solo = self.perf.throughput(
                state.app.current_kernel,
                state.allocation.sms,
                self.config.num_channels,
            )
            traffic[state.app_id] = solo.dram_bytes_per_cycle
        return traffic

    def throughput_for(self, state: AppState) -> SliceThroughput:
        """Shared-memory contention: when aggregate DRAM traffic would
        exceed the (interference-degraded) supply, every request stream is
        throttled by the same oversubscription factor — the first-order
        behaviour of a shared FR-FCFS memory system.  A lightly-demanding
        co-runner therefore still slows down (its requests queue behind
        the flood), which is exactly how MPS breaks QoS in Figure 16."""
        base = self.perf.throughput(
            state.app.current_kernel,
            state.allocation.sms,
            self.config.num_channels,
        )
        traffic = self._epoch_traffic()
        total = sum(traffic.values())
        supply = (
            self.config.num_channels
            * self.config.channel_bandwidth_bytes_per_cycle()
            * (1.0 - self.contention_overhead)
        )
        if total <= supply:
            return base
        factor = supply / total
        ipc = base.ipc * factor
        return SliceThroughput(
            ipc=ipc,
            compute_roof=base.compute_roof,
            bandwidth_roof=base.bandwidth_roof * factor,
            mlp_roof=base.mlp_roof,
            demand_bytes_per_cycle=base.demand_bytes_per_cycle,
            supply_bytes_per_cycle=base.supply_bytes_per_cycle,
            dram_bytes_per_cycle=base.dram_bytes_per_cycle * factor,
            llc_hit_rate=base.llc_hit_rate,
        )
