"""Balanced partitioning baselines (paper Section 2 and 6).

* **BP** — the GPU is divided into equal balanced partitions (NVIDIA
  MIG-style); each application keeps its slice for the whole run.
* **BP-BS** — the first application receives the big partition (60 SMs /
  24 channels for two programs), the second the small one (20 / 8).
* **BP-SB** — the mirror image: small first, big second.

All three are static: no profiling, no reallocation, no migration.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.slices import PartitionState, ResourceAllocation
from repro.core.system import MultitaskSystem
from repro.errors import AllocationError
from repro.gpu.kernel import Application


class BPSystem(MultitaskSystem):
    """Equal balanced partitions; the paper's primary baseline."""

    policy_name = "BP"

    def __init__(self, applications, config=None, epoch_cycles: int = 5_000_000,
                 energy_model=None, qos_big_first: bool = False,
                 total_memory_bytes=None, tracer=None) -> None:
        #: QoS-aware BP gives the first (high-priority) app the big
        #: partition (Section 6.7); plain BP splits evenly.
        self._qos_big_first = qos_big_first
        kwargs = {"epoch_cycles": epoch_cycles, "energy_model": energy_model,
                  "total_memory_bytes": total_memory_bytes, "tracer": tracer}
        if config is not None:
            kwargs["config"] = config
        super().__init__(applications, **kwargs)

    def initial_partition(self, applications: Sequence[Application]) -> PartitionState:
        if self._qos_big_first and len(applications) == 2:
            return _fixed_two_way(self.config, applications, big_first=True)
        return super().initial_partition(applications)


def _fixed_two_way(config, applications: Sequence[Application],
                   big_first: bool) -> PartitionState:
    """The paper's 60/24 + 20/8 split for two applications."""
    if len(applications) != 2:
        raise AllocationError(
            "the big/small BP variants are defined for two applications"
        )
    state = PartitionState(
        total_sms=config.num_sms, total_channels=config.num_channels
    )
    big = ResourceAllocation(
        sms=config.num_sms * 3 // 4, channels=config.num_channels * 3 // 4
    )
    small = ResourceAllocation(
        sms=config.num_sms - big.sms, channels=config.num_channels - big.channels
    )
    first, second = (big, small) if big_first else (small, big)
    state.assign(applications[0].app_id, first)
    state.assign(applications[1].app_id, second)
    return state


class BPBigSmallSystem(MultitaskSystem):
    """BP-BS: big partition to the first application."""

    policy_name = "BP-BS"

    def initial_partition(self, applications: Sequence[Application]) -> PartitionState:
        return _fixed_two_way(self.config, applications, big_first=True)


class BPSmallBigSystem(MultitaskSystem):
    """BP-SB: small partition to the first application."""

    policy_name = "BP-SB"

    def initial_partition(self, applications: Sequence[Application]) -> PartitionState:
        return _fixed_two_way(self.config, applications, big_first=False)
