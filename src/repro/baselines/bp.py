"""Deprecated shims: the BP (balanced partitioning) subclass spellings.

The BP policies now live in :mod:`repro.policies.bp` and compose with the
shared runner::

    MultitaskSystem(apps, policy=BPPolicy())
    MultitaskSystem(apps, policy=BPBigSmallPolicy())

The old ``BPSystem``/``BPBigSmallSystem``/``BPSmallBigSystem`` classes
keep working for one release; they emit :class:`DeprecationWarning` and
build the matching policy.  ``_fixed_two_way`` is re-exported for
callers that used the 60/24 + 20/8 helper directly.
"""

from __future__ import annotations

import warnings
from typing import Optional, Sequence

from repro.core.system import MultitaskSystem
from repro.gpu.kernel import Application
from repro.policies.bp import (
    BPBigSmallPolicy,
    BPPolicy,
    BPSmallBigPolicy,
    fixed_two_way,
)


def _fixed_two_way(config, applications: Sequence[Application],
                   big_first: bool):
    """The paper's 60/24 + 20/8 split for two applications."""
    return fixed_two_way(config, applications, big_first)


def _deprecated(old: str, policy: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use "
        f"MultitaskSystem(apps, policy={policy}()) instead",
        DeprecationWarning,
        stacklevel=3,
    )


class BPSystem(MultitaskSystem):
    """Equal balanced partitions (deprecated spelling)."""

    policy_name = "BP"

    def __init__(self, applications, config=None, epoch_cycles: int = 5_000_000,
                 energy_model=None, qos_big_first: bool = False,
                 total_memory_bytes=None, tracer=None) -> None:
        _deprecated("BPSystem", "BPPolicy")
        super().__init__(
            applications, config, epoch_cycles, energy_model,
            total_memory_bytes=total_memory_bytes, tracer=tracer,
            policy=BPPolicy(qos_big_first=qos_big_first),
        )


class BPBigSmallSystem(MultitaskSystem):
    """BP-BS: big partition to the first application (deprecated spelling)."""

    policy_name = "BP-BS"

    def __init__(self, applications, config=None, epoch_cycles: int = 5_000_000,
                 energy_model=None, total_memory_bytes=None, tracer=None) -> None:
        _deprecated("BPBigSmallSystem", "BPBigSmallPolicy")
        super().__init__(
            applications, config, epoch_cycles, energy_model,
            total_memory_bytes=total_memory_bytes, tracer=tracer,
            policy=BPBigSmallPolicy(),
        )


class BPSmallBigSystem(MultitaskSystem):
    """BP-SB: small partition to the first application (deprecated spelling)."""

    policy_name = "BP-SB"

    def __init__(self, applications, config=None, epoch_cycles: int = 5_000_000,
                 energy_model=None, total_memory_bytes=None, tracer=None) -> None:
        _deprecated("BPSmallBigSystem", "BPSmallBigPolicy")
        super().__init__(
            applications, config, epoch_cycles, energy_model,
            total_memory_bytes=total_memory_bytes, tracer=tracer,
            policy=BPSmallBigPolicy(),
        )
