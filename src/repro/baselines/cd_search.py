"""Deprecated shim: the CD-Search subclass spelling.

SM-only reallocation over BP instances now lives in
:class:`repro.policies.cd_search.CDSearchPolicy` and composes with the
shared runner::

    MultitaskSystem(apps, policy=CDSearchPolicy(sm_step=4))

``CDSearchSystem`` keeps working for one release; it emits
:class:`DeprecationWarning` and builds the policy.
"""

from __future__ import annotations

import warnings

from repro.core.system import MultitaskSystem
from repro.policies.cd_search import CDSearchPolicy


class CDSearchSystem(MultitaskSystem):
    """BP instances with SM-only reallocation (deprecated spelling)."""

    policy_name = "BP(CD-Search)"

    def __init__(self, applications, config=None, epoch_cycles: int = 5_000_000,
                 energy_model=None, sm_step: int = 4,
                 tb_duration_cycles: float = 200_000.0, tracer=None) -> None:
        warnings.warn(
            "CDSearchSystem is deprecated; use "
            "MultitaskSystem(apps, policy=CDSearchPolicy(...)) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(
            applications, config, epoch_cycles, energy_model,
            tracer=tracer,
            policy=CDSearchPolicy(
                sm_step=sm_step,
                tb_duration_cycles=tb_duration_cycles,
            ),
        )
