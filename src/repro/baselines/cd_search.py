"""CD-Search combined with BP (paper Section 6.4).

CD-Search (Zhao et al., ICS 2018) classifies applications and moves SMs
between them at epoch boundaries.  As the paper notes, CD-Search alone has
no resource isolation, so the comparison point is *BP (CD-Search)*: the
GPU stays split into isolated BP instances, memory channels never move,
and only SMs are reallocated across the instance boundary based on the
same demand classification UGPU uses.

SM handover costs are charged exactly as in UGPU (drain/switch); there is
never any page migration.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.core.hardware_cost import AlgorithmCostModel
from repro.core.partitioner import DemandAwarePartitioner
from repro.core.profiler import EpochProfiler
from repro.core.reallocation import SMReallocator
from repro.core.system import AppState, MultitaskSystem
from repro.gpu.kernel import Application


class CDSearchSystem(MultitaskSystem):
    """BP instances with SM-only reallocation."""

    policy_name = "BP(CD-Search)"

    def __init__(self, applications, config=None, epoch_cycles: int = 5_000_000,
                 energy_model=None, sm_step: int = 4,
                 tb_duration_cycles: float = 200_000.0, tracer=None) -> None:
        kwargs = {"epoch_cycles": epoch_cycles, "energy_model": energy_model,
                  "tracer": tracer}
        if config is not None:
            kwargs["config"] = config
        super().__init__(applications, **kwargs)
        self.profiler = EpochProfiler(self.config)
        for app in applications:
            self.profiler.track(
                app.app_id,
                ipc_max_per_sm=max(k.ipc_per_sm for k in app.kernels),
                footprint_bytes=app.footprint_bytes,
            )
        self.partitioner = DemandAwarePartitioner(
            self.partition, sm_step=sm_step, gpu_config=self.config
        )
        self.sm_reallocator = SMReallocator(self.config)
        self.algorithm_cost = AlgorithmCostModel()
        self.tb_duration_cycles = tb_duration_cycles

    def throughput_for(self, state: AppState):
        throughput = super().throughput_for(state)
        self.profiler.observe_epoch(state.app_id, throughput, self.epoch_cycles)
        return throughput

    def at_epoch_end(self, epoch_index: int, span: int) -> None:
        profiles = {a: self.profiler.profile(a) for a in self.apps}
        previous = {a: s.allocation for a, s in self.apps.items()}
        decision = self.partitioner.compute(profiles)
        # CD-Search moves SMs only: restore every channel allocation.
        constrained = {
            app_id: decision.allocations[app_id].move(
                d_channels=previous[app_id].channels
                - decision.allocations[app_id].channels
            )
            for app_id in decision.allocations
        }
        if constrained == previous:
            return
        self.apply_partition(constrained)
        self.repartitions += 1
        latency = float(
            self.algorithm_cost.total_cycles(decision.iterations, len(self.apps))
        )
        for app_id, state in self.apps.items():
            self.add_penalty(app_id, latency, 1.0)
            moved = abs(constrained[app_id].sms - previous[app_id].sms)
            if moved and constrained[app_id].sms > 0:
                charge = self.sm_reallocator.cost(
                    moved, self.tb_duration_cycles, self.epoch_cycles,
                    channels_available=max(1, constrained[app_id].channels),
                )
                self.add_penalty(app_id, charge.cycles, moved / constrained[app_id].sms)
                state.migrated_bytes += charge.dram_bytes
