"""Baseline multitasking policies the paper compares against.

* :class:`~repro.baselines.bp.BPSystem` — balanced partitioning, the
  MIG-like equal split (plus the BP-BS / BP-SB fixed big/small variants).
* :class:`~repro.baselines.mps.MPSSystem` — Multi-Process Service: SMs
  partitioned, memory shared with contention (no isolation, no QoS
  guarantee).
* :class:`~repro.baselines.cd_search.CDSearchSystem` — CD-Search combined
  with BP: SM-only reallocation between isolated instances (Section 6.4).
"""

from repro.baselines.bp import BPBigSmallSystem, BPSystem, BPSmallBigSystem
from repro.baselines.mps import MPSSystem
from repro.baselines.cd_search import CDSearchSystem

__all__ = [
    "BPSystem",
    "BPBigSmallSystem",
    "BPSmallBigSystem",
    "MPSSystem",
    "CDSearchSystem",
]
