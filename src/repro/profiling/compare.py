"""Noise-aware regression gating between two BENCH documents.

``repro bench --compare BASELINE.json`` verdicts, per scenario, on the
relative change of the **min** wall time (the statistic least disturbed
by scheduler noise):

* ``regression`` — candidate min slower than baseline by more than the
  fail threshold (default 15%); the comparison as a whole fails.
* ``warn`` — slower by more than the warn threshold (default 5%) but
  inside the fail bar; reported, does not fail.
* ``ok`` — within the noise band either way.
* ``improved`` — faster by more than the warn threshold (celebrated,
  never failed).
* ``skewed`` — the scenario's deterministic ``meta`` counts differ
  between the two documents, so its times measure different work; the
  time verdict is suppressed and the comparison fails (a silently
  changed workload would otherwise grandfather a real regression in).
  A document-level skew is emitted when both documents record a
  ``kernel_backend`` and they disagree: scalar-vs-numpy times compare
  implementations, not commits, so the gate refuses to verdict them.
* ``missing`` — present on one side only; reported, does not fail
  (suites are allowed to grow).

Thresholds are relative, so the gate is machine-independent as long as
both documents come from the same machine; comparing across machines is
meaningful only with ``warn_only=True``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.errors import ConfigError


@dataclass(frozen=True)
class ScenarioVerdict:
    """The comparison outcome for one scenario."""

    name: str
    status: str  #: regression | warn | ok | improved | skewed | missing
    baseline_min: float = 0.0
    candidate_min: float = 0.0
    rel_delta: float = 0.0  #: (candidate - baseline) / baseline
    note: str = ""

    def format(self) -> str:
        if self.status == "missing":
            return f"{self.name:<16} missing     {self.note}"
        if self.status == "skewed":
            return f"{self.name:<16} SKEWED      {self.note}"
        marker = {
            "regression": "REGRESSION",
            "warn": "warn",
            "ok": "ok",
            "improved": "improved",
        }[self.status]
        line = (
            f"{self.name:<16} {marker:<11} "
            f"{self.baseline_min * 1e3:8.1f}ms -> "
            f"{self.candidate_min * 1e3:8.1f}ms  ({self.rel_delta:+.1%})"
        )
        if self.note:
            line += f"  [{self.note}]"
        return line


@dataclass
class BenchComparison:
    """All verdicts plus the gate decision."""

    verdicts: List[ScenarioVerdict] = field(default_factory=list)
    fail_threshold: float = 0.15
    warn_threshold: float = 0.05

    @property
    def failed(self) -> bool:
        return any(v.status in ("regression", "skewed") for v in self.verdicts)

    @property
    def regressions(self) -> List[ScenarioVerdict]:
        return [v for v in self.verdicts if v.status == "regression"]

    def format(self) -> str:
        lines = [
            f"bench comparison (fail >{self.fail_threshold:.0%} min-time "
            f"regression, warn >{self.warn_threshold:.0%}):"
        ]
        lines.extend(v.format() for v in self.verdicts)
        if self.failed:
            count = len([v for v in self.verdicts
                         if v.status in ("regression", "skewed")])
            lines.append(f"FAIL: {count} gating scenario(s)")
        else:
            lines.append("PASS")
        return "\n".join(lines)


def _phase_note(base: Dict[str, Any], cand: Dict[str, Any],
                top: int = 3) -> str:
    """Name the span paths that got slower, when both documents carry
    the optional per-scenario ``phases`` self-time map (written by
    ``run_bench(profile_phases=True)``).  Turns "this scenario regressed"
    into "this scenario regressed *in these paths*."""
    base_phases = base.get("phases") or {}
    cand_phases = cand.get("phases") or {}
    if not base_phases or not cand_phases:
        return ""
    deltas = sorted(
        (
            (cand_phases.get(path, 0.0) - base_phases.get(path, 0.0), path)
            for path in set(base_phases) | set(cand_phases)
        ),
        key=lambda pair: (-pair[0], pair[1]),
    )
    slower = [(delta, path) for delta, path in deltas if delta > 0][:top]
    if not slower:
        return ""
    return "hot paths: " + ", ".join(
        f"{path} +{delta * 1e3:.1f}ms" for delta, path in slower
    )


def compare_benchmarks(
    baseline: Dict[str, Any],
    candidate: Dict[str, Any],
    fail_threshold: float = 0.15,
    warn_threshold: float = 0.05,
) -> BenchComparison:
    """Verdict the candidate document against the baseline document.

    Both arguments are BENCH documents (see
    :func:`repro.profiling.bench.read_bench`).
    """
    if not 0 < warn_threshold <= fail_threshold:
        raise ConfigError(
            f"thresholds must satisfy 0 < warn ({warn_threshold}) <= "
            f"fail ({fail_threshold})"
        )
    comparison = BenchComparison(
        fail_threshold=fail_threshold, warn_threshold=warn_threshold
    )
    base_backend = baseline.get("kernel_backend")
    cand_backend = candidate.get("kernel_backend")
    if base_backend and cand_backend and base_backend != cand_backend:
        comparison.verdicts.append(ScenarioVerdict(
            name="(document)", status="skewed",
            note=(
                f"kernel backends differ ({base_backend} vs {cand_backend}); "
                "times compare implementations, not commits"
            ),
        ))
    base_scenarios = baseline.get("scenarios", {})
    cand_scenarios = candidate.get("scenarios", {})
    for name in list(base_scenarios) + [
        n for n in cand_scenarios if n not in base_scenarios
    ]:
        base = base_scenarios.get(name)
        cand = cand_scenarios.get(name)
        if base is None or cand is None:
            side = "baseline" if base is None else "candidate"
            comparison.verdicts.append(ScenarioVerdict(
                name=name, status="missing",
                note=f"not in the {side} document",
            ))
            continue
        base_meta = base.get("meta", {})
        cand_meta = cand.get("meta", {})
        if base_meta and cand_meta and base_meta != cand_meta:
            drifted = sorted(
                k for k in set(base_meta) | set(cand_meta)
                if base_meta.get(k) != cand_meta.get(k)
            )
            comparison.verdicts.append(ScenarioVerdict(
                name=name, status="skewed",
                note="workload drift in meta: " + ", ".join(
                    f"{k} {base_meta.get(k)}->{cand_meta.get(k)}"
                    for k in drifted
                ),
            ))
            continue
        base_min = float(base["min_seconds"])
        cand_min = float(cand["min_seconds"])
        if base_min <= 0:
            comparison.verdicts.append(ScenarioVerdict(
                name=name, status="skewed",
                note=f"baseline min_seconds is {base_min}; cannot gate",
            ))
            continue
        rel = (cand_min - base_min) / base_min
        if rel > fail_threshold:
            status = "regression"
        elif rel > warn_threshold:
            status = "warn"
        elif rel < -warn_threshold:
            status = "improved"
        else:
            status = "ok"
        note = ""
        if status in ("regression", "warn"):
            note = _phase_note(base, cand)
        comparison.verdicts.append(ScenarioVerdict(
            name=name, status=status,
            baseline_min=base_min, candidate_min=cand_min, rel_delta=rel,
            note=note,
        ))
    return comparison
