"""Deterministic phase profiler for the simulator's own hot paths.

The repo observes the *simulated* GPU well (:mod:`repro.trace`,
:mod:`repro.telemetry`); :class:`PhaseProfiler` observes the *simulator*:
which phases of an epoch — throughput evaluation, the partitioning
algorithm, migration costing, fault handling — actually burn host wall
time.  It is the instrument the benchmark harness
(:mod:`repro.profiling.bench`) and the ``repro profile`` CLI read.

Design constraints mirror :class:`repro.trace.TraceRecorder`, in order:

1. **Zero overhead when absent.**  Every instrumented component defaults
   ``profiler=None`` and guards each span with one ``is not None``
   check, so unprofiled simulations run the same instructions they ran
   before instrumentation.
2. **Deterministic attribution.**  Phases are identified by the *stack
   of names* active when they ran (``("epoch", "epoch.policy")``), so
   the aggregation tree is identical across runs; only the measured
   seconds vary.  The clock is injectable (tests pass a fake counter and
   get exact arithmetic).
3. **Self vs cumulative.**  A node's cumulative time covers its whole
   span; its self time subtracts the cumulative time of its direct
   children — the flat table sorts by self time, which is where an
   optimization actually lands.

Span recording is begin/end based rather than context-manager-only: the
hot loops guard ``profiler.begin(...)``/``profiler.end(...)`` behind an
``is not None`` branch with no generator or ``with``-frame overhead.
:meth:`PhaseProfiler.span` wraps the same pair for ergonomic call sites::

    with profiler.span("hbm.service_requests"):
        controller.drain()

Every completed span is also kept (ring-buffered) as a raw event so the
profile exports to the Chrome-trace format via the existing
:mod:`repro.trace.export` machinery and loads in Perfetto.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.trace.export import write_chrome_trace
from repro.trace.recorder import KIND_SPAN, TraceEvent


@dataclass
class PhaseStats:
    """Aggregated timing of one phase name (flat view) or path (tree view)."""

    name: str
    calls: int = 0
    cum_seconds: float = 0.0
    self_seconds: float = 0.0

    @property
    def per_call_seconds(self) -> float:
        return self.cum_seconds / self.calls if self.calls else 0.0


@dataclass
class _Node:
    """Per-path accumulator: calls and cumulative seconds."""

    calls: int = 0
    cum_seconds: float = 0.0


class _Span:
    """Reusable context manager around one profiler + name pair."""

    __slots__ = ("_profiler", "_name")

    def __init__(self, profiler: "PhaseProfiler", name: str) -> None:
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> "_Span":
        self._profiler.begin(self._name)
        return self

    def __exit__(self, *exc) -> None:
        self._profiler.end(self._name)


class PhaseProfiler:
    """Nestable wall-clock phase spans with self/cumulative attribution.

    Parameters
    ----------
    clock:
        Monotonic seconds source (default :func:`time.perf_counter`).
        Tests inject a fake counter for exact span arithmetic.
    events_capacity:
        Ring-buffer size for raw span events (the Chrome-trace export);
        the oldest spans are dropped (and counted in :attr:`dropped`)
        once full.  Aggregated statistics are never dropped.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter,
                 events_capacity: int = 262_144) -> None:
        if events_capacity < 1:
            raise SimulationError(
                f"events_capacity must be >= 1, got {events_capacity}"
            )
        self._clock = clock
        #: Aggregation keyed by the full name stack at begin() time.
        self._nodes: Dict[Tuple[str, ...], _Node] = {}
        #: Open spans: (name, start_seconds) in nesting order.
        self._stack: List[Tuple[str, float]] = []
        self._events: deque = deque(maxlen=events_capacity)
        self._origin: Optional[float] = None
        self._seq = 0
        self.dropped = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def begin(self, name: str) -> None:
        """Open a span; must be closed by :meth:`end` with the same name."""
        now = self._clock()
        if self._origin is None:
            self._origin = now
        self._stack.append((name, now))

    def end(self, name: str) -> float:
        """Close the innermost span; returns its duration in seconds.

        Raises :class:`SimulationError` on mismatched nesting — a
        mismatch means the instrumentation itself is wrong, and silent
        misattribution would poison every report downstream.
        """
        now = self._clock()
        if not self._stack:
            raise SimulationError(f"end({name!r}) with no open span")
        opened, start = self._stack.pop()
        if opened != name:
            raise SimulationError(
                f"mismatched span nesting: end({name!r}) while "
                f"{opened!r} is innermost"
            )
        duration = now - start
        path = tuple(n for n, _ in self._stack) + (name,)
        node = self._nodes.get(path)
        if node is None:
            node = self._nodes[path] = _Node()
        node.calls += 1
        node.cum_seconds += duration
        if len(self._events) == self._events.maxlen:
            self.dropped += 1
        self._events.append((self._seq, path, start, duration))
        self._seq += 1
        return duration

    def span(self, name: str) -> _Span:
        """Context manager form of :meth:`begin`/:meth:`end`."""
        return _Span(self, name)

    # ------------------------------------------------------------------
    # Cross-process snapshot / merge
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Tuple[int, float]]:
        """The aggregation as a picklable ``path -> (calls, cum)`` mapping.

        Paths are ``"/"``-joined (phase names never contain ``/`` by
        convention — the Chrome exporter already relies on that for its
        ``path`` arg).  Raw span events are deliberately excluded: the
        aggregate is what merges deterministically across processes.
        """
        self._check_closed()
        return {
            "/".join(path): (node.calls, node.cum_seconds)
            for path, node in self._nodes.items()
        }

    def absorb(self, snapshot: Dict[str, Tuple[int, float]],
               prefix: Tuple[str, ...] = ()) -> None:
        """Fold a worker's :meth:`snapshot` into this profiler.

        ``prefix`` grafts the worker's paths under an orchestrator span
        (e.g. ``("fleet.execute",)``) so worker phases appear as
        children of the span that dispatched them.  Iteration is sorted
        by path so the merged node order — and therefore report order —
        is deterministic regardless of worker scheduling.  Callable
        mid-span: absorbing touches only the aggregation, never the
        stack.
        """
        prefix = tuple(prefix)
        for path_str, (calls, cum) in sorted(snapshot.items()):
            path = prefix + tuple(path_str.split("/"))
            node = self._nodes.get(path)
            if node is None:
                node = self._nodes[path] = _Node()
            node.calls += int(calls)
            node.cum_seconds += float(cum)

    # ------------------------------------------------------------------
    # Reports
    # ------------------------------------------------------------------
    def _check_closed(self) -> None:
        if self._stack:
            open_names = " > ".join(n for n, _ in self._stack)
            raise SimulationError(
                f"cannot report with open spans: {open_names}"
            )

    def tree(self) -> Dict[Tuple[str, ...], PhaseStats]:
        """Per-path stats; self time subtracts direct children's cum."""
        self._check_closed()
        out: Dict[Tuple[str, ...], PhaseStats] = {}
        for path, node in self._nodes.items():
            out[path] = PhaseStats(
                name=path[-1], calls=node.calls,
                cum_seconds=node.cum_seconds, self_seconds=node.cum_seconds,
            )
        for path, node in self._nodes.items():
            if len(path) > 1:
                parent = out.get(path[:-1])
                if parent is not None:
                    parent.self_seconds -= node.cum_seconds
        return out

    def flat(self) -> List[PhaseStats]:
        """Per-name stats aggregated over every path, sorted by self time.

        Cumulative time for a name only counts paths where the name does
        not also appear as an ancestor, so a recursive phase is not
        double-counted.
        """
        tree = self.tree()
        by_name: Dict[str, PhaseStats] = {}
        for path, stats in tree.items():
            name = path[-1]
            agg = by_name.get(name)
            if agg is None:
                agg = by_name[name] = PhaseStats(name=name)
            agg.calls += stats.calls
            agg.self_seconds += stats.self_seconds
            if name not in path[:-1]:
                agg.cum_seconds += stats.cum_seconds
        return sorted(
            by_name.values(), key=lambda s: (-s.self_seconds, s.name)
        )

    def total_seconds(self) -> float:
        """Cumulative seconds of the root-level spans."""
        return sum(
            node.cum_seconds
            for path, node in self._nodes.items() if len(path) == 1
        )

    def format_table(self, top: int = 15, sort: str = "self") -> str:
        """The hot-phase table ``repro profile`` prints.

        ``sort`` is ``"self"`` (default — where time is actually spent)
        or ``"cum"`` (inclusive, call-graph order).
        """
        if sort not in ("self", "cum"):
            raise SimulationError(f"sort must be 'self' or 'cum', got {sort!r}")
        rows = self.flat()
        if sort == "cum":
            rows = sorted(rows, key=lambda s: (-s.cum_seconds, s.name))
        total = self.total_seconds()
        lines = [
            f"{'phase':<28} {'calls':>9} {'self':>10} {'cum':>10} "
            f"{'self%':>6} {'per-call':>10}"
        ]
        for stats in rows[:top]:
            share = stats.self_seconds / total if total > 0 else 0.0
            lines.append(
                f"{stats.name:<28} {stats.calls:>9} "
                f"{stats.self_seconds * 1e3:>8.2f}ms "
                f"{stats.cum_seconds * 1e3:>8.2f}ms "
                f"{share:>6.1%} {stats.per_call_seconds * 1e6:>8.2f}us"
            )
        if len(rows) > top:
            lines.append(f"... {len(rows) - top} more phases")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Chrome-trace export (loads in chrome://tracing and Perfetto)
    # ------------------------------------------------------------------
    def trace_events(self) -> List[TraceEvent]:
        """The recorded spans as ``phase``-category trace events.

        Timestamps are microseconds since the first span opened, so the
        standard exporter renders them 1:1 (its cycle→µs division is
        driven by ``clock_ghz=0.001``, i.e. one "cycle" per µs).
        """
        self._check_closed()
        origin = self._origin if self._origin is not None else 0.0
        events = []
        for seq, path, start, duration in self._events:
            events.append(TraceEvent(
                seq=seq,
                time=(start - origin) * 1e6,
                category="phase",
                name=path[-1],
                kind=KIND_SPAN,
                duration=duration * 1e6,
                args={"depth": len(path) - 1, "path": "/".join(path)},
            ))
        return events

    def write_chrome_trace(self, path) -> int:
        """Export the span timeline; returns the trace-record count."""
        return write_chrome_trace(self.trace_events(), path, clock_ghz=0.001)
