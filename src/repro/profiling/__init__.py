"""Self-profiling and continuous benchmarking of the simulator itself.

Three layers, consumed by the ``repro profile`` and ``repro bench`` CLI
subcommands and the CI ``bench`` job:

* :mod:`~repro.profiling.profiler` — :class:`PhaseProfiler`, nestable
  wall-clock spans with self/cumulative attribution, threaded through
  the runner/engine/HBM/policy/pagemove/driver layers as zero-overhead
  ``profiler=None`` hooks (the host-time sibling of ``tracer=`` /
  ``metrics=``).
* :mod:`~repro.profiling.bench` — the pinned scenario suite, k-repeat
  min/median statistics, and the schema-versioned ``BENCH_<sha>.json``
  artifact.
* :mod:`~repro.profiling.compare` — noise-aware regression gating
  between two BENCH documents.
"""

from repro.profiling.bench import (
    BENCH_SCHEMA,
    Scenario,
    bench_filename,
    read_bench,
    run_bench,
    scenario_names,
    scenarios,
    write_bench,
)
from repro.profiling.compare import (
    BenchComparison,
    ScenarioVerdict,
    compare_benchmarks,
)
from repro.profiling.profiler import PhaseProfiler, PhaseStats

__all__ = [
    "BENCH_SCHEMA",
    "BenchComparison",
    "PhaseProfiler",
    "PhaseStats",
    "Scenario",
    "ScenarioVerdict",
    "bench_filename",
    "compare_benchmarks",
    "read_bench",
    "run_bench",
    "scenario_names",
    "scenarios",
    "write_bench",
]
