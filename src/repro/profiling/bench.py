"""Pinned benchmark suite: the simulator's own performance trajectory.

The suite is a fixed set of scenarios — closed-system mixes per policy,
an open-system arrivals run, a PageMove-heavy migration run, and a sweep
through the :mod:`repro.exec` executor — each run ``repeats`` times with
min/median statistics over host wall seconds.  Minimum time is the
noise-robust statistic (it is the run least disturbed by the OS), so the
regression gate (:mod:`repro.profiling.compare`) compares minima; the
median is reported for context.

Every run clears the process-wide solo-IPC memo first, so repetition k
does exactly the work repetition 1 did and the statistics are over
identical computations.

The emitted artifact is a schema-versioned JSON document::

    {
      "schema": "repro.bench/1",
      "repeats": 3,
      "kernel_backend": "numpy",
      "provenance": {"git_sha": ..., "config_hash": ..., ...},
      "scenarios": {
        "closed_ugpu": {"description": ..., "seconds": [...],
                         "min_seconds": ..., "median_seconds": ...,
                         "meta": {"repartitions": 12, ...}},
        ...
      }
    }

written as ``BENCH_<git-sha>.json`` so a directory of artifacts reads as
a perf trajectory.  ``meta`` carries deterministic per-scenario counts
(epochs, repartitions, faults...) — if those drift between two BENCH
files, the comparison is apples to oranges and the compare layer says so.
The document-level ``kernel_backend`` records which simulation backend
(scalar oracle or numpy fast path) produced the times; the compare layer
likewise refuses to gate across backends.
"""

from __future__ import annotations

import json
import statistics
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Union

from repro.errors import ConfigError

PathLike = Union[str, Path]

#: Version tag checked by :func:`read_bench`; bump on breaking layout
#: changes so stale baselines fail loudly instead of comparing garbage.
BENCH_SCHEMA = "repro.bench/1"


@dataclass(frozen=True)
class Scenario:
    """One pinned benchmark: a deterministic callable plus its story.

    ``fn`` takes an optional :class:`~repro.profiling.profiler.PhaseProfiler`
    (``repro profile`` reuses the same scenarios) and returns a dict of
    deterministic counts for the artifact's ``meta`` block.
    """

    name: str
    description: str
    fn: Callable[[Optional[object]], Dict[str, Any]]


# ----------------------------------------------------------------------
# Scenario bodies (pinned: changing a constant here invalidates baselines)
# ----------------------------------------------------------------------
def _closed_mix(policy_factory) -> Callable:
    def run(profiler=None) -> Dict[str, Any]:
        from repro.core.system import MultitaskSystem, clear_solo_ipc_cache
        from repro.workloads.mixes import build_mix

        clear_solo_ipc_cache()
        system = MultitaskSystem(
            build_mix(["PVC", "DXTC"]).applications,
            policy=policy_factory(),
            epoch_cycles=50_000,
            profiler=profiler,
        )
        result = system.run(25_000_000)
        return {
            "epochs": len(result.epochs),
            "repartitions": result.repartitions,
            "stp": round(result.stp, 6),
        }

    return run


def _scenario_arrivals(profiler=None) -> Dict[str, Any]:
    from repro.core.system import MultitaskSystem, clear_solo_ipc_cache
    from repro.policies import UGPUPolicy
    from repro.workloads.arrivals import poisson_arrivals

    clear_solo_ipc_cache()
    schedule = poisson_arrivals(
        mean_interarrival_cycles=1_000_000,
        horizon_cycles=25_000_000,
        seed=0,
    )
    system = MultitaskSystem(
        [],
        policy=UGPUPolicy(),
        epoch_cycles=500_000,
        arrivals=schedule,
        profiler=profiler,
    )
    result = system.run(25_000_000, mix_name="bench-arrivals")
    return {
        "epochs": len(result.epochs),
        "arrivals": result.arrivals,
        "departures": result.departures,
        "repartitions": result.repartitions,
    }


def _scenario_ppmm_migration(profiler=None) -> Dict[str, Any]:
    """PageMove-heavy: fault pages in, then churn channel reallocation
    through the driver + migration engine + TLBs, and drain one
    command-level HBM controller — the Section 4.4 machinery end to end."""
    from repro.hbm.config import HBMConfig
    from repro.hbm.controller import MemoryController, MemoryRequest, RequestKind
    from repro.pagemove.engine import MigrationEngine
    from repro.vm.driver import FaultKind, GPUDriver
    from repro.vm.tlb import TLB

    driver = GPUDriver(num_channel_groups=8, pages_per_channel=4096,
                       profiler=profiler)
    driver.register_app(0, channels=range(0, 4))
    driver.register_app(1, channels=range(4, 8))
    engine = MigrationEngine(
        driver,
        l1_tlbs=[TLB.l1(f"l1tlb{i}") for i in range(4)],
        profiler=profiler,
    )
    for vpn in range(6000):
        driver.handle_fault(FaultKind.DEMAND, 0, vpn)
        driver.handle_fault(FaultKind.DEMAND, 1, 0x100000 + vpn)
    pages_moved = 0
    # Shift app 0's channel window back and forth: every step loses one
    # channel (eager vacate) and gains another (lazy rebalance).
    windows = [range(1, 5), range(0, 4), range(1, 5), range(0, 4)]
    for new_channels in windows:
        plan = engine.plan_channel_reallocation(
            0, new_channels, rebalance_cap=1500
        )
        report = engine.execute(plan)
        pages_moved += report.pages_moved
    controller = MemoryController(HBMConfig(), profiler=profiler)
    served = 0
    for wave in range(64):
        for i in range(48):
            controller.enqueue(MemoryRequest(
                kind=RequestKind.READ if (wave + i) % 3 else RequestKind.WRITE,
                bank_group=i % 4, bank=(i // 4) % 4,
                row=(wave * 7 + i) % 64, column=i % 32,
                arrival=controller.now,
            ))
        served += len(controller.drain())
    return {
        "faults": len(driver.faults),
        "pages_moved": pages_moved,
        "hbm_served": served,
    }


def _scenario_sweep(profiler=None) -> Dict[str, Any]:
    """Sweep through the PR 1 executor (in-process, cache disabled so
    every repetition simulates)."""
    from repro.core.system import clear_solo_ipc_cache
    from repro.exec import SweepExecutor, SweepJob
    from repro.workloads.mixes import heterogeneous_pairs

    clear_solo_ipc_cache()
    pairs = heterogeneous_pairs()[:10]
    executor = SweepExecutor(jobs=1, cache=None)
    jobs = [SweepJob.build(policy, pair, 25_000_000)
            for policy in ("bp", "ugpu") for pair in pairs]
    results = executor.run(jobs)
    return {
        "jobs": len(results),
        "mean_stp": round(
            statistics.fmean(r.stp for r in results), 6
        ),
    }


def _scenario_fleet(profiler=None) -> Dict[str, Any]:
    """Fleet-scale open system: 12 nodes, ~200 arriving/departing jobs,
    consolidating placement with energy-scored rebalancing — the cluster
    coordinator, shard physics and placement zoo end to end (in-process,
    cache off so every repetition simulates)."""
    from repro.cluster import FleetSimulator, PlacementPolicy
    from repro.workloads.arrivals import poisson_arrivals

    schedule = poisson_arrivals(
        mean_interarrival_cycles=150_000,
        horizon_cycles=30_000_000,
        seed=0,
        instructions_per_kernel=50_000_000,
    )
    simulator = FleetSimulator(
        12,
        schedule,
        PlacementPolicy.CONSOLIDATE,
        round_cycles=2_500_000,
        horizon_cycles=30_000_000,
        instructions_per_kernel=50_000_000,
        profiler=profiler,
    )
    result = simulator.run()
    return {
        "rounds": result.rounds,
        "arrivals": result.arrivals,
        "departures": result.departures,
        "migrations": result.migrations,
        "stp": round(result.stp, 6),
    }


def _scenarios() -> Dict[str, Scenario]:
    from repro.policies import BPPolicy, MPSPolicy, UGPUPolicy

    entries = [
        Scenario(
            "closed_bp",
            "PVC,DXTC under the balanced-partition baseline, 500 epochs",
            _closed_mix(BPPolicy),
        ),
        Scenario(
            "closed_ugpu",
            "PVC,DXTC under UGPU/PPMM with demand-aware repartitioning, "
            "500 epochs",
            _closed_mix(UGPUPolicy),
        ),
        Scenario(
            "closed_mps",
            "PVC,DXTC under the MPS SM-only baseline, 500 epochs",
            _closed_mix(MPSPolicy),
        ),
        Scenario(
            "arrivals",
            "open-system Poisson arrivals (seed 0) under UGPU, 50 epochs",
            _scenario_arrivals,
        ),
        Scenario(
            "ppmm_migration",
            "12K demand faults + 4 channel reallocations through the "
            "migration engine + one HBM controller drain",
            _scenario_ppmm_migration,
        ),
        Scenario(
            "sweep",
            "20-job bp/ugpu sweep through the exec layer (cache off)",
            _scenario_sweep,
        ),
        Scenario(
            "fleet",
            "12-node open-system fleet (seed 0) under consolidating "
            "placement, 12 rounds",
            _scenario_fleet,
        ),
    ]
    return {s.name: s for s in entries}


#: The pinned suite, keyed by scenario name (insertion order is report
#: order).  Built lazily on first use to keep import light.
_SCENARIO_CACHE: Optional[Dict[str, Scenario]] = None


def scenarios() -> Dict[str, Scenario]:
    global _SCENARIO_CACHE
    if _SCENARIO_CACHE is None:
        _SCENARIO_CACHE = _scenarios()
    return _SCENARIO_CACHE


def scenario_names() -> List[str]:
    return list(scenarios())


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def run_bench(
    names: Optional[Iterable[str]] = None,
    repeats: int = 3,
    suite: Optional[Dict[str, Scenario]] = None,
    clock: Callable[[], float] = time.perf_counter,
    progress: Optional[Callable[[str], None]] = None,
    profile_phases: bool = False,
) -> Dict[str, Any]:
    """Run the suite ``repeats`` times per scenario; returns the artifact
    document (see the module docstring for the layout).

    ``suite`` overrides the pinned scenario registry (tests inject tiny
    synthetic scenarios); ``progress`` receives one line per finished
    scenario.

    ``profile_phases`` adds one *extra* (untimed) profiled run per
    scenario and records the top self-time phase paths under a separate
    ``phases`` key — deliberately not in ``meta``, which must stay a
    pure determinism fingerprint — so the compare gate can say *which*
    span paths a regression landed in, not just that one happened.
    """
    from repro.fastpath import resolve_kernel_backend
    from repro.telemetry.provenance import collect_provenance

    if repeats < 1:
        raise ConfigError(f"repeats must be >= 1, got {repeats}")
    suite = suite if suite is not None else scenarios()
    selected = list(names) if names is not None else list(suite)
    unknown = [n for n in selected if n not in suite]
    if unknown:
        raise ConfigError(
            f"unknown scenario(s) {', '.join(unknown)}; "
            f"known: {', '.join(suite)}"
        )
    doc: Dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "repeats": repeats,
        "kernel_backend": resolve_kernel_backend(),
        "provenance": collect_provenance(command="bench"),
        "scenarios": {},
    }
    for name in selected:
        scenario = suite[name]
        seconds: List[float] = []
        meta: Dict[str, Any] = {}
        for _ in range(repeats):
            start = clock()
            meta = scenario.fn(None) or {}
            seconds.append(clock() - start)
        doc["scenarios"][name] = {
            "description": scenario.description,
            "seconds": [round(s, 6) for s in seconds],
            "min_seconds": round(min(seconds), 6),
            "median_seconds": round(statistics.median(seconds), 6),
            "meta": meta,
        }
        if profile_phases:
            from repro.profiling.profiler import PhaseProfiler

            profiler = PhaseProfiler(clock=clock)
            scenario.fn(profiler)
            ranked = sorted(
                profiler.tree().items(),
                key=lambda item: (-item[1].self_seconds, item[0]),
            )
            doc["scenarios"][name]["phases"] = {
                "/".join(path): round(stats.self_seconds, 6)
                for path, stats in ranked[:8]
            }
        if progress is not None:
            progress(
                f"{name:<16} min {min(seconds) * 1e3:8.1f}ms  "
                f"median {statistics.median(seconds) * 1e3:8.1f}ms  "
                f"({repeats}x)"
            )
    return doc


def bench_filename(doc: Dict[str, Any]) -> str:
    """``BENCH_<git-sha>.json`` (the ``-dirty`` suffix survives: a dirty
    tree's numbers should never be mistaken for the commit's)."""
    sha = doc.get("provenance", {}).get("git_sha", "unknown")
    return f"BENCH_{sha}.json"


def write_bench(doc: Dict[str, Any], out_dir: PathLike = ".") -> Path:
    """Write the artifact into ``out_dir`` (created if absent); returns
    the path."""
    directory = Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / bench_filename(doc)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def read_bench(path: PathLike) -> Dict[str, Any]:
    """Load and schema-check a BENCH document."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            doc = json.load(handle)
        except ValueError as exc:
            raise ConfigError(f"{path}: not valid JSON: {exc}") from exc
    schema = doc.get("schema") if isinstance(doc, dict) else None
    if schema != BENCH_SCHEMA:
        raise ConfigError(
            f"{path}: schema {schema!r} does not match {BENCH_SCHEMA!r}; "
            "regenerate the baseline with `repro bench`"
        )
    if not isinstance(doc.get("scenarios"), dict):
        raise ConfigError(f"{path}: missing 'scenarios' mapping")
    return doc
