"""HBM configuration and timing parameters (paper Table 1).

All timing values are in *memory clock* cycles.  The paper's GPU core clock
is 1.25x slower than the memory data-transfer clock (Section 4.5), so
``HBMConfig.to_gpu_cycles`` converts command latencies into the GPU cycle
domain used by the epoch simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.units import GB_DECIMAL, is_power_of_two


@dataclass(frozen=True)
class HBMTiming:
    """HBM DRAM timing constraints, in memory clock cycles.

    Values default to the paper's Table 1 row "HBM Timing", which follows
    the HBM configurations of Chatterjee et al. (HPCA 2017) and Ramulator.
    """

    tRC: int = 47    #: ACTIVATE -> ACTIVATE, same bank (row cycle)
    tRCD: int = 14   #: ACTIVATE -> column command, same bank
    tRP: int = 14    #: PRECHARGE -> ACTIVATE, same bank
    tCL: int = 14    #: READ -> data start (CAS latency)
    tWL: int = 2     #: WRITE -> data start (write latency)
    tRAS: int = 33   #: ACTIVATE -> PRECHARGE, same bank
    tRRDl: int = 6   #: ACTIVATE -> ACTIVATE, same bank group
    tRRDs: int = 4   #: ACTIVATE -> ACTIVATE, different bank group
    tFAW: int = 20   #: four-activate window per channel
    tRTP: int = 4    #: READ -> PRECHARGE, same bank
    tCCDl: int = 2   #: column -> column, same bank group
    tCCDs: int = 1   #: column -> column, different bank group
    tWTRl: int = 8   #: WRITE data end -> READ, same bank group
    tWTRs: int = 3   #: WRITE data end -> READ, different bank group
    tBL: int = 4     #: burst length in clocks (128 B over a 128-bit DDR bus)
    tMIG: int = 50   #: MIGRATION column copy latency in memory clocks
                     #: (paper Section 4.5: <=50 memory clocks, i.e. 40 GPU
                     #: cycles at the 1.25x clock ratio)
    tREFI: int = 1716  #: all-bank refresh interval (HBM2's 3.9 us at 440 MHz)
    tRFC: int = 115    #: refresh cycle time (~260 ns at 440 MHz)

    def validate(self) -> None:
        """Check internal consistency of the timing set."""
        for name, value in self.__dict__.items():
            if value <= 0:
                raise ConfigError(f"timing parameter {name} must be positive, got {value}")
        if self.tRAS + self.tRP > self.tRC:
            raise ConfigError(
                f"tRAS+tRP ({self.tRAS}+{self.tRP}) must not exceed tRC ({self.tRC})"
            )
        if self.tRRDs > self.tRRDl:
            raise ConfigError("tRRDs must not exceed tRRDl")
        if self.tCCDs > self.tCCDl:
            raise ConfigError("tCCDs must not exceed tCCDl")
        if self.tWTRs > self.tWTRl:
            raise ConfigError("tWTRs must not exceed tWTRl")
        if self.tRFC >= self.tREFI:
            raise ConfigError("tRFC must be shorter than tREFI")


@dataclass(frozen=True)
class HBMConfig:
    """Structural description of the HBM memory system (paper Table 1).

    The default models 4 stacks of 8 channels; each channel has 4 bank
    groups of 4 banks, a 128-bit data bus, and its own slice of the
    aggregate 900 GB/s bandwidth.
    """

    num_stacks: int = 4
    channels_per_stack: int = 8
    bank_groups_per_channel: int = 4
    banks_per_group: int = 4
    rows_per_bank: int = 16384
    row_size_bytes: int = 2048          #: DRAM row (page) size per bank
    column_bytes: int = 128             #: one column access = one cache line
    bus_bits: int = 128                 #: per-channel data bus width
    freq_mhz: float = 440.0             #: command clock (Table 1)
    data_rate_multiplier: float = 4.0   #: DDR + 2x prefetch -> 900 GB/s total
    total_bandwidth_gbps: float = 900.0
    queue_entries: int = 64             #: per-channel request queue (Table 1)
    timing: HBMTiming = field(default_factory=HBMTiming)
    #: GPU core clock is 1.25x slower than the memory transfer clock
    #: (paper Section 4.5).
    gpu_to_mem_clock_ratio: float = 1.25

    def validate(self) -> None:
        """Raise :class:`ConfigError` on an inconsistent configuration."""
        if self.num_stacks <= 0:
            raise ConfigError("num_stacks must be positive")
        for name in ("channels_per_stack", "bank_groups_per_channel", "banks_per_group"):
            value = getattr(self, name)
            if not is_power_of_two(value):
                raise ConfigError(f"{name} must be a power of two, got {value}")
        if self.column_bytes <= 0 or self.row_size_bytes % self.column_bytes != 0:
            raise ConfigError(
                "row_size_bytes must be a positive multiple of column_bytes"
            )
        if self.freq_mhz <= 0:
            raise ConfigError("freq_mhz must be positive")
        if self.total_bandwidth_gbps <= 0:
            raise ConfigError("total_bandwidth_gbps must be positive")
        self.timing.validate()

    @property
    def num_channels(self) -> int:
        """Total memory channels in the system (32 in the paper)."""
        return self.num_stacks * self.channels_per_stack

    @property
    def banks_per_channel(self) -> int:
        return self.bank_groups_per_channel * self.banks_per_group

    @property
    def columns_per_row(self) -> int:
        return self.row_size_bytes // self.column_bytes

    @property
    def channel_bandwidth_gbps(self) -> float:
        """Peak bandwidth of a single memory channel (~28.1 GB/s)."""
        return self.total_bandwidth_gbps / self.num_channels

    @property
    def channel_bytes_per_mem_cycle(self) -> float:
        """Peak bytes a channel moves per memory command clock."""
        return self.channel_bandwidth_gbps * GB_DECIMAL / (self.freq_mhz * 1e6)

    def to_gpu_cycles(self, mem_cycles: float) -> float:
        """Convert memory clock cycles into GPU core cycles."""
        return mem_cycles / self.gpu_to_mem_clock_ratio

    def to_mem_cycles(self, gpu_cycles: float) -> float:
        """Convert GPU core cycles into memory clock cycles."""
        return gpu_cycles * self.gpu_to_mem_clock_ratio

    def migration_gpu_cycles_per_command(self) -> float:
        """MIGRATION command latency expressed in GPU cycles (40 with the
        paper's 50-memory-clock estimate and 1.25x clock ratio)."""
        return self.to_gpu_cycles(self.timing.tMIG)
