"""PageMove's in-DRAM routing hardware.

Two small structures from Section 4.2 of the paper:

* :class:`TriStateDecoder` — in a stock HBM stack every TSV bundle is
  physically connected to every die, but tri-state buffers with decoder
  logic electrically bind each bundle to exactly one die at manufacture.
  PageMove enhances the decoder (on the logic die) so bindings can be
  switched at run time, letting an idle channel's TSVs carry another die's
  migration traffic.
* :class:`BankGroupCrossbar` — the original design wires a channel's 4 bank
  groups to its own TSV set through a 4x1 crossbar (one transfer at a
  time).  PageMove replaces it with a fully connected 4x8 crossbar so each
  bank group can drive *any* of the stack's 8 TSV bundles concurrently.

Both are modelled as explicit connection tables with conflict checking, so
tests can assert that PageMove never double-books a TSV bundle and that
the stock 4x1 configuration serializes transfers.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import ProtocolError


class TriStateDecoder:
    """Run-time binding of TSV bundles to DRAM dies.

    In the stock configuration bundle *i* is bound to die *i* permanently.
    PageMove's enhanced decoder allows rebinding; the model tracks, per
    bundle, which die currently drives it and until which cycle.
    """

    def __init__(self, num_bundles: int, enhanced: bool = True) -> None:
        if num_bundles <= 0:
            raise ProtocolError(f"need at least one TSV bundle, got {num_bundles}")
        self.num_bundles = num_bundles
        self.enhanced = enhanced
        #: bundle -> (die, busy_until_cycle); None when default-bound & idle.
        self._grants: Dict[int, tuple] = {}

    def default_die(self, bundle: int) -> int:
        """The die a bundle serves in the stock (manufactured) binding."""
        self._check_bundle(bundle)
        return bundle

    def grant(self, bundle: int, die: int, now: int, until: int) -> None:
        """Bind ``bundle`` to ``die`` for the interval [now, until).

        Raises :class:`ProtocolError` if the decoder is not enhanced and
        the requested die differs from the default, or if the bundle is
        already granted for an overlapping interval.
        """
        self._check_bundle(bundle)
        if not self.enhanced and die != bundle:
            raise ProtocolError(
                "stock tri-state decoder cannot rebind TSV bundle "
                f"{bundle} to die {die}"
            )
        if until <= now:
            raise ProtocolError(f"empty grant interval [{now}, {until})")
        current = self._grants.get(bundle)
        if current is not None and current[1] > now:
            raise ProtocolError(
                f"TSV bundle {bundle} busy until {current[1]}, requested at {now}"
            )
        self._grants[bundle] = (die, until)

    def driver_of(self, bundle: int, now: int) -> int:
        """Which die drives ``bundle`` at cycle ``now``."""
        self._check_bundle(bundle)
        grant = self._grants.get(bundle)
        if grant is not None and grant[1] > now:
            return grant[0]
        return self.default_die(bundle)

    def is_free(self, bundle: int, now: int) -> bool:
        """True if the bundle carries no explicit grant at ``now``."""
        grant = self._grants.get(bundle)
        return grant is None or grant[1] <= now

    def free_bundles(self, now: int) -> list:
        """Indices of bundles with no active grant at ``now``."""
        return [b for b in range(self.num_bundles) if self.is_free(b, now)]

    def release(self, bundle: int) -> None:
        """Drop any grant on ``bundle`` immediately."""
        self._check_bundle(bundle)
        self._grants.pop(bundle, None)

    def _check_bundle(self, bundle: int) -> None:
        if not 0 <= bundle < self.num_bundles:
            raise ProtocolError(
                f"TSV bundle {bundle} out of range [0, {self.num_bundles})"
            )


class BankGroupCrossbar:
    """Per-die crossbar from bank groups to TSV bundles.

    ``width=1`` models the stock 4x1 crossbar (all bank groups share one
    output port to the die's own TSV set); ``width=num_bundles`` models
    PageMove's fully connected 4x8 crossbar.
    """

    def __init__(self, num_bank_groups: int, num_bundles: int, width: Optional[int] = None) -> None:
        if num_bank_groups <= 0 or num_bundles <= 0:
            raise ProtocolError("crossbar dimensions must be positive")
        self.num_bank_groups = num_bank_groups
        self.num_bundles = num_bundles
        self.width = num_bundles if width is None else width
        if not 1 <= self.width <= num_bundles:
            raise ProtocolError(
                f"crossbar width {self.width} out of range [1, {num_bundles}]"
            )
        #: bank_group -> (bundle, busy_until)
        self._routes: Dict[int, tuple] = {}
        #: bundle -> busy_until (output-port conflicts)
        self._outputs: Dict[int, int] = {}

    @property
    def is_fully_connected(self) -> bool:
        return self.width == self.num_bundles

    def concurrent_capacity(self) -> int:
        """How many bank groups can transfer simultaneously."""
        return min(self.num_bank_groups, self.width)

    def connect(self, bank_group: int, bundle: int, now: int, until: int) -> None:
        """Route ``bank_group`` to ``bundle`` for [now, until).

        The stock crossbar (width 1) only reaches bundle equal to the die's
        own channel via its single output; we model that by rejecting any
        route when another bank group holds the output region.
        """
        if not 0 <= bank_group < self.num_bank_groups:
            raise ProtocolError(f"bank group {bank_group} out of range")
        if not 0 <= bundle < self.num_bundles:
            raise ProtocolError(f"bundle {bundle} out of range")
        if until <= now:
            raise ProtocolError(f"empty route interval [{now}, {until})")

        # Input-port conflict: one route per bank group at a time.
        route = self._routes.get(bank_group)
        if route is not None and route[1] > now:
            raise ProtocolError(
                f"bank group {bank_group} already routed until {route[1]}"
            )
        # Output-port conflict.
        busy = self._outputs.get(bundle, 0)
        if busy > now:
            raise ProtocolError(f"crossbar output to bundle {bundle} busy until {busy}")
        # Width limit: count distinct simultaneously active outputs.
        active = sum(1 for end in self._outputs.values() if end > now)
        if route is None or route[1] <= now:
            if active >= self.width:
                raise ProtocolError(
                    f"crossbar width {self.width} exhausted at cycle {now}"
                )
        self._routes[bank_group] = (bundle, until)
        self._outputs[bundle] = until

    def active_routes(self, now: int) -> Dict[int, int]:
        """Map of bank_group -> bundle for routes live at ``now``."""
        return {
            bg: bundle
            for bg, (bundle, until) in self._routes.items()
            if until > now
        }
