"""Whole-memory-system facade: all stacks, channels and controllers.

:class:`HBMSystem` assembles ``num_stacks`` :class:`~repro.hbm.stack.HBMStack`
objects and one FR-FCFS controller per channel, and exposes the lookups the
rest of the library needs: global channel ids, per-channel peak bandwidth,
and MIGRATION dispatch by global coordinates.

Global channel numbering follows the paper's address mapping: channel ``k``
of stack ``s`` has global id ``s * channels_per_stack + k`` — but note that
the *address interleaving* (Figure 8) spreads consecutive lines across
stacks first, which :mod:`repro.pagemove.address_mapping` implements.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import ProtocolError
from repro.hbm.channel import Channel
from repro.hbm.commands import Command
from repro.hbm.config import HBMConfig
from repro.hbm.controller import MemoryController
from repro.hbm.stack import HBMStack


class HBMSystem:
    """All HBM stacks of the simulated GPU plus per-channel controllers."""

    def __init__(self, config: HBMConfig = HBMConfig(), pagemove: bool = True) -> None:
        config.validate()
        self.config = config
        self.pagemove = pagemove
        self.stacks: List[HBMStack] = [
            HBMStack(config, index=s, pagemove=pagemove)
            for s in range(config.num_stacks)
        ]
        self.controllers: List[MemoryController] = []
        for stack in self.stacks:
            for channel in stack.channels:
                self.controllers.append(MemoryController(config, channel))

    # ------------------------------------------------------------------
    # Coordinate helpers
    # ------------------------------------------------------------------
    @property
    def num_channels(self) -> int:
        return self.config.num_channels

    def split_channel_id(self, global_channel: int) -> Tuple[int, int]:
        """Decompose a global channel id into (stack, local channel)."""
        if not 0 <= global_channel < self.num_channels:
            raise ProtocolError(
                f"channel {global_channel} out of range [0, {self.num_channels})"
            )
        per = self.config.channels_per_stack
        return global_channel // per, global_channel % per

    def global_channel_id(self, stack: int, local_channel: int) -> int:
        if not 0 <= stack < len(self.stacks):
            raise ProtocolError(f"stack {stack} out of range")
        if not 0 <= local_channel < self.config.channels_per_stack:
            raise ProtocolError(f"local channel {local_channel} out of range")
        return stack * self.config.channels_per_stack + local_channel

    def channel(self, global_channel: int) -> Channel:
        stack, local = self.split_channel_id(global_channel)
        return self.stacks[stack].channel(local)

    def controller(self, global_channel: int) -> MemoryController:
        self.split_channel_id(global_channel)  # bounds check
        return self.controllers[global_channel]

    # ------------------------------------------------------------------
    # Migration dispatch
    # ------------------------------------------------------------------
    def issue_migration(self, src_global_channel: int, cmd: Command, now: int) -> int:
        """Route a MIGRATION to the owning stack; return completion cycle."""
        stack, local = self.split_channel_id(src_global_channel)
        return self.stacks[stack].issue_migration(local, cmd, now)

    # ------------------------------------------------------------------
    # Bandwidth accounting
    # ------------------------------------------------------------------
    def peak_bandwidth_gbps(self, num_channels: int) -> float:
        """Peak bandwidth of an allocation of ``num_channels`` channels."""
        if not 0 <= num_channels <= self.num_channels:
            raise ProtocolError(
                f"num_channels {num_channels} out of range [0, {self.num_channels}]"
            )
        return num_channels * self.config.channel_bandwidth_gbps

    def stats(self) -> dict:
        """Aggregate command counts across every stack."""
        total: dict = {}
        for stack in self.stacks:
            for key, value in stack.stats().items():
                total[key] = total.get(key, 0) + value
        return total
