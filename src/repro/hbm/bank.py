"""DRAM bank finite-state machine with timing enforcement.

Each bank tracks its open row and the earliest memory-clock cycle at which
each command class may legally be issued to it, derived from the
:class:`~repro.hbm.config.HBMTiming` parameters.  Cross-bank constraints
(tRRD, tFAW, tCCD, data-bus occupancy) are enforced one level up by
:class:`~repro.hbm.channel.Channel`.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.errors import ProtocolError
from repro.hbm.config import HBMTiming


class BankState(enum.Enum):
    """Row-buffer state of a bank."""

    IDLE = "idle"          #: precharged, no open row
    ACTIVE = "active"      #: a row is open in the row buffer


class Bank:
    """A single DRAM bank.

    The bank validates protocol legality (e.g. no column access without an
    open row) and answers "when is the earliest cycle this command could
    issue", letting the channel scheduler make FR-FCFS decisions.
    """

    def __init__(self, timing: HBMTiming, rows: int) -> None:
        self.timing = timing
        self.rows = rows
        self.state = BankState.IDLE
        self.open_row: Optional[int] = None
        # Earliest issue times per command class, in memory clocks.
        self._next_activate = 0
        self._next_precharge = 0
        self._next_column = 0
        # Statistics
        self.activations = 0
        self.row_hits = 0
        self.row_misses = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def earliest_activate(self) -> int:
        """Earliest cycle an ACTIVATE may issue (bank must be idle)."""
        return self._next_activate

    def earliest_precharge(self) -> int:
        return self._next_precharge

    def earliest_column(self) -> int:
        """Earliest cycle a READ/WRITE/MIGRATION may issue to the open row."""
        return self._next_column

    def is_row_open(self, row: int) -> bool:
        return self.state is BankState.ACTIVE and self.open_row == row

    # ------------------------------------------------------------------
    # Command application
    # ------------------------------------------------------------------
    def do_activate(self, now: int, row: int) -> None:
        """Open ``row``; legal only when the bank is precharged."""
        if self.state is not BankState.IDLE:
            raise ProtocolError(
                f"ACTIVATE to bank with open row {self.open_row} (state={self.state})"
            )
        if not 0 <= row < self.rows:
            raise ProtocolError(f"row {row} out of range [0, {self.rows})")
        if now < self._next_activate:
            raise ProtocolError(
                f"ACTIVATE at {now} before earliest legal cycle {self._next_activate}"
            )
        t = self.timing
        self.state = BankState.ACTIVE
        self.open_row = row
        self.activations += 1
        self._next_column = now + t.tRCD
        self._next_precharge = now + t.tRAS
        self._next_activate = now + t.tRC

    def do_precharge(self, now: int) -> None:
        """Close the open row (a precharge of an idle bank is a no-op that
        still respects tRP, matching real parts' PREA behaviour)."""
        if now < self._next_precharge:
            raise ProtocolError(
                f"PRECHARGE at {now} before earliest legal cycle {self._next_precharge}"
            )
        t = self.timing
        self.state = BankState.IDLE
        self.open_row = None
        self._next_activate = max(self._next_activate, now + t.tRP)

    def do_read(self, now: int, column: int) -> int:
        """Issue a READ; returns the cycle the data burst completes."""
        self._check_column(now, column, "READ")
        t = self.timing
        self._next_precharge = max(self._next_precharge, now + t.tRTP)
        self.row_hits += 1
        return now + t.tCL + t.tBL

    def do_write(self, now: int, column: int) -> int:
        """Issue a WRITE; returns the cycle the data burst completes."""
        self._check_column(now, column, "WRITE")
        t = self.timing
        data_end = now + t.tWL + t.tBL
        # Write recovery folds into the precharge constraint.
        self._next_precharge = max(self._next_precharge, data_end + t.tRP // 2)
        self.row_hits += 1
        return data_end

    def do_migration_read(self, now: int, column: int) -> int:
        """Source-side half of a MIGRATION: stream one column to the TSVs.

        Returns the cycle the column transfer completes (tMIG covers the
        full copy including the destination write, Section 4.5).
        """
        self._check_column(now, column, "MIGRATION(src)")
        return now + self.timing.tMIG

    def do_migration_write(self, now: int, column: int) -> int:
        """Destination-side half of a MIGRATION: absorb one column."""
        self._check_column(now, column, "MIGRATION(dst)")
        return now + self.timing.tMIG

    def _check_column(self, now: int, column: int, what: str) -> None:
        if self.state is not BankState.ACTIVE:
            raise ProtocolError(f"{what} to bank with no open row")
        if column < 0:
            raise ProtocolError(f"{what} column must be non-negative, got {column}")
        if now < self._next_column:
            raise ProtocolError(
                f"{what} at {now} before earliest legal cycle {self._next_column}"
            )

    def note_column_issued(self, now: int, tccd: int) -> None:
        """Record a column command so back-to-back issues respect tCCD."""
        self._next_column = max(self._next_column, now + tccd)
