"""Command-level HBM model.

Implements the memory substrate the paper evaluates on (Table 1): 4 HBM
stacks, 8 channels per stack, 4 bank groups per channel, 4 banks per group,
with the published HBM timing parameters, an FR-FCFS per-channel memory
controller, and the PageMove hardware additions — the 4x8 bank-group-to-TSV
crossbar, the tri-state buffer decoder, and the two-cycle ``MIGRATION``
command (Section 4).

The command-level model is used directly by microbenchmarks and by the
migration cost calibration; the epoch-level system simulation uses the
analytic :class:`~repro.pagemove.cost.MigrationCostModel` derived from it.
"""

from repro.hbm.config import HBMConfig, HBMTiming
from repro.hbm.commands import (
    Command,
    CommandKind,
    activate,
    migration,
    precharge,
    read,
    write,
)
from repro.hbm.bank import Bank, BankState
from repro.hbm.channel import BankGroup, Channel
from repro.hbm.crossbar import BankGroupCrossbar, TriStateDecoder
from repro.hbm.stack import HBMStack, TSVBundle
from repro.hbm.controller import MemoryController, MemoryRequest, RequestKind
from repro.hbm.system import HBMSystem

__all__ = [
    "HBMConfig",
    "HBMTiming",
    "Command",
    "CommandKind",
    "activate",
    "precharge",
    "read",
    "write",
    "migration",
    "Bank",
    "BankState",
    "BankGroup",
    "Channel",
    "BankGroupCrossbar",
    "TriStateDecoder",
    "HBMStack",
    "TSVBundle",
    "MemoryController",
    "MemoryRequest",
    "RequestKind",
    "HBMSystem",
]
