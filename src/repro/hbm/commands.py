"""DRAM command set, including PageMove's ``MIGRATION`` command.

The standard command set (ACTIVATE, PRECHARGE, READ, WRITE) follows the
HBM protocol.  ``MIGRATION`` is the new two-cycle command introduced in
Section 4.3 of the paper: cycle one carries the idle-TSV index and
source/destination bank indices; cycle two carries the source/destination
row and column indices.  One MIGRATION copies one 128-byte column (a cache
line) from the activated row of the source bank to the activated row of the
destination bank in another channel of the same stack, over an idle TSV
bundle selected by the 4x8 crossbar.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class CommandKind(enum.Enum):
    """The DRAM commands the model understands."""

    ACTIVATE = "ACT"
    PRECHARGE = "PRE"
    READ = "RD"
    WRITE = "WR"
    MIGRATION = "MIG"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Commands that occupy the command bus for two clocks instead of one.
TWO_CYCLE_COMMANDS = frozenset({CommandKind.MIGRATION})


@dataclass(frozen=True)
class Command:
    """A single DRAM command addressed to one bank (or a bank pair for
    MIGRATION).

    Attributes
    ----------
    kind:
        The command opcode.
    bank_group, bank:
        Target bank coordinates within the channel.
    row, column:
        Row for ACTIVATE; column for READ/WRITE.  For MIGRATION these are
        the *source* coordinates.
    dest_channel, dest_bank_group, dest_bank, dest_row, dest_column:
        MIGRATION-only destination coordinates (another channel within the
        same HBM stack).
    tsv_index:
        MIGRATION-only: which idle TSV bundle carries the copied column.
    """

    kind: CommandKind
    bank_group: int
    bank: int
    row: Optional[int] = None
    column: Optional[int] = None
    dest_channel: Optional[int] = None
    dest_bank_group: Optional[int] = None
    dest_bank: Optional[int] = None
    dest_row: Optional[int] = None
    dest_column: Optional[int] = None
    tsv_index: Optional[int] = None

    @property
    def command_bus_cycles(self) -> int:
        """Command-bus occupancy: MIGRATION is a two-cycle command."""
        return 2 if self.kind in TWO_CYCLE_COMMANDS else 1

    @property
    def is_column_command(self) -> bool:
        """True for commands that move data (READ/WRITE/MIGRATION)."""
        return self.kind in (CommandKind.READ, CommandKind.WRITE, CommandKind.MIGRATION)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        base = f"{self.kind} bg{self.bank_group} b{self.bank}"
        if self.kind is CommandKind.ACTIVATE:
            return f"{base} r{self.row}"
        if self.kind in (CommandKind.READ, CommandKind.WRITE):
            return f"{base} c{self.column}"
        if self.kind is CommandKind.MIGRATION:
            return (
                f"{base} r{self.row} c{self.column} -> ch{self.dest_channel} "
                f"bg{self.dest_bank_group} b{self.dest_bank} r{self.dest_row} "
                f"c{self.dest_column} tsv{self.tsv_index}"
            )
        return base


def activate(bank_group: int, bank: int, row: int) -> Command:
    """Build an ACTIVATE command opening ``row`` in the addressed bank."""
    return Command(CommandKind.ACTIVATE, bank_group, bank, row=row)


def precharge(bank_group: int, bank: int) -> Command:
    """Build a PRECHARGE command closing the open row of the bank."""
    return Command(CommandKind.PRECHARGE, bank_group, bank)


def read(bank_group: int, bank: int, column: int) -> Command:
    """Build a READ of one column (cache line) from the open row."""
    return Command(CommandKind.READ, bank_group, bank, column=column)


def write(bank_group: int, bank: int, column: int) -> Command:
    """Build a WRITE of one column (cache line) into the open row."""
    return Command(CommandKind.WRITE, bank_group, bank, column=column)


def migration(
    bank_group: int,
    bank: int,
    row: int,
    column: int,
    dest_channel: int,
    dest_bank_group: int,
    dest_bank: int,
    dest_row: int,
    dest_column: int,
    tsv_index: int,
) -> Command:
    """Build a MIGRATION command copying one column across channels.

    Parameters mirror the four fields of the two-cycle command encoding:
    (1) idle TSV index, (2) source/dest bank index, (3) source/dest row
    index, (4) source/dest column index (paper Section 4.3).
    """
    return Command(
        CommandKind.MIGRATION,
        bank_group,
        bank,
        row=row,
        column=column,
        dest_channel=dest_channel,
        dest_bank_group=dest_bank_group,
        dest_bank=dest_bank,
        dest_row=dest_row,
        dest_column=dest_column,
        tsv_index=tsv_index,
    )
