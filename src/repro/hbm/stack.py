"""HBM stack: dies, channels, TSV bundles, and migration routing.

An HBM stack integrates 8 DRAM dies over a logic die; each die exposes one
memory channel, and the stack's eight TSV bundles carry the channels' data
to the interposer (Figure 7).  PageMove adds, per die, a 4x8 bank-group
crossbar, plus an enhanced tri-state decoder and idle-channel detection on
the logic die.

:class:`HBMStack` wires these together and implements the routing step of
a MIGRATION: find an idle TSV bundle, grant it to the source die, route the
source bank group onto it, and issue the paired column copy on the source
and destination channels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import MigrationError, ProtocolError
from repro.hbm.channel import Channel
from repro.hbm.commands import Command, CommandKind
from repro.hbm.config import HBMConfig
from repro.hbm.crossbar import BankGroupCrossbar, TriStateDecoder


@dataclass(frozen=True)
class TSVBundle:
    """A set of through-silicon vias forming one channel's data path."""

    index: int
    bits: int


class HBMStack:
    """One HBM stack of ``channels_per_stack`` dies/channels.

    Parameters
    ----------
    config:
        Structural and timing description.
    index:
        Stack id within the memory system.
    pagemove:
        When True (default), the stack carries PageMove hardware: enhanced
        tri-state decoder and fully connected bank-group crossbars.  When
        False, the stock 4x1 crossbars are modelled and cross-channel
        MIGRATION is rejected — the configuration used by the UGPU-Ori and
        UGPU-Soft baselines.
    """

    def __init__(self, config: HBMConfig, index: int = 0, pagemove: bool = True) -> None:
        config.validate()
        self.config = config
        self.index = index
        self.pagemove = pagemove
        n = config.channels_per_stack
        self.channels: List[Channel] = [Channel(config, c) for c in range(n)]
        self.tsvs: List[TSVBundle] = [TSVBundle(i, config.bus_bits) for i in range(n)]
        self.decoder = TriStateDecoder(n, enhanced=pagemove)
        width = config.channels_per_stack if pagemove else 1
        self.crossbars: List[BankGroupCrossbar] = [
            BankGroupCrossbar(config.bank_groups_per_channel, n, width=width)
            for _ in range(n)
        ]
        self.migrations_completed = 0

    # ------------------------------------------------------------------
    # Idle-channel / TSV detection (logic-die monitor, Section 4.2)
    # ------------------------------------------------------------------
    def idle_tsv_bundles(self, now: int, window: int = 100) -> List[int]:
        """TSV bundles whose owning channel has been idle for ``window``
        cycles and that carry no migration grant."""
        idle = []
        for bundle in range(len(self.tsvs)):
            channel = self.channels[bundle]
            if channel.is_idle_at(now, window) and self.decoder.is_free(bundle, now):
                idle.append(bundle)
        return idle

    def find_idle_tsv(self, now: int, exclude: Optional[List[int]] = None,
                      window: int = 100) -> Optional[int]:
        """Pick one idle TSV bundle, preferring the lowest index."""
        excluded = set(exclude or [])
        for bundle in self.idle_tsv_bundles(now, window):
            if bundle not in excluded:
                return bundle
        return None

    # ------------------------------------------------------------------
    # MIGRATION execution
    # ------------------------------------------------------------------
    def issue_migration(self, src_channel: int, cmd: Command, now: int) -> int:
        """Execute one MIGRATION command; return its completion cycle.

        Performs PageMove's full routing: validates the destination is a
        different channel of *this* stack, grants the idle TSV bundle to the
        source die, routes the source bank group through the 4x8 crossbar,
        and charges the column copy on both the source and destination
        banks.

        Raises
        ------
        MigrationError
            On a cross-stack destination, source==destination channel, or
            when the stack has no PageMove hardware.
        ProtocolError
            On timing violations or busy TSVs (from the underlying models).
        """
        if cmd.kind is not CommandKind.MIGRATION:
            raise MigrationError(f"issue_migration got {cmd.kind}")
        if not self.pagemove:
            raise MigrationError(
                "stack has no PageMove hardware; cross-channel MIGRATION "
                "is only available with the 4x8 crossbar"
            )
        if cmd.dest_channel == src_channel:
            raise MigrationError("MIGRATION source and destination channel are equal")
        if not 0 <= cmd.dest_channel < len(self.channels):
            raise MigrationError(
                f"destination channel {cmd.dest_channel} outside this stack"
            )
        if cmd.tsv_index is None:
            raise MigrationError("MIGRATION requires an idle TSV index")

        src = self.channels[src_channel]
        dst = self.channels[cmd.dest_channel]

        # Legal issue time across both channels.
        issue_at = max(
            src.earliest_issue(cmd, now),
            dst.earliest_issue(self._dest_view(cmd), now),
        )

        done = issue_at + self.config.timing.tMIG
        # Route the source bank group through the crossbar first (the
        # stock 4x1 crossbar is the scarcer resource), then grant the TSV
        # bundle to the source die for the copy duration.  Ordering keeps
        # a failed route from leaking a dangling TSV grant.
        self.crossbars[src_channel].connect(
            cmd.bank_group, cmd.tsv_index, issue_at, done
        )
        self.decoder.grant(cmd.tsv_index, src_channel, issue_at, done)

        src.issue(cmd, issue_at)
        dst_cmd = self._dest_view(cmd)
        dst_done = dst.issue(dst_cmd, issue_at)
        self.migrations_completed += 1
        return max(done, dst_done)

    @staticmethod
    def _dest_view(cmd: Command) -> Command:
        """The destination channel sees the MIGRATION as a column write to
        its own (bank_group, bank, row, column) coordinates."""
        return Command(
            CommandKind.MIGRATION,
            bank_group=cmd.dest_bank_group,
            bank=cmd.dest_bank,
            row=cmd.dest_row,
            column=cmd.dest_column,
            dest_channel=cmd.dest_channel,
            dest_bank_group=cmd.dest_bank_group,
            dest_bank=cmd.dest_bank,
            dest_row=cmd.dest_row,
            dest_column=cmd.dest_column,
            tsv_index=cmd.tsv_index,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def channel(self, index: int) -> Channel:
        if not 0 <= index < len(self.channels):
            raise ProtocolError(f"channel {index} out of range")
        return self.channels[index]

    def stats(self) -> dict:
        """Aggregate per-channel command counts for this stack."""
        total: dict = {"migrations_completed": self.migrations_completed}
        for channel in self.channels:
            for key, value in channel.stats().items():
                total[key] = total.get(key, 0) + value
        return total
