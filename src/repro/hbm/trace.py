"""Trace-driven replay through the command-level HBM system.

Replays streams of physical byte addresses through the FR-FCFS
controllers, decoding them with the PageMove address mapping.  Used to
validate the analytic supply model at command level (row-hit vs row-miss
bandwidth, bank-group interleaving, multi-channel scaling) and to study
interference between address streams sharing a channel — the contention
mechanism behind the MPS baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import ConfigError
from repro.hbm.controller import MemoryRequest, RequestKind
from repro.hbm.system import HBMSystem
from repro.pagemove.address_mapping import PageMoveAddressMapping


@dataclass
class ReplayResult:
    """Outcome of replaying one trace."""

    requests: int
    mem_cycles: int                       #: makespan in memory clocks
    bytes_moved: int
    per_channel_cycles: Dict[int, int] = field(default_factory=dict)
    row_hit_rate: float = 0.0
    mean_latency: float = 0.0

    def bandwidth_gbps(self, freq_mhz: float) -> float:
        """Achieved aggregate bandwidth in decimal GB/s."""
        if self.mem_cycles <= 0:
            return 0.0
        seconds = self.mem_cycles / (freq_mhz * 1e6)
        return self.bytes_moved / seconds / 1e9


class TraceReplayer:
    """Feed byte-address traces to the per-channel controllers."""

    def __init__(self, system: Optional[HBMSystem] = None,
                 mapping: Optional[PageMoveAddressMapping] = None) -> None:
        self.system = system if system is not None else HBMSystem()
        self.mapping = (
            mapping if mapping is not None
            else PageMoveAddressMapping(self.system.config)
        )

    def decode_request(self, address: int,
                       write: bool = False, arrival: int = 0,
                       app_id: Optional[int] = None):
        """Decode one byte address into (global_channel, MemoryRequest)."""
        loc = self.mapping.decode(address)
        request = MemoryRequest(
            kind=RequestKind.WRITE if write else RequestKind.READ,
            bank_group=loc.bank_group,
            bank=loc.bank,
            row=loc.row,
            column=loc.column,
            arrival=arrival,
            app_id=app_id,
        )
        return self.system.global_channel_id(loc.stack, loc.channel), request

    def replay(self, addresses: Sequence[int], batch: int = 48,
               writes: bool = False, app_id: Optional[int] = None) -> ReplayResult:
        """Replay a trace; requests are issued in order, ``batch`` per
        channel at a time (the 64-entry queues bound what can be in
        flight)."""
        if batch <= 0:
            raise ConfigError("batch must be positive")
        queues: Dict[int, List[MemoryRequest]] = {}
        for address in addresses:
            channel, request = self.decode_request(
                address, write=writes, app_id=app_id
            )
            queues.setdefault(channel, []).append(request)

        total_requests = 0
        total_latency = 0
        row_hits = 0
        per_channel: Dict[int, int] = {}
        for channel, requests in queues.items():
            controller = self.system.controller(channel)
            for start in range(0, len(requests), batch):
                for request in requests[start:start + batch]:
                    controller.enqueue(request)
                controller.drain()
            per_channel[channel] = controller.now
            total_requests += controller.stats.served
            total_latency += controller.stats.total_latency
            row_hits += controller.stats.row_hits

        makespan = max(per_channel.values()) if per_channel else 0
        return ReplayResult(
            requests=len(addresses),
            mem_cycles=makespan,
            bytes_moved=len(addresses) * self.system.config.column_bytes,
            per_channel_cycles=per_channel,
            row_hit_rate=row_hits / total_requests if total_requests else 0.0,
            mean_latency=total_latency / total_requests if total_requests else 0.0,
        )


# ---------------------------------------------------------------------------
# Trace generators (physical byte addresses, line granularity)
# ---------------------------------------------------------------------------
def sequential_trace(num_lines: int, start: int = 0,
                     line_bytes: int = 128) -> List[int]:
    """Consecutive cache lines: the interleaving spreads them over
    stacks/bank groups, maximizing row locality and parallelism."""
    if num_lines < 0:
        raise ConfigError("num_lines must be non-negative")
    return [start + i * line_bytes for i in range(num_lines)]


def same_bank_trace(num_lines: int, mapping: PageMoveAddressMapping,
                    channel: int = 0, bank: int = 0) -> List[int]:
    """Worst case: every access opens a new row in one bank (pure row
    misses, no parallelism)."""
    if num_lines < 0:
        raise ConfigError("num_lines must be non-negative")
    addresses = []
    for i in range(num_lines):
        rpn = mapping.rpn_for(channel, bank, row=i % mapping.config.rows_per_bank)
        addresses.append(rpn << 12)  # first line of the page: stack 0, bg 0
    return addresses


def channel_confined_trace(num_lines: int, mapping: PageMoveAddressMapping,
                           channel: int) -> List[int]:
    """Sequential lines restricted to one channel index (what a slice
    restricted to that channel generates)."""
    if num_lines < 0:
        raise ConfigError("num_lines must be non-negative")
    addresses = []
    frames = mapping.frames_of_channel(channel)
    lines_per_page = mapping.page_size // mapping.config.column_bytes
    produced = 0
    for rpn in frames:
        base = rpn << 12
        for line in range(lines_per_page):
            addresses.append(base + line * mapping.config.column_bytes)
            produced += 1
            if produced >= num_lines:
                return addresses
    return addresses  # pragma: no cover - only for tiny geometries
