"""FR-FCFS memory controller for one HBM channel.

Implements the paper's Table 1 controller: open-page policy, first-ready
first-come-first-served scheduling, 64-entry request queue.  The controller
operates in the memory clock domain and serves :class:`MemoryRequest`
objects that have already been decoded into bank coordinates (the address
mapping lives in :mod:`repro.pagemove.address_mapping`).

FR-FCFS: among queued requests, those hitting a currently open row are
served first (oldest hit first); if none hit, the oldest request wins and
the controller issues the PRECHARGE/ACTIVATE pair it needs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import ProtocolError
from repro.hbm.channel import Channel
from repro.hbm.commands import activate, precharge, read, write
from repro.hbm.config import HBMConfig


class RequestKind(enum.Enum):
    """Demand request types served by the controller."""

    READ = "read"
    WRITE = "write"


@dataclass
class MemoryRequest:
    """One cache-line demand access, pre-decoded to bank coordinates."""

    kind: RequestKind
    bank_group: int
    bank: int
    row: int
    column: int
    arrival: int = 0
    app_id: Optional[int] = None
    #: Filled by the controller when the request's data burst completes.
    completed_at: Optional[int] = None

    @property
    def latency(self) -> Optional[int]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.arrival


@dataclass
class ControllerStats:
    """Aggregated controller statistics."""

    served: int = 0
    row_hits: int = 0
    row_misses: int = 0
    row_conflicts: int = 0
    total_latency: int = 0
    bytes_moved: int = 0

    @property
    def row_hit_rate(self) -> float:
        if self.served == 0:
            return 0.0
        return self.row_hits / self.served

    @property
    def mean_latency(self) -> float:
        if self.served == 0:
            return 0.0
        return self.total_latency / self.served


class MemoryController:
    """FR-FCFS scheduler bound to one :class:`Channel`.

    Optionally buffers writes: reads are latency-critical, so writes park
    in a write buffer and drain in bursts once the buffer crosses its high
    watermark (or on :meth:`drain`), amortizing the write-to-read
    turnaround penalty — the standard GPU memory-controller policy.
    """

    def __init__(self, config: HBMConfig, channel: Optional[Channel] = None,
                 refresh_enabled: bool = False,
                 write_buffer_entries: int = 0,
                 write_high_watermark: float = 0.75,
                 write_low_watermark: float = 0.25,
                 metrics=None, profiler=None) -> None:
        """``refresh_enabled`` turns on all-bank refresh: every tREFI the
        controller closes all rows and blocks the channel for tRFC (off by
        default — the short command-level experiments rarely span a
        refresh interval, but long replays can enable it).
        ``write_buffer_entries`` > 0 enables write buffering.
        ``metrics`` (a telemetry registry) counts per-channel serviced
        commands and row-buffer outcomes, and gauges achieved/peak
        bandwidth utilization after each :meth:`drain`.
        ``profiler`` (a :class:`~repro.profiling.profiler.PhaseProfiler`)
        attributes host wall time per :meth:`drain` to an
        ``hbm.service_requests`` phase."""
        config.validate()
        if write_buffer_entries < 0:
            raise ProtocolError("write_buffer_entries must be non-negative")
        if not 0.0 <= write_low_watermark < write_high_watermark <= 1.0:
            raise ProtocolError("watermarks must satisfy 0 <= low < high <= 1")
        self.config = config
        self.channel = channel if channel is not None else Channel(config, 0)
        self.queue: List[MemoryRequest] = []
        self.stats = ControllerStats()
        self.now = 0
        self.refresh_enabled = refresh_enabled
        self._next_refresh = config.timing.tREFI
        self.refreshes = 0
        self.write_buffer_entries = write_buffer_entries
        self.write_high_watermark = write_high_watermark
        self.write_low_watermark = write_low_watermark
        self.write_buffer: List[MemoryRequest] = []
        self.write_bursts = 0
        self.metrics = metrics
        self.profiler = profiler
        if metrics is not None:
            from repro.telemetry import names as _names

            chan = str(self.channel.index)
            requests = _names.hbm_requests_total(metrics)
            outcomes = _names.hbm_row_outcomes_total(metrics)
            self._m_reads = requests.labels(channel=chan, kind="read")
            self._m_writes = requests.labels(channel=chan, kind="write")
            self._m_hits = outcomes.labels(channel=chan, outcome="hit")
            self._m_misses = outcomes.labels(channel=chan, outcome="miss")
            self._m_conflicts = outcomes.labels(channel=chan, outcome="conflict")
            self._m_bw = _names.hbm_bandwidth_utilization(metrics).labels(
                channel=chan
            )

    @property
    def queue_free_slots(self) -> int:
        return self.config.queue_entries - len(self.queue)

    def enqueue(self, request: MemoryRequest) -> None:
        """Add a request; the queue holds at most ``queue_entries``.

        With write buffering enabled, writes go to the write buffer
        instead and a burst drain triggers at the high watermark.
        """
        request.arrival = max(request.arrival, 0)
        if (self.write_buffer_entries > 0
                and request.kind is RequestKind.WRITE):
            if len(self.write_buffer) >= self.write_buffer_entries:
                self._drain_writes(
                    down_to=int(self.write_low_watermark
                                * self.write_buffer_entries)
                )
            self.write_buffer.append(request)
            if len(self.write_buffer) >= int(
                self.write_high_watermark * self.write_buffer_entries
            ):
                self._drain_writes(
                    down_to=int(self.write_low_watermark
                                * self.write_buffer_entries)
                )
            return
        if len(self.queue) >= self.config.queue_entries:
            raise ProtocolError(
                f"request queue full ({self.config.queue_entries} entries)"
            )
        self.queue.append(request)

    def _drain_writes(self, down_to: int) -> None:
        """Burst-issue buffered writes until the buffer holds ``down_to``."""
        if len(self.write_buffer) <= down_to:
            return
        self.write_bursts += 1
        while len(self.write_buffer) > down_to:
            batch = self.write_buffer[: self.config.queue_entries - len(self.queue)]
            if not batch:
                break  # pragma: no cover - queue full of reads
            del self.write_buffer[: len(batch)]
            self.queue.extend(batch)
            while self.queue:
                self.service_one()

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _pick(self) -> int:
        """FR-FCFS selection among queued requests that have arrived.

        Returns the queue index of the winner.  One pass tracks the best
        (earliest arrival, then earliest queue position) request in each
        of the four priority classes — arrived row-hit, arrived, pending
        row-hit, pending — instead of materializing candidate lists and
        re-scanning the queue for positions, which made selection
        quadratic in the queue depth.
        """
        now = self.now
        groups = self.channel.groups
        arrived_hit = arrived_any = pending_hit = pending_any = -1
        arrived_hit_t = arrived_any_t = pending_hit_t = pending_any_t = 0
        for i, r in enumerate(self.queue):
            arrival = r.arrival
            hit = groups[r.bank_group].bank(r.bank).is_row_open(r.row)
            if arrival <= now:
                if hit and (arrived_hit < 0 or arrival < arrived_hit_t):
                    arrived_hit, arrived_hit_t = i, arrival
                if arrived_any < 0 or arrival < arrived_any_t:
                    arrived_any, arrived_any_t = i, arrival
            elif arrived_any < 0:
                # Pending classes only matter while nothing has arrived.
                if hit and (pending_hit < 0 or arrival < pending_hit_t):
                    pending_hit, pending_hit_t = i, arrival
                if pending_any < 0 or arrival < pending_any_t:
                    pending_any, pending_any_t = i, arrival
        if arrived_any >= 0:
            return arrived_hit if arrived_hit >= 0 else arrived_any
        return pending_hit if pending_hit >= 0 else pending_any

    def service_one(self) -> MemoryRequest:
        """Serve the next request per FR-FCFS; returns it completed."""
        if not self.queue:
            raise ProtocolError("controller queue is empty")
        request = self.queue.pop(self._pick())
        self.now = max(self.now, request.arrival)
        self._maybe_refresh()

        bank = self.channel.groups[request.bank_group].bank(request.bank)
        if bank.is_row_open(request.row):
            self.stats.row_hits += 1
            if self.metrics is not None:
                self._m_hits.inc()
        elif bank.open_row is None:
            self.stats.row_misses += 1
            if self.metrics is not None:
                self._m_misses.inc()
            cmd = activate(request.bank_group, request.bank, request.row)
            at = self.channel.earliest_issue(cmd, self.now)
            self.channel.issue(cmd, at)
            self.now = at
        else:
            self.stats.row_conflicts += 1
            if self.metrics is not None:
                self._m_conflicts.inc()
            pre = precharge(request.bank_group, request.bank)
            at = self.channel.earliest_issue(pre, self.now)
            self.channel.issue(pre, at)
            act = activate(request.bank_group, request.bank, request.row)
            at = self.channel.earliest_issue(act, at)
            self.channel.issue(act, at)
            self.now = at

        if request.kind is RequestKind.READ:
            cmd = read(request.bank_group, request.bank, request.column)
        else:
            cmd = write(request.bank_group, request.bank, request.column)
        at = self.channel.earliest_issue(cmd, self.now)
        done = self.channel.issue(cmd, at)
        self.now = at
        request.completed_at = done

        self.stats.served += 1
        self.stats.total_latency += done - request.arrival
        self.stats.bytes_moved += self.config.column_bytes
        if self.metrics is not None:
            if request.kind is RequestKind.READ:
                self._m_reads.inc()
            else:
                self._m_writes.inc()
        return request

    def _maybe_refresh(self) -> None:
        """Issue due all-bank refreshes: close every row, block tRFC."""
        if not self.refresh_enabled:
            return
        t = self.config.timing
        while self.now >= self._next_refresh:
            # Precharge-all: wait for every bank to become precharge-able.
            start = self._next_refresh
            for group in self.channel.groups:
                for bank in group.banks:
                    if bank.open_row is not None:
                        start = max(start, bank.earliest_precharge())
            for group in self.channel.groups:
                for bank in group.banks:
                    if bank.open_row is not None:
                        bank.do_precharge(max(start, bank.earliest_precharge()))
            self.now = max(self.now, start) + t.tRFC
            self._next_refresh += t.tREFI
            self.refreshes += 1

    def drain(self) -> List[MemoryRequest]:
        """Serve every queued request (and flush the write buffer);
        returns the served requests in completion order."""
        if self.profiler is not None:
            with self.profiler.span("hbm.service_requests"):
                return self._drain()
        return self._drain()

    def _drain(self) -> List[MemoryRequest]:
        completed: List[MemoryRequest] = []
        while self.queue:
            completed.append(self.service_one())
        if self.write_buffer:
            writes = list(self.write_buffer)
            self._drain_writes(down_to=0)
            completed.extend(writes)
        completed.sort(key=lambda r: r.completed_at)
        if self.metrics is not None:
            peak = self.config.channel_bandwidth_gbps
            self._m_bw.set(
                self.achieved_bandwidth_gbps() / peak if peak > 0 else 0.0
            )
        return completed

    def achieved_bandwidth_gbps(self) -> float:
        """Data bandwidth achieved so far, in decimal GB/s."""
        if self.now <= 0:
            return 0.0
        seconds = self.now / (self.config.freq_mhz * 1e6)
        return self.stats.bytes_moved / seconds / 1e9
