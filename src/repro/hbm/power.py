"""Command-level HBM power model.

Per-command energy accounting in the style of the DRAM power models the
paper builds on (Chatterjee et al., HPCA 2017, for HBM): every ACTIVATE
pays a row-activation charge, every column burst pays per-bit I/O and
array energy, MIGRATION pays array energy on both ends plus the (short,
on-package) TSV transfer, and background power accrues with time.

The model consumes the statistics the command-level structures already
collect (:meth:`repro.hbm.system.HBMSystem.stats`), so any experiment that
ran on the detailed model can be costed after the fact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.errors import ConfigError
from repro.hbm.config import HBMConfig


@dataclass(frozen=True)
class HBMEnergyBreakdown:
    """Energy of a command-level run, in joules."""

    activation: float
    read: float
    write: float
    migration: float
    background: float

    @property
    def dynamic(self) -> float:
        return self.activation + self.read + self.write + self.migration

    @property
    def total(self) -> float:
        return self.dynamic + self.background

    def fraction(self, part: str) -> float:
        value = getattr(self, part)
        return value / self.total if self.total > 0 else 0.0


class HBMPowerModel:
    """Joule costs per DRAM command (HBM2-era constants at 1.2 V).

    Defaults: ~2 nJ per row activation (incl. precharge restore),
    ~4 pJ/bit for a read burst end to end, ~4.4 pJ/bit for writes,
    ~2.5 pJ/bit for a MIGRATION transfer (array on both ends but only the
    short intra-stack TSV hop, no PHY/interposer traversal), and ~110 mW
    of background power per channel.
    """

    def __init__(
        self,
        config: HBMConfig = HBMConfig(),
        activate_nj: float = 2.0,
        read_pj_per_bit: float = 4.0,
        write_pj_per_bit: float = 4.4,
        migration_pj_per_bit: float = 2.5,
        background_mw_per_channel: float = 110.0,
    ) -> None:
        config.validate()
        for name, value in (
            ("activate_nj", activate_nj),
            ("read_pj_per_bit", read_pj_per_bit),
            ("write_pj_per_bit", write_pj_per_bit),
            ("migration_pj_per_bit", migration_pj_per_bit),
            ("background_mw_per_channel", background_mw_per_channel),
        ):
            if value < 0:
                raise ConfigError(f"{name} must be non-negative")
        self.config = config
        self.activate_nj = activate_nj
        self.read_pj_per_bit = read_pj_per_bit
        self.write_pj_per_bit = write_pj_per_bit
        self.migration_pj_per_bit = migration_pj_per_bit
        self.background_mw_per_channel = background_mw_per_channel

    @property
    def bits_per_column(self) -> int:
        return self.config.column_bytes * 8

    def energy(self, stats: Mapping[str, int], mem_cycles: float,
               active_channels: int = None) -> HBMEnergyBreakdown:
        """Cost a run from command counts plus its duration.

        ``stats`` uses the keys of :meth:`HBMSystem.stats` /
        :meth:`HBMStack.stats` (``activates``, ``reads``, ``writes``,
        ``migrations``); MIGRATION is counted once per *copy* even though
        both the source and destination channel record the command, so the
        ``migrations`` count (2 per copy) is halved here.
        """
        if mem_cycles < 0:
            raise ConfigError("mem_cycles must be non-negative")
        channels = (
            active_channels if active_channels is not None
            else self.config.num_channels
        )
        if channels < 0:
            raise ConfigError("active_channels must be non-negative")
        seconds = mem_cycles / (self.config.freq_mhz * 1e6)
        pj, nj = 1e-12, 1e-9
        copies = stats.get("migrations", 0) / 2.0
        return HBMEnergyBreakdown(
            activation=stats.get("activates", 0) * self.activate_nj * nj,
            read=stats.get("reads", 0) * self.bits_per_column
            * self.read_pj_per_bit * pj,
            write=stats.get("writes", 0) * self.bits_per_column
            * self.write_pj_per_bit * pj,
            migration=copies * self.bits_per_column
            * (self.migration_pj_per_bit + self.read_pj_per_bit) * pj,
            background=channels * self.background_mw_per_channel * 1e-3 * seconds,
        )

    def migration_vs_readwrite_ratio(self) -> float:
        """Energy of moving one column via MIGRATION relative to a
        read-out/write-back pair — PageMove's per-byte energy advantage."""
        migration = self.migration_pj_per_bit + self.read_pj_per_bit
        read_write = self.read_pj_per_bit + self.write_pj_per_bit
        return migration / read_write
