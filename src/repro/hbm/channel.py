"""Memory channel and bank-group models with cross-bank timing.

A channel (one HBM die port) owns 4 bank groups of 4 banks, a command bus,
and an external data bus routed over its own TSV bundle.  The channel
enforces the constraints a single bank cannot see: tRRDl/tRRDs between
activates, the tFAW rolling window, tCCDl/tCCDs between column commands,
write-to-read turnaround, and data-bus occupancy.

PageMove's key structural property is visible here: READ/WRITE bursts
occupy the channel's external data bus, but MIGRATION transfers leave it
free — they move data over the bank group's internal bus to an *idle* TSV
bundle selected by the crossbar (Section 4.2), so normal traffic and
migration traffic only contend inside a bank group.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.errors import ProtocolError
from repro.hbm.bank import Bank
from repro.hbm.commands import Command, CommandKind
from repro.hbm.config import HBMConfig


class BankGroup:
    """A bank group: several banks sharing one internal data bus."""

    def __init__(self, config: HBMConfig, index: int) -> None:
        self.config = config
        self.index = index
        self.banks: List[Bank] = [
            Bank(config.timing, config.rows_per_bank)
            for _ in range(config.banks_per_group)
        ]
        #: Cycle until which the internal data bus is busy.
        self.bus_busy_until = 0
        #: Last cycle a column command issued in this group (for tCCDl).
        self.last_column_issue = -(10**9)

    def bank(self, index: int) -> Bank:
        if not 0 <= index < len(self.banks):
            raise ProtocolError(f"bank index {index} out of range")
        return self.banks[index]

    def bus_free_at(self) -> int:
        return self.bus_busy_until

    def occupy_bus(self, start: int, end: int) -> None:
        if start < self.bus_busy_until:
            raise ProtocolError(
                f"bank group {self.index} bus conflict: busy until "
                f"{self.bus_busy_until}, requested start {start}"
            )
        self.bus_busy_until = end


class Channel:
    """One HBM memory channel with full command-level timing.

    All times are memory-clock cycles.  The channel does not own a clock;
    callers pass the current cycle and use :meth:`earliest_issue` to find
    legal issue slots, which keeps the model usable both from the
    discrete-event engine and from closed-form schedulers.
    """

    def __init__(self, config: HBMConfig, index: int) -> None:
        config.validate()
        self.config = config
        self.index = index
        self.groups: List[BankGroup] = [
            BankGroup(config, g) for g in range(config.bank_groups_per_channel)
        ]
        t = config.timing
        self._timing = t
        #: Recent ACTIVATE issue times for the tFAW window.
        self._recent_activates: Deque[int] = deque(maxlen=4)
        #: Cycle until which the external (TSV) data bus is busy.
        self.data_bus_busy_until = 0
        #: Cycle until which the command bus is busy (MIGRATION takes 2).
        self.command_bus_busy_until = 0
        self._last_column_issue = -(10**9)
        self._last_column_group = -1
        self._last_write_data_end = -(10**9)
        self._last_write_group = -1
        # Statistics
        self.reads = 0
        self.writes = 0
        self.migrations = 0
        self.activates = 0
        self.precharges = 0
        self.idle_since: int = 0  #: set by idle-channel detection logic

    # ------------------------------------------------------------------
    # Scheduling queries
    # ------------------------------------------------------------------
    def earliest_issue(self, cmd: Command, now: int) -> int:
        """Earliest cycle >= ``now`` at which ``cmd`` could legally issue."""
        group = self.groups[cmd.bank_group]
        bank = group.bank(cmd.bank)
        t = self._timing
        earliest = max(now, self.command_bus_busy_until)

        if cmd.kind is CommandKind.ACTIVATE:
            earliest = max(earliest, bank.earliest_activate())
            earliest = max(earliest, self._rrd_constraint(cmd.bank_group))
            earliest = max(earliest, self._faw_constraint())
        elif cmd.kind is CommandKind.PRECHARGE:
            earliest = max(earliest, bank.earliest_precharge())
        elif cmd.is_column_command:
            earliest = max(earliest, bank.earliest_column())
            earliest = max(earliest, self._ccd_constraint(cmd.bank_group))
            if cmd.kind is CommandKind.READ:
                earliest = max(earliest, self._wtr_constraint(cmd.bank_group))
            if cmd.kind in (CommandKind.READ, CommandKind.WRITE):
                # External data bus must be free for the burst.
                earliest = max(earliest, self._data_bus_slot(earliest, cmd.kind))
            else:  # MIGRATION: needs the bank group's internal bus only.
                earliest = max(earliest, group.bus_free_at())
        return earliest

    def _rrd_constraint(self, bank_group: int) -> int:
        # Per-bank ACT-to-ACT (tRC) is folded into bank.earliest_activate;
        # this covers channel-wide ACT-to-ACT spacing.
        if not self._recent_activates:
            return 0
        t = self._timing
        last = self._recent_activates[-1]
        gap = t.tRRDl if bank_group == self._last_activate_group else t.tRRDs
        return last + gap

    def _faw_constraint(self) -> int:
        if len(self._recent_activates) == 4:
            return self._recent_activates[0] + self._timing.tFAW
        return 0

    def _ccd_constraint(self, bank_group: int) -> int:
        t = self._timing
        if self._last_column_issue < 0:
            return 0
        gap = t.tCCDl if bank_group == self._last_column_group else t.tCCDs
        return self._last_column_issue + gap

    def _wtr_constraint(self, bank_group: int) -> int:
        t = self._timing
        if self._last_write_data_end < 0:
            return 0
        gap = t.tWTRl if bank_group == self._last_write_group else t.tWTRs
        return self._last_write_data_end + gap

    def _data_bus_slot(self, issue: int, kind: CommandKind) -> int:
        t = self._timing
        lead = t.tCL if kind is CommandKind.READ else t.tWL
        # The burst begins `lead` cycles after issue; the bus must be free.
        if issue + lead >= self.data_bus_busy_until:
            return issue
        return self.data_bus_busy_until - lead

    # ------------------------------------------------------------------
    # Command issue
    # ------------------------------------------------------------------
    def issue(self, cmd: Command, now: int) -> int:
        """Issue ``cmd`` at cycle ``now``; return its completion cycle.

        ``now`` must be at least :meth:`earliest_issue`; otherwise a
        :class:`ProtocolError` is raised.  Completion means: row stable
        (ACTIVATE, at now+tRCD), bank precharged (PRECHARGE, at now+tRP),
        or data burst finished (column commands).
        """
        legal = self.earliest_issue(cmd, now)
        if now < legal:
            raise ProtocolError(
                f"{cmd} issued at {now}, earliest legal cycle is {legal}"
            )
        group = self.groups[cmd.bank_group]
        bank = group.bank(cmd.bank)
        t = self._timing
        self.command_bus_busy_until = now + cmd.command_bus_cycles

        if cmd.kind is CommandKind.ACTIVATE:
            bank.do_activate(now, cmd.row)
            self._recent_activates.append(now)
            self._last_activate_group = cmd.bank_group
            self.activates += 1
            return now + t.tRCD

        if cmd.kind is CommandKind.PRECHARGE:
            bank.do_precharge(now)
            self.precharges += 1
            return now + t.tRP

        if cmd.kind is CommandKind.READ:
            done = bank.do_read(now, cmd.column)
            self._note_column(cmd.bank_group, now)
            self.data_bus_busy_until = done
            group.occupy_bus(max(now + t.tCL, group.bus_free_at()), done)
            self.reads += 1
            return done

        if cmd.kind is CommandKind.WRITE:
            done = bank.do_write(now, cmd.column)
            self._note_column(cmd.bank_group, now)
            self.data_bus_busy_until = done
            group.occupy_bus(max(now + t.tWL, group.bus_free_at()), done)
            self._last_write_data_end = done
            self._last_write_group = cmd.bank_group
            self.writes += 1
            return done

        if cmd.kind is CommandKind.MIGRATION:
            done = bank.do_migration_read(now, cmd.column)
            self._note_column(cmd.bank_group, now)
            group.occupy_bus(max(now, group.bus_free_at()), done)
            self.migrations += 1
            return done

        raise ProtocolError(f"unknown command kind {cmd.kind}")  # pragma: no cover

    def _note_column(self, bank_group: int, now: int) -> None:
        self._last_column_issue = now
        self._last_column_group = bank_group
        for b in self.groups[bank_group].banks:
            b.note_column_issued(now, self._timing.tCCDl)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    _last_activate_group: int = -1

    def open_row(self, bank_group: int, bank: int) -> Optional[int]:
        return self.groups[bank_group].bank(bank).open_row

    def is_idle_at(self, now: int, window: int = 100) -> bool:
        """Idle-channel detection (Section 4.2): the channel is considered
        idle when its data bus has been quiet for ``window`` cycles."""
        return now - self.data_bus_busy_until >= window

    def stats(self) -> dict:
        """Return a snapshot of per-channel command counts."""
        return {
            "reads": self.reads,
            "writes": self.writes,
            "migrations": self.migrations,
            "activates": self.activates,
            "precharges": self.precharges,
        }
