"""Unit helpers and conversion constants.

The simulator mixes three unit systems: bytes (capacities and footprints),
GPU core cycles (all latencies in the epoch simulation), and seconds (for
bandwidth figures quoted in GB/s).  This module centralizes the conversions
so individual models never hand-roll ``1e9`` factors.
"""

from __future__ import annotations

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

#: Decimal gigabyte, used for bandwidth figures quoted as GB/s in the paper
#: (e.g. the 900 GB/s aggregate HBM bandwidth).
GB_DECIMAL = 1_000_000_000


def bytes_to_mb(n_bytes: int) -> float:
    """Return ``n_bytes`` expressed in binary megabytes."""
    return n_bytes / MB


def gbps_to_bytes_per_cycle(gbps: float, freq_hz: float) -> float:
    """Convert a decimal-GB/s bandwidth into bytes per clock cycle.

    Parameters
    ----------
    gbps:
        Bandwidth in decimal gigabytes per second.
    freq_hz:
        The clock frequency whose cycles the result should be expressed in.
    """
    if freq_hz <= 0:
        raise ValueError(f"frequency must be positive, got {freq_hz}")
    return gbps * GB_DECIMAL / freq_hz


def bytes_per_cycle_to_gbps(bpc: float, freq_hz: float) -> float:
    """Convert bytes-per-cycle at ``freq_hz`` into decimal GB/s."""
    if freq_hz <= 0:
        raise ValueError(f"frequency must be positive, got {freq_hz}")
    return bpc * freq_hz / GB_DECIMAL


def cycles_to_seconds(cycles: float, freq_hz: float) -> float:
    """Return the wall-clock duration of ``cycles`` at ``freq_hz``."""
    if freq_hz <= 0:
        raise ValueError(f"frequency must be positive, got {freq_hz}")
    return cycles / freq_hz


def seconds_to_cycles(seconds: float, freq_hz: float) -> float:
    """Return the number of ``freq_hz`` cycles elapsing in ``seconds``."""
    if freq_hz <= 0:
        raise ValueError(f"frequency must be positive, got {freq_hz}")
    return seconds * freq_hz


def is_power_of_two(n: int) -> bool:
    """Return True if ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def log2_int(n: int) -> int:
    """Return ``log2(n)`` for a power-of-two ``n``; raise otherwise."""
    if not is_power_of_two(n):
        raise ValueError(f"{n} is not a positive power of two")
    return n.bit_length() - 1
