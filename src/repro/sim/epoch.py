"""Epoch-based simulation driver.

UGPU divides execution time into fixed-length epochs (5M GPU cycles by
default, Section 3.3).  At each epoch boundary the profiling counters are
read, the demand-aware partitioning algorithm may produce a new resource
allocation, and the reallocation cost (SM drain/switch plus page migration)
is charged against the following epoch.

:class:`EpochRunner` is policy-agnostic: it repeatedly calls a
``step(epoch_index, epoch_cycles)`` callable supplied by the system model
and records per-epoch results, so UGPU, BP and MPS system models all reuse
the same driver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional


@dataclass
class EpochResult:
    """Outcome of one simulated epoch.

    Attributes
    ----------
    index:
        Zero-based epoch number.
    start_cycle, end_cycle:
        GPU-cycle interval the epoch covers.
    instructions:
        Per-application instruction counts retired this epoch, keyed by
        application id.
    migration_cycles:
        Cycles of the epoch consumed by resource reallocation (SM context
        movement plus page migration), as plotted in Figure 12a.
    repartitioned:
        True if the resource allocation changed at the start of this epoch.
    detail:
        Free-form per-model extras (e.g. counter snapshots).
    """

    index: int
    start_cycle: int
    end_cycle: int
    instructions: dict = field(default_factory=dict)
    migration_cycles: int = 0
    repartitioned: bool = False
    detail: dict = field(default_factory=dict)

    @property
    def cycles(self) -> int:
        """Length of the epoch in GPU cycles."""
        return self.end_cycle - self.start_cycle

    @property
    def migration_fraction(self) -> float:
        """Fraction of the epoch spent on resource reallocation."""
        if self.cycles <= 0:
            return 0.0
        return self.migration_cycles / self.cycles


class EpochRunner:
    """Drive a system model through fixed-length profiling epochs."""

    def __init__(self, epoch_cycles: int = 5_000_000) -> None:
        if epoch_cycles <= 0:
            raise ValueError(f"epoch length must be positive, got {epoch_cycles}")
        self.epoch_cycles = int(epoch_cycles)
        self.results: List[EpochResult] = []

    @property
    def total_cycles(self) -> int:
        """Cycles simulated so far."""
        return self.epoch_cycles * len(self.results)

    def run(
        self,
        step: Callable[[int, int], EpochResult],
        total_cycles: int,
        stop_when: Optional[Callable[[EpochResult], bool]] = None,
    ) -> List[EpochResult]:
        """Run epochs until ``total_cycles`` have been simulated.

        Parameters
        ----------
        step:
            Callable invoked once per epoch with ``(epoch_index,
            epoch_cycles)``; must return an :class:`EpochResult`.
        total_cycles:
            Simulation horizon; the last epoch may be truncated.
        stop_when:
            Optional early-exit predicate evaluated on each result.
        """
        if total_cycles <= 0:
            raise ValueError(f"total_cycles must be positive, got {total_cycles}")
        elapsed = 0
        index = len(self.results)
        while elapsed < total_cycles:
            span = min(self.epoch_cycles, total_cycles - elapsed)
            result = step(index, span)
            self.results.append(result)
            elapsed += span
            index += 1
            if stop_when is not None and stop_when(result):
                break
        return self.results

    def migration_fractions(self) -> List[float]:
        """Per-epoch reallocation occupancy (Figure 12a series)."""
        return [r.migration_fraction for r in self.results]

    def total_instructions(self) -> dict:
        """Sum instruction counts per application across all epochs."""
        totals: dict = {}
        for result in self.results:
            for app_id, count in result.instructions.items():
                totals[app_id] = totals.get(app_id, 0) + count
        return totals


def truncate_epochs(results: Iterable[EpochResult], max_cycles: int) -> List[EpochResult]:
    """Return the prefix of ``results`` covering at most ``max_cycles``."""
    out: List[EpochResult] = []
    used = 0
    for result in results:
        if used >= max_cycles:
            break
        out.append(result)
        used += result.cycles
    return out
