"""Discrete-event simulation engine.

A deliberately small engine: a priority-queue of timestamped events
(:class:`~repro.sim.engine.EventQueue`), a shared clock, and an epoch runner
that advances co-executing applications in fixed-length profiling epochs the
way UGPU's hardware does (Section 3.3 of the paper).
"""

from repro.sim.engine import Event, EventQueue, SimClock
from repro.sim.epoch import EpochResult, EpochRunner

__all__ = [
    "Event",
    "EventQueue",
    "SimClock",
    "EpochResult",
    "EpochRunner",
]
