"""Minimal discrete-event simulation core.

The command-level HBM model and the epoch-level system simulation both need
an ordered notion of time.  :class:`EventQueue` provides deterministic
ordering: events firing at the same timestamp are delivered in insertion
order (FIFO tie-breaking), which keeps simulations reproducible regardless
of heap internals.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import SimulationError


@dataclass(order=True)
class Event:
    """A timestamped callback.

    Ordering is (time, sequence) so that simultaneous events fire in the
    order they were scheduled.
    """

    time: int
    seq: int
    action: Callable[[], Any] = field(compare=False)
    tag: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)
    _queue: Optional["EventQueue"] = field(
        default=None, compare=False, repr=False
    )

    def cancel(self) -> None:
        """Mark the event so the queue skips it when its time comes.

        Idempotent; cancelling after the event has fired is a no-op.
        """
        if self.cancelled:
            return
        self.cancelled = True
        if self._queue is not None:
            self._queue._live -= 1
            self._queue = None


class SimClock:
    """A monotonically non-decreasing cycle counter."""

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise SimulationError(f"clock cannot start negative: {start}")
        self._now = int(start)

    @property
    def now(self) -> int:
        """Current simulation time in cycles."""
        return self._now

    def advance_to(self, time: int) -> None:
        """Move the clock forward to ``time``.

        Raises
        ------
        SimulationError
            If ``time`` is in the past; the engine never rewinds.
        """
        if time < self._now:
            raise SimulationError(
                f"clock cannot move backwards: now={self._now}, requested={time}"
            )
        self._now = int(time)

    def advance_by(self, cycles: int) -> None:
        """Move the clock forward by ``cycles`` (must be non-negative)."""
        if cycles < 0:
            raise SimulationError(f"cannot advance by negative cycles: {cycles}")
        self._now += int(cycles)


class EventQueue:
    """Deterministic priority queue of :class:`Event` objects.

    The queue owns a :class:`SimClock`; :meth:`run_until` pops events in
    timestamp order, advancing the clock to each event's time before
    invoking its action.  Actions may schedule further events.

    ``tracer``, when given, receives one ``event``-category record per
    fired event (after its action ran), carrying the event's tag and
    schedule sequence number.  ``metrics`` (a telemetry registry)
    additionally counts fired events and samples the live queue depth.
    ``profiler`` (a :class:`~repro.profiling.profiler.PhaseProfiler`)
    attributes host wall time to a ``sim.event`` phase per fired action.
    """

    def __init__(self, clock: Optional[SimClock] = None, tracer=None,
                 metrics=None, profiler=None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self.tracer = tracer
        self.metrics = metrics
        self.profiler = profiler
        if metrics is not None:
            from repro.telemetry import names as _names

            self._m_fired = _names.sim_events_fired_total(metrics)
            self._m_depth = _names.sim_event_queue_depth(metrics)
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._fired = 0
        self._live = 0

    def __len__(self) -> int:
        # O(1): a live-event counter maintained on schedule/cancel/fire,
        # rather than scanning the heap past lazily-cancelled entries.
        return self._live

    @property
    def events_fired(self) -> int:
        """Total number of events delivered so far."""
        return self._fired

    def schedule(self, time: int, action: Callable[[], Any], tag: str = "") -> Event:
        """Schedule ``action`` to run at absolute cycle ``time``."""
        if time < self.clock.now:
            raise SimulationError(
                f"cannot schedule event in the past: now={self.clock.now}, time={time}"
            )
        event = Event(
            time=int(time), seq=next(self._counter), action=action, tag=tag,
            _queue=self,
        )
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def schedule_in(self, delay: int, action: Callable[[], Any], tag: str = "") -> Event:
        """Schedule ``action`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.schedule(self.clock.now + delay, action, tag)

    def peek_time(self) -> Optional[int]:
        """Return the timestamp of the next live event, or None if empty."""
        self._drop_cancelled()
        return self._heap[0].time if self._heap else None

    def step(self) -> Optional[Event]:
        """Fire the single next event; return it, or None if the queue is empty."""
        self._drop_cancelled()
        if not self._heap:
            return None
        event = heapq.heappop(self._heap)
        self._live -= 1
        event._queue = None  # a later cancel() must not double-count
        self.clock.advance_to(event.time)
        if self.profiler is not None:
            self.profiler.begin("sim.event")
            event.action()
            self.profiler.end("sim.event")
        else:
            event.action()
        self._fired += 1
        if self.tracer is not None:
            self.tracer.emit(
                "event", event.tag or "event", time=event.time,
                event_seq=event.seq,
            )
        if self.metrics is not None:
            self._m_fired.inc()
            self._m_depth.set(self._live)
        return event

    def run_until(self, time: int) -> int:
        """Fire every event scheduled at or before ``time``.

        The clock ends exactly at ``time`` even if the last event fired
        earlier.  Returns the number of events fired.
        """
        fired = 0
        while True:
            next_time = self.peek_time()
            if next_time is None or next_time > time:
                break
            self.step()
            fired += 1
        self.clock.advance_to(max(self.clock.now, time))
        return fired

    def run_all(self, max_events: int = 10_000_000) -> int:
        """Drain the queue completely; guard against runaway schedules."""
        fired = 0
        while self.step() is not None:
            fired += 1
            if fired > max_events:
                raise SimulationError(
                    f"event storm: more than {max_events} events fired"
                )
        return fired

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
