"""Result aggregation and reporting.

Utilities the experiment harness and downstream users share: a sweep
runner that evaluates policies over workload lists, summary statistics in
the paper's terms (mean/max STP gain, ANTT improvement, QoS floors), and
plain-text / Markdown table rendering for reports like EXPERIMENTS.md.
"""

from repro.analysis.ascii_plot import bar_chart, compare_sparklines, sparkline
from repro.analysis.report import Table, format_markdown, format_text
from repro.analysis.sweep import PolicySweep, SweepSummary, compare_policies

__all__ = [
    "PolicySweep",
    "SweepSummary",
    "compare_policies",
    "Table",
    "format_text",
    "format_markdown",
    "sparkline",
    "bar_chart",
    "compare_sparklines",
]
