"""Dependency-free ASCII rendering of experiment series.

The benches print the numeric series the paper's figures plot; these
helpers add a visual: unicode sparklines for sorted-workload curves
(Figure 10's x-axis) and horizontal bar charts for policy comparisons.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.errors import ConfigError

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], lo: float = None, hi: float = None) -> str:
    """Render a series as a unicode sparkline.

    ``lo``/``hi`` pin the scale (so multiple sparklines are comparable);
    they default to the series' own min/max.
    """
    if not values:
        raise ConfigError("cannot sparkline an empty series")
    lo = min(values) if lo is None else lo
    hi = max(values) if hi is None else hi
    if hi < lo:
        raise ConfigError(f"hi ({hi}) must be >= lo ({lo})")
    span = hi - lo
    chars = []
    for value in values:
        if span == 0:
            level = 0
        else:
            clamped = min(max(value, lo), hi)
            level = int((clamped - lo) / span * (len(_SPARK_LEVELS) - 1))
        chars.append(_SPARK_LEVELS[level])
    return "".join(chars)


def bar_chart(series: Dict[str, float], width: int = 40,
              baseline: float = 0.0) -> str:
    """Render labelled values as horizontal bars.

    Bars start at ``baseline``; negative-relative values render with a
    ``-`` fill so losses are visually distinct.
    """
    if not series:
        raise ConfigError("cannot chart an empty series")
    if width <= 0:
        raise ConfigError("width must be positive")
    label_width = max(len(label) for label in series)
    span = max(abs(value - baseline) for value in series.values()) or 1.0
    lines: List[str] = []
    for label, value in series.items():
        delta = value - baseline
        length = int(abs(delta) / span * width)
        fill = ("█" if delta >= 0 else "-") * length
        lines.append(f"{label.ljust(label_width)} |{fill} {value:.3f}")
    return "\n".join(lines)


def compare_sparklines(series: Dict[str, Sequence[float]]) -> str:
    """Sparklines for several series on one shared scale."""
    if not series:
        raise ConfigError("cannot compare an empty set of series")
    flat = [v for values in series.values() for v in values]
    lo, hi = min(flat), max(flat)
    label_width = max(len(label) for label in series)
    return "\n".join(
        f"{label.ljust(label_width)} {sparkline(values, lo, hi)} "
        f"[{min(values):.2f}..{max(values):.2f}]"
        for label, values in series.items()
    )
