"""Policy sweeps over workload lists, with paper-style summaries.

Sweeps execute through :mod:`repro.exec`: pass ``jobs=N`` to fan the
(policy × mix) simulations out over a process pool and ``cache=`` a
:class:`~repro.exec.cache.ResultCache` to memoize results across calls.
Policies may be given as registry names (``"bp"``, ``"ugpu"``, ...), as
the registered factories themselves (e.g. ``BPSystem``), or as arbitrary
callables — the latter fall back to in-process serial execution since
they cannot cross a process boundary or be fingerprinted.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.analysis.report import Table
from repro.core.system import SystemResult
from repro.errors import ConfigError
from repro.exec import (
    ExecStats,
    ResultCache,
    SweepExecutor,
    SweepJob,
    policy_name_of,
    resolve_policy,
)
from repro.workloads.mixes import build_mix

PolicySpec = Union[str, Callable]


@dataclass
class SweepSummary:
    """Aggregate statistics of one policy over a workload list."""

    policy: str
    stp_values: List[float]
    antt_values: List[float]
    min_np_values: List[float]

    @property
    def mean_stp(self) -> float:
        return statistics.fmean(self.stp_values)

    @property
    def mean_antt(self) -> float:
        return statistics.fmean(self.antt_values)

    @property
    def worst_min_np(self) -> float:
        return min(self.min_np_values)

    def _check_comparable(self, baseline: "SweepSummary") -> None:
        if len(baseline.stp_values) != len(self.stp_values):
            raise ConfigError(
                f"sweeps cover different workload lists: {self.policy!r} has "
                f"{len(self.stp_values)} results but baseline "
                f"{baseline.policy!r} has {len(baseline.stp_values)}"
            )

    def stp_gain_over(self, baseline: "SweepSummary") -> float:
        """Mean per-workload STP gain over a baseline sweep."""
        self._check_comparable(baseline)
        return statistics.fmean(
            mine / theirs - 1.0
            for mine, theirs in zip(self.stp_values, baseline.stp_values)
        )

    def antt_gain_over(self, baseline: "SweepSummary") -> float:
        self._check_comparable(baseline)
        return statistics.fmean(
            theirs / mine - 1.0
            for mine, theirs in zip(self.antt_values, baseline.antt_values)
        )


def _registry_name(factory: PolicySpec) -> Optional[str]:
    """The registry name for a policy spec, or None for ad-hoc callables."""
    if isinstance(factory, str):
        resolve_policy(factory)  # raise early on unknown names
        return factory
    return policy_name_of(factory)


class PolicySweep:
    """Run one policy across many workload mixes.

    ``factory`` is a registry name, a registered factory, or any callable
    receiving a fresh application list per mix and returning a system
    with a ``run(total_cycles, mix_name=...)`` method.  Registry-known
    policies execute through :class:`~repro.exec.executor.SweepExecutor`
    (honouring ``jobs``/``cache``); ad-hoc callables run serially
    in-process.
    """

    def __init__(
        self,
        name: str,
        factory: PolicySpec,
        total_cycles: int = 25_000_000,
        factory_kwargs: Optional[Mapping[str, Any]] = None,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
    ):
        if total_cycles <= 0:
            raise ConfigError("total_cycles must be positive")
        self.name = name
        self.factory = factory
        self.total_cycles = total_cycles
        self.factory_kwargs = dict(factory_kwargs or {})
        self.executor = SweepExecutor(jobs=jobs, cache=cache)
        self.results: List[SystemResult] = []

    @property
    def stats(self) -> ExecStats:
        """Executor statistics accumulated over this sweep's runs."""
        return self.executor.stats

    def run(self, workloads: Sequence[Sequence[str]]) -> SweepSummary:
        """Evaluate every mix; returns the summary (results kept too)."""
        registry_name = _registry_name(self.factory)
        if registry_name is None:
            self.results = [
                self.factory(
                    build_mix(list(abbrs)).applications, **self.factory_kwargs
                ).run(self.total_cycles, mix_name="_".join(abbrs))
                for abbrs in workloads
            ]
        else:
            sweep_jobs = [
                SweepJob.build(
                    registry_name, abbrs, self.total_cycles, self.factory_kwargs
                )
                for abbrs in workloads
            ]
            self.results = self.executor.run(sweep_jobs)
        return self.summary()

    def summary(self) -> SweepSummary:
        if not self.results:
            raise ConfigError("sweep has not been run")
        return SweepSummary(
            policy=self.name,
            stp_values=[r.stp for r in self.results],
            antt_values=[r.antt for r in self.results],
            min_np_values=[r.min_np for r in self.results],
        )


def compare_policies(
    policies: Dict[str, PolicySpec],
    workloads: Sequence[Sequence[str]],
    baseline: str = "BP",
    total_cycles: int = 25_000_000,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    executor: Optional[SweepExecutor] = None,
) -> Tuple[Table, Dict[str, SweepSummary]]:
    """Sweep several policies and build the comparison table.

    All registry-known policies are submitted as one job batch so a
    multi-policy comparison saturates the pool; ad-hoc callables run
    serially.  Pass an ``executor`` to observe :class:`ExecStats`
    afterwards (``executor.stats``); otherwise one is built from
    ``jobs``/``cache``.  Returns the rendered-ready :class:`Table` plus
    the raw summaries.
    """
    if baseline not in policies:
        raise ConfigError(f"baseline {baseline!r} not among the policies")
    if executor is None:
        executor = SweepExecutor(jobs=jobs, cache=cache)

    names = {display: _registry_name(spec) for display, spec in policies.items()}
    batched = [display for display, name in names.items() if name is not None]
    batch_jobs = [
        SweepJob.build(names[display], abbrs, total_cycles)
        for display in batched
        for abbrs in workloads
    ]
    batch_results = executor.run(batch_jobs)

    per_policy: Dict[str, List[SystemResult]] = {}
    for offset, display in enumerate(batched):
        chunk = batch_results[offset * len(workloads):(offset + 1) * len(workloads)]
        per_policy[display] = list(chunk)

    summaries: Dict[str, SweepSummary] = {}
    for display, spec in policies.items():
        if display in per_policy:
            sweep = PolicySweep(display, spec, total_cycles)
            sweep.results = per_policy[display]
            summaries[display] = sweep.summary()
        else:
            sweep = PolicySweep(display, spec, total_cycles)
            summaries[display] = sweep.run(workloads)

    base = summaries[baseline]
    table = Table(
        title=f"{len(workloads)} workloads, {total_cycles:,} cycles",
        header=("policy", "mean STP", "mean ANTT", "worst min-NP",
                f"STP vs {baseline}", f"ANTT vs {baseline}"),
    )
    for name, summary in summaries.items():
        table.add(
            name,
            f"{summary.mean_stp:.3f}",
            f"{summary.mean_antt:.2f}",
            f"{summary.worst_min_np:.2f}",
            f"{summary.stp_gain_over(base):+.1%}",
            f"{summary.antt_gain_over(base):+.1%}",
        )
    return table, summaries
