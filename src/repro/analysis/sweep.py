"""Policy sweeps over workload lists, with paper-style summaries."""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import Table
from repro.core.system import SystemResult
from repro.errors import ConfigError
from repro.workloads.mixes import build_mix


@dataclass
class SweepSummary:
    """Aggregate statistics of one policy over a workload list."""

    policy: str
    stp_values: List[float]
    antt_values: List[float]
    min_np_values: List[float]

    @property
    def mean_stp(self) -> float:
        return statistics.fmean(self.stp_values)

    @property
    def mean_antt(self) -> float:
        return statistics.fmean(self.antt_values)

    @property
    def worst_min_np(self) -> float:
        return min(self.min_np_values)

    def stp_gain_over(self, baseline: "SweepSummary") -> float:
        """Mean per-workload STP gain over a baseline sweep."""
        if len(baseline.stp_values) != len(self.stp_values):
            raise ConfigError("sweeps cover different workload lists")
        return statistics.fmean(
            mine / theirs - 1.0
            for mine, theirs in zip(self.stp_values, baseline.stp_values)
        )

    def antt_gain_over(self, baseline: "SweepSummary") -> float:
        if len(baseline.antt_values) != len(self.antt_values):
            raise ConfigError("sweeps cover different workload lists")
        return statistics.fmean(
            theirs / mine - 1.0
            for mine, theirs in zip(self.antt_values, baseline.antt_values)
        )


class PolicySweep:
    """Run one policy factory across many workload mixes.

    ``factory`` receives a fresh application list per mix and returns a
    system with a ``run(total_cycles, mix_name=...)`` method.
    """

    def __init__(self, name: str, factory: Callable, total_cycles: int = 25_000_000):
        if total_cycles <= 0:
            raise ConfigError("total_cycles must be positive")
        self.name = name
        self.factory = factory
        self.total_cycles = total_cycles
        self.results: List[SystemResult] = []

    def run(self, workloads: Sequence[Sequence[str]]) -> SweepSummary:
        """Evaluate every mix; returns the summary (results kept too)."""
        self.results = []
        for abbrs in workloads:
            apps = build_mix(list(abbrs)).applications
            result = self.factory(apps).run(
                self.total_cycles, mix_name="_".join(abbrs)
            )
            self.results.append(result)
        return self.summary()

    def summary(self) -> SweepSummary:
        if not self.results:
            raise ConfigError("sweep has not been run")
        return SweepSummary(
            policy=self.name,
            stp_values=[r.stp for r in self.results],
            antt_values=[r.antt for r in self.results],
            min_np_values=[r.min_np for r in self.results],
        )


def compare_policies(
    policies: Dict[str, Callable],
    workloads: Sequence[Sequence[str]],
    baseline: str = "BP",
    total_cycles: int = 25_000_000,
) -> Tuple[Table, Dict[str, SweepSummary]]:
    """Sweep several policies and build the comparison table.

    Returns the rendered-ready :class:`Table` plus the raw summaries.
    """
    if baseline not in policies:
        raise ConfigError(f"baseline {baseline!r} not among the policies")
    summaries: Dict[str, SweepSummary] = {}
    for name, factory in policies.items():
        sweep = PolicySweep(name, factory, total_cycles)
        summaries[name] = sweep.run(workloads)

    base = summaries[baseline]
    table = Table(
        title=f"{len(workloads)} workloads, {total_cycles:,} cycles",
        header=("policy", "mean STP", "mean ANTT", "worst min-NP",
                f"STP vs {baseline}", f"ANTT vs {baseline}"),
    )
    for name, summary in summaries.items():
        table.add(
            name,
            f"{summary.mean_stp:.3f}",
            f"{summary.mean_antt:.2f}",
            f"{summary.worst_min_np:.2f}",
            f"{summary.stp_gain_over(base):+.1%}",
            f"{summary.antt_gain_over(base):+.1%}",
        )
    return table, summaries
