"""Small, dependency-free table rendering for experiment reports."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Sequence

from repro.errors import ConfigError


@dataclass
class Table:
    """A titled table of rows; cells are stringified on render."""

    title: str
    header: Sequence[str]
    rows: List[Sequence[Any]] = field(default_factory=list)

    def add(self, *cells: Any) -> "Table":
        if len(cells) != len(self.header):
            raise ConfigError(
                f"row has {len(cells)} cells, header has {len(self.header)}"
            )
        self.rows.append(cells)
        return self

    def column(self, name: str) -> List[Any]:
        """Extract one column by header name."""
        try:
            index = list(self.header).index(name)
        except ValueError:
            raise ConfigError(f"no column named {name!r}") from None
        return [row[index] for row in self.rows]


def _widths(table: Table) -> List[int]:
    cells = [table.header] + [[str(c) for c in row] for row in table.rows]
    return [
        max(len(str(row[i])) for row in cells)
        for i in range(len(table.header))
    ]


def format_text(table: Table) -> str:
    """Fixed-width plain-text rendering."""
    widths = _widths(table)

    def line(cells):
        return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths)).rstrip()

    out = [f"== {table.title} ==", line(table.header),
           line("-" * w for w in widths)]
    out.extend(line(row) for row in table.rows)
    return "\n".join(out)


def format_markdown(table: Table) -> str:
    """GitHub-flavoured Markdown rendering."""
    def line(cells):
        return "| " + " | ".join(str(c) for c in cells) + " |"

    out = [f"### {table.title}", "", line(table.header),
           line("---" for _ in table.header)]
    out.extend(line(row) for row in table.rows)
    return "\n".join(out)
