"""Registry of named policy factories.

A :class:`~repro.exec.jobs.SweepJob` carries only a *policy name*; the
factory behind it is resolved from this registry on whichever side of a
process boundary the job lands.  Every factory is a module-level callable
``factory(applications, **kwargs) -> system`` so the registry contents are
identical in the parent and in ``ProcessPoolExecutor`` workers — nothing
unpicklable ever travels with a job.

Names are case-insensitive; the canonical spellings are the lowercase CLI
names (``bp``, ``ugpu-offline``, ...) with the benchmark-suite spellings
(``BP``, ``CD``, ``UGPU-offline``, ...) registered as aliases.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.baselines import (
    BPBigSmallSystem,
    BPSmallBigSystem,
    BPSystem,
    CDSearchSystem,
    MPSSystem,
)
from repro.core.ugpu import UGPUSystem
from repro.errors import ConfigError
from repro.pagemove import MigrationMode

PolicyFactory = Callable[..., object]

_REGISTRY: Dict[str, PolicyFactory] = {}
_ALIASES: Dict[str, str] = {}


def canonical_policy_name(name: str) -> str:
    """Map a name or alias to its canonical lowercase registry key."""
    key = name.strip().lower()
    return _ALIASES.get(key, key)


def register_policy(
    name: str,
    factory: PolicyFactory,
    aliases: Sequence[str] = (),
    replace: bool = False,
) -> PolicyFactory:
    """Register ``factory`` under ``name`` (plus optional aliases)."""
    key = name.strip().lower()
    if not key:
        raise ConfigError("policy name cannot be empty")
    if key in _REGISTRY and not replace:
        raise ConfigError(f"policy {name!r} already registered")
    _REGISTRY[key] = factory
    for alias in aliases:
        _ALIASES[alias.strip().lower()] = key
    return factory


def resolve_policy(name: str) -> PolicyFactory:
    """Look up a factory by (case-insensitive) name or alias."""
    key = canonical_policy_name(name)
    try:
        return _REGISTRY[key]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigError(f"unknown policy {name!r}; registered: {known}") from None


def policy_name_of(factory: PolicyFactory) -> Optional[str]:
    """Reverse lookup: the canonical name of a registered factory, or None.

    Lets the sweep layer accept the registered callables themselves
    (``compare_policies({"BP": BPSystem, ...})``) and still hand the work
    to the process pool by name.
    """
    for key, registered in _REGISTRY.items():
        if registered is factory:
            return key
    return None


def registered_policies() -> List[str]:
    """Sorted canonical policy names."""
    return sorted(_REGISTRY)


def ugpu_offline(apps, **kwargs):
    return UGPUSystem(apps, offline=True, **kwargs)


def ugpu_software(apps, **kwargs):
    return UGPUSystem(apps, mode=MigrationMode.SOFTWARE, **kwargs)


def ugpu_traditional(apps, **kwargs):
    return UGPUSystem(apps, mode=MigrationMode.TRADITIONAL, **kwargs)


register_policy("bp", BPSystem)
register_policy("bp-bs", BPBigSmallSystem)
register_policy("bp-sb", BPSmallBigSystem)
register_policy("mps", MPSSystem)
register_policy("cd-search", CDSearchSystem, aliases=("cd",))
register_policy("ugpu", UGPUSystem)
register_policy("ugpu-offline", ugpu_offline)
register_policy("ugpu-soft", ugpu_software, aliases=("ugpu-software",))
register_policy("ugpu-ori", ugpu_traditional, aliases=("ugpu-traditional",))
