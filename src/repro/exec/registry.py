"""Registry of named policy factories.

A :class:`~repro.exec.jobs.SweepJob` carries only a *policy name*; the
factory behind it is resolved from this registry on whichever side of a
process boundary the job lands.  Every factory is a module-level callable
``factory(applications, **kwargs) -> system`` so the registry contents are
identical in the parent and in ``ProcessPoolExecutor`` workers — nothing
unpicklable ever travels with a job.

Factories *compose*: each one builds a
:class:`~repro.core.system.MultitaskSystem` runner around the matching
:mod:`repro.policies` policy object, splitting the keyword arguments
between the two (runner keywords — ``config``, ``epoch_cycles``,
``arrivals``, ... — go to the runner; everything else to the policy).
The deprecated subclass spellings (``UGPUSystem`` and friends) are still
recognized by :func:`policy_name_of` so pre-refactor callers that pass
the classes themselves keep sweeping through the executor.

Names are case-insensitive; the canonical spellings are the lowercase CLI
names (``bp``, ``ugpu-offline``, ...) with the benchmark-suite spellings
(``BP``, ``CD``, ``UGPU-offline``, ...) registered as aliases.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.core.system import MultitaskSystem
from repro.errors import ConfigError
from repro.pagemove import MigrationMode
from repro.policies import (
    BPBigSmallPolicy,
    BPPolicy,
    BPSmallBigPolicy,
    CDSearchPolicy,
    MPSPolicy,
    UGPUPolicy,
)

PolicyFactory = Callable[..., object]

_REGISTRY: Dict[str, PolicyFactory] = {}
_ALIASES: Dict[str, str] = {}

#: Keyword arguments owned by the runner; everything else a factory
#: receives is forwarded to the policy constructor.
RUNNER_KWARGS = frozenset(
    {
        "config",
        "epoch_cycles",
        "energy_model",
        "total_memory_bytes",
        "tracer",
        "arrivals",
        "max_slots",
        "metrics",
        "profiler",
        "kernel_backend",
    }
)


def compose_system(policy_factory: Callable[..., object], applications,
                   **kwargs) -> MultitaskSystem:
    """Build a runner around ``policy_factory(**policy_kwargs)``.

    Splits ``kwargs`` between the runner (:data:`RUNNER_KWARGS`) and the
    policy constructor, so one factory signature serves both layers.
    """
    runner_kw = {}
    policy_kw = {}
    for key, value in kwargs.items():
        (runner_kw if key in RUNNER_KWARGS else policy_kw)[key] = value
    return MultitaskSystem(
        applications, policy=policy_factory(**policy_kw), **runner_kw
    )


def canonical_policy_name(name: str) -> str:
    """Map a name or alias to its canonical lowercase registry key."""
    key = name.strip().lower()
    return _ALIASES.get(key, key)


def register_policy(
    name: str,
    factory: PolicyFactory,
    aliases: Sequence[str] = (),
    replace: bool = False,
) -> PolicyFactory:
    """Register ``factory`` under ``name`` (plus optional aliases)."""
    key = name.strip().lower()
    if not key:
        raise ConfigError("policy name cannot be empty")
    if key in _REGISTRY and not replace:
        raise ConfigError(f"policy {name!r} already registered")
    _REGISTRY[key] = factory
    for alias in aliases:
        _ALIASES[alias.strip().lower()] = key
    return factory


def resolve_policy(name: str) -> PolicyFactory:
    """Look up a factory by (case-insensitive) name or alias."""
    key = canonical_policy_name(name)
    try:
        return _REGISTRY[key]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigError(f"unknown policy {name!r}; registered: {known}") from None


def policy_name_of(factory: PolicyFactory) -> Optional[str]:
    """Reverse lookup: the canonical name of a registered factory, or None.

    Lets the sweep layer accept the registered callables themselves
    (``compare_policies({"BP": bp, ...})``) and still hand the work to
    the process pool by name.  The deprecated subclass spellings map to
    their composed replacements, so ``policy_name_of(BPSystem) == "bp"``
    keeps holding while the shims exist.
    """
    for key, registered in _REGISTRY.items():
        if registered is factory:
            return key
    return _legacy_factories().get(factory)


def _legacy_factories() -> Dict[PolicyFactory, str]:
    # Imported lazily: the shim modules are on their way out and pulling
    # them in at registry-import time would keep the deprecated classes
    # resident even for callers that never touch them.
    from repro.baselines import (
        BPBigSmallSystem,
        BPSmallBigSystem,
        BPSystem,
        CDSearchSystem,
        MPSSystem,
    )
    from repro.core.ugpu import UGPUSystem

    return {
        BPSystem: "bp",
        BPBigSmallSystem: "bp-bs",
        BPSmallBigSystem: "bp-sb",
        MPSSystem: "mps",
        CDSearchSystem: "cd-search",
        UGPUSystem: "ugpu",
    }


def registered_policies() -> List[str]:
    """Sorted canonical policy names."""
    return sorted(_REGISTRY)


def bp(apps, **kwargs):
    return compose_system(BPPolicy, apps, **kwargs)


def bp_big_small(apps, **kwargs):
    return compose_system(BPBigSmallPolicy, apps, **kwargs)


def bp_small_big(apps, **kwargs):
    return compose_system(BPSmallBigPolicy, apps, **kwargs)


def mps(apps, **kwargs):
    return compose_system(MPSPolicy, apps, **kwargs)


def cd_search(apps, **kwargs):
    return compose_system(CDSearchPolicy, apps, **kwargs)


def ugpu(apps, **kwargs):
    return compose_system(UGPUPolicy, apps, **kwargs)


def ugpu_offline(apps, **kwargs):
    return compose_system(UGPUPolicy, apps, offline=True, **kwargs)


def ugpu_software(apps, **kwargs):
    return compose_system(UGPUPolicy, apps, mode=MigrationMode.SOFTWARE, **kwargs)


def ugpu_traditional(apps, **kwargs):
    return compose_system(
        UGPUPolicy, apps, mode=MigrationMode.TRADITIONAL, **kwargs
    )


register_policy("bp", bp)
register_policy("bp-bs", bp_big_small)
register_policy("bp-sb", bp_small_big)
register_policy("mps", mps)
register_policy("cd-search", cd_search, aliases=("cd",))
register_policy("ugpu", ugpu)
register_policy("ugpu-offline", ugpu_offline)
register_policy("ugpu-soft", ugpu_software, aliases=("ugpu-software",))
register_policy("ugpu-ori", ugpu_traditional, aliases=("ugpu-traditional",))
