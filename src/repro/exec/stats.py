"""Execution statistics for sweep runs.

:class:`ExecStats` is how the executor proves its worth: it counts jobs,
cache hits and evictions, and records per-job in-worker seconds so the
CLI can print min/median/p95/max and the simulation-vs-orchestration
wall-clock split next to the end-to-end wall-clock.  Stats objects
merge, so one :class:`~repro.exec.executor.SweepExecutor` can accumulate
a whole multi-policy comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List


def _percentile(samples: List[float], fraction: float) -> float:
    """Nearest-rank percentile; 0.0 for an empty sample set."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


@dataclass
class ExecStats:
    """Counters and timings for one or more executor runs."""

    jobs_total: int = 0
    jobs_run: int = 0
    cache_hits: int = 0
    cache_evictions: int = 0
    #: Entries discarded because they predate the envelope schema
    #: (stale data, not corruption — see repro.exec.cache.CACHE_SCHEMA).
    cache_schema_evictions: int = 0
    wall_seconds: float = 0.0
    workers: int = 1
    job_seconds: List[float] = field(default_factory=list)
    #: Kernel backend the jobs ran under ("scalar"/"numpy"); "mixed" when
    #: merged runs disagree, "" when no run recorded one.  Timings from
    #: different backends are not comparable, so the footer surfaces it.
    kernel_backend: str = ""

    @property
    def p50_seconds(self) -> float:
        return _percentile(self.job_seconds, 0.50)

    @property
    def p95_seconds(self) -> float:
        return _percentile(self.job_seconds, 0.95)

    @property
    def min_seconds(self) -> float:
        return min(self.job_seconds) if self.job_seconds else 0.0

    @property
    def median_seconds(self) -> float:
        return _percentile(self.job_seconds, 0.50)

    @property
    def max_seconds(self) -> float:
        return max(self.job_seconds) if self.job_seconds else 0.0

    @property
    def job_seconds_total(self) -> float:
        """In-worker simulation seconds summed over every executed job."""
        return sum(self.job_seconds)

    @property
    def orchestration_seconds(self) -> float:
        """Wall-clock not spent simulating: scheduling, serialization,
        cache probes.  With parallel workers the in-worker total can
        exceed the wall-clock, so this clamps at zero."""
        return max(0.0, self.wall_seconds - self.job_seconds_total)

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.jobs_total if self.jobs_total else 0.0

    def merge(self, other: "ExecStats") -> "ExecStats":
        """Fold another run's counters into this one (in place)."""
        self.jobs_total += other.jobs_total
        self.jobs_run += other.jobs_run
        self.cache_hits += other.cache_hits
        self.cache_evictions += other.cache_evictions
        self.cache_schema_evictions += other.cache_schema_evictions
        self.wall_seconds += other.wall_seconds
        self.workers = max(self.workers, other.workers)
        self.job_seconds.extend(other.job_seconds)
        if other.kernel_backend:
            if not self.kernel_backend:
                self.kernel_backend = other.kernel_backend
            elif self.kernel_backend != other.kernel_backend:
                self.kernel_backend = "mixed"
        return self

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form for run bundles (:mod:`repro.inspect`)."""
        return {
            "jobs_total": self.jobs_total,
            "jobs_run": self.jobs_run,
            "cache_hits": self.cache_hits,
            "cache_evictions": self.cache_evictions,
            "cache_schema_evictions": self.cache_schema_evictions,
            "wall_seconds": self.wall_seconds,
            "workers": self.workers,
            "job_seconds": list(self.job_seconds),
            "kernel_backend": self.kernel_backend,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ExecStats":
        """Rebuild from :meth:`to_dict` output (unknown keys ignored,
        missing keys default — bundles written by older code still load)."""
        return cls(
            jobs_total=int(payload.get("jobs_total", 0)),
            jobs_run=int(payload.get("jobs_run", 0)),
            cache_hits=int(payload.get("cache_hits", 0)),
            cache_evictions=int(payload.get("cache_evictions", 0)),
            cache_schema_evictions=int(
                payload.get("cache_schema_evictions", 0)
            ),
            wall_seconds=float(payload.get("wall_seconds", 0.0)),
            workers=int(payload.get("workers", 1)),
            job_seconds=[float(s) for s in payload.get("job_seconds", [])],
            kernel_backend=str(payload.get("kernel_backend", "")),
        )

    def format(self) -> str:
        """One-line human summary, e.g. for the CLI footer."""
        parts = [
            f"jobs {self.jobs_total}",
            f"run {self.jobs_run}",
            f"cache hits {self.cache_hits} ({self.hit_rate:.0%})",
            f"workers {self.workers}",
            f"wall {self.wall_seconds:.2f}s",
        ]
        if self.kernel_backend:
            parts.append(f"backend {self.kernel_backend}")
        if self.job_seconds:
            parts.append(
                f"per-job min {self.min_seconds * 1e3:.1f}ms "
                f"median {self.median_seconds * 1e3:.1f}ms "
                f"p95 {self.p95_seconds * 1e3:.1f}ms "
                f"max {self.max_seconds * 1e3:.1f}ms"
            )
            parts.append(
                f"sim {self.job_seconds_total:.2f}s + "
                f"orchestration {self.orchestration_seconds:.2f}s"
            )
        if self.cache_evictions:
            parts.append(f"evictions {self.cache_evictions}")
        if self.cache_schema_evictions:
            parts.append(f"schema evictions {self.cache_schema_evictions}")
        return "ExecStats: " + "  ".join(parts)
