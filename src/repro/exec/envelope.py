"""Worker-side observability capture and the picklable job envelope.

Since the sweep executor went multi-process, everything that actually
runs — node physics, kernel advancement, cache behaviour — happens in
pool workers where the orchestrator's tracer/metrics/profiler are
``None``.  This module closes that gap without sharing any live object
across the process boundary:

* :func:`execute_job_enveloped` runs one job inside the worker with a
  *fresh, bounded* :class:`~repro.trace.TraceRecorder`,
  :class:`~repro.telemetry.MetricsRegistry` and
  :class:`~repro.profiling.PhaseProfiler`, then snapshots all three
  into an :class:`ObsSnapshot` — plain tuples, dicts and dataclasses,
  picklable and cache-compatible;
* the :class:`JobEnvelope` wraps the job result, its wall seconds, the
  worker's OS pid and a stable per-process :func:`worker_token`;
* :func:`merge_envelopes` folds a list of envelopes back into
  orchestrator-side sinks, in job order, so merged aggregates are
  deterministic (serial and ``--jobs N`` runs agree byte-for-byte).

Jobs opt into capture by providing ``run_observed(tracer=, metrics=,
profiler=)``; jobs without it run uninstrumented and return an empty
snapshot.

The worker token exists because the OS recycles pids: two different
worker processes across rounds may share a pid, and keying trace tracks
on the pid alone would interleave them.  The token is a per-process
UUID (lazily regenerated after a fork), so every process lifetime gets
its own identity.
"""

from __future__ import annotations

import os
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.profiling.profiler import PhaseProfiler
from repro.telemetry.merge import merge_registry, snapshot_registry
from repro.telemetry.metrics import MetricsRegistry
from repro.trace.recorder import TraceEvent, TraceRecorder

#: Ring-buffer bound for the per-job worker recorder.  A fleet shard
#: emits one span per node plus one per tenant; 16Ki leaves headroom
#: for two orders of magnitude more without letting a runaway job OOM
#: the pool.
WORKER_TRACE_CAPACITY = 16_384

_TOKEN: Optional[Tuple[int, str]] = None


def worker_token() -> str:
    """A stable identity for this process lifetime (survives pid reuse).

    Lazily minted on first use and re-minted if the pid changed (the
    process was forked), so forked pool workers never inherit their
    parent's identity.
    """
    global _TOKEN
    pid = os.getpid()
    if _TOKEN is None or _TOKEN[0] != pid:
        _TOKEN = (pid, uuid.uuid4().hex[:12])
    return _TOKEN[1]


@dataclass(frozen=True)
class ObsSnapshot:
    """Everything one job observed, frozen into picklable plain data."""

    #: Worker trace events, timestamps in the job's native clock domain
    #: (round-relative cycles for fleet shards).
    events: Tuple[TraceEvent, ...] = ()
    #: Events the worker ring evicted (truncation is never silent).
    dropped: int = 0
    #: :func:`~repro.telemetry.merge.snapshot_registry` output.
    metrics: Tuple = ()
    #: :meth:`~repro.profiling.PhaseProfiler.snapshot` output.
    profile: Dict[str, Tuple[int, float]] = field(default_factory=dict)


@dataclass(frozen=True)
class JobEnvelope:
    """One job's result plus its worker-side observability capture."""

    result: Any
    seconds: float
    pid: int
    worker: str
    obs: ObsSnapshot = field(default_factory=ObsSnapshot)
    cached: bool = False


def execute_job_enveloped(job, capture: bool = False) -> JobEnvelope:
    """Run ``job`` in this process, optionally capturing observability.

    Without ``capture`` this is :func:`~repro.exec.jobs.execute_job_timed`
    in an envelope — the job runs the exact instructions it always ran.
    With ``capture``, a fresh bounded recorder/registry/profiler observe
    the run (via the job's ``run_observed`` hook when it has one) and
    are snapshotted into the envelope.
    """
    if not capture:
        start = time.perf_counter()
        result = job.run()
        seconds = time.perf_counter() - start
        return JobEnvelope(
            result=result, seconds=seconds,
            pid=os.getpid(), worker=worker_token(),
        )
    tracer = TraceRecorder(capacity=WORKER_TRACE_CAPACITY)
    metrics = MetricsRegistry()
    profiler = PhaseProfiler()
    run_observed = getattr(job, "run_observed", None)
    start = time.perf_counter()
    with profiler.span("worker.job"):
        if run_observed is not None:
            result = run_observed(
                tracer=tracer, metrics=metrics, profiler=profiler
            )
        else:
            result = job.run()
    seconds = time.perf_counter() - start
    obs = ObsSnapshot(
        events=tuple(tracer.events()),
        dropped=tracer.dropped,
        metrics=tuple(snapshot_registry(metrics)),
        profile=profiler.snapshot(),
    )
    return JobEnvelope(
        result=result, seconds=seconds,
        pid=os.getpid(), worker=worker_token(), obs=obs,
    )


def merge_envelopes(
    envelopes: Sequence[Optional[JobEnvelope]],
    tracer=None,
    metrics=None,
    profiler=None,
    run_id: Optional[str] = None,
    time_shift: float = 0.0,
) -> int:
    """Fold worker captures into orchestrator-side sinks, in job order.

    Used by call sites whose jobs all share one time origin (the sweep
    CLI); the fleet merges per round itself because each round has its
    own time shift.  Returns the number of trace events absorbed.
    """
    absorbed = 0
    for index, envelope in enumerate(envelopes):
        if envelope is None or envelope.obs is None:
            continue
        obs = envelope.obs
        if tracer is not None and obs.events:
            absorbed += tracer.absorb(
                obs.events,
                time_shift=time_shift,
                run_id=run_id,
                shard_id=f"job{index}",
                pid=envelope.pid,
                worker=envelope.worker,
            )
        if metrics is not None and obs.metrics:
            merge_registry(metrics, obs.metrics)
        if profiler is not None and obs.profile:
            profiler.absorb(obs.profile, prefix=("worker",))
    return absorbed
