"""Content-addressed on-disk memoization of sweep results.

Every figure sweep re-simulates the BP baseline; across the full
evaluation harness the same (policy, mix, horizon) job is recomputed
dozens of times.  :class:`ResultCache` stores each finished
:class:`~repro.core.system.SystemResult` under the SHA-256 key of its
:class:`~repro.exec.jobs.SweepJob` spec (which folds in the package
version, so a new release never serves stale physics).

The cache is deliberately paranoid: entries are written atomically
(temp file + rename) so a killed run never leaves a truncated payload
under a valid key, and any entry that fails to unpickle or fails its
sanity check is deleted and reported as a miss — the executor simply
recomputes.  Hit/miss/eviction counters make behaviour observable in
:class:`~repro.exec.stats.ExecStats`.

Payload schema
--------------
Entries carry an explicit ``schema`` integer (:data:`CACHE_SCHEMA`)
alongside the package ``version``.  History:

* **1** (implicit — the key was absent): ``{"version", "key",
  "result"}``.
* **2**: adds ``"schema"`` itself plus the optional worker-capture
  fields ``"obs"`` (an :class:`~repro.exec.envelope.ObsSnapshot`) and
  ``"origin"`` (the capturing worker's ``(pid, token)``).

Entries predating the current schema are *stale data, not corruption*:
they are discarded and counted in :attr:`ResultCache.schema_evictions`
(then reported as an ordinary miss), never surfaced as unpickle
errors.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import Optional

from repro import __version__
from repro.core.system import SystemResult
from repro.errors import ConfigError

_SUFFIX = ".pkl"
_TMP_PREFIX = ".tmp-"

#: Current payload schema (see the module docstring for the history).
CACHE_SCHEMA = 2


class ResultCache:
    """Disk-backed ``key -> result`` store with LRU-ish eviction.

    ``max_entries`` bounds the directory; when exceeded, the
    oldest-accessed entries (by file mtime, refreshed on every hit) are
    evicted first.

    ``result_types`` is the sanity-check allowlist: entries that are not
    an instance of one of these types are rejected (treated as
    corruption on read, refused on write).  The default accepts only
    :class:`~repro.core.system.SystemResult`; the fleet simulator keeps
    its shard results in a separate directory typed to
    ``FleetShardResult`` so the two payload kinds can never collide.
    """

    def __init__(self, directory, max_entries: Optional[int] = None,
                 result_types: tuple = (SystemResult,)) -> None:
        if max_entries is not None and max_entries < 1:
            raise ConfigError(f"max_entries must be >= 1, got {max_entries}")
        if not result_types:
            raise ConfigError("result_types cannot be empty")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_entries = max_entries
        self.result_types = tuple(result_types)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.schema_evictions = 0

    def _entries(self):
        """Finished entries only.  ``Path.glob`` matches dotfiles, so the
        plain ``*.pkl`` pattern also catches ``.tmp-*.pkl`` files another
        process is still writing; counting those overstates the bound and
        evicting one races its ``os.replace`` into ``FileNotFoundError``."""
        return (
            path
            for path in self.directory.glob(f"*{_SUFFIX}")
            if not path.name.startswith(_TMP_PREFIX)
        )

    def __len__(self) -> int:
        return sum(1 for _ in self._entries())

    def path_for(self, key: str) -> Path:
        return self.directory / f"{key}{_SUFFIX}"

    def _load(self, key: str):
        """The full payload for ``key``, or None (no counters touched).

        Distinguishes the failure modes the satellite contract cares
        about: a payload from an older schema is *stale*, not corrupt —
        it is discarded and counted in :attr:`schema_evictions` rather
        than being surfaced as an unpickle error.
        """
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except FileNotFoundError:
            return None
        except Exception:
            # Truncated pickle, foreign object: recompute.
            self._discard(path)
            return None
        if not isinstance(payload, dict) or payload.get("schema") != CACHE_SCHEMA:
            # Pre-envelope entry (schema key absent) or a future schema.
            self._discard(path)
            self.schema_evictions += 1
            return None
        try:
            result = payload["result"]
            if payload["version"] != __version__ or not isinstance(
                result, self.result_types
            ):
                raise ValueError("cache entry does not match this package")
        except Exception:
            self._discard(path)
            return None
        self._touch(path)
        return payload

    def get(self, key: str):
        """Return the memoized result, or None (counting a miss).

        Corrupted or non-conforming entries are deleted so the slot is
        clean for the recomputed result.
        """
        payload = self._load(key)
        if payload is None:
            self.misses += 1
            return None
        self.hits += 1
        return payload["result"]

    def get_envelope(self, key: str, require_obs: bool = False):
        """The full payload dict (result + optional ``obs``/``origin``).

        With ``require_obs``, an entry stored without a worker capture
        counts as a miss — but stays on disk, still valid for callers
        that only want the result.
        """
        payload = self._load(key)
        if payload is None:
            self.misses += 1
            return None
        if require_obs and payload.get("obs") is None:
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, key: str, result, obs=None, origin=None) -> None:
        """Atomically persist ``result`` under ``key``.

        ``obs`` (an :class:`~repro.exec.envelope.ObsSnapshot`) and
        ``origin`` (the capturing worker's identity) ride along when a
        capture-enabled run stores the entry, so a later run can replay
        worker-side observability straight from the cache.
        """
        if not isinstance(result, self.result_types):
            allowed = "/".join(t.__name__ for t in self.result_types)
            raise ConfigError(
                f"cache stores {allowed}, got {type(result).__name__}")
        payload = {
            "schema": CACHE_SCHEMA,
            "version": __version__,
            "key": key,
            "result": result,
        }
        if obs is not None:
            payload["obs"] = obs
            payload["origin"] = origin
        fd, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp-", suffix=_SUFFIX
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, self.path_for(key))
        except BaseException:
            self._discard(Path(tmp_name))
            raise
        self.stores += 1
        self._enforce_bound()

    def clear(self) -> int:
        """Drop every finished entry; returns how many were removed.

        In-flight ``.tmp-*`` files are left alone — their writer's
        ``os.replace`` still needs them.
        """
        removed = 0
        for path in self._entries():
            self._discard(path)
            removed += 1
        return removed

    def _enforce_bound(self) -> None:
        if self.max_entries is None:
            return
        entries = sorted(
            self._entries(),
            key=lambda p: (p.stat().st_mtime, p.name),
        )
        while len(entries) > self.max_entries:
            self._discard(entries.pop(0))
            self.evictions += 1

    @staticmethod
    def _touch(path: Path) -> None:
        try:
            os.utime(path, None)
        except OSError:
            pass

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass
