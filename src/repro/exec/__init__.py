"""Sweep execution engine: parallel fan-out plus memoized result cache.

The paper's evaluation is an embarrassingly parallel set of independent
(policy × workload-mix) simulations.  This package supplies the hot-path
machinery every sweep entry point (``repro.analysis.sweep``, the CLI,
the benchmark harness, the examples) now shares:

* :class:`SweepJob` / :func:`execute_job` — picklable job specs with
  content-addressed keys, resolved through a policy :mod:`registry
  <repro.exec.registry>`;
* :class:`ResultCache` — on-disk memoization of finished results;
* :class:`SweepExecutor` — ordered, process-pool fan-out with a
  deterministic ``jobs=1`` in-process fast path;
* :class:`ExecStats` — observable jobs/hits/wall-clock/percentiles.
"""

from repro.exec.cache import CACHE_SCHEMA, ResultCache
from repro.exec.envelope import (
    JobEnvelope,
    ObsSnapshot,
    execute_job_enveloped,
    merge_envelopes,
    worker_token,
)
from repro.exec.executor import SweepExecutor
from repro.exec.jobs import SweepJob, execute_job, fingerprint
from repro.exec.registry import (
    canonical_policy_name,
    policy_name_of,
    register_policy,
    registered_policies,
    resolve_policy,
)
from repro.exec.stats import ExecStats

__all__ = [
    "CACHE_SCHEMA",
    "ExecStats",
    "JobEnvelope",
    "ObsSnapshot",
    "ResultCache",
    "SweepExecutor",
    "SweepJob",
    "canonical_policy_name",
    "execute_job",
    "execute_job_enveloped",
    "fingerprint",
    "merge_envelopes",
    "worker_token",
    "policy_name_of",
    "register_policy",
    "registered_policies",
    "resolve_policy",
]
