"""Parallel, memoizing sweep execution.

:class:`SweepExecutor` turns a list of :class:`~repro.exec.jobs.SweepJob`
specs into an *ordered* list of :class:`~repro.core.system.SystemResult`:

* results come back in job order regardless of completion order, so
  downstream summaries are byte-identical between serial and parallel
  runs;
* ``jobs=1`` executes in-process — no pool, no pickling — keeping unit
  tests deterministic and debuggable;
* ``jobs>1`` fans cache misses out over a
  :class:`concurrent.futures.ProcessPoolExecutor`;
* an attached :class:`~repro.exec.cache.ResultCache` short-circuits any
  job it has seen before and memoizes every fresh result.

The executor keeps two stat records: ``last_stats`` for the most recent
:meth:`run` and ``stats`` accumulated over the executor's lifetime (one
multi-policy comparison issues several runs).

The executor is generic over job types: anything picklable with
``run()``, ``key()``, and the display attributes ``policy`` /
``mix_name`` / ``total_cycles`` / ``kwargs`` flows through — a
:class:`~repro.exec.jobs.SweepJob` or a fleet
:class:`~repro.cluster.shard.FleetShardJob`.

By default each ``jobs>1`` :meth:`run` spins up a fresh process pool.
Callers that issue *many* small runs (the fleet simulator executes one
per scheduling round) should use the executor as a context manager::

    with SweepExecutor(jobs=8, cache=cache) as executor:
        for round in rounds:
            executor.run(shards)        # one persistent pool throughout

which keeps a single pool alive until exit — identical results, without
re-spawning worker processes every round.

With ``capture=True`` each executed job also instantiates a bounded
recorder/registry/profiler *inside the worker* (see
:mod:`repro.exec.envelope`) and the executor keeps the returned
:class:`~repro.exec.envelope.JobEnvelope` list — job-ordered, cache
hits included — in :attr:`last_envelopes` for the caller to merge into
its own observability sinks.  Captures ride along in the result cache,
so a cache hit replays the original worker's events.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from typing import List, Optional, Sequence

from repro.core.system import SystemResult
from repro.errors import ConfigError
from repro.exec.cache import ResultCache
from repro.exec.envelope import JobEnvelope, execute_job_enveloped
from repro.exec.jobs import SweepJob, execute_job_timed
from repro.exec.stats import ExecStats
from repro.fastpath import resolve_kernel_backend


class SweepExecutor:
    """Run sweep jobs over ``jobs`` worker processes with memoization."""

    def __init__(self, jobs: int = 1, cache: Optional[ResultCache] = None,
                 tracer=None, metrics=None, log=None,
                 capture: bool = False) -> None:
        """``tracer`` (a :class:`repro.trace.TraceRecorder`) receives one
        ``cache`` hit/miss record per job plus one ``job`` span per
        executed job.  Exec-layer timestamps/durations are wall-clock
        seconds relative to :meth:`run` entry, not GPU cycles.

        ``metrics`` (a telemetry registry) receives each run's
        :class:`ExecStats` — job/cache counters plus the per-job seconds
        histogram — via :func:`repro.telemetry.fold_exec_stats`.  Metrics
        stay executor-level: registries never enter job kwargs, which
        must remain picklable and fingerprint-stable.

        ``log`` (a :class:`repro.obslog.ObsLogger`) receives one info
        summary per :meth:`run` and one debug record per executed job.

        ``capture`` turns on worker-side observability (see the module
        docstring); :meth:`run` can override it per call."""
        if jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        self.tracer = tracer
        self.metrics = metrics
        self.log = log
        self.capture = capture
        self.stats = ExecStats(workers=jobs)
        self.last_stats = ExecStats(workers=jobs)
        #: Per-job envelopes from the most recent capturing run (empty
        #: after a non-capturing run).  Job-ordered; cache hits carry
        #: their memoized capture with ``cached=True``.
        self.last_envelopes: List[Optional[JobEnvelope]] = []
        self._pool: Optional[ProcessPoolExecutor] = None

    # ------------------------------------------------------------------
    # Persistent-pool lifecycle (optional; run() works without it)
    # ------------------------------------------------------------------
    def __enter__(self) -> "SweepExecutor":
        if self.jobs > 1 and self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Shut down the persistent pool, if one is open."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def run(self, sweep_jobs: Sequence[SweepJob],
            capture: Optional[bool] = None) -> List[SystemResult]:
        """Execute every job; results are returned in job order."""
        if capture is None:
            capture = self.capture
        start = time.perf_counter()
        stats = ExecStats(jobs_total=len(sweep_jobs), workers=self.jobs)
        # Record the backend the jobs resolve to, so timing footers flag
        # cross-backend comparisons; a job kwarg overrides the process
        # default, and disagreeing jobs mark the whole run "mixed".
        default_backend = resolve_kernel_backend()
        backends = {
            str(dict(job.kwargs).get("kernel_backend") or default_backend)
            for job in sweep_jobs
        }
        stats.kernel_backend = (
            backends.pop() if len(backends) == 1 else
            "mixed" if backends else default_backend
        )
        results: List[Optional[SystemResult]] = [None] * len(sweep_jobs)
        envelopes: List[Optional[JobEnvelope]] = [None] * len(sweep_jobs)

        pending: List[int] = []
        evictions_before = self.cache.evictions if self.cache is not None else 0
        schema_before = (
            self.cache.schema_evictions if self.cache is not None else 0
        )
        for index, job in enumerate(sweep_jobs):
            cached = None
            if self.cache is not None:
                if capture:
                    entry = self.cache.get_envelope(job.key(), require_obs=True)
                    if entry is not None:
                        cached = entry["result"]
                        origin = entry.get("origin") or (0, "")
                        envelopes[index] = JobEnvelope(
                            result=cached, seconds=0.0,
                            pid=origin[0], worker=origin[1],
                            obs=entry["obs"], cached=True,
                        )
                else:
                    cached = self.cache.get(job.key())
            if cached is not None:
                results[index] = cached
                stats.cache_hits += 1
            else:
                pending.append(index)
            if self.tracer is not None:
                self.tracer.emit(
                    "cache", "hit" if cached is not None else "miss",
                    time=time.perf_counter() - start,
                    policy=job.policy, mix=job.mix_name,
                )

        if pending and self.jobs == 1:
            for index in pending:
                if capture:
                    envelope = execute_job_enveloped(sweep_jobs[index], True)
                    result, seconds = envelope.result, envelope.seconds
                    envelopes[index] = envelope
                else:
                    result, seconds = execute_job_timed(sweep_jobs[index])
                results[index] = result
                stats.job_seconds.append(seconds)
                self._trace_job(sweep_jobs[index], seconds, start,
                                envelopes[index])
        elif pending:
            if self._pool is not None:
                self._run_pool(self._pool, sweep_jobs, pending, results,
                               envelopes, stats, start, capture)
            else:
                workers = min(self.jobs, len(pending))
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    self._run_pool(pool, sweep_jobs, pending, results,
                                   envelopes, stats, start, capture)

        if self.cache is not None:
            for index in pending:
                envelope = envelopes[index]
                if capture and envelope is not None:
                    self.cache.put(
                        sweep_jobs[index].key(), results[index],
                        obs=envelope.obs,
                        origin=(envelope.pid, envelope.worker),
                    )
                else:
                    self.cache.put(sweep_jobs[index].key(), results[index])
            stats.cache_evictions = self.cache.evictions - evictions_before
            stats.cache_schema_evictions = (
                self.cache.schema_evictions - schema_before
            )

        stats.jobs_run = len(pending)
        stats.wall_seconds = time.perf_counter() - start
        self.last_stats = stats
        self.last_envelopes = envelopes if capture else []
        self.stats.merge(stats)
        if self.metrics is not None:
            from repro.telemetry.bridge import fold_exec_stats

            fold_exec_stats(self.metrics, stats)
        if self.log is not None:
            for index in pending:
                envelope = envelopes[index]
                self.log.debug(
                    "exec.job", job_id=index,
                    policy=sweep_jobs[index].policy,
                    mix=sweep_jobs[index].mix_name,
                    seconds=envelope.seconds if envelope is not None else None,
                    worker_pid=envelope.pid if envelope is not None else None,
                )
            self.log.info(
                "exec.run", jobs=stats.jobs_total, run=stats.jobs_run,
                cache_hits=stats.cache_hits, workers=stats.workers,
                wall_seconds=round(stats.wall_seconds, 6),
                backend=stats.kernel_backend or None,
            )
        return results  # type: ignore[return-value]

    def _run_pool(self, pool: ProcessPoolExecutor, sweep_jobs, pending,
                  results, envelopes, stats: ExecStats, start: float,
                  capture: bool) -> None:
        """Fan ``pending`` out over ``pool``; fill ``results`` in place."""
        if capture:
            futures = {
                pool.submit(execute_job_enveloped, sweep_jobs[index], True):
                    index
                for index in pending
            }
        else:
            futures = {
                pool.submit(execute_job_timed, sweep_jobs[index]): index
                for index in pending
            }
        done, _ = wait(futures, return_when=FIRST_EXCEPTION)
        for future in done:
            future.result()  # re-raise worker failures eagerly
        for future, index in futures.items():
            if capture:
                envelope = future.result()
                result, seconds = envelope.result, envelope.seconds
                envelopes[index] = envelope
            else:
                result, seconds = future.result()
            results[index] = result
            stats.job_seconds.append(seconds)
            self._trace_job(sweep_jobs[index], seconds, start,
                            envelopes[index])

    def _trace_job(self, job: SweepJob, seconds: float, start: float,
                   envelope: Optional[JobEnvelope] = None) -> None:
        """Emit one ``job`` span (end-anchored: completion time is known,
        in-worker start is not) for an executed job.  A captured job's
        envelope stamps the worker identity (``pid`` + ``worker`` token)
        onto the span, so post-hoc straggler attribution can group job
        spans by the process that ran them."""
        if self.tracer is None:
            return
        end = time.perf_counter() - start
        extra = {}
        if envelope is not None:
            extra = {"pid": envelope.pid, "worker": envelope.worker}
        self.tracer.emit(
            "job", f"{job.policy}:{job.mix_name}",
            time=max(0.0, end - seconds), duration=seconds,
            policy=job.policy, mix=job.mix_name, cycles=job.total_cycles,
            **extra,
        )
