"""Picklable sweep-job specs and their content-addressed fingerprints.

A :class:`SweepJob` is the unit of work of the sweep executor: one policy
evaluated on one workload mix for one horizon.  It carries only plain data
(policy *name*, benchmark abbreviations, cycles, keyword arguments), so it
crosses process boundaries freely; the policy factory is resolved from
:mod:`repro.exec.registry` inside the worker.

``SweepJob.key()`` is a stable SHA-256 fingerprint of the full spec plus
the package version — the content address under which
:class:`~repro.exec.cache.ResultCache` memoizes the simulation's
:class:`~repro.core.system.SystemResult`.  Fingerprints must not depend on
object identity or dict ordering, so :func:`fingerprint` canonicalizes
dataclasses, enums, mappings and plain objects recursively and refuses
reprs that embed memory addresses.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro import __version__
from repro.core.system import SystemResult
from repro.errors import ConfigError
from repro.exec.registry import canonical_policy_name, resolve_policy
from repro.workloads.mixes import build_mix


def fingerprint(value: Any) -> str:
    """A deterministic, process-independent token for ``value``.

    Handles the argument shapes sweeps actually pass (primitives,
    sequences, mappings, enums, dataclasses such as ``QoSTarget`` /
    ``GPUConfig``, and plain config objects such as ``EnergyModel`` whose
    ``__dict__`` holds the knobs).  Raises :class:`ConfigError` for values
    whose only description would embed a memory address, since those would
    silently break cache reuse across runs.
    """
    if value is None or isinstance(value, (bool, int, str, bytes)):
        return repr(value)
    if isinstance(value, float):
        return value.hex()
    if isinstance(value, enum.Enum):
        return f"{type(value).__qualname__}.{value.name}"
    if isinstance(value, (list, tuple)):
        inner = ",".join(fingerprint(v) for v in value)
        return f"[{inner}]"
    if isinstance(value, (set, frozenset)):
        inner = ",".join(sorted(fingerprint(v) for v in value))
        return f"{{{inner}}}"
    if isinstance(value, Mapping):
        inner = ",".join(
            f"{fingerprint(k)}:{fingerprint(v)}"
            for k, v in sorted(value.items(), key=lambda kv: repr(kv[0]))
        )
        return f"{{{inner}}}"
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = ",".join(
            f"{f.name}={fingerprint(getattr(value, f.name))}"
            for f in dataclasses.fields(value)
        )
        return f"{type(value).__qualname__}({fields})"
    state = getattr(value, "__dict__", None)
    if state is not None:
        fields = ",".join(
            f"{name}={fingerprint(val)}" for name, val in sorted(state.items())
        )
        return f"{type(value).__qualname__}({fields})"
    text = repr(value)
    if " at 0x" in text:
        raise ConfigError(
            f"cannot fingerprint {type(value).__qualname__}: repr embeds a "
            "memory address; give it a stable __dict__ or make it a dataclass"
        )
    return f"{type(value).__qualname__}:{text}"


@dataclass(frozen=True)
class SweepJob:
    """One (policy, mix, horizon, kwargs) simulation, ready to ship."""

    policy: str
    mix: Tuple[str, ...]
    total_cycles: int = 25_000_000
    kwargs: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if not self.policy:
            raise ConfigError("job needs a policy name")
        if not self.mix:
            raise ConfigError("job needs at least one benchmark")
        if self.total_cycles <= 0:
            raise ConfigError("total_cycles must be positive")
        # Normalize so kwarg order never changes the identity of a job.
        object.__setattr__(self, "mix", tuple(self.mix))
        object.__setattr__(
            self, "kwargs", tuple(sorted(tuple(self.kwargs), key=lambda kv: kv[0]))
        )

    @classmethod
    def build(
        cls,
        policy: str,
        mix,
        total_cycles: int = 25_000_000,
        kwargs: Optional[Mapping[str, Any]] = None,
    ) -> "SweepJob":
        """Convenience constructor taking kwargs as a mapping."""
        return cls(
            policy=policy,
            mix=tuple(mix),
            total_cycles=total_cycles,
            kwargs=tuple((kwargs or {}).items()),
        )

    @property
    def mix_name(self) -> str:
        return "_".join(self.mix)

    def kwargs_dict(self) -> Dict[str, Any]:
        return dict(self.kwargs)

    def spec(self) -> str:
        """The canonical text the cache key hashes (version-qualified)."""
        kw = ",".join(f"{name}={fingerprint(val)}" for name, val in self.kwargs)
        return (
            f"repro=={__version__};policy={canonical_policy_name(self.policy)};"
            f"mix={self.mix_name};cycles={self.total_cycles};kwargs=({kw})"
        )

    def key(self) -> str:
        """Content address: stable SHA-256 hex digest of :meth:`spec`."""
        return hashlib.sha256(self.spec().encode("utf-8")).hexdigest()

    def run(self) -> SystemResult:
        """Simulate this job to completion (in the calling process)."""
        factory = resolve_policy(self.policy)
        apps = build_mix(list(self.mix)).applications
        system = factory(apps, **self.kwargs_dict())
        return system.run(self.total_cycles, mix_name=self.mix_name)

    def run_observed(self, tracer=None, metrics=None,
                     profiler=None) -> SystemResult:
        """:meth:`run` with observability sinks threaded into the runner.

        The worker-capture hook: :func:`~repro.exec.envelope.
        execute_job_enveloped` calls this with the worker's private
        recorder/registry/profiler so the system's own instrumentation
        lands in the envelope.  Explicit ``tracer``/``metrics``/
        ``profiler`` kwargs on the job itself win — capture never
        overrides a spec.
        """
        kwargs = self.kwargs_dict()
        if tracer is not None:
            kwargs.setdefault("tracer", tracer)
        if metrics is not None:
            kwargs.setdefault("metrics", metrics)
        if profiler is not None:
            kwargs.setdefault("profiler", profiler)
        factory = resolve_policy(self.policy)
        apps = build_mix(list(self.mix)).applications
        system = factory(apps, **kwargs)
        return system.run(self.total_cycles, mix_name=self.mix_name)


def execute_job(job) -> Any:
    """Run one job to completion (the worker-side entry point).

    Generic over job types: anything with ``run()`` — a :class:`SweepJob`
    or a :class:`~repro.cluster.shard.FleetShardJob` — executes through
    the same executor machinery.
    """
    return job.run()


def execute_job_timed(job) -> Tuple[Any, float]:
    """Run one job and measure its in-worker wall-clock seconds."""
    import time

    start = time.perf_counter()
    result = execute_job(job)
    return result, time.perf_counter() - start
