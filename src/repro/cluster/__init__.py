"""Multi-GPU cluster extension (paper Section 6.6, closing discussion).

"UGPU can be utilized in multi-GPU systems to partition each GPU into
unbalanced slices, improving resource utilization ... idle resources can
then be allocated to other tasks launched by different users, thus
enhancing the utilization of cloud GPU clusters."

This subpackage builds that scenario: a :class:`~repro.cluster.node.GPUNode`
wraps one physical GPU running a slicing policy, and the
:class:`~repro.cluster.scheduler.ClusterScheduler` places tenant jobs
across nodes — either naively (first-fit) or demand-aware (pairing
memory-bound with compute-bound tenants so every node has reallocation
room).
"""

from repro.cluster.node import GPUNode, NodeResult
from repro.cluster.scheduler import ClusterResult, ClusterScheduler, PlacementPolicy

__all__ = [
    "GPUNode",
    "NodeResult",
    "ClusterScheduler",
    "ClusterResult",
    "PlacementPolicy",
]
