"""Multi-GPU cluster extension (paper Section 6.6, closing discussion).

"UGPU can be utilized in multi-GPU systems to partition each GPU into
unbalanced slices, improving resource utilization ... idle resources can
then be allocated to other tasks launched by different users, thus
enhancing the utilization of cloud GPU clusters."

This subpackage builds that scenario at two scales:

* a single rack: :class:`~repro.cluster.node.GPUNode` wraps one physical
  GPU running a slicing policy, and the
  :class:`~repro.cluster.scheduler.ClusterScheduler` places tenant jobs
  across nodes under a policy from the placement zoo
  (:mod:`repro.cluster.placement`);
* a fleet: :class:`~repro.cluster.fleet.FleetSimulator` drives hundreds
  of nodes and thousands of arriving/departing jobs through fixed
  scheduling rounds, sharding node execution across the
  :class:`~repro.exec.SweepExecutor`'s worker processes
  (:mod:`repro.cluster.shard`) with periodic cross-shard rebalancing.
"""

from repro.cluster.fleet import FleetResult, FleetSimulator
from repro.cluster.health import (
    FleetHealthMonitor,
    HealthIncident,
    HealthReport,
)
from repro.cluster.node import GPUNode, NodeResult
from repro.cluster.placement import (
    NodeView,
    PlacementPolicy,
    choose_node,
    placement_key,
)
from repro.cluster.scheduler import ClusterResult, ClusterScheduler
from repro.cluster.shard import (
    FleetShardJob,
    FleetShardResult,
    NodeShardState,
    TenantState,
)

__all__ = [
    "GPUNode",
    "NodeResult",
    "ClusterScheduler",
    "ClusterResult",
    "PlacementPolicy",
    "NodeView",
    "placement_key",
    "choose_node",
    "FleetSimulator",
    "FleetResult",
    "FleetHealthMonitor",
    "HealthIncident",
    "HealthReport",
    "FleetShardJob",
    "FleetShardResult",
    "NodeShardState",
    "TenantState",
]
