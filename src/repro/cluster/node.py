"""One physical GPU in a cluster, running a slicing policy."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.core.system import MultitaskSystem, SystemResult
from repro.errors import AllocationError
from repro.gpu.config import GPUConfig
from repro.gpu.kernel import Application
from repro.policies import BPPolicy, UGPUPolicy


@dataclass
class NodeResult:
    """Outcome of one node's multiprogram run.

    Per-app entries keep the *cluster-level* app ids the scheduler
    admitted, so a result maps back onto admit/depart bookkeeping.
    """

    node_id: int
    result: Optional[SystemResult]   #: None for an idle node
    tenants: List[str]

    @property
    def stp(self) -> float:
        return self.result.stp if self.result is not None else 0.0

    @property
    def tenant_ids(self) -> List[int]:
        """Cluster-level app ids of the tenants that ran, in placement
        order (empty for an idle node)."""
        if self.result is None:
            return []
        return [run.app_id for run in self.result.runs]

    def run_for(self, app_id: int):
        """The per-app run for one cluster-level app id."""
        if self.result is None:
            raise AllocationError(
                f"node {self.node_id} was idle: no run for app {app_id}"
            )
        for run in self.result.runs:
            if run.app_id == app_id:
                return run
        raise AllocationError(
            f"app {app_id} did not run on node {self.node_id}"
        )


class GPUNode:
    """One GPU plus the tenant applications placed on it.

    The node enforces a tenant cap (the slicing policies need a minimum
    slice per tenant: 80 SMs / 32 channels support at most 8 tenants at
    the 4-SM / 4-channel floors, and the paper's channel-status register
    tracks 4).
    """

    def __init__(self, node_id: int, config: Optional[GPUConfig] = None,
                 max_tenants: int = 4) -> None:
        if max_tenants <= 0:
            raise AllocationError("max_tenants must be positive")
        config = config if config is not None else GPUConfig()
        config.validate()
        self.node_id = node_id
        self.config = config
        self.max_tenants = max_tenants
        self.tenants: List[Application] = []

    @property
    def free_slots(self) -> int:
        return self.max_tenants - len(self.tenants)

    @property
    def is_empty(self) -> bool:
        return not self.tenants

    def place(self, app: Application) -> None:
        """Admit a tenant; raises when the node is full."""
        if self.free_slots <= 0:
            raise AllocationError(
                f"node {self.node_id} is full ({self.max_tenants} tenants)"
            )
        if any(t.app_id == app.app_id for t in self.tenants):
            raise AllocationError(
                f"app {app.app_id} is already resident on node {self.node_id}"
            )
        self.tenants.append(app)

    def remove(self, app_id: int) -> Application:
        """Release a tenant's slot (online departure); raises when the
        app id is not resident here."""
        for i, tenant in enumerate(self.tenants):
            if tenant.app_id == app_id:
                return self.tenants.pop(i)
        raise AllocationError(
            f"app {app_id} is not resident on node {self.node_id}"
        )

    def run(self, policy: Optional[Callable[..., MultitaskSystem]] = None,
            total_cycles: int = 25_000_000) -> NodeResult:
        """Run the placed tenants under ``policy`` (UGPU by default).

        ``policy`` is a factory ``policy(applications) -> system`` — a
        :mod:`repro.exec.registry` factory, a deprecated system subclass,
        or any compatible callable.

        A single-tenant node runs that tenant on the whole GPU (its NP is
        1.0 by construction); an idle node contributes nothing.
        """
        names = [t.name for t in self.tenants]
        if not self.tenants:
            return NodeResult(self.node_id, None, [])
        # Fresh clones that KEEP their cluster-level app ids (place()
        # guarantees they are unique on this node), so per-app results
        # key back to the jobs the scheduler admitted.
        apps = [t.clone() for t in self.tenants]
        if len(apps) == 1:
            # Whole-GPU run: every policy degenerates to the same thing,
            # so use the overhead-free static system.
            system = MultitaskSystem(apps, policy=BPPolicy())
        elif policy is None:
            system = MultitaskSystem(apps, policy=UGPUPolicy())
        else:
            system = policy(apps)
        result = system.run(total_cycles, mix_name="_".join(names))
        return NodeResult(self.node_id, result, names)
