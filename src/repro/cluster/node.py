"""One physical GPU in a cluster, running a slicing policy."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Type

from repro.baselines.bp import BPSystem
from repro.core.system import MultitaskSystem, SystemResult
from repro.core.ugpu import UGPUSystem
from repro.errors import AllocationError
from repro.gpu.config import GPUConfig
from repro.gpu.kernel import Application


@dataclass
class NodeResult:
    """Outcome of one node's multiprogram run."""

    node_id: int
    result: Optional[SystemResult]   #: None for an idle node
    tenants: List[str]

    @property
    def stp(self) -> float:
        return self.result.stp if self.result is not None else 0.0


class GPUNode:
    """One GPU plus the tenant applications placed on it.

    The node enforces a tenant cap (the slicing policies need a minimum
    slice per tenant: 80 SMs / 32 channels support at most 8 tenants at
    the 4-SM / 4-channel floors, and the paper's channel-status register
    tracks 4).
    """

    def __init__(self, node_id: int, config: GPUConfig = GPUConfig(),
                 max_tenants: int = 4) -> None:
        if max_tenants <= 0:
            raise AllocationError("max_tenants must be positive")
        config.validate()
        self.node_id = node_id
        self.config = config
        self.max_tenants = max_tenants
        self.tenants: List[Application] = []

    @property
    def free_slots(self) -> int:
        return self.max_tenants - len(self.tenants)

    @property
    def is_empty(self) -> bool:
        return not self.tenants

    def place(self, app: Application) -> None:
        """Admit a tenant; raises when the node is full."""
        if self.free_slots <= 0:
            raise AllocationError(
                f"node {self.node_id} is full ({self.max_tenants} tenants)"
            )
        self.tenants.append(app)

    def run(self, policy: Type[MultitaskSystem] = UGPUSystem,
            total_cycles: int = 25_000_000) -> NodeResult:
        """Run the placed tenants under ``policy`` (UGPU by default).

        A single-tenant node runs that tenant on the whole GPU (its NP is
        1.0 by construction); an idle node contributes nothing.
        """
        names = [t.name for t in self.tenants]
        if not self.tenants:
            return NodeResult(self.node_id, None, [])
        apps = [t.clone(app_id=i) for i, t in enumerate(self.tenants)]
        if len(apps) == 1:
            # Whole-GPU run: every policy degenerates to the same thing,
            # so use the overhead-free static system.
            system = BPSystem(apps)
        else:
            system = policy(apps)
        result = system.run(total_cycles, mix_name="_".join(names))
        return NodeResult(self.node_id, result, names)
