"""Fleet shard jobs: node-round execution as pure, picklable work units.

The fleet simulator advances hundreds of nodes in fixed scheduling
rounds.  Within a round nodes are independent — each executes only its
own tenants — so the coordinator partitions the active nodes into
*shards* and runs them through the :class:`~repro.exec.SweepExecutor`
exactly like sweep jobs.  Because the physics of one node never depends
on which shard it landed in, a sharded round is byte-identical to the
serial one; because a :class:`FleetShardJob` is a pure function of its
spec (plain integers and strings, no live objects), it is content-
addressable and the executor's :class:`~repro.exec.cache.ResultCache`
can memoize whole shards across rounds and runs.

Worker-side state is rebuilt, never shipped: applications come from the
Table 2 catalog via a per-process memo keyed by
``(abbr, instructions_per_kernel)`` and the execution cursor is restored
from the plain integers in :class:`TenantState`.

Per round each tenant runs on a slice of its node:

* ``slicing="mig"`` — rigid even split (``num_sms // n`` SMs and
  ``num_channels // n`` channels each; the remainder stays dark, which
  is exactly MIG's fixed-granularity waste).
* ``slicing="ugpu"`` — unbalanced split: channels are apportioned by
  each tenant's bandwidth demand-supply ratio at the even split
  (Equation 1/2) and SMs inversely, largest-remainder rounded onto the
  4-SM / 4-channel slice floors — the paper's unbalanced-slice
  construction at cluster granularity.

The slice IPC comes from the shared scalar oracle
(:meth:`~repro.gpu.performance.PerformanceModel.throughput`), so fleet
results are identical under both kernel backends by construction.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import __version__
from repro.errors import ConfigError
from repro.exec.jobs import fingerprint
from repro.gpu.config import GPUConfig
from repro.gpu.kernel import Application, Kernel
from repro.gpu.performance import PerformanceModel
from repro.workloads.benchmarks import build_application

#: Valid ``slicing`` modes (see module docstring).
SLICING_MODES = ("ugpu", "mig")

#: Minimum slice per tenant — the partition floors the paper's slicing
#: policies enforce (4 SMs / 4 channels).
SM_FLOOR = 4
CHANNEL_FLOOR = 4


@dataclass(frozen=True)
class TenantState:
    """One resident job's execution state as plain picklable data.

    ``penalty_factor`` scales this round's achieved IPC (1.0 = none);
    the coordinator sets it below 1.0 for the round after a cross-node
    migration to charge the move's warm-up cost.
    """

    job_id: int
    abbr: str
    instructions_per_kernel: int
    kernel_index: int = 0
    kernel_instructions_done: int = 0
    remaining_budget: Optional[int] = None
    penalty_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.instructions_per_kernel <= 0:
            raise ConfigError("instructions_per_kernel must be positive")
        if self.kernel_index < 0 or self.kernel_instructions_done < 0:
            raise ConfigError("tenant progress cursors must be >= 0")
        if self.remaining_budget is not None and self.remaining_budget <= 0:
            raise ConfigError("remaining_budget must be positive or None")
        if not 0.0 <= self.penalty_factor <= 1.0:
            raise ConfigError("penalty_factor must be in [0, 1]")


@dataclass(frozen=True)
class NodeShardState:
    """One node's tenants at a round boundary (placement order)."""

    node_id: int
    tenants: Tuple[TenantState, ...]


@dataclass(frozen=True)
class TenantRoundOutcome:
    """What one tenant did during one round."""

    job_id: int
    retired: int                      #: instructions retired this round
    dram_bytes: float                 #: DRAM traffic generated
    kernel_index: int                 #: cursor after the round
    kernel_instructions_done: int
    remaining_budget: Optional[int]   #: 0 and departed=True at retirement
    departed: bool
    active_cycles: int                #: cycles before budget retirement


@dataclass(frozen=True)
class NodeRoundOutcome:
    node_id: int
    tenants: Tuple[TenantRoundOutcome, ...]

    @property
    def instructions(self) -> int:
        return sum(t.retired for t in self.tenants)

    @property
    def dram_bytes(self) -> float:
        return sum(t.dram_bytes for t in self.tenants)


@dataclass(frozen=True)
class FleetShardResult:
    """Outcome of one shard: node outcomes in shard order."""

    nodes: Tuple[NodeRoundOutcome, ...]


# ----------------------------------------------------------------------
# Worker-side memos (pure caches keyed by content, safe per process)
# ----------------------------------------------------------------------
_APP_TEMPLATES: Dict[Tuple[str, int], Application] = {}
_MODELS: Dict[str, PerformanceModel] = {}


def _template(abbr: str, instructions_per_kernel: int) -> Application:
    key = (abbr, instructions_per_kernel)
    app = _APP_TEMPLATES.get(key)
    if app is None:
        app = build_application(
            abbr, app_id=0, instructions_per_kernel=instructions_per_kernel
        )
        _APP_TEMPLATES[key] = app
    return app


def _model_for(config: GPUConfig) -> PerformanceModel:
    key = fingerprint(config)
    model = _MODELS.get(key)
    if model is None:
        model = PerformanceModel(config)
        _MODELS[key] = model
    return model


def _restore(tenant: TenantState) -> Application:
    """Rebuild the tenant's Application at its recorded cursor."""
    template = _template(tenant.abbr, tenant.instructions_per_kernel)
    app = Application(tenant.job_id, template.name, template.kernels)
    if tenant.kernel_index >= len(app.kernels):
        raise ConfigError(
            f"job {tenant.job_id}: kernel_index {tenant.kernel_index} out of "
            f"range for {tenant.abbr} ({len(app.kernels)} kernels)"
        )
    app.progress.kernel_index = tenant.kernel_index
    app.progress.instructions_done = tenant.kernel_instructions_done
    return app


# ----------------------------------------------------------------------
# Slicing
# ----------------------------------------------------------------------
def apportion(total: int, weights: Sequence[float], floor: int) -> List[int]:
    """Largest-remainder apportionment of ``total`` units over
    ``weights`` with a per-share ``floor``.  Deterministic: remainder
    ties break to the lowest index."""
    n = len(weights)
    if n == 0:
        return []
    if total < floor * n:
        raise ConfigError(
            f"cannot apportion {total} units over {n} shares at floor {floor}"
        )
    spare = total - floor * n
    weight_sum = sum(weights)
    if weight_sum <= 0:
        weights = [1.0] * n
        weight_sum = float(n)
    quotas = [spare * w / weight_sum for w in weights]
    shares = [int(q) for q in quotas]
    leftover = spare - sum(shares)
    order = sorted(range(n), key=lambda i: (-(quotas[i] - shares[i]), i))
    for i in order[:leftover]:
        shares[i] += 1
    return [floor + s for s in shares]


def slice_node(model: PerformanceModel, config: GPUConfig,
               kernels: Sequence[Kernel],
               slicing: str) -> List[Tuple[int, int]]:
    """Per-tenant ``(sms, channels)`` slices for one round.

    A single tenant always gets the whole GPU.  ``mig`` carves rigid
    even slices and leaves the remainder dark; ``ugpu`` apportions
    channels by bandwidth demand (and SMs inversely) so complementary
    tenants trade the resources they cannot use.
    """
    n = len(kernels)
    if n == 1:
        return [(config.num_sms, config.num_channels)]
    if slicing == "mig":
        sms = config.num_sms // n
        channels = config.num_channels // n
        if sms < SM_FLOOR or channels < CHANNEL_FLOOR:
            raise ConfigError(
                f"{n} tenants break the {SM_FLOOR}-SM/{CHANNEL_FLOOR}-channel "
                "slice floors"
            )
        return [(sms, channels)] * n
    # ugpu: demand-supply ratio at the even split classifies each tenant
    # (the same Equation 1/2 boundary the profiler uses); clamp so one
    # pathological kernel cannot starve the rest.
    even_sms = max(SM_FLOOR, config.num_sms // n)
    even_channels = max(CHANNEL_FLOOR, config.num_channels // n)
    demand = [
        min(4.0, max(0.25, model.throughput(
            k, even_sms, even_channels).demand_supply_ratio))
        for k in kernels
    ]
    channels = apportion(config.num_channels, demand, CHANNEL_FLOOR)
    sms = apportion(config.num_sms, [1.0 / d for d in demand], SM_FLOOR)
    return list(zip(sms, channels))


# ----------------------------------------------------------------------
# The shard job
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FleetShardJob:
    """One round of execution for a shard of nodes, ready to ship.

    The cache key covers only what determines the physics — slicing
    mode, round span, GPU config and the tenant states — so identical
    node states hit the cache across rounds and runs.  ``label`` is a
    display string for trace/stats output and is excluded from the key.
    """

    nodes: Tuple[NodeShardState, ...]
    round_cycles: int
    slicing: str = "ugpu"
    config: GPUConfig = field(default_factory=GPUConfig)
    label: str = "fleet"
    #: Executor-facing kwargs slot (kept empty; present so the executor's
    #: backend bookkeeping treats shard jobs like sweep jobs).
    kwargs: Tuple = ()

    #: Display attributes the executor's trace/stats plumbing reads.
    policy = "fleet-shard"

    def __post_init__(self) -> None:
        if self.round_cycles <= 0:
            raise ConfigError("round_cycles must be positive")
        if self.slicing not in SLICING_MODES:
            raise ConfigError(
                f"unknown slicing {self.slicing!r}; options: "
                f"{', '.join(SLICING_MODES)}"
            )
        object.__setattr__(self, "nodes", tuple(self.nodes))

    @property
    def mix_name(self) -> str:
        return self.label

    @property
    def total_cycles(self) -> int:
        return self.round_cycles

    def spec(self) -> str:
        """Canonical text the cache key hashes (version-qualified)."""
        return (
            f"repro=={__version__};fleet-shard;slicing={self.slicing};"
            f"cycles={self.round_cycles};config={fingerprint(self.config)};"
            f"nodes={fingerprint(self.nodes)}"
        )

    def key(self) -> str:
        return hashlib.sha256(self.spec().encode("utf-8")).hexdigest()

    def run(self) -> FleetShardResult:
        """Execute every node in the shard (worker-side entry point)."""
        model = _model_for(self.config)
        return FleetShardResult(nodes=tuple(
            _run_node(model, self.config, node, self.round_cycles,
                      self.slicing)
            for node in self.nodes
        ))

    def run_observed(self, tracer=None, metrics=None,
                     profiler=None) -> FleetShardResult:
        """:meth:`run` with worker-side observability around each node.

        The physics path is untouched — :func:`_run_node` stays pure;
        instrumentation wraps it.  Trace timestamps are *round-relative*
        cycles (node spans start at 0); the orchestrator re-anchors them
        at the round's start cycle when it absorbs the envelope.  Event
        and metric content depends only on the node/tenant structure,
        never on worker identity or wall time, so serial and sharded
        runs produce identical merged aggregates.
        """
        model = _model_for(self.config)
        if metrics is not None:
            from repro.telemetry import names as _names

            m_node_rounds = _names.worker_node_rounds_total(metrics)
            m_tenant_rounds = _names.worker_tenant_rounds_total(metrics)
            m_instructions = _names.worker_instructions_total(metrics)
            m_dram = _names.worker_dram_bytes_total(metrics)
            m_departures = _names.worker_departures_total(metrics)
            m_active = _names.worker_active_cycles_total(metrics)
        outcomes = []
        span = float(self.round_cycles)
        for node in self.nodes:
            if profiler is not None:
                profiler.begin("worker.node")
            outcome = _run_node(
                model, self.config, node, self.round_cycles, self.slicing
            )
            if profiler is not None:
                profiler.end("worker.node")
            outcomes.append(outcome)
            if tracer is not None:
                tracer.emit(
                    "node", f"node{node.node_id}",
                    time=0.0, duration=span,
                    node=node.node_id,
                    tenants=len(outcome.tenants),
                    instructions=outcome.instructions,
                    dram_bytes=outcome.dram_bytes,
                )
                by_job = {t.job_id: t for t in node.tenants}
                for tenant in outcome.tenants:
                    tracer.emit(
                        "node", by_job[tenant.job_id].abbr,
                        time=0.0, duration=float(tenant.active_cycles),
                        node=node.node_id,
                        job_id=tenant.job_id,
                        benchmark=by_job[tenant.job_id].abbr,
                        retired=tenant.retired,
                        departed=tenant.departed,
                    )
            if metrics is not None:
                m_node_rounds.inc()
                m_instructions.inc(float(outcome.instructions))
                m_dram.inc(float(outcome.dram_bytes))
                by_job = {t.job_id: t for t in node.tenants}
                for tenant in outcome.tenants:
                    m_tenant_rounds.labels(
                        benchmark=by_job[tenant.job_id].abbr
                    ).inc()
                    m_active.inc(float(tenant.active_cycles))
                    if tenant.departed:
                        m_departures.inc()
        return FleetShardResult(nodes=tuple(outcomes))


def _run_node(model: PerformanceModel, config: GPUConfig,
              node: NodeShardState, span: int,
              slicing: str) -> NodeRoundOutcome:
    if not node.tenants:
        return NodeRoundOutcome(node.node_id, ())
    apps = [_restore(t) for t in node.tenants]
    slices = slice_node(
        model, config, [a.current_kernel for a in apps], slicing
    )
    outcomes = []
    for tenant, app, (sms, channels) in zip(node.tenants, apps, slices):
        throughput = model.throughput(app.current_kernel, sms, channels)
        ipc = throughput.ipc * tenant.penalty_factor
        retired = int(ipc * span)
        active = span
        remaining = tenant.remaining_budget
        departed = False
        if remaining is not None and 0 < remaining <= retired:
            # The budget retires mid-round: the job departs at the cycle
            # its last instruction lands; its slice idles to the boundary.
            departed = True
            active = min(span, int(math.ceil(remaining / ipc)))
            retired = remaining
            remaining = 0
        elif remaining is not None:
            remaining -= retired
        app.advance(retired)
        outcomes.append(TenantRoundOutcome(
            job_id=tenant.job_id,
            retired=retired,
            dram_bytes=(
                throughput.dram_bytes_per_cycle
                * tenant.penalty_factor * active
            ),
            kernel_index=app.progress.kernel_index,
            kernel_instructions_done=app.progress.instructions_done,
            remaining_budget=remaining,
            departed=departed,
            active_cycles=active,
        ))
    return NodeRoundOutcome(node.node_id, tuple(outcomes))
