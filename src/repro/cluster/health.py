"""Fleet health monitoring over the merged observability streams.

A fleet that *finishes* is not necessarily a fleet that is *well*: one
worker can take 10x the round median (a straggler pinning the round
barrier), the wait queue can climb monotonically while the placement
policy thrashes, and the shard cache can silently stop hitting after a
config drift.  :class:`FleetHealthMonitor` watches for exactly those
three failure shapes at round boundaries, using the same merged
numbers the telemetry registry exports — so what it alarms on is what
an operator can also see on a dashboard.

Detectors
---------

``straggler``
    The slowest worker job of a round took at least
    ``straggler_factor`` times the round's median wall time (and at
    least ``straggler_min_seconds``, so microsecond noise on tiny
    rounds never alarms).  Needs >= 3 job samples for a meaningful
    median.
``wait_stall``
    Wait-queue depth was monotonically non-decreasing over the last
    ``stall_rounds`` rounds with a net increase and a non-empty queue —
    arrivals are outpacing admissions with no sign of recovery.
``cache_collapse``
    The shard cache's hit rate over the last ``cache_window`` rounds
    fell to ``cache_floor`` or below after the run had established a
    baseline rate of at least ``cache_baseline`` — memoization stopped
    working mid-run.

Each incident is surfaced three ways, matching the issue contract: a
warning-level obslog record, a ``health``-category trace event, and the
``repro_health_*`` telemetry families.  All sinks default to ``None``
(zero-overhead hooks); the monitor itself is pure bookkeeping — no
clocks, no I/O — so detection is deterministic and unit-testable with
synthetic round feeds.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigError

#: Incident kinds, in detector order.
KIND_STRAGGLER = "straggler"
KIND_WAIT_STALL = "wait_stall"
KIND_CACHE_COLLAPSE = "cache_collapse"


@dataclass(frozen=True)
class HealthIncident:
    """One detected anomaly, anchored to the round that tripped it."""

    kind: str
    round_index: int
    detail: str
    value: float = 0.0


@dataclass
class HealthReport:
    """What the monitor saw over a whole run."""

    rounds: int = 0
    incidents: Tuple[HealthIncident, ...] = ()

    @property
    def healthy(self) -> bool:
        return not self.incidents

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for incident in self.incidents:
            out[incident.kind] = out.get(incident.kind, 0) + 1
        return out

    def format(self) -> str:
        """The ``health`` block ``repro fleet --health`` prints."""
        if self.healthy:
            return f"health: ok ({self.rounds} rounds, no incidents)"
        counts = self.counts()
        summary = ", ".join(
            f"{kind} x{count}" for kind, count in sorted(counts.items())
        )
        lines = [f"health: {len(self.incidents)} incidents ({summary})"]
        for incident in self.incidents:
            lines.append(
                f"  [{incident.kind}] round {incident.round_index}: "
                f"{incident.detail}"
            )
        return "\n".join(lines)


class FleetHealthMonitor:
    """Round-boundary anomaly detection over merged fleet metrics.

    Feed it one :meth:`observe_round` call per scheduling round; read
    the verdict with :meth:`report`.  Thresholds are constructor knobs
    so tests (and operators) can tighten or relax each detector.
    """

    def __init__(
        self,
        *,
        straggler_factor: float = 4.0,
        straggler_min_seconds: float = 0.05,
        stall_rounds: int = 5,
        cache_window: int = 8,
        cache_floor: float = 0.05,
        cache_baseline: float = 0.5,
        metrics=None,
        log=None,
        tracer=None,
    ) -> None:
        if straggler_factor <= 1.0:
            raise ConfigError(
                f"straggler_factor must be > 1, got {straggler_factor}"
            )
        if straggler_min_seconds < 0:
            raise ConfigError("straggler_min_seconds cannot be negative")
        if stall_rounds < 2:
            raise ConfigError(f"stall_rounds must be >= 2, got {stall_rounds}")
        if cache_window < 1:
            raise ConfigError(f"cache_window must be >= 1, got {cache_window}")
        if not 0.0 <= cache_floor < cache_baseline <= 1.0:
            raise ConfigError(
                "need 0 <= cache_floor < cache_baseline <= 1, got "
                f"floor={cache_floor} baseline={cache_baseline}"
            )
        self.straggler_factor = straggler_factor
        self.straggler_min_seconds = straggler_min_seconds
        self.stall_rounds = stall_rounds
        self.cache_window = cache_window
        self.cache_floor = cache_floor
        self.cache_baseline = cache_baseline
        self.log = log
        self.tracer = tracer
        self.metrics = metrics
        if metrics is not None:
            from repro.telemetry import names as _names

            self._m_incidents = _names.health_incidents_total(metrics)
            self._m_straggler = _names.health_straggler_ratio(metrics)
            self._m_stall = _names.health_wait_stall_rounds(metrics)
            self._m_cache = _names.health_cache_hit_rate(metrics)
        #: Correlation ID stamped onto trace/log emissions; the fleet
        #: simulator fills it in when the monitor is attached to a run.
        self.run_id: str = ""
        self.rounds = 0
        self.incidents: List[HealthIncident] = []
        #: Last stall_rounds+1 wait depths (the window needs k deltas).
        self._depths: deque = deque(maxlen=stall_rounds + 1)
        #: (hits, lookups) per round over the cache window.
        self._cache_rounds: deque = deque(maxlen=cache_window)
        self._cache_hits_total = 0
        self._cache_lookups_total = 0
        self._baseline_seen = False

    # ------------------------------------------------------------------
    def _fire(self, kind: str, round_index: int, now: float,
              detail: str, value: float) -> None:
        incident = HealthIncident(
            kind=kind, round_index=round_index, detail=detail, value=value
        )
        self.incidents.append(incident)
        if self.log is not None:
            self.log.warning(
                f"health.{kind}", round=round_index,
                detail=detail, value=round(value, 6),
                run_id=self.run_id or None,
            )
        if self.tracer is not None:
            extra = {"round": round_index, "detail": detail, "value": value}
            if self.run_id:
                extra["run_id"] = self.run_id
            self.tracer.emit("health", kind, time=float(now), **extra)
        if self.metrics is not None:
            self._m_incidents.labels(kind=kind).inc()

    # ------------------------------------------------------------------
    def observe_round(
        self,
        round_index: int,
        *,
        now: float = 0.0,
        job_seconds: Sequence[float] = (),
        wait_depth: int = 0,
        cache_hits: int = 0,
        cache_lookups: int = 0,
    ) -> List[HealthIncident]:
        """Digest one round; returns incidents this round tripped.

        ``job_seconds`` are the round's per-worker-job wall times (the
        executor's ``last_stats.job_seconds``); ``cache_hits`` /
        ``cache_lookups`` are the round's shard-cache numbers.
        """
        self.rounds += 1
        before = len(self.incidents)

        # --- straggler: worst job vs round median -----------------------
        samples = sorted(float(s) for s in job_seconds)
        if len(samples) >= 3:
            median = samples[len(samples) // 2]
            worst = samples[-1]
            ratio = worst / median if median > 0 else 0.0
            if self.metrics is not None:
                self._m_straggler.set(ratio)
            if (
                median > 0
                and worst >= self.straggler_min_seconds
                and ratio >= self.straggler_factor
            ):
                self._fire(
                    KIND_STRAGGLER, round_index, now,
                    f"slowest worker job {worst * 1e3:.1f}ms vs round "
                    f"median {median * 1e3:.1f}ms ({ratio:.1f}x)",
                    ratio,
                )

        # --- wait-queue stall: monotone rise over the window ------------
        self._depths.append(int(wait_depth))
        if len(self._depths) == self._depths.maxlen:
            depths = list(self._depths)
            rising = all(b >= a for a, b in zip(depths, depths[1:]))
            if rising and depths[-1] > depths[0] and depths[-1] > 0:
                if self.metrics is not None:
                    self._m_stall.set(self.stall_rounds)
                self._fire(
                    KIND_WAIT_STALL, round_index, now,
                    f"wait-queue depth rose {depths[0]} -> {depths[-1]} "
                    f"over {self.stall_rounds} rounds without draining",
                    float(depths[-1] - depths[0]),
                )
                # Re-arm: a persistent stall alarms once per window, not
                # once per round.
                self._depths.clear()
        if self.metrics is not None and len(self._depths) >= 2:
            depths = list(self._depths)
            streak = 0
            for a, b in zip(depths, depths[1:]):
                streak = streak + 1 if b >= a else 0
            self._m_stall.set(streak)

        # --- cache collapse: windowed rate vs established baseline ------
        self._cache_rounds.append((int(cache_hits), int(cache_lookups)))
        self._cache_hits_total += int(cache_hits)
        self._cache_lookups_total += int(cache_lookups)
        window_hits = sum(h for h, _ in self._cache_rounds)
        window_lookups = sum(n for _, n in self._cache_rounds)
        window_rate = (
            window_hits / window_lookups if window_lookups else 0.0
        )
        if self.metrics is not None and window_lookups:
            self._m_cache.set(window_rate)
        baseline_rate = (
            self._cache_hits_total / self._cache_lookups_total
            if self._cache_lookups_total else 0.0
        )
        if (
            not self._baseline_seen
            and self._cache_lookups_total >= self.cache_window
            and baseline_rate >= self.cache_baseline
        ):
            self._baseline_seen = True
        if (
            self._baseline_seen
            and len(self._cache_rounds) == self.cache_window
            and window_lookups >= self.cache_window
            and window_rate <= self.cache_floor
        ):
            self._fire(
                KIND_CACHE_COLLAPSE, round_index, now,
                f"shard-cache hit rate fell to {window_rate:.0%} over the "
                f"last {self.cache_window} rounds (run baseline "
                f"{baseline_rate:.0%})",
                window_rate,
            )
            # Re-arm on a fresh window; the baseline stays established.
            self._cache_rounds.clear()

        return self.incidents[before:]

    def report(self) -> HealthReport:
        return HealthReport(
            rounds=self.rounds, incidents=tuple(self.incidents)
        )
