"""The placement-policy zoo: one chooser for every cluster scheduler.

Each policy is a deterministic preference ordering over the nodes that
still have a free slot, evaluated per arriving job (an open system sees
jobs one at a time; batch placement degenerates to back-to-back
arrivals).  The orderings are grounded in the related work the fleet
simulator compares against (PAPERS.md):

* ``FIRST_FIT`` — lowest node id with a free slot.  The class-blind
  baseline every bin-packing paper measures against.
* ``DEMAND_AWARE`` — prefer a node already holding an opposite-class
  tenant (the paper's cloud-utilization argument: a node mixing
  memory-bound and compute-bound tenants has reallocation room), then an
  empty node, then best-fit.
* ``LEAST_FRAGMENTED`` — best-fit bin packing with a class-mix
  tie-break: the fullest node that still has a slot, preferring nodes
  the arrival complements.  This is :meth:`ClusterScheduler.admit`'s
  historical ordering, unchanged.
* ``FRAG_AWARE`` — the online fragmentation-aware scheduler of Ting et
  al. (GPU cluster scheduling under fragmentation-aware gradient
  descent): class-blind best-fit that refuses to open an empty node
  while any partial node has room, keeping whole nodes free for large
  future arrivals; the fleet simulator pairs it with a periodic
  defragmentation pass that drains nearly-empty nodes.
* ``CONSOLIDATE`` — the throughput+energy manager of Saraha et al.
  (dynamic MIG management for inference serving): pack active nodes
  first so idle nodes can power down, with a class-mix tie-break for
  throughput; the fleet simulator pairs it with an energy-scored
  consolidation pass (migration joules vs. static-power savings,
  :mod:`repro.metrics.energy`).

Every ordering ends with the node id, so placement is deterministic and
independent of dict/iteration order — a requirement for the sharded
fleet runs being byte-identical to serial ones.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.errors import ConfigError


class PlacementPolicy(enum.Enum):
    """How tenants are assigned to nodes."""

    FIRST_FIT = "first_fit"
    DEMAND_AWARE = "demand_aware"
    LEAST_FRAGMENTED = "least_fragmented"
    FRAG_AWARE = "frag_aware"
    CONSOLIDATE = "consolidate"

    @classmethod
    def parse(cls, value) -> "PlacementPolicy":
        """Coerce a policy name (CLI string) or enum member."""
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value))
        except ValueError:
            options = ", ".join(p.value for p in cls)
            raise ConfigError(
                f"unknown placement policy {value!r}; options: {options}"
            ) from None


@dataclass(frozen=True)
class NodeView:
    """What a placement policy may see of one node: occupancy and the
    resident tenants' classes (True = memory-bound), never identities."""

    node_id: int
    capacity: int
    free_slots: int
    tenant_classes: Tuple[bool, ...] = ()

    @property
    def is_empty(self) -> bool:
        return not self.tenant_classes

    def complements(self, job_is_memory_bound: bool) -> bool:
        """Would the arrival improve (or keep) the node's class mix?
        An empty node always complements."""
        if self.is_empty:
            return True
        return any(c != job_is_memory_bound for c in self.tenant_classes)

    def has_opposite(self, job_is_memory_bound: bool) -> bool:
        return any(c != job_is_memory_bound for c in self.tenant_classes)


def placement_key(policy: PlacementPolicy, view: NodeView,
                  job_is_memory_bound: bool) -> tuple:
    """The sort key (lower is better) ``policy`` assigns to ``view`` for
    this arrival.  Only called for nodes with a free slot."""
    if policy is PlacementPolicy.FIRST_FIT:
        return (view.node_id,)
    if policy is PlacementPolicy.DEMAND_AWARE:
        # Opposite-class resident first (reallocation room), then a fresh
        # node, then the fullest compatible one.
        rank = (0 if view.has_opposite(job_is_memory_bound)
                else 1 if view.is_empty else 2)
        return (rank, view.free_slots, view.node_id)
    if policy is PlacementPolicy.LEAST_FRAGMENTED:
        # Best-fit with the class-mix tie-break (the historical admit()).
        return (view.free_slots,
                0 if view.complements(job_is_memory_bound) else 1,
                view.node_id)
    if policy is PlacementPolicy.FRAG_AWARE:
        # Class-blind best-fit that keeps whole nodes free (Ting et al.).
        return (1 if view.is_empty else 0, view.free_slots, view.node_id)
    # CONSOLIDATE: pack active nodes first; among active nodes prefer a
    # complementary class mix, then best-fit (Saraha et al.).
    return (1 if view.is_empty else 0,
            0 if view.has_opposite(job_is_memory_bound) else 1,
            view.free_slots, view.node_id)


def choose_node(policy: PlacementPolicy, views: Sequence[NodeView],
                job_is_memory_bound: bool) -> Optional[NodeView]:
    """The node this arrival should land on, or None when no node has a
    free slot.  Deterministic: every ordering ends with the node id."""
    candidates = [v for v in views if v.free_slots > 0]
    if not candidates:
        return None
    return min(
        candidates,
        key=lambda v: placement_key(policy, v, job_is_memory_bound),
    )
