"""Fleet-scale datacenter simulation: hundreds of GPUs, thousands of jobs.

This is the ROADMAP's "millions of users" story made concrete: an open
system where jobs from the Table 2 catalog arrive on a seeded Poisson
stream (:mod:`repro.workloads.arrivals`), queue for a node slot, run
under a per-node slicing mode (unbalanced UGPU slices or rigid MIG-like
ones), and depart when they retire their instruction budget.  Placement
is a pluggable policy from :mod:`repro.cluster.placement` — the paper's
demand-aware pairing next to the fragmentation-aware online scheduler of
Ting et al. and the throughput+energy consolidating manager of Saraha et
al. — all competing over the *same* arrival stream.

Time advances in fixed scheduling rounds.  Per round the coordinator:

1. moves arrivals whose cycle has passed into a FIFO wait queue,
2. admits waiting jobs while the placement policy finds a free slot,
3. executes every active node for the round — the physics lives in
   :mod:`repro.cluster.shard`, sharded across the
   :class:`~repro.exec.SweepExecutor`'s worker processes (node results
   are independent of shard grouping, so a ``jobs=N`` run is
   byte-identical to the serial one),
4. applies departures at the cycle each budget retired, and
5. periodically runs the policy's cross-shard rebalancing pass
   (``FRAG_AWARE`` drains nearly-empty nodes to defragment;
   ``CONSOLIDATE`` does the same only when the static-power savings of
   powering a node down beat the migration energy, scored against
   :class:`~repro.metrics.energy.EnergyModel`).  Migrated tenants pay a
   one-round IPC penalty for the move.

Scoring uses the open-system interval metrics
(:mod:`repro.metrics.multiprogram`): occupancy-weighted STP and ANTT,
mean queueing delay, plus time-averaged fragmentation (stranded slots on
active nodes), mean active nodes, and — when an energy model is
attached — a fleet :class:`~repro.metrics.energy.EnergyBreakdown` where
idle nodes are powered down (the consolidation payoff).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.cluster.health import FleetHealthMonitor, HealthReport
from repro.cluster.placement import NodeView, PlacementPolicy, choose_node
from repro.cluster.shard import (
    CHANNEL_FLOOR,
    SLICING_MODES,
    SM_FLOOR,
    FleetShardJob,
    FleetShardResult,
    NodeShardState,
    TenantState,
    _model_for,
    _template,
)
from repro.errors import ConfigError, SimulationError
from repro.exec.executor import SweepExecutor
from repro.gpu.config import GPUConfig
from repro.metrics.energy import EnergyBreakdown, EnergyModel
from repro.metrics.multiprogram import (
    IntervalRun,
    interval_antt,
    interval_stp,
    makespan,
    mean_queueing_delay,
)
from repro.workloads.arrivals import ArrivalSchedule
from repro.workloads.benchmarks import TABLE2


@dataclass
class _JobRecord:
    """Coordinator-side lifecycle state of one job."""

    job_id: int
    abbr: str
    name: str
    arrival_cycle: int
    remaining: Optional[int]        #: instructions to retirement; None = resident
    admit_cycle: Optional[int] = None
    depart_cycle: Optional[int] = None
    node_id: Optional[int] = None
    instructions: int = 0
    kernel_index: int = 0
    kernel_instructions_done: int = 0
    penalty_factor: float = 1.0
    migrations: int = 0


@dataclass
class _NodeState:
    node_id: int
    resident: List[_JobRecord] = field(default_factory=list)


@dataclass
class FleetResult:
    """Outcome of one fleet run under one placement policy."""

    placement: PlacementPolicy
    slicing: str
    num_nodes: int
    tenants_per_node: int
    horizon_cycles: int
    round_cycles: int
    rounds: int
    runs: List[IntervalRun]
    arrivals: int
    admissions: int
    departures: int
    migrations: int
    migrated_bytes: float
    waiting_at_horizon: int
    never_arrived: int
    fragmentation: float            #: time-averaged stranded-slot fraction
    mean_active_nodes: float
    shard_runs: int
    energy: Optional[EnergyBreakdown] = None
    provenance: Dict[str, str] = field(default_factory=dict)
    #: Health-monitor verdict, when one was attached.  Wall-clock shaped
    #: (stragglers are host-time outliers), so it is deliberately
    #: excluded from :meth:`summary` — summaries stay deterministic.
    health: Optional[HealthReport] = None

    @property
    def capacity(self) -> int:
        return self.num_nodes * self.tenants_per_node

    @property
    def stp(self) -> float:
        """Occupancy-weighted cluster STP over the horizon."""
        if not self.runs:
            return 0.0
        return interval_stp(self.runs, self.horizon_cycles)

    @property
    def antt(self) -> float:
        if not self.runs:
            return 0.0
        return interval_antt(self.runs, self.horizon_cycles)

    @property
    def mean_queueing_delay(self) -> float:
        if not self.runs:
            return 0.0
        return mean_queueing_delay(self.runs)

    @property
    def makespan(self) -> int:
        if not self.runs:
            return 0
        return makespan(self.runs, self.horizon_cycles)

    def summary(self) -> Dict[str, object]:
        """Deterministic scalars for tables and bench metadata."""
        out: Dict[str, object] = {
            "placement": self.placement.value,
            "slicing": self.slicing,
            "rounds": self.rounds,
            "arrivals": self.arrivals,
            "admissions": self.admissions,
            "departures": self.departures,
            "migrations": self.migrations,
            "waiting_at_horizon": self.waiting_at_horizon,
            "stp": round(self.stp, 6),
            "antt": round(self.antt, 6),
            "mean_queueing_delay": round(self.mean_queueing_delay, 1),
            "fragmentation": round(self.fragmentation, 6),
            "mean_active_nodes": round(self.mean_active_nodes, 3),
        }
        if self.energy is not None:
            out["energy_joules"] = round(self.energy.total, 3)
        return out


class FleetSimulator:
    """Drive an open-system fleet of GPU nodes through one horizon.

    Single-use, like :class:`~repro.core.system.MultitaskSystem`: build a
    fresh simulator per run.  Everything is deterministic — placement
    orderings end in node ids, queues are FIFO, and node execution is a
    pure function of tenant state — so two runs of the same configuration
    (serial, sharded, or cached) produce identical results.

    ``executor`` runs the per-round shard jobs; pass one entered as a
    context manager (``with SweepExecutor(jobs=8) as ex:``) to reuse one
    process pool across all rounds.  The default is in-process serial
    execution.  ``energy_model`` enables joule accounting (idle nodes
    are powered down); ``CONSOLIDATE`` placement attaches a default
    model automatically since its rebalancing pass scores against it.
    """

    def __init__(
        self,
        num_nodes: int,
        arrivals: ArrivalSchedule,
        placement: PlacementPolicy = PlacementPolicy.LEAST_FRAGMENTED,
        *,
        slicing: str = "ugpu",
        config: Optional[GPUConfig] = None,
        tenants_per_node: int = 4,
        round_cycles: int = 2_500_000,
        horizon_cycles: int = 150_000_000,
        rebalance_every: int = 8,
        migration_penalty: float = 0.25,
        instructions_per_kernel: int = 2_000_000_000,
        executor: Optional[SweepExecutor] = None,
        energy_model: Optional[EnergyModel] = None,
        metrics=None,
        tracer=None,
        profiler=None,
        log=None,
        health: Optional[FleetHealthMonitor] = None,
        capture: Optional[bool] = None,
    ) -> None:
        if num_nodes <= 0:
            raise ConfigError("num_nodes must be positive")
        if tenants_per_node <= 0:
            raise ConfigError("tenants_per_node must be positive")
        if round_cycles <= 0 or horizon_cycles <= 0:
            raise ConfigError("round_cycles and horizon_cycles must be positive")
        if rebalance_every < 1:
            raise ConfigError("rebalance_every must be >= 1")
        if not 0.0 <= migration_penalty < 1.0:
            raise ConfigError("migration_penalty must be in [0, 1)")
        if slicing not in SLICING_MODES:
            raise ConfigError(
                f"unknown slicing {slicing!r}; options: "
                f"{', '.join(SLICING_MODES)}"
            )
        config = config if config is not None else GPUConfig()
        config.validate()
        if (config.num_sms // tenants_per_node < SM_FLOOR
                or config.num_channels // tenants_per_node < CHANNEL_FLOOR):
            raise ConfigError(
                f"{tenants_per_node} tenants per node break the "
                f"{SM_FLOOR}-SM/{CHANNEL_FLOOR}-channel slice floors"
            )
        self.placement = PlacementPolicy.parse(placement)
        self.arrivals = arrivals
        self.slicing = slicing
        self.config = config
        self.num_nodes = num_nodes
        self.tenants_per_node = tenants_per_node
        self.round_cycles = round_cycles
        self.horizon_cycles = horizon_cycles
        self.rebalance_every = rebalance_every
        self.migration_penalty = migration_penalty
        self.instructions_per_kernel = instructions_per_kernel
        self.executor = executor if executor is not None else SweepExecutor()
        if energy_model is None and self.placement is PlacementPolicy.CONSOLIDATE:
            energy_model = EnergyModel(config)
        self.energy_model = energy_model
        self.tracer = tracer
        self.profiler = profiler
        self.health = health
        #: Worker-side capture: explicit flag, else inferred — any
        #: orchestrator sink present means the caller wants the worker
        #: half of the merged streams too.
        self._capture = (
            capture if capture is not None
            else (tracer is not None or metrics is not None
                  or profiler is not None)
        )
        from repro.telemetry.provenance import config_hash

        #: Deterministic run correlation ID: a hash of the run's shape,
        #: so serial and sharded runs of one configuration correlate.
        self.run_id = config_hash(
            config,
            placement=PlacementPolicy.parse(placement).value,
            slicing=slicing,
            nodes=num_nodes,
            tenants=tenants_per_node,
            round=round_cycles,
            horizon=horizon_cycles,
            arrivals=len(arrivals),
        )
        self.log = (
            log.bind(run_id=self.run_id, placement=self.placement.value)
            if log is not None else None
        )
        if health is not None and not getattr(health, "run_id", ""):
            health.run_id = self.run_id
        self._model = _model_for(config)
        self._nodes = [_NodeState(i) for i in range(num_nodes)]
        self._catalog = {spec.abbr for spec in TABLE2}
        self._class_memo: Dict[str, bool] = {}
        self._solo_memo: Dict[str, float] = {}
        self._ran = False
        self.metrics = metrics
        if metrics is not None:
            from repro.telemetry import names as _names

            self._m_rounds = _names.fleet_rounds_total(metrics)
            self._m_jobs = _names.fleet_jobs_total(metrics)
            self._m_wait = _names.fleet_wait_queue_depth(metrics)
            self._m_resident = _names.fleet_resident_jobs(metrics)
            self._m_active = _names.fleet_active_nodes(metrics)
            self._m_frag = _names.fleet_fragmentation(metrics)
            self._m_delay = _names.fleet_queueing_delay_cycles(metrics)
            self._m_energy = _names.fleet_energy_joules_total(metrics)

    # ------------------------------------------------------------------
    # Per-benchmark memos (coordinator side)
    # ------------------------------------------------------------------
    def _abbr_of(self, app) -> str:
        if app.name not in self._catalog:
            raise ConfigError(
                f"fleet arrivals must come from the Table 2 catalog; "
                f"{app.name!r} is not a known benchmark"
            )
        return app.name

    def _memory_bound(self, abbr: str) -> bool:
        """Equation 1/2 classification at the even two-way split."""
        cached = self._class_memo.get(abbr)
        if cached is None:
            kernel = _template(abbr, self.instructions_per_kernel).kernels[0]
            cached = self._model.throughput(
                kernel, self.config.num_sms // 2, self.config.num_channels // 2
            ).demand_supply_ratio >= 1.0
            self._class_memo[abbr] = cached
        return cached

    def _footprint(self, abbr: str) -> int:
        return _template(abbr, self.instructions_per_kernel).footprint_bytes

    def _solo_ipc(self, abbr: str) -> float:
        """Steady whole-GPU rate over one full launch (IPC^alone)."""
        cached = self._solo_memo.get(abbr)
        if cached is None:
            template = _template(abbr, self.instructions_per_kernel)
            cycles = 0.0
            for kernel in template.kernels:
                ipc = self._model.throughput(
                    kernel, self.config.num_sms, self.config.num_channels
                ).ipc
                if ipc <= 0:
                    raise SimulationError(
                        f"{abbr}: solo IPC is zero on the full GPU"
                    )
                cycles += kernel.instructions / ipc
            cached = template.instructions_per_launch / cycles
            self._solo_memo[abbr] = cached
        return cached

    def _validate_schedule(self, events) -> None:
        """Every arrival must rebuild identically in the workers: the
        schedule's applications must match the catalog at *this*
        simulator's ``instructions_per_kernel``."""
        seen = set()
        for event in events:
            abbr = self._abbr_of(event.app)
            if abbr in seen:
                continue
            seen.add(abbr)
            template = _template(abbr, self.instructions_per_kernel)
            if [k.instructions for k in template.kernels] != [
                k.instructions for k in event.app.kernels
            ]:
                raise ConfigError(
                    f"arrival schedule was built with a different "
                    f"instructions_per_kernel than the simulator's "
                    f"{self.instructions_per_kernel} (job {event.app.app_id}, "
                    f"{abbr})"
                )

    # ------------------------------------------------------------------
    # Round phases
    # ------------------------------------------------------------------
    def _views(self) -> List[NodeView]:
        return [
            NodeView(
                node_id=n.node_id,
                capacity=self.tenants_per_node,
                free_slots=self.tenants_per_node - len(n.resident),
                tenant_classes=tuple(
                    self._memory_bound(r.abbr) for r in n.resident
                ),
            )
            for n in self._nodes
        ]

    def _trace(self, name: str, now: int, **args) -> None:
        if self.tracer is not None:
            args.setdefault("run_id", self.run_id)
            self.tracer.emit("fleet", name, time=float(now), **args)

    def _admit(self, wait: Deque[_JobRecord], now: int) -> int:
        admitted = 0
        while wait:
            record = wait[0]
            choice = choose_node(
                self.placement, self._views(), self._memory_bound(record.abbr)
            )
            if choice is None:
                break
            wait.popleft()
            node = self._nodes[choice.node_id]
            node.resident.append(record)
            record.admit_cycle = now
            record.node_id = node.node_id
            admitted += 1
            self._trace("admit", now, job=record.job_id, node=node.node_id)
            if self.log is not None:
                self.log.debug(
                    "fleet.admit", job_id=record.job_id,
                    node_id=node.node_id, now=now,
                    delay=now - record.arrival_cycle,
                )
            if self.metrics is not None:
                self._m_jobs.labels(event="admitted").inc()
                self._m_delay.observe(now - record.arrival_cycle)
        return admitted

    def _execute(self, active: List[_NodeState], span: int,
                 round_index: int, now: int) -> List:
        states = [
            NodeShardState(
                node_id=n.node_id,
                tenants=tuple(
                    TenantState(
                        job_id=r.job_id,
                        abbr=r.abbr,
                        instructions_per_kernel=self.instructions_per_kernel,
                        kernel_index=r.kernel_index,
                        kernel_instructions_done=r.kernel_instructions_done,
                        remaining_budget=r.remaining,
                        penalty_factor=r.penalty_factor,
                    )
                    for r in n.resident
                ),
            )
            for n in active
        ]
        shards = max(1, min(self.executor.jobs, len(states)))
        chunk = math.ceil(len(states) / shards)
        jobs = [
            FleetShardJob(
                nodes=tuple(states[i:i + chunk]),
                round_cycles=span,
                slicing=self.slicing,
                config=self.config,
                label=f"round{round_index}",
            )
            for i in range(0, len(states), chunk)
        ]
        results: List[FleetShardResult] = self.executor.run(
            jobs, capture=self._capture
        )
        self._shard_runs += len(jobs)
        if self._capture:
            self._absorb_envelopes(
                self.executor.last_envelopes, round_index, now
            )
        return [node_out for result in results for node_out in result.nodes]

    def _absorb_envelopes(self, envelopes, round_index: int,
                          round_start: int) -> None:
        """Fold worker captures into the orchestrator sinks, shard order.

        Worker trace timestamps are round-relative cycles; re-anchoring
        at the round's start cycle puts node-physics spans on the same
        timeline as the orchestrator's ``fleet`` events.  The shift never
        enters the shard cache key (like ``label``), so cached envelopes
        replay correctly at whatever round they hit.
        """
        for shard_index, envelope in enumerate(envelopes):
            if envelope is None or envelope.obs is None:
                continue
            obs = envelope.obs
            shard_id = f"r{round_index}.s{shard_index}"
            if self.tracer is not None and obs.events:
                self.tracer.absorb(
                    obs.events,
                    time_shift=float(round_start),
                    run_id=self.run_id,
                    shard_id=shard_id,
                    pid=envelope.pid,
                    worker=envelope.worker,
                )
            if self.metrics is not None and obs.metrics:
                from repro.telemetry.merge import merge_registry

                merge_registry(self.metrics, obs.metrics)
            if self.profiler is not None and obs.profile:
                self.profiler.absorb(
                    obs.profile, prefix=("fleet.execute",)
                )

    def _merge(self, outcomes, records_by_id: Dict[int, _JobRecord],
               now: int, span: int) -> int:
        departures = 0
        for node_out in outcomes:
            node = self._nodes[node_out.node_id]
            if self.energy_model is not None:
                breakdown = self.energy_model.energy(
                    span, node_out.instructions, node_out.dram_bytes
                )
                self._e_core_static += breakdown.core_static
                self._e_core_dynamic += breakdown.core_dynamic
                self._e_mem_static += breakdown.mem_static
                self._e_mem_dynamic += breakdown.mem_dynamic
            for tenant_out in node_out.tenants:
                record = records_by_id[tenant_out.job_id]
                record.instructions += tenant_out.retired
                record.kernel_index = tenant_out.kernel_index
                record.kernel_instructions_done = (
                    tenant_out.kernel_instructions_done
                )
                record.penalty_factor = 1.0   # a migration costs one round
                if tenant_out.departed:
                    record.remaining = 0
                    record.depart_cycle = now + tenant_out.active_cycles
                    node.resident.remove(record)
                    departures += 1
                    self._trace("depart", record.depart_cycle,
                                job=record.job_id, node=node.node_id)
                    if self.log is not None:
                        self.log.debug(
                            "fleet.depart", job_id=record.job_id,
                            node_id=node.node_id,
                            now=record.depart_cycle,
                            instructions=record.instructions,
                        )
                    if self.metrics is not None:
                        self._m_jobs.labels(event="departed").inc()
                else:
                    record.remaining = tenant_out.remaining_budget
        return departures

    def _rebalance(self, now: int) -> int:
        """Cross-shard consolidation: drain nearly-empty nodes into other
        active nodes (``FRAG_AWARE`` always; ``CONSOLIDATE`` only when
        static-power savings beat the migration energy).  Moved tenants
        pay ``migration_penalty`` on next round's IPC."""
        moves = 0
        received = set()
        sources = sorted(
            (n for n in self._nodes if n.resident),
            key=lambda n: (len(n.resident), -n.node_id),
        )
        for source in sources:
            if not source.resident or source.node_id in received:
                continue
            free_elsewhere = sum(
                self.tenants_per_node - len(n.resident)
                for n in self._nodes
                if n is not source and n.resident
            )
            if free_elsewhere < len(source.resident):
                continue
            tenants = list(source.resident)
            if (self.placement is PlacementPolicy.CONSOLIDATE
                    and not self._worth_consolidating(tenants, now)):
                continue
            for record in tenants:
                views = [
                    v for v in self._views()
                    if v.node_id != source.node_id and not v.is_empty
                ]
                choice = choose_node(
                    self.placement, views, self._memory_bound(record.abbr)
                )
                if choice is None:   # pragma: no cover - precheck forbids
                    break
                source.resident.remove(record)
                target = self._nodes[choice.node_id]
                target.resident.append(record)
                received.add(target.node_id)
                record.node_id = target.node_id
                record.penalty_factor = 1.0 - self.migration_penalty
                record.migrations += 1
                self._migrated_bytes += self._footprint(record.abbr)
                moves += 1
                self._trace("migrate", now, job=record.job_id,
                            source=source.node_id, target=target.node_id)
                if self.log is not None:
                    self.log.debug(
                        "fleet.migrate", job_id=record.job_id,
                        node_id=target.node_id,
                        source=source.node_id, now=now,
                    )
                if self.metrics is not None:
                    self._m_jobs.labels(event="migrated").inc()
        return moves

    def _worth_consolidating(self, tenants: List[_JobRecord],
                             now: int) -> bool:
        """Saraha et al.'s energy score: does powering this node down for
        the next rebalance window save more static energy than moving its
        tenants' footprints costs?"""
        if self.energy_model is None:
            return True
        window = min(
            self.rebalance_every * self.round_cycles,
            self.horizon_cycles - now,
        )
        if window <= 0:
            return False
        model = self.energy_model
        seconds = window / model.config.sm_freq_hz
        saving = (model.core_static_watts + model.mem_static_watts) * seconds
        cost = model.energy(
            0, 0, 0, sum(self._footprint(r.abbr) for r in tenants)
        ).migration
        return saving > cost

    # ------------------------------------------------------------------
    # The run loop
    # ------------------------------------------------------------------
    def run(self) -> FleetResult:
        if self._ran:
            raise SimulationError(
                "FleetSimulator.run() is single-use; build a fresh simulator"
            )
        self._ran = True
        events = list(self.arrivals)
        self._validate_schedule(events)
        if self.log is not None:
            self.log.info(
                "fleet.run", nodes=self.num_nodes,
                tenants_per_node=self.tenants_per_node,
                slicing=self.slicing,
                horizon=self.horizon_cycles,
                round_cycles=self.round_cycles,
                arrivals=len(events),
                workers=self.executor.jobs,
            )
        self._shard_runs = 0
        self._migrated_bytes = 0.0
        self._e_core_static = self._e_core_dynamic = 0.0
        self._e_mem_static = self._e_mem_dynamic = 0.0

        wait: Deque[_JobRecord] = deque()
        records: List[_JobRecord] = []
        records_by_id: Dict[int, _JobRecord] = {}
        prof = self.profiler
        index = 0
        now = 0
        rounds = 0
        admissions = 0
        departures = 0
        migrations = 0
        frag_weighted = 0.0
        active_weighted = 0.0

        while now < self.horizon_cycles:
            while index < len(events) and events[index].cycle <= now:
                event = events[index]
                index += 1
                record = _JobRecord(
                    job_id=event.app.app_id,
                    abbr=self._abbr_of(event.app),
                    name=event.app.name,
                    arrival_cycle=event.cycle,
                    remaining=event.budget_instructions,
                )
                records.append(record)
                records_by_id[record.job_id] = record
                wait.append(record)
                self._trace("arrive", event.cycle, job=record.job_id,
                            benchmark=record.abbr)
                if self.log is not None:
                    self.log.debug(
                        "fleet.arrive", job_id=record.job_id,
                        benchmark=record.abbr, now=event.cycle,
                    )
                if self.metrics is not None:
                    self._m_jobs.labels(event="arrived").inc()

            if prof is not None:
                with prof.span("fleet.place"):
                    admissions += self._admit(wait, now)
            else:
                admissions += self._admit(wait, now)

            active = [n for n in self._nodes if n.resident]
            if not active and not wait and index >= len(events):
                break   # drained: nothing resident, queued or pending

            span = min(self.round_cycles, self.horizon_cycles - now)
            executed = bool(active)
            if active:
                if prof is not None:
                    with prof.span("fleet.execute"):
                        outcomes = self._execute(active, span, rounds, now)
                else:
                    outcomes = self._execute(active, span, rounds, now)
                departures += self._merge(outcomes, records_by_id, now, span)
                stranded = sum(
                    self.tenants_per_node - len(n.resident) for n in active
                )
                frag_weighted += span * stranded / self.capacity
                active_weighted += span * len(active)

            rounds += 1
            now += span
            if (rounds % self.rebalance_every == 0
                    and now < self.horizon_cycles
                    and self.placement in (PlacementPolicy.FRAG_AWARE,
                                           PlacementPolicy.CONSOLIDATE)):
                if prof is not None:
                    with prof.span("fleet.rebalance"):
                        migrations += self._rebalance(now)
                else:
                    migrations += self._rebalance(now)

            if self.metrics is not None:
                self._m_rounds.inc()
                self._m_wait.set(len(wait))
                self._m_resident.set(
                    sum(len(n.resident) for n in self._nodes)
                )
                self._m_active.set(
                    sum(1 for n in self._nodes if n.resident)
                )
                frag_now = sum(
                    self.tenants_per_node - len(n.resident)
                    for n in self._nodes if n.resident
                ) / self.capacity
                self._m_frag.set(frag_now)
                self.metrics.epoch_boundary(rounds - 1, now)

            if self.health is not None and executed:
                stats = self.executor.last_stats
                self.health.observe_round(
                    rounds - 1,
                    now=now,
                    job_seconds=tuple(stats.job_seconds),
                    wait_depth=len(wait),
                    cache_hits=stats.cache_hits,
                    cache_lookups=stats.jobs_total,
                )

            # One instant per round with the queue/residency state, so
            # post-hoc analysis (repro.inspect) can rebuild the wait-depth
            # timeline from the trace stream alone.
            self._trace(
                "round", now, round=rounds - 1, wait=len(wait),
                resident=sum(len(n.resident) for n in self._nodes),
            )
            if self.log is not None:
                self.log.info(
                    "fleet.round", round=rounds - 1, now=now,
                    wait=len(wait),
                    resident=sum(len(n.resident) for n in self._nodes),
                    departures=departures,
                )

        energy = None
        if self.energy_model is not None:
            migration_joules = self.energy_model.energy(
                0, 0, 0, self._migrated_bytes
            ).migration
            energy = EnergyBreakdown(
                core_static=self._e_core_static,
                core_dynamic=self._e_core_dynamic,
                mem_static=self._e_mem_static,
                mem_dynamic=self._e_mem_dynamic,
                migration=migration_joules,
            )
            if self.metrics is not None:
                for component, joules in (
                    ("core_static", energy.core_static),
                    ("core_dynamic", energy.core_dynamic),
                    ("mem_static", energy.mem_static),
                    ("mem_dynamic", energy.mem_dynamic),
                    ("migration", energy.migration),
                ):
                    self._m_energy.labels(component=component).inc(joules)

        runs = [
            IntervalRun(
                app_id=r.job_id,
                name=r.name,
                instructions=r.instructions,
                ipc_alone=self._solo_ipc(r.abbr),
                arrival_cycle=r.arrival_cycle,
                admit_cycle=r.admit_cycle,
                depart_cycle=r.depart_cycle,
            )
            for r in records
            if r.admit_cycle is not None
        ]
        elapsed = max(1, now)
        from repro.telemetry.provenance import collect_provenance

        health_report = (
            self.health.report() if self.health is not None else None
        )
        if self.log is not None:
            self.log.info(
                "fleet.result", rounds=rounds,
                arrivals=len(records), admissions=admissions,
                departures=departures, migrations=migrations,
                waiting_at_horizon=len(wait),
                incidents=(
                    len(health_report.incidents)
                    if health_report is not None else None
                ),
            )
        return FleetResult(
            placement=self.placement,
            slicing=self.slicing,
            num_nodes=self.num_nodes,
            tenants_per_node=self.tenants_per_node,
            horizon_cycles=self.horizon_cycles,
            round_cycles=self.round_cycles,
            rounds=rounds,
            runs=runs,
            arrivals=len(records),
            admissions=admissions,
            departures=departures,
            migrations=migrations,
            migrated_bytes=self._migrated_bytes,
            waiting_at_horizon=len(wait),
            never_arrived=len(events) - index,
            fragmentation=frag_weighted / elapsed,
            mean_active_nodes=active_weighted / elapsed,
            shard_runs=self._shard_runs,
            energy=energy,
            provenance=collect_provenance(
                self.config,
                placement=self.placement.value,
                slicing=self.slicing,
            ),
            health=health_report,
        )

    @property
    def capacity(self) -> int:
        return self.num_nodes * self.tenants_per_node
