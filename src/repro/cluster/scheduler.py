"""Cluster-level tenant placement.

Three placement policies:

* ``FIRST_FIT`` — tenants land on the first node with a free slot, the
  default behaviour of a class-blind scheduler.
* ``DEMAND_AWARE`` — tenants are paired so every node mixes memory-bound
  and compute-bound applications, maximizing each node's UGPU
  reallocation room (the paper's cloud-utilization argument: a node full
  of same-class tenants has nothing to trade).
* ``LEAST_FRAGMENTED`` — the *online* policy: each arriving job lands on
  the compatible node that leaves the least stranded capacity (the
  fullest node that still has a slot), preferring nodes whose resident
  class mix the arrival complements.  Batch placement degenerates to
  admitting jobs one at a time, which is exactly how an open system sees
  them.

The scheduler then runs every node under the chosen slicing policy and
aggregates cluster throughput.  :meth:`ClusterScheduler.admit` and
:meth:`ClusterScheduler.depart` expose the same machinery job-by-job for
arrival/departure traces (:mod:`repro.workloads.arrivals`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.cluster.node import GPUNode, NodeResult
from repro.core.system import MultitaskSystem
from repro.errors import AllocationError
from repro.gpu.config import GPUConfig
from repro.gpu.kernel import Application
from repro.gpu.performance import PerformanceModel


class PlacementPolicy(enum.Enum):
    """How tenants are assigned to nodes."""

    FIRST_FIT = "first_fit"
    DEMAND_AWARE = "demand_aware"
    LEAST_FRAGMENTED = "least_fragmented"


@dataclass
class ClusterResult:
    """Aggregate outcome of a cluster run."""

    nodes: List[NodeResult]
    placement: PlacementPolicy

    @property
    def cluster_stp(self) -> float:
        """Sum of per-node STP: total normalized work the cluster does."""
        return sum(node.stp for node in self.nodes)

    @property
    def busy_nodes(self) -> int:
        return sum(1 for node in self.nodes if node.result is not None)

    def per_node_summary(self) -> List[tuple]:
        return [
            (node.node_id, "+".join(node.tenants) or "(idle)",
             round(node.stp, 3))
            for node in self.nodes
        ]


class ClusterScheduler:
    """Place tenant jobs on a pool of GPU nodes and run them."""

    def __init__(self, num_nodes: int, config: Optional[GPUConfig] = None,
                 tenants_per_node: int = 2, metrics=None) -> None:
        """``metrics`` (a telemetry registry) counts placement outcomes
        and gauges per-node fragmentation (free slots / capacity) and
        resident tenants after every admit/depart."""
        if num_nodes <= 0:
            raise AllocationError("need at least one node")
        config = config if config is not None else GPUConfig()
        self.config = config
        self.nodes = [
            GPUNode(i, config, max_tenants=tenants_per_node)
            for i in range(num_nodes)
        ]
        self.perf = PerformanceModel(config)
        self.metrics = metrics
        if metrics is not None:
            from repro.telemetry import names as _names

            self._m_placements = _names.cluster_placements_total(metrics)
            self._m_fragmentation = _names.cluster_node_fragmentation(metrics)
            self._m_tenants = _names.cluster_node_tenants(metrics)
            self._update_node_gauges()

    def _update_node_gauges(self) -> None:
        for node in self.nodes:
            label = str(node.node_id)
            self._m_fragmentation.labels(node=label).set(
                node.free_slots / node.max_tenants
            )
            self._m_tenants.labels(node=label).set(len(node.tenants))

    @property
    def capacity(self) -> int:
        return sum(node.max_tenants for node in self.nodes)

    @property
    def resident_jobs(self) -> int:
        return sum(len(node.tenants) for node in self.nodes)

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def _is_memory_bound(self, app: Application) -> bool:
        """Classify from the app's first kernel at the even two-way split
        (the same Equation 1/2 boundary UGPU's profiler uses)."""
        throughput = self.perf.throughput(
            app.kernels[0], self.config.num_sms // 2, self.config.num_channels // 2
        )
        return throughput.demand_supply_ratio >= 1.0

    def place(self, jobs: Sequence[Application],
              policy: PlacementPolicy = PlacementPolicy.DEMAND_AWARE) -> None:
        """Assign all jobs to nodes; raises if the cluster is full."""
        if len(jobs) > self.capacity - self.resident_jobs:
            raise AllocationError(
                f"{len(jobs)} jobs exceed cluster capacity {self.capacity}"
            )
        if policy is PlacementPolicy.LEAST_FRAGMENTED:
            # The online policy sees a batch as back-to-back arrivals.
            for job in jobs:
                self.admit(job)
            return
        if policy is PlacementPolicy.FIRST_FIT:
            # Class-blind: spread tenants breadth-first for load fairness.
            for job in jobs:
                self._emptiest_node().place(job)
                self._note_placement()
            return
        # Demand-aware: interleave the two classes and fill each node
        # completely before the next, so every node receives a
        # complementary memory-bound/compute-bound group.
        memory = [j for j in jobs if self._is_memory_bound(j)]
        compute = [j for j in jobs if not self._is_memory_bound(j)]
        ordered = []
        while memory or compute:
            if memory:
                ordered.append(memory.pop(0))
            if compute:
                ordered.append(compute.pop(0))
        for job in ordered:
            self._first_open_node().place(job)
            self._note_placement()

    def _note_placement(self, outcome: str = "placed") -> None:
        if self.metrics is not None:
            self._m_placements.labels(outcome=outcome).inc()
            self._update_node_gauges()

    def _emptiest_node(self) -> GPUNode:
        target = min(self.nodes, key=lambda n: (len(n.tenants), n.node_id))
        if target.free_slots <= 0:
            raise AllocationError("cluster is full")  # pragma: no cover
        return target

    def _first_open_node(self) -> GPUNode:
        for node in self.nodes:
            if node.free_slots > 0:
                return node
        raise AllocationError("cluster is full")  # pragma: no cover

    # ------------------------------------------------------------------
    # Online admission / departure
    # ------------------------------------------------------------------
    def admit(self, job: Application) -> GPUNode:
        """Place one arriving job on the least-fragmented compatible node.

        Best-fit bin packing with a class-mix tie-break: among nodes with
        a free slot, pick the one with the fewest remaining slots
        (keeping whole nodes free for future arrivals), preferring nodes
        whose residents the arrival complements (an empty node, or one
        already holding an opposite-class tenant, gives UGPU reallocation
        room).  Deterministic: ties fall to the lowest node id.
        """
        open_nodes = [n for n in self.nodes if n.free_slots > 0]
        if not open_nodes:
            self._note_placement(outcome="rejected")
            raise AllocationError("cluster is full: no free slot for arrival")
        job_mb = self._is_memory_bound(job)
        target = min(
            open_nodes,
            key=lambda n: (
                n.free_slots,
                0 if self._complements(n, job_mb) else 1,
                n.node_id,
            ),
        )
        target.place(job)
        self._note_placement()
        return target

    def _complements(self, node: GPUNode, job_is_memory_bound: bool) -> bool:
        """Would the arrival improve (or keep) the node's class mix?"""
        if node.is_empty:
            return True
        return any(
            self._is_memory_bound(t) != job_is_memory_bound
            for t in node.tenants
        )

    def depart(self, app_id: int) -> GPUNode:
        """Release a departing job's slot; returns the node it held."""
        for node in self.nodes:
            if any(t.app_id == app_id for t in node.tenants):
                node.remove(app_id)
                if self.metrics is not None:
                    self._update_node_gauges()
                return node
        raise AllocationError(f"app {app_id} is not resident in the cluster")

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self,
            slicing_policy: Optional[Callable[..., MultitaskSystem]] = None,
            total_cycles: int = 25_000_000,
            placement: PlacementPolicy = PlacementPolicy.DEMAND_AWARE,
            ) -> ClusterResult:
        results = [
            node.run(slicing_policy, total_cycles) for node in self.nodes
        ]
        return ClusterResult(nodes=results, placement=placement)

    def schedule_and_run(
        self,
        jobs: Sequence[Application],
        placement: PlacementPolicy = PlacementPolicy.DEMAND_AWARE,
        slicing_policy: Optional[Callable[..., MultitaskSystem]] = None,
        total_cycles: int = 25_000_000,
    ) -> ClusterResult:
        """Convenience: place, run, aggregate."""
        self.place(jobs, placement)
        return self.run(slicing_policy, total_cycles, placement)
