"""Cluster-level tenant placement.

The placement orderings themselves live in
:mod:`repro.cluster.placement` (the policy zoo shared with the fleet
simulator); this module owns the stateful side — a pool of
:class:`~repro.cluster.node.GPUNode`, admit/depart bookkeeping with
placement telemetry, and batch placement + execution for closed-system
cluster runs.  Batch placement under an online policy degenerates to
admitting jobs one at a time, which is exactly how an open system sees
them.

:meth:`ClusterScheduler.admit` and :meth:`ClusterScheduler.depart`
expose the machinery job-by-job for arrival/departure traces
(:mod:`repro.workloads.arrivals`); the placements counter records one
outcome per event — ``placed``, ``rejected`` or ``departed`` — so the
counter always reconciles with the resident-tenant gauges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.cluster.node import GPUNode, NodeResult
from repro.cluster.placement import NodeView, PlacementPolicy, choose_node
from repro.core.system import MultitaskSystem
from repro.errors import AllocationError
from repro.gpu.config import GPUConfig
from repro.gpu.kernel import Application
from repro.gpu.performance import PerformanceModel


@dataclass
class ClusterResult:
    """Aggregate outcome of a cluster run."""

    nodes: List[NodeResult]
    placement: PlacementPolicy

    @property
    def cluster_stp(self) -> float:
        """Sum of per-node STP: total normalized work the cluster does."""
        return sum(node.stp for node in self.nodes)

    @property
    def busy_nodes(self) -> int:
        return sum(1 for node in self.nodes if node.result is not None)

    def per_node_summary(self) -> List[tuple]:
        return [
            (node.node_id, "+".join(node.tenants) or "(idle)",
             round(node.stp, 3))
            for node in self.nodes
        ]


class ClusterScheduler:
    """Place tenant jobs on a pool of GPU nodes and run them."""

    def __init__(self, num_nodes: int, config: Optional[GPUConfig] = None,
                 tenants_per_node: int = 2, metrics=None, log=None) -> None:
        """``metrics`` (a telemetry registry) counts placement outcomes
        and gauges per-node fragmentation (free slots / capacity) and
        resident tenants after every admit/depart.  ``log`` (an
        :class:`~repro.obslog.ObsLogger` or a logger bound from one)
        records each admit/reject/depart as a correlated JSONL event;
        both default ``None`` for zero overhead."""
        if num_nodes <= 0:
            raise AllocationError("need at least one node")
        config = config if config is not None else GPUConfig()
        self.config = config
        self.nodes = [
            GPUNode(i, config, max_tenants=tenants_per_node)
            for i in range(num_nodes)
        ]
        self.perf = PerformanceModel(config)
        self.metrics = metrics
        self.log = log
        if metrics is not None:
            from repro.telemetry import names as _names

            self._m_placements = _names.cluster_placements_total(metrics)
            self._m_fragmentation = _names.cluster_node_fragmentation(metrics)
            self._m_tenants = _names.cluster_node_tenants(metrics)
            self._update_node_gauges()

    def _update_node_gauges(self) -> None:
        for node in self.nodes:
            label = str(node.node_id)
            self._m_fragmentation.labels(node=label).set(
                node.free_slots / node.max_tenants
            )
            self._m_tenants.labels(node=label).set(len(node.tenants))

    @property
    def capacity(self) -> int:
        return sum(node.max_tenants for node in self.nodes)

    @property
    def resident_jobs(self) -> int:
        return sum(len(node.tenants) for node in self.nodes)

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def _is_memory_bound(self, app: Application) -> bool:
        """Classify from the app's first kernel at the even two-way split
        (the same Equation 1/2 boundary UGPU's profiler uses)."""
        throughput = self.perf.throughput(
            app.kernels[0], self.config.num_sms // 2, self.config.num_channels // 2
        )
        return throughput.demand_supply_ratio >= 1.0

    def place(self, jobs: Sequence[Application],
              policy: PlacementPolicy = PlacementPolicy.DEMAND_AWARE) -> None:
        """Assign all jobs to nodes; raises if the cluster is full (the
        whole batch is rejected, and counted as such)."""
        if len(jobs) > self.capacity - self.resident_jobs:
            if self.metrics is not None:
                self._m_placements.labels(outcome="rejected").inc(len(jobs))
            if self.log is not None:
                self.log.warning(
                    "cluster.reject_batch", jobs=len(jobs),
                    capacity=self.capacity,
                )
            raise AllocationError(
                f"{len(jobs)} jobs exceed cluster capacity {self.capacity}"
            )
        if policy not in (PlacementPolicy.FIRST_FIT,
                          PlacementPolicy.DEMAND_AWARE):
            # The online policies see a batch as back-to-back arrivals.
            for job in jobs:
                self.admit(job, policy)
            return
        if policy is PlacementPolicy.FIRST_FIT:
            # Class-blind: spread tenants breadth-first for load fairness.
            for job in jobs:
                self._emptiest_node().place(job)
                self._note_placement()
            return
        # Demand-aware: interleave the two classes and fill each node
        # completely before the next, so every node receives a
        # complementary memory-bound/compute-bound group.
        memory = [j for j in jobs if self._is_memory_bound(j)]
        compute = [j for j in jobs if not self._is_memory_bound(j)]
        ordered = []
        while memory or compute:
            if memory:
                ordered.append(memory.pop(0))
            if compute:
                ordered.append(compute.pop(0))
        for job in ordered:
            self._first_open_node().place(job)
            self._note_placement()

    def _note_placement(self, outcome: str = "placed") -> None:
        if self.metrics is not None:
            self._m_placements.labels(outcome=outcome).inc()
            self._update_node_gauges()

    def _emptiest_node(self) -> GPUNode:
        target = min(self.nodes, key=lambda n: (len(n.tenants), n.node_id))
        if target.free_slots <= 0:
            raise AllocationError("cluster is full")  # pragma: no cover
        return target

    def _first_open_node(self) -> GPUNode:
        for node in self.nodes:
            if node.free_slots > 0:
                return node
        raise AllocationError("cluster is full")  # pragma: no cover

    # ------------------------------------------------------------------
    # Online admission / departure
    # ------------------------------------------------------------------
    def node_views(self) -> List[NodeView]:
        """The occupancy snapshot the placement zoo chooses over."""
        return [
            NodeView(
                node_id=n.node_id,
                capacity=n.max_tenants,
                free_slots=n.free_slots,
                tenant_classes=tuple(
                    self._is_memory_bound(t) for t in n.tenants
                ),
            )
            for n in self.nodes
        ]

    def admit(self, job: Application,
              policy: PlacementPolicy = PlacementPolicy.LEAST_FRAGMENTED,
              ) -> GPUNode:
        """Place one arriving job under ``policy`` (default: best-fit bin
        packing with a class-mix tie-break, keeping whole nodes free for
        future arrivals).  Deterministic: every ordering in
        :mod:`repro.cluster.placement` ends with the node id.
        """
        choice = choose_node(
            policy, self.node_views(), self._is_memory_bound(job)
        )
        if choice is None:
            self._note_placement(outcome="rejected")
            if self.log is not None:
                self.log.warning(
                    "cluster.reject", job_id=job.app_id,
                    policy=PlacementPolicy.parse(policy).value,
                )
            raise AllocationError("cluster is full: no free slot for arrival")
        target = self.nodes[choice.node_id]
        target.place(job)
        self._note_placement()
        if self.log is not None:
            self.log.debug(
                "cluster.admit", job_id=job.app_id,
                node_id=target.node_id,
                policy=PlacementPolicy.parse(policy).value,
            )
        return target

    def depart(self, app_id: int) -> GPUNode:
        """Release a departing job's slot; returns the node it held."""
        for node in self.nodes:
            if any(t.app_id == app_id for t in node.tenants):
                node.remove(app_id)
                self._note_placement(outcome="departed")
                if self.log is not None:
                    self.log.debug(
                        "cluster.depart", job_id=app_id,
                        node_id=node.node_id,
                    )
                return node
        raise AllocationError(f"app {app_id} is not resident in the cluster")

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self,
            slicing_policy: Optional[Callable[..., MultitaskSystem]] = None,
            total_cycles: int = 25_000_000,
            placement: PlacementPolicy = PlacementPolicy.DEMAND_AWARE,
            ) -> ClusterResult:
        results = [
            node.run(slicing_policy, total_cycles) for node in self.nodes
        ]
        return ClusterResult(nodes=results, placement=placement)

    def schedule_and_run(
        self,
        jobs: Sequence[Application],
        placement: PlacementPolicy = PlacementPolicy.DEMAND_AWARE,
        slicing_policy: Optional[Callable[..., MultitaskSystem]] = None,
        total_cycles: int = 25_000_000,
    ) -> ClusterResult:
        """Convenience: place, run, aggregate."""
        self.place(jobs, placement)
        return self.run(slicing_policy, total_cycles, placement)
