"""Structured JSONL logging with fleet correlation IDs.

The trace layer answers *when*, the metrics layer answers *how much*;
this module answers *what happened, to which job, on which node, in
which process* — the greppable narrative stream a production fleet
operator tails.  It is built on the stdlib :mod:`logging` machinery (a
private :class:`logging.Logger` feeding a :class:`JsonlHandler`), but
every record is a flat JSON object rather than formatted text, so the
stream is machine-parseable and the CI smoke test can validate it
against the correlation-ID schema.

Correlation fields
------------------
Every record carries ``run_id`` (one simulation run, derived from
:func:`repro.telemetry.provenance.config_hash` so serial and sharded
runs of the same configuration correlate) and ``pid`` (the emitting OS
process).  Records scoped to a shard, node or job additionally carry
``shard_id`` / ``node_id`` / ``job_id`` — the same IDs stamped onto
merged trace events and worker metric snapshots, so one ``grep job_id``
crosses all three streams.

Like the ``tracer=None`` / ``metrics=None`` hooks, every instrumented
component (:class:`~repro.cluster.fleet.FleetSimulator`,
:class:`~repro.exec.executor.SweepExecutor`,
:class:`~repro.cluster.scheduler.ClusterScheduler`,
:class:`~repro.pagemove.engine.MigrationEngine`) defaults ``log=None``
and guards each emission with one ``is not None`` check, keeping the
disabled path byte-identical and overhead-free.

Usage::

    log = ObsLogger("fleet.log.jsonl", run_id=run_id)
    fleet_log = log.bind(placement="least-fragmented")
    fleet_log.info("fleet.round", round=3, wait=7)
    log.close()
"""

from __future__ import annotations

import json
import logging
import os
import time
from typing import Any, Callable, Dict, List, Optional, Union

from repro.errors import TelemetryError
from repro.ioutil import open_text

#: The cross-stream correlation fields (also stamped onto merged trace
#: events).  ``run_id`` and ``pid`` appear on every record; the rest
#: appear whenever the record is scoped to a shard / node / job.
CORRELATION_FIELDS = ("run_id", "shard_id", "node_id", "job_id", "pid")

#: Fields every record must carry (the schema the CI smoke validates).
REQUIRED_FIELDS = ("ts", "level", "event", "run_id", "pid")

#: Expected JSON types for correlation fields, when present.
_FIELD_TYPES = {
    "run_id": str,
    "shard_id": str,
    "node_id": int,
    "job_id": int,
    "pid": int,
}


class JsonlHandler(logging.Handler):
    """A :mod:`logging` handler that writes one JSON object per record.

    The :class:`ObsLogger` attaches the pre-built mapping as
    ``record.obs_record``; a record arriving without one (foreign
    emitters sharing the handler) falls back to a minimal envelope so
    the stream never mixes JSON with plain text.
    """

    def __init__(self, path) -> None:
        super().__init__()
        # .gz paths stream through gzip transparently (repro.ioutil).
        self._stream = open_text(path, "w")
        self.records_written = 0

    def emit(self, record: logging.LogRecord) -> None:
        payload = getattr(record, "obs_record", None)
        if payload is None:
            payload = {
                "ts": round(record.created, 6),
                "level": record.levelname.lower(),
                "event": record.getMessage(),
                "pid": os.getpid(),
            }
        try:
            line = json.dumps(payload, sort_keys=True, default=str)
            self._stream.write(line + "\n")
            self._stream.flush()
            self.records_written += 1
        except Exception:  # pragma: no cover - logging must never raise
            self.handleError(record)

    def close(self) -> None:
        try:
            if not self._stream.closed:
                self._stream.close()
        finally:
            super().close()


class ObsLogger:
    """Structured logger carrying a bound correlation context.

    Parameters
    ----------
    path:
        JSONL output file (opened for writing; the owner's
        :meth:`close` closes it).
    run_id:
        The run-level correlation ID stamped on every record.
    level:
        Minimum :mod:`logging` level (default ``DEBUG``: the file is
        opt-in via ``--log-jsonl``, so it captures everything).
    clock:
        Injectable wall-clock (tests pass a fake for exact timestamps).
    """

    def __init__(
        self,
        path,
        *,
        run_id: str,
        level: int = logging.DEBUG,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if not run_id:
            raise TelemetryError("obslog needs a non-empty run_id")
        self._clock = clock
        logger = logging.Logger(f"repro.obslog.{run_id}", level)
        logger.propagate = False
        try:
            handler = JsonlHandler(path)
        except OSError as exc:
            raise TelemetryError(
                f"cannot open obslog file {path!r}: {exc}"
            ) from exc
        logger.addHandler(handler)
        self._logger = logger
        self._handler = handler
        self._owner = True
        self.context: Dict[str, Any] = {"run_id": str(run_id)}

    @property
    def run_id(self) -> str:
        return self.context["run_id"]

    @property
    def records_written(self) -> int:
        return self._handler.records_written

    def bind(self, **fields: Any) -> "ObsLogger":
        """A child view sharing the stream, with ``fields`` merged into
        the correlation context (``None`` values are skipped).  Children
        do not own the handler; only the constructing logger's
        :meth:`close` closes the file."""
        child = object.__new__(ObsLogger)
        child._clock = self._clock
        child._logger = self._logger
        child._handler = self._handler
        child._owner = False
        child.context = dict(self.context)
        for key, value in fields.items():
            if value is not None:
                child.context[key] = value
        return child

    def log(self, level: int, event: str, **fields: Any) -> None:
        """Emit one record: schema envelope + context + ``fields``.

        ``None``-valued fields are dropped so call sites can pass
        optional IDs unconditionally.
        """
        logger = self._logger
        if not logger.isEnabledFor(level):
            return
        payload: Dict[str, Any] = {
            "ts": round(float(self._clock()), 6),
            "level": logging.getLevelName(level).lower(),
            "event": str(event),
            "pid": os.getpid(),
        }
        payload.update(self.context)
        for key, value in fields.items():
            if value is not None:
                payload[key] = value
        record = logger.makeRecord(
            logger.name, level, __name__, 0, event, (), None,
            extra={"obs_record": payload},
        )
        logger.handle(record)

    def debug(self, event: str, **fields: Any) -> None:
        self.log(logging.DEBUG, event, **fields)

    def info(self, event: str, **fields: Any) -> None:
        self.log(logging.INFO, event, **fields)

    def warning(self, event: str, **fields: Any) -> None:
        self.log(logging.WARNING, event, **fields)

    def close(self) -> None:
        """Flush and close the stream (no-op on a :meth:`bind` child)."""
        if self._owner:
            self._logger.removeHandler(self._handler)
            self._handler.close()


def read_obslog(path, strict: bool = True,
                errors: Optional[List[str]] = None) -> List[Dict[str, Any]]:
    """Read a JSONL log back into a list of record mappings.

    With ``strict=True`` (the default) malformed lines raise
    :class:`~repro.errors.TelemetryError` — a log that cannot be parsed
    is a telemetry failure, not a config problem.  With ``strict=False``
    malformed lines — the torn final record a killed run leaves behind,
    mirroring :func:`repro.telemetry.series.read_series` — are skipped,
    and each skip is *reported* by appending a ``path:line: reason``
    message to ``errors`` (when a list is passed) so loaders can surface
    the truncation instead of silently losing evidence.

    ``.gz`` paths decompress transparently.
    """
    records: List[Dict[str, Any]] = []
    with open_text(path, "r") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                if strict:
                    raise TelemetryError(
                        f"{path}:{line_no}: malformed obslog record: {exc}"
                    ) from exc
                if errors is not None:
                    errors.append(
                        f"{path}:{line_no}: malformed obslog record: {exc}"
                    )
                continue
            if not isinstance(record, dict):
                if strict:
                    raise TelemetryError(
                        f"{path}:{line_no}: obslog record must be an object, "
                        f"got {type(record).__name__}"
                    )
                if errors is not None:
                    errors.append(
                        f"{path}:{line_no}: obslog record must be an "
                        f"object, got {type(record).__name__}"
                    )
                continue
            records.append(record)
    return records


def validate_obslog_file(path) -> int:
    """Validate a JSONL log against the correlation-ID schema.

    Every record must carry :data:`REQUIRED_FIELDS`; any correlation
    field present must have its declared type.  Returns the record
    count; raises :class:`~repro.errors.TelemetryError` naming the
    first offending record.
    """
    records = read_obslog(path)
    for number, record in enumerate(records, start=1):
        for name in REQUIRED_FIELDS:
            if name not in record:
                raise TelemetryError(
                    f"{path}: record {number} is missing required "
                    f"field {name!r}"
                )
        for name, expected in _FIELD_TYPES.items():
            value = record.get(name)
            if value is None:
                continue
            if expected is int:
                ok: Union[bool, Any] = (
                    isinstance(value, int) and not isinstance(value, bool)
                )
            else:
                ok = isinstance(value, expected)
            if not ok:
                raise TelemetryError(
                    f"{path}: record {number} field {name!r} must be "
                    f"{expected.__name__}, got {type(value).__name__}"
                )
        if not record["run_id"]:
            raise TelemetryError(
                f"{path}: record {number} has an empty run_id"
            )
    return len(records)
