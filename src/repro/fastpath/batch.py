"""Vectorized batched roofline evaluation (the numpy kernel backend).

:func:`compute_batch` evaluates :meth:`PerformanceModel.throughput` for a
whole batch of ``(kernel, sms, channels)`` slices in one pass over
preallocated arrays.  It is **bit-identical** to the scalar oracle: every
float it stores in a :class:`SliceThroughput` must equal, bitwise, what
the scalar code would have produced (the golden regression and the
Hypothesis property test in ``tests/test_fastpath.py`` enforce this).

Two operations are deliberately left in the python fill loop because
their vectorized counterparts round differently from CPython:

* ``kernel.hit_rate_at(...)`` — the hit-rate curve uses ``**`` with a
  float exponent, and ``np.power`` is not bit-identical to python pow;
* ``(sms * channels) ** mlp_draw_exponent`` — same reason.

Everything else (elementwise ``+ - * /``, ``np.minimum``/``np.maximum``,
masked division) is exact for float64 and is written in the *same
association order* as the scalar expressions, which is what makes the
byte-identity hold.

The batch probes the model's throughput memo first and only evaluates
the missing slices, so in steady state (same kernels, unchanged
allocation) it degenerates to a handful of dict lookups.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.gpu.kernel import Kernel
from repro.gpu.performance import PerformanceModel, SliceThroughput

# Scratch arrays for the fill loop, grown geometrically and reused across
# calls ("preallocated" in the steady state; batches are tiny and
# single-threaded within a simulation step).
_SCRATCH: Dict[str, tuple] = {}
_N_FILL_ARRAYS = 6


def _scratch(n: int) -> tuple:
    arrays = _SCRATCH.get("arrays")
    if arrays is None or arrays[0].shape[0] < n:
        capacity = max(16, 1 << (n - 1).bit_length())
        arrays = tuple(np.empty(capacity) for _ in range(_N_FILL_ARRAYS))
        _SCRATCH["arrays"] = arrays
    return tuple(a[:n] for a in arrays)


def compute_batch(
    model: PerformanceModel,
    kernels: Sequence[Kernel],
    sms: Sequence[int],
    channels: Sequence[int],
) -> List[SliceThroughput]:
    """Batched :meth:`PerformanceModel.throughput`, memo-first."""
    if not (len(kernels) == len(sms) == len(channels)):
        raise ConfigError(
            f"batch inputs must have equal lengths, got "
            f"{len(kernels)}/{len(sms)}/{len(channels)}"
        )
    memo = model._throughput_memo
    out: List[SliceThroughput] = [None] * len(kernels)  # type: ignore[list-item]
    missing: List[int] = []
    for i in range(len(kernels)):
        key = (kernels[i], sms[i], channels[i])
        cached = memo.get(key)
        if cached is not None:
            model.memo_hits += 1
            memo.move_to_end(key)
            out[i] = cached
        else:
            if sms[i] < 0 or channels[i] < 0:
                raise ConfigError("slice sizes must be non-negative")
            model.memo_misses += 1
            missing.append(i)
    if not missing:
        return out

    cfg = model.config
    n = len(missing)
    ipc_sm, apk, hit, powsm, sms_f, chans_f = _scratch(n)
    bytes_per_ch = cfg.llc_bytes_per_channel
    exponent = cfg.mlp_draw_exponent
    for j, i in enumerate(missing):
        kernel = kernels[i]
        s, m = sms[i], channels[i]
        ipc_sm[j] = kernel.ipc_per_sm
        apk[j] = kernel.apki_llc / 1000.0
        # Scalar-pow sites: python semantics, see module docstring.
        hit[j] = kernel.hit_rate_at(m * bytes_per_ch)
        powsm[j] = float(s * m) ** exponent
        sms_f[j] = float(s)
        chans_f[j] = float(m)

    line = float(cfg.llc_line_bytes)
    compute_roof = sms_f * ipc_sm
    bpi = apk * line
    demand = (compute_roof * apk) * line

    llc_bw_ch = (
        cfg.llc_slices_per_channel * cfg.llc_slice_bandwidth_bytes_per_cycle()
    )
    mem_bw_ch = cfg.channel_bandwidth_bytes_per_cycle()
    per_channel = hit * llc_bw_ch + np.minimum((1.0 - hit) * llc_bw_ch,
                                               mem_bw_ch)
    supply = chans_f * per_channel
    supply[chans_f <= 0.0] = 0.0

    latency_ratio = cfg.llc_latency_cycles / cfg.dram_latency_cycles
    scale = 1.0 - (1.0 - latency_ratio) * np.minimum(
        np.maximum(hit, 0.0), 1.0)
    draw = (cfg.mlp_draw_coefficient * powsm) / np.maximum(
        scale, latency_ratio)

    positive_bpi = bpi > 0.0
    bandwidth_roof = np.full(n, np.inf)
    mlp_roof = np.full(n, np.inf)
    # Python float division overflows silently to inf; match it.
    with np.errstate(over="ignore", divide="ignore"):
        np.divide(supply, bpi, out=bandwidth_roof, where=positive_bpi)
        np.divide(draw, bpi, out=mlp_roof, where=positive_bpi)

    ipc = np.minimum(np.minimum(compute_roof, bandwidth_roof), mlp_roof)
    dead = (sms_f == 0.0) | ((chans_f == 0.0) & positive_bpi)
    ipc[dead] = 0.0
    dram = (ipc * bpi) * (1.0 - hit)

    for j, i in enumerate(missing):
        result = SliceThroughput(
            ipc=float(ipc[j]),
            compute_roof=float(compute_roof[j]),
            bandwidth_roof=float(bandwidth_roof[j]),
            mlp_roof=float(mlp_roof[j]),
            demand_bytes_per_cycle=float(demand[j]),
            supply_bytes_per_cycle=float(supply[j]),
            dram_bytes_per_cycle=float(dram[j]),
            llc_hit_rate=float(hit[j]),
        )
        model._memo_store((kernels[i], sms[i], channels[i]), result)
        out[i] = result
    return out
